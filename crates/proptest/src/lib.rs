//! In-tree stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of proptest the memnet test suites use: [`Strategy`] over
//! integer/float ranges, [`Just`], `prop_oneof!`, `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::select`, tuple strategies, the
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`] combinators, and the
//! `proptest!` / `prop_assert*` macros.
//!
//! Differences from real proptest: case generation is deterministic (seeded
//! from the property name, overridable with `PROPTEST_SEED`), and failing
//! cases are reported but not shrunk. `.proptest-regressions` files are not
//! consulted; every run replays the identical case sequence, so a failure
//! is reproducible by re-running the test as-is.

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 RNG used to drive sampling.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Creates an RNG seeded from a property name (stable across runs),
    /// or from the `PROPTEST_SEED` environment variable if set.
    pub fn from_name(name: &str) -> Self {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.parse::<u64>() {
                return TestRng(seed);
            }
        }
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value: Debug;
    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f` (mirrors
    /// `proptest::strategy::Strategy::prop_map`).
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, map: f }
    }

    /// Resamples until `f` accepts a value (mirrors `prop_filter`; the
    /// message names the predicate in the panic if 1000 samples all miss).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { source: self, keep: f, whence }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.map)(self.source.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    keep: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!("prop_filter({:?}) rejected 1000 consecutive samples", self.whence);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start as i128, self.end as i128);
                assert!(lo < hi, "empty range strategy {lo}..{hi}");
                let span = (hi - lo) as u128;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                let span = (hi - lo) as u128 + 1;
                (lo + (u128::from(rng.next_u64()) % span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        // Treating the end as exclusive is indistinguishable in practice
        // for continuous sampling.
        self.start() + (self.end() - self.start()) * rng.next_f64()
    }
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Samples an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy adapter for [`Arbitrary`] types.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct OneOf<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = (rng.next_u64() % self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

macro_rules! tuple_strategies {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

pub mod collection {
    //! Collection strategies.

    use super::{Debug, Range, Strategy, TestRng};

    /// Strategy for `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy: `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling from fixed collections, mirroring `proptest::sample`.

    use super::{Debug, Strategy, TestRng};

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// A strategy choosing uniformly from a fixed slice of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn select<T: Clone + Debug>(values: &[T]) -> Select<T> {
        assert!(!values.is_empty(), "sample::select needs at least one value");
        Select(values.to_vec())
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].clone()
        }
    }
}

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal test that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )+
                let inputs = {
                    let mut d = ::std::string::String::new();
                    $(
                        d.push_str(&::std::format!(
                            "  {} = {:?}\n", stringify!($arg), $arg
                        ));
                    )+
                    d
                };
                let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!(
                        "property `{}` failed at case {}: {}\ninputs:\n{}",
                        stringify!($name), case, e, inputs
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)+);
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($strat) as _),+];
        $crate::OneOf(arms)
    }};
}

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn oneof_and_vec_sample() {
        let mut rng = TestRng::new(2);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::sample(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
        let v = Strategy::sample(&prop::collection::vec(0u64..10, 5..9), &mut rng);
        assert!((5..9).contains(&v.len()));
        assert!(v.iter().all(|&x| x < 10));
    }

    #[test]
    fn prop_map_transforms_samples() {
        let mut rng = TestRng::new(3);
        let doubled = (1u32..50).prop_map(|x| u64::from(x) * 2);
        for _ in 0..200 {
            let v = Strategy::sample(&doubled, &mut rng);
            assert!(v % 2 == 0 && (2..100).contains(&v));
        }
        // Maps compose.
        let labeled = (0u8..3).prop_map(|x| x + 10).prop_map(|x| format!("v{x}"));
        let s = Strategy::sample(&labeled, &mut rng);
        assert!(["v10", "v11", "v12"].contains(&s.as_str()));
    }

    #[test]
    fn prop_filter_rejects_samples() {
        let mut rng = TestRng::new(4);
        let odd = (0u32..100).prop_filter("odd", |x| x % 2 == 1);
        for _ in 0..200 {
            assert!(Strategy::sample(&odd, &mut rng) % 2 == 1);
        }
    }

    #[test]
    #[should_panic(expected = "rejected 1000 consecutive samples")]
    fn prop_filter_gives_up_eventually() {
        let mut rng = TestRng::new(5);
        let never = (0u32..100).prop_filter("impossible", |_| false);
        Strategy::sample(&never, &mut rng);
    }

    #[test]
    fn select_covers_and_stays_in_the_slice() {
        let mut rng = TestRng::new(6);
        let values = ["a", "b", "c"];
        let s = prop::sample::select(&values);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let v = Strategy::sample(&s, &mut rng);
            let idx = values.iter().position(|&x| x == v).expect("sampled a member");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform choice must cover all values");
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn select_rejects_empty_slices() {
        prop::sample::select::<u32>(&[]);
    }

    #[test]
    fn sampling_is_deterministic() {
        let sample = |seed| {
            let mut rng = TestRng::new(seed);
            (0..16).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_itself_works(x in 1u64..100, v in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x >= 1);
            prop_assert_ne!(x, 0);
            prop_assert_eq!(v.len() < 8, true);
        }
    }
}
