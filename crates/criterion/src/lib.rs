//! In-tree stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of criterion's API that the memnet benches use, backed by a
//! simple wall-clock timer: each benchmark routine is warmed up once, then
//! timed over enough iterations to cover a short measurement window, and the
//! mean per-iteration time is printed. There is no statistical analysis, no
//! HTML report, and no comparison against saved baselines — the point is
//! that `cargo bench` runs and prints usable numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MEASUREMENT_WINDOW: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_owned() }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; the stub's
    /// measurement window does not change).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.0), &mut f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.0), &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Batch-size hint for `iter_batched` (accepted for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Times a closure over repeated iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // One warm-up call, also used to size the measurement loop.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let reps = (MEASUREMENT_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let start = Instant::now();
        for _ in 0..reps {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = reps;
    }

    /// Times `routine` over fresh state built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(1));
        let reps = (MEASUREMENT_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let inputs: Vec<I> = (0..reps).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.total = start.elapsed();
        self.iters = reps;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher::default();
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no measurement)");
        return;
    }
    let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
    println!("{name:<40} {per_iter:>12.1} ns/iter ({} iters)", b.iters);
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            });
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut ran = false;
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| black_box(v + 1), BatchSize::SmallInput);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
