//! Sweep manifest execution: the farm-out payload and the offline path.
//!
//! A v2 manifest with a `sweep` section describes a whole figure sweep.
//! The daemon splits it into `shards` deterministic slices (see the
//! bench crate's `shard` module) and runs each slice as one queue item;
//! the last slice to finish merges every shard's result text back into
//! output byte-identical to an unsharded `memnet sweep` and — when the
//! spec names an `out` path — writes it server-side.
//!
//! [`run_sweep_manifest`] is the offline twin (`memnet run-manifest` on
//! a sweep manifest): same plan, same shard runs executed sequentially
//! in-process, same merge. Because the merged text carries no
//! cache-warmth artefacts, the offline output file is byte-identical to
//! the daemon's for the same document.
//!
//! Either way the caller receives a [`SweepPayload`]
//! (`memnet-sweep-result` v1): the sweep's identity (figures, shard
//! count, cell count, fingerprint-set digest), aggregate ensure counters
//! summed across shards, and an exit following the [`crate::job`]
//! contract (`0` pass, `5` cancelled).

use memnet_bench::shard::{self, Shard, SweepPlan};
use memnet_bench::{EnsureStats, Matrix};
use serde::{Deserialize, Serialize};

use crate::manifest::{Manifest, ManifestError, SweepSpec};

/// Sweep result payload schema name.
pub const SWEEP_RESULT_SCHEMA: &str = "memnet-sweep-result";
/// Sweep result payload schema version.
pub const SWEEP_RESULT_VERSION: u64 = 1;

/// The standardized result of one sweep manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPayload {
    /// Always [`SWEEP_RESULT_SCHEMA`].
    pub schema: String,
    /// Always [`SWEEP_RESULT_VERSION`].
    pub v: u64,
    /// The figures the sweep enumerated.
    pub figures: Vec<String>,
    /// How many shards the sweep was split into.
    pub shards: u32,
    /// Total (deduplicated) cell count.
    pub cells: u64,
    /// Fingerprint-set digest (the sweep's identity).
    pub set: String,
    /// `completed` or `cancelled`.
    pub stop: String,
    /// Outcome keyword: `pass` or `cancelled`.
    pub exit: String,
    /// Process exit code per the [`crate::job`] contract.
    pub exit_code: i32,
    /// Cells requested across all shards (equals `cells` on completion).
    pub requested: u64,
    /// Cells served from per-shard in-memory matrices.
    pub memoized: u64,
    /// Cells served from the persistent result cache.
    pub cache_hits: u64,
    /// Cells actually simulated.
    pub simulated: u64,
    /// Where the merged result text was written, if anywhere.
    pub out: Option<String>,
}

/// In-flight dedup identity of a sweep submission. Two manifests whose
/// figure lists, shard counts, fingerprint sets and output paths agree
/// run the sweep once and share its events.
pub fn sweep_job_key(spec: &SweepSpec, plan: &SweepPlan) -> String {
    format!(
        "sweep|figs={}|shards={}|set={}|out={}",
        spec.figures.join(","),
        spec.shards,
        plan.set_digest,
        spec.out.as_deref().unwrap_or("-"),
    )
}

/// Folds a finished (or cancelled) sweep into the standardized payload.
pub fn sweep_payload(
    spec: &SweepSpec,
    plan: &SweepPlan,
    stats: EnsureStats,
    cancelled: bool,
) -> SweepPayload {
    let (stop, exit, exit_code) = if cancelled {
        ("cancelled", "cancelled", crate::job::EXIT_CANCELLED)
    } else {
        ("completed", "pass", crate::job::EXIT_PASS)
    };
    SweepPayload {
        schema: SWEEP_RESULT_SCHEMA.to_owned(),
        v: SWEEP_RESULT_VERSION,
        figures: spec.figures.clone(),
        shards: spec.shards,
        cells: plan.len() as u64,
        set: plan.set_digest.clone(),
        stop: stop.to_owned(),
        exit: exit.to_owned(),
        exit_code,
        requested: stats.requested as u64,
        memoized: stats.memoized as u64,
        cache_hits: stats.cache_hits as u64,
        simulated: stats.simulated as u64,
        out: spec.out.clone(),
    }
}

/// Sums ensure counters across shards.
pub fn add_stats(total: &mut EnsureStats, part: EnsureStats) {
    total.requested += part.requested;
    total.memoized += part.memoized;
    total.cache_hits += part.cache_hits;
    total.simulated += part.simulated;
}

/// Parses and merges per-shard result texts (produced by
/// [`shard::run_shard`]) into the final sweep text. `names` label parse
/// errors; pass one per text, in the same order.
pub fn merge_texts(named: &[(String, String)]) -> Result<shard::Merged, String> {
    let mut files = Vec::with_capacity(named.len());
    for (name, text) in named {
        files.push(shard::parse_sweep_file(name, text)?);
    }
    shard::merge(&files)
}

/// Runs one sweep manifest offline: every shard sequentially, each on a
/// fresh in-memory matrix with no persistent cache, then the merge. The
/// merged text is written to the spec's `out` path when set, and is
/// byte-identical to what the daemon writes for the same document.
pub fn run_sweep_manifest(manifest: &Manifest) -> Result<(SweepPayload, String), ManifestError> {
    let spec = manifest
        .sweep
        .as_ref()
        .ok_or_else(|| ManifestError::new("sweep", None, "not a sweep manifest"))?;
    let err = |msg: String| ManifestError::new("sweep", None, msg);
    let settings = spec.settings();
    let plan = SweepPlan::new(&spec.figures, &settings).map_err(err)?;
    let mut texts = Vec::with_capacity(spec.shards as usize);
    let mut stats = EnsureStats::default();
    for index in 0..spec.shards {
        let mut matrix = Matrix::new();
        let piece = Shard { index, of: spec.shards };
        let (text, part) = shard::run_shard(&plan, piece, &settings, &mut matrix).map_err(err)?;
        add_stats(&mut stats, part);
        texts.push((format!("shard {piece}"), text));
    }
    let merged = merge_texts(&texts).map_err(err)?;
    if let Some(path) = &spec.out {
        std::fs::write(path, &merged.text)
            .map_err(|e| ManifestError::new("sweep.out", None, format!("writing {path}: {e}")))?;
    }
    Ok((sweep_payload(spec, &plan, stats, false), merged.text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_manifest(extra: &str) -> Manifest {
        let text = format!(
            "{{\"schema\":\"memnet-manifest\",\"v\":2,\
             \"sweep\":{{\"figures\":[\"model_diff\"],\"eval_us\":20{extra}}}}}"
        );
        Manifest::parse(&text).expect("test sweep manifest parses")
    }

    #[test]
    fn offline_sharded_sweep_merges_byte_identical_to_unsharded() {
        let (one, unsharded) = run_sweep_manifest(&sweep_manifest("")).unwrap();
        let (three, merged) = run_sweep_manifest(&sweep_manifest(",\"shards\":3")).unwrap();
        assert_eq!(merged, unsharded, "3-way merge must be byte-identical");
        assert_eq!(one.shards, 1);
        assert_eq!(three.shards, 3);
        assert_eq!(one.cells, three.cells);
        assert_eq!(one.set, three.set);
        assert_eq!(three.exit, "pass");
        assert_eq!(three.exit_code, 0);
        // Shards partition the cells: aggregate counters sum to the
        // unsharded run's totals (no cache, so everything simulates).
        assert_eq!(three.requested, one.requested);
        assert_eq!(three.simulated, one.simulated);
        assert_eq!(three.requested, three.cells);
    }

    #[test]
    fn job_key_tracks_the_sweep_identity() {
        let m = sweep_manifest(",\"shards\":2");
        let spec = m.sweep.as_ref().unwrap();
        let plan = SweepPlan::new(&spec.figures, &spec.settings()).unwrap();
        let key = sweep_job_key(spec, &plan);
        assert!(key.starts_with("sweep|figs=model_diff|shards=2|set="), "{key}");
        let mut named = spec.clone();
        named.out = Some("merged.jsonl".to_owned());
        assert_ne!(key, sweep_job_key(&named, &plan), "out path is part of the identity");
    }
}
