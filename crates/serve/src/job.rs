//! Job execution and the standardized result payload.
//!
//! One resolved manifest becomes one job. Executing it (with or without a
//! daemon) yields a [`ResultPayload`]: the full [`RunReport`] plus the
//! stop reason, assertion verdicts, cache provenance and a process exit
//! code following a fixed contract:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | run matched every assertion (including `expected_exit`) |
//! | 1    | transport / internal error |
//! | 2    | run finished but an assertion failed |
//! | 3    | a limit stopped the run and the manifest expected completion |
//! | 4    | manifest rejected before any simulation started |
//! | 5    | job cancelled |
//!
//! The payload is built from deterministic inputs only, so the daemon's
//! first simulation of a manifest is byte-identical to an offline
//! `memnet run-manifest` of the same document.

use memnet_core::{Engine, RunLimits, RunProgress, RunReport, StopReason};
use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use crate::manifest::{Assertions, Manifest, ResolvedJob};

/// Every assertion passed (and the run exited as expected).
pub const EXIT_PASS: i32 = 0;
/// Transport or internal error.
pub const EXIT_ERROR: i32 = 1;
/// The run finished but an assertion failed.
pub const EXIT_ASSERT_FAILED: i32 = 2;
/// A limit stopped the run that the manifest expected to complete.
pub const EXIT_LIMIT_EXCEEDED: i32 = 3;
/// The manifest was rejected before any simulation started.
pub const EXIT_REJECTED: i32 = 4;
/// The job was cancelled.
pub const EXIT_CANCELLED: i32 = 5;

/// Result payload schema name.
pub const RESULT_SCHEMA: &str = "memnet-result";
/// Result payload schema version.
pub const RESULT_VERSION: u64 = 1;

/// One evaluated assertion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Verdict {
    /// Assertion name (the manifest key).
    pub assertion: String,
    /// Whether it held.
    pub ok: bool,
    /// Observed value, rendered deterministically.
    pub actual: String,
    /// Required bound, rendered deterministically.
    pub want: String,
}

/// Where the report in a payload came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheNote {
    /// True when no simulation ran for this submission.
    pub hit: bool,
    /// `simulated`, `coalesced` (shared an in-flight simulation) or
    /// `disk` (served from the persistent result cache).
    pub source: String,
}

impl CacheNote {
    /// The provenance of a freshly simulated report.
    pub fn simulated() -> CacheNote {
        CacheNote { hit: false, source: "simulated".to_owned() }
    }
}

/// The standardized result of one manifest run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultPayload {
    /// Always [`RESULT_SCHEMA`].
    pub schema: String,
    /// Always [`RESULT_VERSION`].
    pub v: u64,
    /// Bench-cache fingerprint of the run (result identity).
    pub fingerprint: String,
    /// How the engine stopped ([`StopReason::label`]).
    pub stop: String,
    /// Outcome keyword: `pass`, `assert-fail`, `limit-exceeded` or
    /// `cancelled`.
    pub exit: String,
    /// Process exit code per the contract in the module docs.
    pub exit_code: i32,
    /// Assertion verdicts, in manifest-schema order.
    pub assertions: Vec<Verdict>,
    /// Report provenance.
    pub cache: CacheNote,
    /// The full simulation report.
    pub report: RunReport,
}

/// Executes a resolved job's simulation, honoring the manifest limits
/// plus the caller's cancellation flag and progress callback.
pub fn execute(
    job: &ResolvedJob,
    cancel: Option<Arc<AtomicBool>>,
    progress_every: u64,
    progress: Option<Box<dyn FnMut(RunProgress) + Send>>,
) -> (RunReport, StopReason) {
    let mut engine = Engine::new(job.cfg.clone());
    if let Some(model) = &job.backend {
        engine = engine.with_backend(Box::new(model.clone()));
    }
    let lim = &job.manifest.limits;
    let limits = RunLimits {
        wall_time: lim.wall_time_ms.map(Duration::from_millis),
        max_events: lim.max_events,
        max_sim_time: lim.max_sim_time_us.map(SimDuration::from_us),
        cancel,
        progress_every: if progress.is_some() { progress_every } else { 0 },
        progress,
    };
    let run = engine.run_limited(limits);
    (run.report, run.stop)
}

/// Evaluates the manifest assertions against a finished report and folds
/// everything into the standardized payload.
pub fn finish(
    fingerprint: &str,
    assertions: &Assertions,
    report: RunReport,
    stop: StopReason,
    cache: CacheNote,
) -> ResultPayload {
    let (exit, exit_code, verdicts) = if stop == StopReason::Cancelled {
        ("cancelled", EXIT_CANCELLED, Vec::new())
    } else {
        let verdicts = evaluate(assertions, &report, stop);
        if verdicts.iter().all(|v| v.ok) {
            ("pass", EXIT_PASS, verdicts)
        } else if stop == StopReason::Completed {
            ("assert-fail", EXIT_ASSERT_FAILED, verdicts)
        } else {
            // The run was truncated by a limit the manifest did not
            // expect — the dominant failure is the limit, not whatever
            // metric assertions the partial report happens to violate.
            match verdicts.iter().find(|v| v.assertion == "expected_exit") {
                Some(v) if !v.ok => ("limit-exceeded", EXIT_LIMIT_EXCEEDED, verdicts),
                _ => ("assert-fail", EXIT_ASSERT_FAILED, verdicts),
            }
        }
    };
    ResultPayload {
        schema: RESULT_SCHEMA.to_owned(),
        v: RESULT_VERSION,
        fingerprint: fingerprint.to_owned(),
        stop: stop.label().to_owned(),
        exit: exit.to_owned(),
        exit_code,
        assertions: verdicts,
        cache,
        report,
    }
}

fn evaluate(assertions: &Assertions, report: &RunReport, stop: StopReason) -> Vec<Verdict> {
    let mut out = Vec::new();
    out.push(Verdict {
        assertion: "expected_exit".to_owned(),
        ok: stop.exit_kind() == assertions.expected_exit,
        actual: stop.exit_kind().to_owned(),
        want: assertions.expected_exit.clone(),
    });
    if let Some(bound) = assertions.max_total_energy_j {
        let actual = report.power.energy.total();
        out.push(Verdict {
            assertion: "max_total_energy_j".to_owned(),
            ok: actual <= bound,
            actual: format!("{actual:.6}"),
            want: format!("<= {bound}"),
        });
    }
    if let Some(bound) = assertions.max_avg_latency_us {
        let actual = report.mean_read_latency_ns / 1_000.0;
        out.push(Verdict {
            assertion: "max_avg_latency_us".to_owned(),
            ok: actual <= bound,
            actual: format!("{actual:.6}"),
            want: format!("<= {bound}"),
        });
    }
    if let Some(bound) = assertions.min_completed_reads {
        let actual = report.completed_reads;
        out.push(Verdict {
            assertion: "min_completed_reads".to_owned(),
            ok: actual >= bound,
            actual: actual.to_string(),
            want: format!(">= {bound}"),
        });
    }
    if let Some(bound) = assertions.max_violations {
        let actual = report.violations;
        out.push(Verdict {
            assertion: "max_violations".to_owned(),
            ok: actual <= bound,
            actual: actual.to_string(),
            want: format!("<= {bound}"),
        });
    }
    out
}

/// Runs one manifest offline: resolve, simulate (no cancellation, no
/// progress), assert. This is `memnet run-manifest`'s engine, and — by
/// construction — byte-identical to what a daemon returns the first time
/// it simulates the same document.
pub fn run_manifest(manifest: &Manifest) -> Result<ResultPayload, crate::ManifestError> {
    let job = manifest.resolve()?;
    let (report, stop) = execute(&job, None, 0, None);
    Ok(finish(&job.fingerprint, &job.manifest.assertions, report, stop, CacheNote::simulated()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_manifest(extra: &str) -> Manifest {
        let text = format!(
            "{{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{{\"workload\":\"mixD\",\"eval_us\":50,\"seed\":7}}{extra}}}"
        );
        Manifest::parse(&text).expect("test manifest parses")
    }

    #[test]
    fn passing_run_exits_zero_with_all_verdicts_ok() {
        let payload = run_manifest(&quick_manifest(
            ",\"assertions\":{\"min_completed_reads\":1,\"max_violations\":1000000}",
        ))
        .unwrap();
        assert_eq!(payload.exit, "pass");
        assert_eq!(payload.exit_code, EXIT_PASS);
        assert_eq!(payload.stop, "completed");
        assert_eq!(payload.assertions.len(), 3);
        assert!(payload.assertions.iter().all(|v| v.ok));
        assert!(!payload.cache.hit);
        assert_eq!(payload.cache.source, "simulated");
    }

    #[test]
    fn failing_assertion_exits_two_and_names_the_bound() {
        let payload =
            run_manifest(&quick_manifest(",\"assertions\":{\"max_total_energy_j\":0.0}")).unwrap();
        assert_eq!(payload.exit, "assert-fail");
        assert_eq!(payload.exit_code, EXIT_ASSERT_FAILED);
        let bad = payload.assertions.iter().find(|v| !v.ok).unwrap();
        assert_eq!(bad.assertion, "max_total_energy_j");
        assert_eq!(bad.want, "<= 0");
    }

    #[test]
    fn unexpected_limit_exits_three_expected_limit_exits_zero() {
        let hit = run_manifest(&quick_manifest(",\"limits\":{\"max_events\":500}")).unwrap();
        assert_eq!(hit.exit, "limit-exceeded");
        assert_eq!(hit.exit_code, EXIT_LIMIT_EXCEEDED);
        assert_eq!(hit.stop, "max-events");
        assert_eq!(hit.report.events_processed, 500);

        let expected = run_manifest(&quick_manifest(
            ",\"limits\":{\"max_events\":500},\
             \"assertions\":{\"expected_exit\":\"limit_exceeded\"}",
        ))
        .unwrap();
        assert_eq!(expected.exit, "pass");
        assert_eq!(expected.exit_code, EXIT_PASS);
    }

    #[test]
    fn offline_run_is_deterministic_to_the_byte() {
        let m = quick_manifest("");
        let a = serde::json::to_string(&run_manifest(&m).unwrap());
        let b = serde::json::to_string(&run_manifest(&m).unwrap());
        assert_eq!(a, b);
    }
}
