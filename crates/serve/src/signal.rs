//! Minimal std-only SIGINT/SIGTERM latch.
//!
//! The daemon needs exactly one bit from the OS: "someone asked us to
//! stop". Rather than pull in a signal-handling crate (the build is
//! offline), we register a trivial `extern "C"` handler via the libc
//! `signal(2)` symbol that every Unix libc exports, and have it flip one
//! atomic. The accept loop polls [`requested`] between accepts and turns
//! it into the same graceful drain as a `shutdown` admin request.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler once SIGINT or SIGTERM arrives.
static REQUESTED: AtomicBool = AtomicBool::new(false);

/// True once SIGINT or SIGTERM has been delivered (always false on
/// non-Unix platforms, where [`install`] is a no-op).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Test/support hook: raise the shutdown latch as if a signal arrived.
pub fn request() {
    REQUESTED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: one relaxed atomic store.
        super::REQUESTED.store(true, Ordering::Relaxed);
    }

    /// Routes SIGINT and SIGTERM to the latch.
    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal routing off Unix; ctrl-c terminates the process.
    pub fn install() {}
}

pub use imp::install;
