//! The `memnet serve` daemon: a std-only TCP batch simulation server.
//!
//! Clients speak newline-delimited JSON. Each request line is one op:
//!
//! - `{"op":"submit","manifest":{…}}` — submit a memnet-manifest (v1
//!   run, or v2 with a `sweep` section)
//! - `{"op":"cancel","job":N}` — cancel a previously queued job
//! - `{"op":"status"}` — queue depth, running count and counters
//! - `{"op":"shutdown"}` — graceful drain (see below)
//!
//! The server answers with JSONL lifecycle events on the submitting
//! connection: `rejected`, `queued` (with `coalesced`/`cached` flags),
//! `started`, `progress`, then exactly one of `done`, `failed` or
//! `cancelled` carrying the standardized [`ResultPayload`].
//!
//! ## Scheduling and dedup
//!
//! Jobs queue per client connection and a fixed pool of worker threads
//! pulls them round-robin across clients, so one client's hundred
//! manifests cannot starve another's one. Before any queueing, a
//! submission is checked against
//!
//! 1. the persistent bench result cache (fingerprint hit → immediate
//!    `done`, zero simulation), then
//! 2. the in-flight table (an identical job queued or running → the new
//!    submission *coalesces* onto it and receives its own events and its
//!    own assertion verdicts when the one simulation finishes).
//!
//! Identical concurrent submissions therefore simulate exactly once.
//!
//! ## Sweep farm-out
//!
//! A v2 sweep manifest becomes `shards` independent queue items sharing
//! the submitting client's queue, so a sweep competes with other clients
//! exactly like that many single runs would. Each shard slice computes
//! its deterministic subset of the figure matrix (hitting the daemon's
//! persistent result cache per cell); the last slice to retire merges
//! the shard texts into output byte-identical to an unsharded `memnet
//! sweep`, writes the spec's `out` path if named, and delivers one
//! `done` event per subscriber carrying the `memnet-sweep-result`
//! payload. Identical concurrent sweep submissions coalesce onto one
//! farm-out, keyed by figure list + shard count + fingerprint-set digest
//! + output path.
//!
//! ## Graceful shutdown
//!
//! SIGINT/SIGTERM (via [`crate::signal`]) or a `shutdown` op flips one
//! flag: the accept loop stops taking connections, new submissions on
//! live connections are rejected with a "shutting down" error, workers
//! drain the queue and finish in-flight jobs (delivering every result),
//! and [`Server::run`] returns so the process can exit 0.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use memnet_bench::shard::{self, Shard, SweepPlan};
use memnet_bench::{DiskCache, EnsureStats, Matrix, Settings};
use memnet_core::StopReason;
use serde::{json, Serialize};

use crate::job::{self, CacheNote, ResultPayload};
use crate::manifest::{Assertions, Manifest, ResolvedJob, SweepSpec};
use crate::signal;
use crate::sweep;

/// How the daemon is set up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:9377` (port 0 for ephemeral).
    pub addr: String,
    /// Worker threads simulating jobs.
    pub workers: usize,
    /// Persistent result cache directory (`None` disables the cache).
    pub cache_dir: Option<PathBuf>,
    /// Emit a `progress` event roughly every this many engine events
    /// (0 disables progress events).
    pub progress_every: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:9377".to_owned(),
            workers: 2,
            cache_dir: None,
            progress_every: 1_000_000,
        }
    }
}

/// Monotonic counters, reported by the `status` op.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Stats {
    /// Submissions accepted (queued, coalesced or cache-served).
    pub submitted: u64,
    /// Submissions rejected before touching a worker.
    pub rejected: u64,
    /// Submissions that coalesced onto an identical in-flight job.
    pub coalesced: u64,
    /// Submissions served straight from the persistent cache.
    pub cache_hits: u64,
    /// Simulations actually executed.
    pub simulated: u64,
    /// Jobs that delivered a result (any exit).
    pub completed: u64,
    /// Jobs cancelled (queued or running).
    pub cancelled: u64,
    /// Sweep manifests accepted and farmed out (coalesced sweep
    /// submissions count under `coalesced` instead).
    pub sweeps: u64,
    /// Sweep shard slices executed by workers (not counted under
    /// `simulated`, which tallies single-run manifests).
    pub shards: u64,
}

/// The writing half of one client connection. Workers and the scheduler
/// share it; each event line is written atomically under the lock. A
/// failed write poisons the connection (stream dropped) — later sends
/// become silent no-ops, which is the right behavior for a client that
/// hung up before its results were ready.
struct ConnOut {
    stream: Mutex<Option<TcpStream>>,
}

impl ConnOut {
    fn send(&self, line: &str) {
        use std::io::Write;
        let mut guard = self.stream.lock().unwrap();
        if let Some(stream) = guard.as_mut() {
            let ok =
                stream.write_all(line.as_bytes()).and_then(|()| stream.write_all(b"\n")).is_ok();
            if !ok {
                *guard = None;
            }
        }
    }

    fn hangup(&self) {
        let mut guard = self.stream.lock().unwrap();
        if let Some(stream) = guard.take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// One subscriber to a job: where to send events, the job id the client
/// knows, and the assertions *this* submission asked for (coalesced
/// manifests may agree on the run but differ on assertions).
struct Sub {
    conn: Arc<ConnOut>,
    job_id: u64,
    assertions: Assertions,
    coalesced: bool,
}

/// One single-run unit of work: a resolved job plus everyone waiting on
/// it.
struct JobExec {
    job: ResolvedJob,
    cancel: Arc<AtomicBool>,
    subs: Mutex<Vec<Sub>>,
    started: AtomicBool,
}

/// One subscriber to a sweep (no per-submission assertions: a sweep has
/// none).
struct SweepSub {
    conn: Arc<ConnOut>,
    job_id: u64,
}

/// Shard results collected so far.
struct SweepSlots {
    /// One slot per shard, filled with the shard's result text.
    texts: Vec<Option<String>>,
    /// Aggregate ensure counters across finished shards.
    stats: EnsureStats,
    /// How many shards have retired (run or skipped-by-cancel).
    done: u32,
}

/// One in-flight sweep: the spec, its enumerated plan, and everyone
/// waiting on the merge. Its `shards` queue items execute independently;
/// the last one to retire merges and delivers.
struct SweepRun {
    spec: SweepSpec,
    plan: SweepPlan,
    settings: Settings,
    job_key: String,
    cancel: AtomicBool,
    started: AtomicBool,
    subs: Mutex<Vec<SweepSub>>,
    slots: Mutex<SweepSlots>,
}

/// One queue item: a whole single-run job, or one shard of a sweep.
enum Work {
    Run(Arc<JobExec>),
    Shard(Arc<SweepRun>, u32),
}

/// A queued or running submission, by kind (the `jobs`/`inflight` table
/// entry).
#[derive(Clone)]
enum Inflight {
    Run(Arc<JobExec>),
    Sweep(Arc<SweepRun>),
}

/// Everything behind the scheduler lock.
#[derive(Default)]
struct Sched {
    /// Per-client FIFO queues, serviced round-robin.
    queues: Vec<(u64, VecDeque<Work>)>,
    /// Next queue index to service.
    rr: usize,
    /// Queued or running jobs by `job_key` (the dedup table).
    inflight: HashMap<String, Inflight>,
    /// Every live job id, for `cancel`.
    jobs: HashMap<u64, Inflight>,
    next_job: u64,
    running: usize,
    stats: Stats,
}

impl Sched {
    fn queued_len(&self) -> usize {
        self.queues.iter().map(|(_, q)| q.len()).sum()
    }

    fn enqueue(&mut self, client: u64, work: Work) {
        match self.queues.iter_mut().find(|(c, _)| *c == client) {
            Some((_, q)) => q.push_back(work),
            None => self.queues.push((client, VecDeque::from([work]))),
        }
    }

    /// Pops the next work item round-robin across client queues.
    fn pop_next(&mut self) -> Option<Work> {
        if self.queues.is_empty() {
            return None;
        }
        self.rr %= self.queues.len();
        let work = self.queues[self.rr].1.pop_front().expect("no empty queues are kept");
        if self.queues[self.rr].1.is_empty() {
            self.queues.remove(self.rr);
            // The vec shifted left; `rr` now already points at the next
            // client (or wraps at the top of the next call).
        } else {
            self.rr += 1;
        }
        Some(work)
    }

    /// Drops an exec from whichever queue holds it (cancel of a queued
    /// job whose last subscriber left).
    fn unqueue(&mut self, exec: &Arc<JobExec>) {
        for (_, q) in &mut self.queues {
            if let Some(pos) =
                q.iter().position(|w| matches!(w, Work::Run(e) if Arc::ptr_eq(e, exec)))
            {
                q.remove(pos);
                break;
            }
        }
        self.queues.retain(|(_, q)| !q.is_empty());
        self.rr = 0;
    }
}

struct State {
    sched: Mutex<Sched>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Lock order: `sched` may be taken, then `cache` nested inside it.
    /// Never the reverse.
    cache: Option<Mutex<DiskCache>>,
    /// The cache directory, so sweep shards can share the persistent
    /// result cache. Each shard opens its own [`DiskCache`] handle
    /// (writes are atomic renames, so concurrent shards never clobber
    /// each other); entries a shard stores become visible to the
    /// server's own handle above on its next reopen, i.e. the next
    /// daemon start — the in-memory `cache` index is load-at-open.
    cache_dir: Option<PathBuf>,
    progress_every: u64,
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    workers: usize,
}

/// JSON-quotes a string for hand-assembled event lines.
fn js(s: &str) -> String {
    json::to_string(&s)
}

fn event_rejected(err: &crate::ManifestError) -> String {
    let line = match err.line {
        Some(n) => n.to_string(),
        None => "null".to_owned(),
    };
    format!(
        "{{\"event\":\"rejected\",\"path\":{},\"line\":{line},\"error\":{}}}",
        js(&err.path),
        js(&err.msg)
    )
}

fn event_result(kind: &str, job_id: u64, payload: &ResultPayload) -> String {
    format!("{{\"event\":{},\"job\":{job_id},\"result\":{}}}", js(kind), json::to_string(payload))
}

impl Server {
    /// Binds the listen socket (does not accept yet).
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let addr =
            cfg.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::other(format!("unresolvable address {}", cfg.addr))
            })?;
        let listener = TcpListener::bind(addr)?;
        let cache = match &cfg.cache_dir {
            None => None,
            Some(dir) => Some(Mutex::new(DiskCache::open(dir)?)),
        };
        Ok(Server {
            listener,
            state: Arc::new(State {
                sched: Mutex::new(Sched::default()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                cache,
                cache_dir: cfg.cache_dir.clone(),
                progress_every: cfg.progress_every,
            }),
            workers: cfg.workers.max(1),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a shutdown request (op or signal) drains the queue,
    /// then returns the final counters. Every accepted job's result is
    /// delivered before this returns.
    pub fn run(self) -> std::io::Result<Stats> {
        self.listener.set_nonblocking(true)?;
        let workers: Vec<_> = (0..self.workers)
            .map(|_| {
                let state = Arc::clone(&self.state);
                std::thread::spawn(move || worker_loop(&state))
            })
            .collect();

        let conns: Arc<Mutex<Vec<Arc<ConnOut>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut conn_threads = Vec::new();
        let mut next_client = 0_u64;
        loop {
            if self.state.shutdown.load(Ordering::Relaxed) || signal::requested() {
                self.state.shutdown.store(true, Ordering::Relaxed);
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    stream.set_nonblocking(false)?;
                    let reader = stream.try_clone()?;
                    let out = Arc::new(ConnOut { stream: Mutex::new(Some(stream)) });
                    conns.lock().unwrap().push(Arc::clone(&out));
                    let state = Arc::clone(&self.state);
                    let client = next_client;
                    next_client += 1;
                    conn_threads.push(std::thread::spawn(move || {
                        serve_connection(&state, client, reader, &out);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: workers exit once the queue is empty and nothing runs.
        self.state.cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        // Every result is delivered; unblock any connection still reading.
        for conn in conns.lock().unwrap().iter() {
            conn.send("{\"event\":\"shutting-down\"}");
            conn.hangup();
        }
        for t in conn_threads {
            let _ = t.join();
        }
        let stats = self.state.sched.lock().unwrap().stats;
        Ok(stats)
    }
}

/// Reads request lines off one connection until EOF.
fn serve_connection(state: &Arc<State>, client: u64, reader: TcpStream, out: &Arc<ConnOut>) {
    let reader = BufReader::new(reader);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let doc = match json::parse(&line) {
            Ok(doc) => doc,
            Err(e) => {
                out.send(&format!(
                    "{{\"event\":\"error\",\"error\":{}}}",
                    js(&format!("bad request JSON: {}", e.0))
                ));
                continue;
            }
        };
        let op = doc.get("op").ok().and_then(|v| v.as_str().ok()).unwrap_or("");
        match op {
            "submit" => match doc.get("manifest") {
                Ok(manifest) => submit(state, client, out, manifest),
                Err(_) => out.send(
                    "{\"event\":\"error\",\"error\":\"submit needs a \\\"manifest\\\" object\"}",
                ),
            },
            "cancel" => {
                let job_id = doc.get("job").ok().and_then(|v| v.num::<u64>().ok());
                match job_id {
                    Some(id) => cancel(state, out, id),
                    None => out.send(
                        "{\"event\":\"error\",\"error\":\"cancel needs a numeric \\\"job\\\"\"}",
                    ),
                }
            }
            "status" => {
                let sched = state.sched.lock().unwrap();
                let line = format!(
                    "{{\"event\":\"status\",\"queued\":{},\"running\":{},\"stats\":{}}}",
                    sched.queued_len(),
                    sched.running,
                    json::to_string(&sched.stats)
                );
                drop(sched);
                out.send(&line);
            }
            "shutdown" => {
                state.shutdown.store(true, Ordering::Relaxed);
                state.cv.notify_all();
                out.send("{\"event\":\"shutting-down\"}");
            }
            other => out.send(&format!(
                "{{\"event\":\"error\",\"error\":{}}}",
                js(&format!("unknown op {other:?} (submit|cancel|status|shutdown)"))
            )),
        }
    }
}

/// Handles one `submit` op, entirely on the connection thread: parse,
/// resolve, then either reject, serve from cache, coalesce, or queue.
/// No worker is occupied before a manifest has fully validated.
fn submit(state: &Arc<State>, client: u64, out: &Arc<ConnOut>, manifest: &json::Value) {
    let reject = |err: &crate::ManifestError| {
        state.sched.lock().unwrap().stats.rejected += 1;
        out.send(&event_rejected(err));
    };
    if state.shutdown.load(Ordering::Relaxed) {
        reject(&crate::ManifestError {
            path: "manifest".to_owned(),
            line: None,
            msg: "server is shutting down and refuses new submissions".to_owned(),
        });
        return;
    }
    // Round-trip through text: Manifest::parse owns all schema checking.
    // (Line numbers in errors are only meaningful when the client keeps
    // the original text, which `memnet submit` exploits by validating
    // locally first.)
    let text = json::to_string(manifest);
    let manifest = match Manifest::parse(&text) {
        Ok(m) => m,
        Err(e) => return reject(&e),
    };
    if manifest.sweep.is_some() {
        return submit_sweep(state, client, out, &manifest);
    }
    let job = match manifest.resolve() {
        Ok(job) => job,
        Err(e) => return reject(&e),
    };

    // Lifecycle events (`queued`, possibly `started`) are sent while the
    // scheduler lock is still held: a worker cannot pop the new job —
    // and therefore cannot emit its own `started` — until the lock
    // drops, which pins the documented queued→started→… order. Only the
    // bulky cache-hit result payload is deferred past the lock.
    let mut deferred: Option<String> = None;
    {
        let mut sched = state.sched.lock().unwrap();
        if state.shutdown.load(Ordering::Relaxed) {
            drop(sched);
            return reject(&crate::ManifestError {
                path: "manifest".to_owned(),
                line: None,
                msg: "server is shutting down and refuses new submissions".to_owned(),
            });
        }
        sched.stats.submitted += 1;
        let job_id = sched.next_job;
        sched.next_job += 1;

        if let Some(Inflight::Run(exec)) = sched.inflight.get(&job.job_key).cloned() {
            // Identical job already queued or running: coalesce.
            sched.stats.coalesced += 1;
            sched.jobs.insert(job_id, Inflight::Run(Arc::clone(&exec)));
            exec.subs.lock().unwrap().push(Sub {
                conn: Arc::clone(out),
                job_id,
                assertions: job.manifest.assertions.clone(),
                coalesced: true,
            });
            out.send(&format!(
                "{{\"event\":\"queued\",\"job\":{job_id},\"fingerprint\":{},\
                 \"coalesced\":true,\"cached\":false}}",
                js(&job.fingerprint)
            ));
            if exec.started.load(Ordering::Relaxed) {
                out.send(&format!("{{\"event\":\"started\",\"job\":{job_id}}}"));
            }
        } else if let Some(payload) = cached_payload(state, &job) {
            // Persistent-cache hit: answer immediately, zero simulation.
            sched.stats.cache_hits += 1;
            sched.stats.completed += 1;
            out.send(&format!(
                "{{\"event\":\"queued\",\"job\":{job_id},\"fingerprint\":{},\
                 \"coalesced\":false,\"cached\":true}}",
                js(&job.fingerprint)
            ));
            let kind = if payload.exit_code == job::EXIT_PASS { "done" } else { "failed" };
            deferred = Some(event_result(kind, job_id, &payload));
        } else {
            let exec = Arc::new(JobExec {
                cancel: Arc::new(AtomicBool::new(false)),
                subs: Mutex::new(vec![Sub {
                    conn: Arc::clone(out),
                    job_id,
                    assertions: job.manifest.assertions.clone(),
                    coalesced: false,
                }]),
                started: AtomicBool::new(false),
                job,
            });
            out.send(&format!(
                "{{\"event\":\"queued\",\"job\":{job_id},\"fingerprint\":{},\
                 \"coalesced\":false,\"cached\":false}}",
                js(&exec.job.fingerprint)
            ));
            sched.inflight.insert(exec.job.job_key.clone(), Inflight::Run(Arc::clone(&exec)));
            sched.jobs.insert(job_id, Inflight::Run(Arc::clone(&exec)));
            sched.enqueue(client, Work::Run(exec));
            state.cv.notify_one();
        }
    }
    if let Some(line) = deferred {
        out.send(&line);
    }
}

/// Handles one sweep-manifest `submit`: enumerate the plan, then either
/// coalesce onto an identical in-flight sweep or queue one work item per
/// shard. Shard runs share the daemon's persistent result cache, so
/// already-simulated cells are disk hits exactly as in `memnet sweep`.
/// (A sweep fingerprint set may be huge, so there is no whole-sweep
/// cache short-circuit; the per-cell cache serves that purpose.)
fn submit_sweep(state: &Arc<State>, client: u64, out: &Arc<ConnOut>, manifest: &Manifest) {
    let reject = |err: &crate::ManifestError| {
        state.sched.lock().unwrap().stats.rejected += 1;
        out.send(&event_rejected(err));
    };
    let spec = manifest.sweep.clone().expect("submit_sweep is only called for sweep manifests");
    let mut settings = spec.settings();
    settings.cache_dir = state.cache_dir.clone();
    let plan = match SweepPlan::new(&spec.figures, &settings) {
        Ok(plan) => plan,
        Err(e) => {
            return reject(&crate::ManifestError { path: "sweep".to_owned(), line: None, msg: e })
        }
    };
    let job_key = sweep::sweep_job_key(&spec, &plan);

    let mut sched = state.sched.lock().unwrap();
    if state.shutdown.load(Ordering::Relaxed) {
        drop(sched);
        return reject(&crate::ManifestError {
            path: "manifest".to_owned(),
            line: None,
            msg: "server is shutting down and refuses new submissions".to_owned(),
        });
    }
    sched.stats.submitted += 1;
    let job_id = sched.next_job;
    sched.next_job += 1;

    if let Some(Inflight::Sweep(run)) = sched.inflight.get(&job_key).cloned() {
        // Identical sweep already in flight: coalesce onto its merge.
        sched.stats.coalesced += 1;
        sched.jobs.insert(job_id, Inflight::Sweep(Arc::clone(&run)));
        run.subs.lock().unwrap().push(SweepSub { conn: Arc::clone(out), job_id });
        out.send(&event_sweep_queued(job_id, &run, true));
        if run.started.load(Ordering::Relaxed) {
            out.send(&format!("{{\"event\":\"started\",\"job\":{job_id}}}"));
        }
        return;
    }

    sched.stats.sweeps += 1;
    let shards = spec.shards;
    let run = Arc::new(SweepRun {
        slots: Mutex::new(SweepSlots {
            texts: vec![None; shards as usize],
            stats: EnsureStats::default(),
            done: 0,
        }),
        subs: Mutex::new(vec![SweepSub { conn: Arc::clone(out), job_id }]),
        cancel: AtomicBool::new(false),
        started: AtomicBool::new(false),
        spec,
        plan,
        settings,
        job_key: job_key.clone(),
    });
    out.send(&event_sweep_queued(job_id, &run, false));
    sched.inflight.insert(job_key, Inflight::Sweep(Arc::clone(&run)));
    sched.jobs.insert(job_id, Inflight::Sweep(Arc::clone(&run)));
    for index in 0..shards {
        sched.enqueue(client, Work::Shard(Arc::clone(&run), index));
    }
    drop(sched);
    state.cv.notify_all();
}

fn event_sweep_queued(job_id: u64, run: &SweepRun, coalesced: bool) -> String {
    format!(
        "{{\"event\":\"queued\",\"job\":{job_id},\"sweep\":true,\"shards\":{},\"cells\":{},\
         \"set\":{},\"coalesced\":{coalesced},\"cached\":false}}",
        run.spec.shards,
        run.plan.len(),
        js(&run.plan.set_digest),
    )
}

/// Builds a payload from the persistent cache, if the job is eligible
/// and the report is there. Takes the cache lock nested inside the
/// scheduler lock (the one place that nesting is allowed).
fn cached_payload(state: &State, job: &ResolvedJob) -> Option<ResultPayload> {
    if !job.cache_eligible {
        return None;
    }
    let cache = state.cache.as_ref()?.lock().unwrap();
    let report = cache.get(&job.fingerprint)?.clone();
    drop(cache);
    Some(job::finish(
        &job.fingerprint,
        &job.manifest.assertions,
        report,
        StopReason::Completed,
        CacheNote { hit: true, source: "disk".to_owned() },
    ))
}

/// Handles one `cancel` op. A queued job loses this subscriber (and
/// leaves the queue when nobody is left waiting); a running job gets its
/// cancel flag set, which stops the engine at the next poll — note that
/// cancelling a running job cancels it for every coalesced subscriber.
///
/// Cancelling a sweep flips its flag: shards not yet started retire as
/// no-ops, any currently running shard completes (the ensure loop has no
/// mid-cell poll), and the finalizer then delivers one `cancelled` event
/// per subscriber — a sweep cancel always cancels every coalesced
/// subscriber.
fn cancel(state: &Arc<State>, out: &Arc<ConnOut>, job_id: u64) {
    let mut sched = state.sched.lock().unwrap();
    let Some(entry) = sched.jobs.get(&job_id).cloned() else {
        drop(sched);
        out.send(&format!(
            "{{\"event\":\"error\",\"error\":{}}}",
            js(&format!("no such job {job_id}"))
        ));
        return;
    };
    let exec = match entry {
        Inflight::Sweep(run) => {
            run.cancel.store(true, Ordering::Relaxed);
            drop(sched);
            // The `cancelled` event arrives from the sweep finalizer
            // once every shard slot has retired.
            return;
        }
        Inflight::Run(exec) => exec,
    };
    if exec.started.load(Ordering::Relaxed) {
        exec.cancel.store(true, Ordering::Relaxed);
        drop(sched);
        return;
    }
    let mut subs = exec.subs.lock().unwrap();
    subs.retain(|s| s.job_id != job_id);
    let empty = subs.is_empty();
    drop(subs);
    sched.jobs.remove(&job_id);
    sched.stats.cancelled += 1;
    if empty {
        sched.unqueue(&exec);
        sched.inflight.remove(&exec.job.job_key);
    }
    drop(sched);
    out.send(&format!("{{\"event\":\"cancelled\",\"job\":{job_id}}}"));
}

/// One worker thread: pull work round-robin, simulate, deliver.
fn worker_loop(state: &Arc<State>) {
    loop {
        let work = {
            let mut sched = state.sched.lock().unwrap();
            loop {
                if let Some(work) = sched.pop_next() {
                    sched.running += 1;
                    match &work {
                        Work::Run(_) => sched.stats.simulated += 1,
                        Work::Shard(..) => sched.stats.shards += 1,
                    }
                    break Some(work);
                }
                if state.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                sched = state.cv.wait(sched).unwrap();
            }
        };
        match work {
            None => return,
            Some(Work::Run(exec)) => run_job(state, &exec),
            Some(Work::Shard(run, index)) => run_sweep_shard(state, &run, index),
        }
    }
}

fn run_job(state: &Arc<State>, exec: &Arc<JobExec>) {
    exec.started.store(true, Ordering::Relaxed);
    for sub in exec.subs.lock().unwrap().iter() {
        sub.conn.send(&format!("{{\"event\":\"started\",\"job\":{}}}", sub.job_id));
    }

    let progress: Option<Box<dyn FnMut(memnet_core::RunProgress) + Send>> =
        if state.progress_every > 0 {
            let exec = Arc::clone(exec);
            Some(Box::new(move |p: memnet_core::RunProgress| {
                for sub in exec.subs.lock().unwrap().iter() {
                    sub.conn.send(&format!(
                        "{{\"event\":\"progress\",\"job\":{},\"events\":{},\"sim_ps\":{}}}",
                        sub.job_id,
                        p.events,
                        p.now.as_ps()
                    ));
                }
            }))
        } else {
            None
        };
    let (report, stop) =
        job::execute(&exec.job, Some(Arc::clone(&exec.cancel)), state.progress_every, progress);

    // Persist a full, untruncated result for future submissions. The
    // cache lock is taken alone (never while holding the scheduler).
    if stop == StopReason::Completed && exec.job.cache_eligible {
        if let Some(cache) = &state.cache {
            if let Err(e) =
                cache.lock().unwrap().store([(exec.job.fingerprint.clone(), report.clone())])
            {
                // An unusable cache (read-only directory, full disk) only
                // costs the next process its warm start — the report is
                // already in hand and must still be delivered.
                memnet_simcore::memnet_warn!("[serve] failed to persist result: {e}");
            }
        }
    }

    // Retire the job, then deliver per-subscriber results.
    let subs = {
        let mut sched = state.sched.lock().unwrap();
        sched.running -= 1;
        if let Some(Inflight::Run(current)) = sched.inflight.get(&exec.job.job_key) {
            if Arc::ptr_eq(current, exec) {
                sched.inflight.remove(&exec.job.job_key);
            }
        }
        let subs = std::mem::take(&mut *exec.subs.lock().unwrap());
        for sub in &subs {
            sched.jobs.remove(&sub.job_id);
        }
        match stop {
            StopReason::Cancelled => sched.stats.cancelled += subs.len() as u64,
            _ => sched.stats.completed += subs.len() as u64,
        }
        subs
    };
    for sub in subs {
        let cache = if sub.coalesced {
            CacheNote { hit: true, source: "coalesced".to_owned() }
        } else {
            CacheNote::simulated()
        };
        let payload =
            job::finish(&exec.job.fingerprint, &sub.assertions, report.clone(), stop, cache);
        let kind = match stop {
            StopReason::Cancelled => "cancelled",
            _ if payload.exit_code == job::EXIT_PASS => "done",
            _ => "failed",
        };
        sub.conn.send(&event_result(kind, sub.job_id, &payload));
    }
}

/// Executes one shard of a sweep: run it (unless the sweep was
/// cancelled), record its result text, emit a `progress` event, and — if
/// this was the last outstanding shard — merge and deliver.
fn run_sweep_shard(state: &Arc<State>, run: &Arc<SweepRun>, index: u32) {
    if !run.started.swap(true, Ordering::Relaxed) {
        for sub in run.subs.lock().unwrap().iter() {
            sub.conn.send(&format!("{{\"event\":\"started\",\"job\":{}}}", sub.job_id));
        }
    }
    // A cancelled sweep's remaining shards drain as no-ops; there is no
    // mid-shard poll (the matrix ensure loop runs cells to completion).
    let result = if run.cancel.load(Ordering::Relaxed) {
        None
    } else {
        let mut matrix = Matrix::new();
        let piece = Shard { index, of: run.spec.shards };
        match shard::run_shard(&run.plan, piece, &run.settings, &mut matrix) {
            Ok(pair) => Some(pair),
            // Registry plans are always simulable, so this only fires on
            // a registry bug; degrade to a cancelled sweep rather than
            // killing the worker.
            Err(e) => {
                memnet_simcore::memnet_warn!("[serve] sweep shard {piece} failed: {e}");
                run.cancel.store(true, Ordering::Relaxed);
                None
            }
        }
    };

    let (done, last) = {
        let mut slots = run.slots.lock().unwrap();
        if let Some((text, stats)) = result {
            slots.texts[index as usize] = Some(text);
            sweep::add_stats(&mut slots.stats, stats);
        }
        slots.done += 1;
        (slots.done, slots.done == run.spec.shards)
    };
    for sub in run.subs.lock().unwrap().iter() {
        sub.conn.send(&format!(
            "{{\"event\":\"progress\",\"job\":{},\"shards_done\":{done},\"shards\":{}}}",
            sub.job_id, run.spec.shards,
        ));
    }
    if last {
        finish_sweep(state, run);
    } else {
        state.sched.lock().unwrap().running -= 1;
    }
}

/// Merges a sweep whose last shard just retired, writes the `out` file
/// when the spec names one, retires the sweep from the scheduler and
/// delivers one result event per subscriber.
fn finish_sweep(state: &Arc<State>, run: &Arc<SweepRun>) {
    let cancelled = run.cancel.load(Ordering::Relaxed);
    // The merge (and the out-file write) happens outside the scheduler
    // lock — only this worker can reach a given sweep's finalizer.
    let outcome: Result<sweep::SweepPayload, String> = if cancelled {
        let stats = run.slots.lock().unwrap().stats;
        Ok(sweep::sweep_payload(&run.spec, &run.plan, stats, true))
    } else {
        let (named, stats) = {
            let mut slots = run.slots.lock().unwrap();
            let texts = std::mem::take(&mut slots.texts);
            let named: Vec<(String, String)> = texts
                .into_iter()
                .enumerate()
                .map(|(i, text)| {
                    let name = format!("shard {i}/{}", run.spec.shards);
                    (name, text.expect("uncancelled sweeps run every shard"))
                })
                .collect();
            (named, slots.stats)
        };
        sweep::merge_texts(&named)
            .map_err(|e| format!("internal merge error: {e}"))
            .and_then(|merged| match &run.spec.out {
                None => Ok(merged),
                Some(path) => std::fs::write(path, &merged.text)
                    .map(|()| merged)
                    .map_err(|e| format!("writing sweep output {path}: {e}")),
            })
            .map(|_| sweep::sweep_payload(&run.spec, &run.plan, stats, false))
    };

    let subs = {
        let mut sched = state.sched.lock().unwrap();
        sched.running -= 1;
        if let Some(Inflight::Sweep(current)) = sched.inflight.get(&run.job_key) {
            if Arc::ptr_eq(current, run) {
                sched.inflight.remove(&run.job_key);
            }
        }
        let subs = std::mem::take(&mut *run.subs.lock().unwrap());
        for sub in &subs {
            sched.jobs.remove(&sub.job_id);
        }
        if cancelled {
            sched.stats.cancelled += subs.len() as u64;
        } else {
            sched.stats.completed += subs.len() as u64;
        }
        subs
    };
    for sub in subs {
        let line = match &outcome {
            Ok(payload) if cancelled => format!(
                "{{\"event\":\"cancelled\",\"job\":{},\"result\":{}}}",
                sub.job_id,
                json::to_string(payload)
            ),
            Ok(payload) => format!(
                "{{\"event\":\"done\",\"job\":{},\"result\":{}}}",
                sub.job_id,
                json::to_string(payload)
            ),
            Err(msg) => {
                format!("{{\"event\":\"failed\",\"job\":{},\"error\":{}}}", sub.job_id, js(msg))
            }
        };
        sub.conn.send(&line);
    }
}
