//! The schema-versioned **memnet-manifest** run description (v1 and v2).
//!
//! A manifest is one JSON document naming a full run spec, optional
//! execution limits, and assertions evaluated against the finished
//! report:
//!
//! ```json
//! {
//!   "schema": "memnet-manifest",
//!   "v": 1,
//!   "run": {
//!     "workload": "mixD", "topology": "ternary", "scale": "small",
//!     "policy": "aware", "mechanism": "vwl+roo", "alpha_pct": 5.0,
//!     "eval_us": 1000, "seed": 7, "faults": "ber=1e-6",
//!     "energy_backend": "idd", "calibration": "calib.json",
//!     "audit": "off"
//!   },
//!   "limits": { "wall_time_ms": 60000, "max_events": 10000000,
//!               "max_sim_time_us": 500 },
//!   "assertions": { "expected_exit": "completed",
//!                   "max_total_energy_j": 0.5,
//!                   "max_avg_latency_us": 2.0 }
//! }
//! ```
//!
//! Every `run` field is optional and defaults to the CLI default; the
//! whole `limits` and `assertions` sections may be omitted. Unknown keys
//! are rejected at every level — a typo'd assertion must not silently
//! pass. Errors carry the offending JSON field path and (best-effort)
//! line number, following the line-numbered-error idiom of the
//! calibration CSV parser.
//!
//! Manifests never read environment variables: the energy backend, audit
//! level and fault scenario are exactly what the document says (defaults:
//! `analytical`, `off`, fault-free). This is what makes a manifest's
//! fingerprint — and therefore the shared result cache — trustworthy.
//!
//! **v2** adds an optional `sweep` section that describes a whole figure
//! sweep instead of a single run. The daemon farms the sweep out as one
//! job per shard and merges the shard results (see the serve crate's
//! `sweep` module); a sweep manifest carries no `run`, `limits` or
//! `assertions` sections:
//!
//! ```json
//! {
//!   "schema": "memnet-manifest",
//!   "v": 2,
//!   "sweep": { "figures": ["fig05", "fig09"], "shards": 4,
//!              "eval_us": 1000, "seed": 12648430, "obs": false,
//!              "out": "merged.jsonl" }
//! }
//! ```
//!
//! v1 documents remain accepted unchanged.

use std::fmt;
use std::sync::Arc;

use memnet_bench::figures::SWEEP_FIGURES;
use memnet_bench::shard::MAX_SHARDS;
use memnet_bench::{Key, Settings};
use memnet_core::{ConfigError, NetworkScale, PolicyKind, SimConfig};
use memnet_faults::FaultConfig;
use memnet_net::TopologyKind;
use memnet_policy::Mechanism;
use memnet_power::{EnergyBackendKind, IddModel};
use memnet_simcore::{AuditLevel, SimDuration};
use memnet_workload::RequestTrace;
use serde::json::{self, Value};

/// Manifest schema name (the `schema` field).
pub const MANIFEST_SCHEMA: &str = "memnet-manifest";
/// Newest manifest schema version this build speaks (the `v` field).
/// Every version from 1 up to this one is accepted; the `sweep` section
/// requires v2.
pub const MANIFEST_VERSION: u64 = 2;

/// A manifest validation error: the offending JSON field path, the line
/// it sits on (best-effort; absent when the document never names the
/// field), and what is wrong with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestError {
    /// Dotted field path, e.g. `run.workload`.
    pub path: String,
    /// 1-based line of the field in the manifest text, when locatable.
    pub line: Option<usize>,
    /// What is wrong.
    pub msg: String,
}

impl ManifestError {
    pub(crate) fn new(
        path: impl Into<String>,
        line: Option<usize>,
        msg: impl Into<String>,
    ) -> ManifestError {
        ManifestError { path: path.into(), line, msg: msg.into() }
    }
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "{} (line {n}): {}", self.path, self.msg),
            None => write!(f, "{}: {}", self.path, self.msg),
        }
    }
}

impl std::error::Error for ManifestError {}

/// Best-effort line lookup: the first line whose text contains the quoted
/// key. Manifest keys are flat and distinct enough that this matches the
/// field the user wrote.
fn line_of(text: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    text.lines().position(|l| l.contains(&needle)).map(|idx| idx + 1)
}

/// Maps a JSON parse error (which carries a byte offset) to a line.
fn line_of_byte_error(text: &str, msg: &str) -> Option<usize> {
    let offset: usize = msg.rsplit("byte ").next()?.trim_end_matches('"').parse().ok()?;
    Some(
        text.as_bytes()
            .get(..offset)
            .map_or(1, |prefix| 1 + prefix.iter().filter(|&&b| b == b'\n').count()),
    )
}

/// The `run` section: a complete simulation spec, CLI defaults applied.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Workload name (catalog or `adv.*` stress). A replay manifest takes
    /// the recorded trace's workload instead.
    pub workload: String,
    /// Network shape.
    pub topology: TopologyKind,
    /// Small or big study.
    pub scale: NetworkScale,
    /// Management policy.
    pub policy: PolicyKind,
    /// Circuit-level mechanism.
    pub mechanism: Mechanism,
    /// Allowable slowdown α in percent.
    pub alpha_pct: f64,
    /// Evaluation period in microseconds.
    pub eval_us: u64,
    /// Seed; `None` means the CLI default (or a replay trace's own seed).
    pub seed: Option<u64>,
    /// Fault scenario (canonical spec retained in [`FaultConfig::spec`]).
    pub faults: FaultConfig,
    /// Server-side path to a recorded request trace to replay.
    pub replay: Option<String>,
    /// Energy pricing backend. Explicit in the manifest — never the
    /// `MEMNET_ENERGY_BACKEND` environment variable, which would poison
    /// the shared cache fingerprint.
    pub energy_backend: EnergyBackendKind,
    /// Server-side path to a calibration JSON ([`IddModel`]); requires
    /// the `idd` backend.
    pub calibration: Option<String>,
    /// Audit level. Explicit in the manifest (default off), so a
    /// manifest run is byte-identical across ambient `MEMNET_AUDIT`.
    pub audit: AuditLevel,
}

impl Default for RunSpec {
    fn default() -> RunSpec {
        RunSpec {
            workload: "mixB".to_owned(),
            topology: TopologyKind::TernaryTree,
            scale: NetworkScale::Small,
            policy: PolicyKind::FullPower,
            mechanism: Mechanism::FullPower,
            alpha_pct: 5.0,
            eval_us: 1_000,
            seed: None,
            faults: FaultConfig::none(),
            replay: None,
            energy_backend: EnergyBackendKind::Analytical,
            calibration: None,
            audit: AuditLevel::Off,
        }
    }
}

/// The `limits` section: everything that may stop the run early.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Wall-clock budget in milliseconds.
    pub wall_time_ms: Option<u64>,
    /// Event budget.
    pub max_events: Option<u64>,
    /// Simulated-time cap in microseconds.
    pub max_sim_time_us: Option<u64>,
}

/// The `assertions` section, evaluated against the finished report.
#[derive(Debug, Clone, PartialEq)]
pub struct Assertions {
    /// How the run must have ended: `completed` or `limit_exceeded`.
    pub expected_exit: String,
    /// Upper bound on total energy (joules).
    pub max_total_energy_j: Option<f64>,
    /// Upper bound on mean read latency (microseconds).
    pub max_avg_latency_us: Option<f64>,
    /// Lower bound on completed reads.
    pub min_completed_reads: Option<u64>,
    /// Upper bound on α-violation epochs.
    pub max_violations: Option<u64>,
}

impl Default for Assertions {
    fn default() -> Assertions {
        Assertions {
            expected_exit: "completed".to_owned(),
            max_total_energy_j: None,
            max_avg_latency_us: None,
            min_completed_reads: None,
            max_violations: None,
        }
    }
}

/// The `sweep` section (v2): a whole figure sweep, farmed out as
/// `shards` deterministic slices and merged byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Figure names to enumerate, in registry order. Defaults to every
    /// matrix-backed figure ([`memnet_bench::figures::SWEEP_FIGURES`]).
    pub figures: Vec<String>,
    /// How many shards to split the cell set into (1..=[`MAX_SHARDS`]).
    pub shards: u32,
    /// Evaluation period per cell, microseconds.
    pub eval_us: u64,
    /// Base RNG seed for every cell.
    pub seed: u64,
    /// Attach the observability section to every report (a fingerprint
    /// dimension — observed and unobserved sweeps cache separately).
    pub obs: bool,
    /// Server-side path the merged result JSONL is written to, if any.
    pub out: Option<String>,
}

impl Default for SweepSpec {
    fn default() -> SweepSpec {
        SweepSpec {
            figures: SWEEP_FIGURES.iter().map(|&f| f.to_owned()).collect(),
            shards: 1,
            eval_us: 1_000,
            seed: 0xC0FFEE,
            obs: false,
            out: None,
        }
    }
}

impl SweepSpec {
    /// The bench [`Settings`] every shard of this sweep runs under. The
    /// daemon executes shards single-threaded like any other job; thread
    /// count never affects results.
    pub fn settings(&self) -> Settings {
        Settings {
            eval_period: SimDuration::from_us(self.eval_us),
            threads: 1,
            seed: self.seed,
            obs: self.obs,
            ..Settings::default()
        }
    }
}

/// One parsed, schema-checked manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// The run spec.
    pub run: RunSpec,
    /// Execution limits.
    pub limits: Limits,
    /// Result assertions.
    pub assertions: Assertions,
    /// The sweep spec (v2); present iff this is a sweep manifest, in
    /// which case `run`, `limits` and `assertions` hold their defaults
    /// and must not appear in the document.
    pub sweep: Option<SweepSpec>,
}

/// Field-typed accessors over a [`Value`], each error carrying the field
/// path and line.
struct Field<'a> {
    text: &'a str,
    path: String,
    key: &'a str,
    value: &'a Value,
}

impl<'a> Field<'a> {
    fn err(&self, msg: impl Into<String>) -> ManifestError {
        ManifestError::new(&self.path, line_of(self.text, self.key), msg)
    }

    fn str(&self) -> Result<&'a str, ManifestError> {
        self.value
            .as_str()
            .map_err(|_| self.err(format!("expected a string, got {:?}", self.value)))
    }

    fn u64(&self) -> Result<u64, ManifestError> {
        match self.value {
            Value::Num(_) => self
                .value
                .num::<u64>()
                .map_err(|_| self.err("expected a non-negative integer".to_owned())),
            _ => Err(self.err(format!("expected a number, got {:?}", self.value))),
        }
    }

    fn f64(&self) -> Result<f64, ManifestError> {
        self.value
            .num::<f64>()
            .map_err(|_| self.err(format!("expected a number, got {:?}", self.value)))
    }

    fn bool(&self) -> Result<bool, ManifestError> {
        match self.value {
            Value::Bool(b) => Ok(*b),
            _ => Err(self.err(format!("expected true or false, got {:?}", self.value))),
        }
    }
}

/// Walks an object section, dispatching each key through `apply` and
/// rejecting unknown keys (naming the valid ones).
fn walk_section(
    text: &str,
    section: &str,
    value: &Value,
    known: &[&str],
    mut apply: impl FnMut(&str, Field<'_>) -> Result<(), ManifestError>,
) -> Result<(), ManifestError> {
    let Value::Obj(pairs) = value else {
        return Err(ManifestError::new(
            section,
            line_of(text, section),
            format!("expected an object, got {value:?}"),
        ));
    };
    for (key, v) in pairs {
        let path = if section.is_empty() { key.clone() } else { format!("{section}.{key}") };
        if !known.contains(&key.as_str()) {
            return Err(ManifestError::new(
                &path,
                line_of(text, key),
                format!("unknown key (valid keys: {})", known.join(", ")),
            ));
        }
        apply(key, Field { text, path, key, value: v })?;
    }
    Ok(())
}

impl Manifest {
    /// Parses and schema-checks one manifest document. Pure text-in — no
    /// file I/O happens here (see [`Manifest::resolve`] for that).
    pub fn parse(text: &str) -> Result<Manifest, ManifestError> {
        let doc = json::parse(text).map_err(|e| {
            ManifestError::new(
                "manifest",
                line_of_byte_error(text, &e.0),
                format!("not valid JSON: {}", e.0),
            )
        })?;
        let mut manifest = Manifest::default();
        let mut saw_schema = false;
        let mut version: Option<u64> = None;
        let mut run_sections: Vec<&str> = Vec::new();
        const TOP: &[&str] = &["schema", "v", "run", "limits", "assertions", "sweep"];
        walk_section(text, "", &doc, TOP, |key, f| {
            match key {
                "schema" => {
                    let s = f.str()?;
                    if s != MANIFEST_SCHEMA {
                        return Err(f.err(format!("expected {MANIFEST_SCHEMA:?}, got {s:?}")));
                    }
                    saw_schema = true;
                }
                "v" => {
                    let v = f.u64()?;
                    if !(1..=MANIFEST_VERSION).contains(&v) {
                        return Err(f.err(format!(
                            "unsupported manifest version {v} (this build speaks v1..=v{MANIFEST_VERSION})"
                        )));
                    }
                    version = Some(v);
                }
                "run" => {
                    run_sections.push("run");
                    manifest.run = parse_run(text, f.value)?;
                }
                "limits" => {
                    run_sections.push("limits");
                    manifest.limits = parse_limits(text, f.value)?;
                }
                "assertions" => {
                    run_sections.push("assertions");
                    manifest.assertions = parse_assertions(text, f.value)?;
                }
                "sweep" => manifest.sweep = Some(parse_sweep(text, f.value)?),
                _ => unreachable!("walk_section rejects unknown keys"),
            }
            Ok(())
        })?;
        if !saw_schema {
            return Err(ManifestError::new(
                "schema",
                None,
                format!("missing; a manifest must declare \"schema\": {MANIFEST_SCHEMA:?}"),
            ));
        }
        let Some(version) = version else {
            return Err(ManifestError::new(
                "v",
                None,
                format!("missing; a manifest must declare \"v\": 1..={MANIFEST_VERSION}"),
            ));
        };
        if manifest.sweep.is_some() {
            if version < 2 {
                return Err(ManifestError::new(
                    "sweep",
                    line_of(text, "sweep"),
                    format!("the sweep section requires \"v\": 2 (this document says {version})"),
                ));
            }
            if let Some(section) = run_sections.first() {
                return Err(ManifestError::new(
                    *section,
                    line_of(text, section),
                    "a sweep manifest describes the whole sweep; it cannot also carry \
                     run/limits/assertions sections (submit a separate run manifest)",
                ));
            }
        }
        if manifest.run.calibration.is_some()
            && manifest.run.energy_backend != EnergyBackendKind::Idd
        {
            return Err(ManifestError::new(
                "run.calibration",
                line_of(text, "calibration"),
                "calibration requires \"energy_backend\": \"idd\" (the analytical model has no \
                 calibratable mode table)",
            ));
        }
        Ok(manifest)
    }

    /// Loads the files the manifest names (replay trace, calibration),
    /// builds the validated [`SimConfig`], and computes the job's cache
    /// identity. Paths resolve relative to the executing process's
    /// working directory (the daemon's, when submitted to a server).
    pub fn resolve(&self) -> Result<ResolvedJob, ManifestError> {
        if self.sweep.is_some() {
            return Err(ManifestError::new(
                "sweep",
                None,
                "a sweep manifest is not a single run; the daemon farms it out per shard \
                 (offline: `memnet run-manifest` executes every shard sequentially)",
            ));
        }
        let run = &self.run;
        let replay: Option<Arc<RequestTrace>> = match &run.replay {
            None => None,
            Some(path) => {
                let err = |msg: String| ManifestError::new("run.replay", None, msg);
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("reading {path}: {e}")))?;
                let trace = RequestTrace::parse_jsonl(&text)
                    .map_err(|e| err(format!("invalid trace {path}: {e}")))?;
                Some(Arc::new(trace))
            }
        };
        let backend: Option<IddModel> = match &run.calibration {
            None => None,
            Some(path) => {
                let err = |msg: String| ManifestError::new("run.calibration", None, msg);
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("reading {path}: {e}")))?;
                let model = json::from_str::<IddModel>(&text)
                    .map_err(|e| err(format!("invalid calibration {path}: {e}")))?;
                Some(model)
            }
        };
        let seed = run.seed.unwrap_or(match &replay {
            Some(trace) => trace.seed,
            None => 0xC0FFEE,
        });
        let mut builder = SimConfig::builder()
            .workload(&run.workload)
            .topology(run.topology)
            .scale(run.scale)
            .policy(run.policy)
            .mechanism(run.mechanism)
            .alpha(run.alpha_pct / 100.0)
            .eval_period(SimDuration::from_us(run.eval_us))
            .seed(seed)
            .faults(run.faults.clone())
            .energy_backend(run.energy_backend)
            .audit(run.audit);
        if let Some(trace) = replay.clone() {
            builder = builder.replay(trace);
        }
        let cfg = builder.build().map_err(|e| {
            let path = match &e {
                ConfigError::UnknownWorkload(_) => "run.workload",
                ConfigError::BadAlpha(_) => "run.alpha_pct",
                ConfigError::BadEvalPeriod => "run.eval_us",
                ConfigError::BadFaults(_) => "run.faults",
            };
            ManifestError::new(path, None, e.to_string())
        })?;

        let mut key = Key {
            workload: cfg.workload.name,
            topology: run.topology,
            scale: run.scale,
            policy: run.policy,
            mechanism: run.mechanism,
            alpha_tenths_pct: (cfg.alpha * 1000.0).round() as u32,
            roo_wakeup_ns: 14,
            mapping: memnet_core::AddressMapping::Contiguous,
            faults: run.faults.spec(),
            source: String::new(),
            calibration: String::new(),
            energy: run.energy_backend,
        };
        if let Some(trace) = &replay {
            key = key.with_replay(&trace.digest_hex());
        }
        if let Some(model) = &backend {
            key = key.with_calibration(&calibration_digest(model));
        }
        // Thread count never affects results and the server runs each
        // engine single-threaded; cache_dir is a store location, not an
        // identity, and the shard tag is pure log attribution.
        let settings = Settings {
            eval_period: SimDuration::from_us(run.eval_us),
            threads: 1,
            seed,
            ..Settings::default()
        };
        let fingerprint = key.fingerprint(&settings);

        // A run truncated by an event budget or a sub-eval sim-time cap is
        // NOT the full run: it must neither hit nor populate the shared
        // cache under the full run's fingerprint. Wall-clock limits don't
        // matter here — serving a finished report trivially meets them.
        let truncating_sim_cap = self.limits.max_sim_time_us.filter(|&us| us < run.eval_us);
        let cache_eligible = self.limits.max_events.is_none() && truncating_sim_cap.is_none();
        let mut job_key = fingerprint.clone();
        if let Some(n) = self.limits.max_events {
            job_key.push_str(&format!("|lim_events={n}"));
        }
        if let Some(us) = truncating_sim_cap {
            job_key.push_str(&format!("|lim_sim_us={us}"));
        }

        Ok(ResolvedJob {
            manifest: self.clone(),
            cfg,
            backend,
            fingerprint,
            job_key,
            cache_eligible,
        })
    }
}

/// FNV-1a 64 digest of a calibrated model's serialized form, hex-encoded
/// (the calibration provenance in cache fingerprints).
pub fn calibration_digest(model: &IddModel) -> String {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let bytes = json::to_string(model);
    let h = bytes
        .as_bytes()
        .iter()
        .fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME));
    format!("{h:016x}")
}

fn parse_run(text: &str, value: &Value) -> Result<RunSpec, ManifestError> {
    let mut run = RunSpec::default();
    const KNOWN: &[&str] = &[
        "workload",
        "topology",
        "scale",
        "policy",
        "mechanism",
        "alpha_pct",
        "eval_us",
        "seed",
        "channels",
        "faults",
        "replay",
        "energy_backend",
        "calibration",
        "audit",
    ];
    walk_section(text, "run", value, KNOWN, |key, f| {
        match key {
            "workload" => run.workload = f.str()?.to_owned(),
            "topology" => {
                let v = f.str()?;
                run.topology = TopologyKind::parse(v).ok_or_else(|| {
                    f.err(format!("unknown topology {v:?} (daisychain|ternary|star|ddrx)"))
                })?;
            }
            "scale" => {
                let v = f.str()?;
                run.scale = NetworkScale::parse(v)
                    .ok_or_else(|| f.err(format!("unknown scale {v:?} (small|big)")))?;
            }
            "policy" => {
                let v = f.str()?;
                run.policy = PolicyKind::parse(v).ok_or_else(|| {
                    f.err(format!("unknown policy {v:?} (fp|unaware|aware|static)"))
                })?;
            }
            "mechanism" => {
                let v = f.str()?;
                run.mechanism = Mechanism::parse(v).ok_or_else(|| {
                    f.err(format!("unknown mechanism {v:?} (fp|vwl|roo|vwl+roo|dvfs|dvfs+roo)"))
                })?;
            }
            "alpha_pct" => run.alpha_pct = f.f64()?,
            "eval_us" => run.eval_us = f.u64()?,
            "seed" => run.seed = Some(f.u64()?),
            "channels" => {
                // Mirrors `memnet replay`'s multichannel refusal: manifest
                // runs share the replay/record identity machinery, which
                // is single-channel (channels reseed per channel).
                if f.u64()? != 1 {
                    return Err(f.err(
                        "manifest runs are single-channel (channels reseed per channel; \
                         submit one manifest per channel instead)",
                    ));
                }
            }
            "faults" => {
                let v = f.str()?;
                run.faults =
                    FaultConfig::parse(v).map_err(|e| f.err(format!("bad fault scenario: {e}")))?;
            }
            "replay" => run.replay = Some(f.str()?.to_owned()),
            "energy_backend" => {
                let v = f.str()?;
                run.energy_backend = EnergyBackendKind::parse(v).ok_or_else(|| {
                    f.err(format!("unknown energy backend {v:?} (analytical|idd)"))
                })?;
            }
            "calibration" => run.calibration = Some(f.str()?.to_owned()),
            "audit" => {
                let v = f.str()?;
                run.audit = AuditLevel::parse(v)
                    .ok_or_else(|| f.err(format!("unknown audit level {v:?} (off|cheap|full)")))?;
            }
            _ => unreachable!("walk_section rejects unknown keys"),
        }
        Ok(())
    })?;
    Ok(run)
}

fn parse_limits(text: &str, value: &Value) -> Result<Limits, ManifestError> {
    let mut limits = Limits::default();
    const KNOWN: &[&str] = &["wall_time_ms", "max_events", "max_sim_time_us"];
    walk_section(text, "limits", value, KNOWN, |key, f| {
        let n = f.u64()?;
        if n == 0 {
            return Err(f.err("must be positive (omit the key for no limit)"));
        }
        match key {
            "wall_time_ms" => limits.wall_time_ms = Some(n),
            "max_events" => limits.max_events = Some(n),
            "max_sim_time_us" => limits.max_sim_time_us = Some(n),
            _ => unreachable!("walk_section rejects unknown keys"),
        }
        Ok(())
    })?;
    Ok(limits)
}

fn parse_assertions(text: &str, value: &Value) -> Result<Assertions, ManifestError> {
    let mut assertions = Assertions::default();
    const KNOWN: &[&str] = &[
        "expected_exit",
        "max_total_energy_j",
        "max_avg_latency_us",
        "min_completed_reads",
        "max_violations",
    ];
    walk_section(text, "assertions", value, KNOWN, |key, f| {
        match key {
            "expected_exit" => {
                let v = f.str()?;
                if v != "completed" && v != "limit_exceeded" {
                    return Err(
                        f.err(format!("unknown exit kind {v:?} (completed|limit_exceeded)"))
                    );
                }
                assertions.expected_exit = v.to_owned();
            }
            "max_total_energy_j" => assertions.max_total_energy_j = Some(f.f64()?),
            "max_avg_latency_us" => assertions.max_avg_latency_us = Some(f.f64()?),
            "min_completed_reads" => assertions.min_completed_reads = Some(f.u64()?),
            "max_violations" => assertions.max_violations = Some(f.u64()?),
            _ => unreachable!("walk_section rejects unknown keys"),
        }
        Ok(())
    })?;
    Ok(assertions)
}

fn parse_sweep(text: &str, value: &Value) -> Result<SweepSpec, ManifestError> {
    let mut sweep = SweepSpec::default();
    const KNOWN: &[&str] = &["figures", "shards", "eval_us", "seed", "obs", "out"];
    walk_section(text, "sweep", value, KNOWN, |key, f| {
        match key {
            "figures" => {
                let arr = f
                    .value
                    .as_array()
                    .map_err(|_| f.err(format!("expected an array, got {:?}", f.value)))?;
                if arr.is_empty() {
                    return Err(f.err("must name at least one figure (omit the key for all)"));
                }
                let mut figures = Vec::with_capacity(arr.len());
                for v in arr {
                    let name = v.as_str().map_err(|_| {
                        f.err(format!("expected an array of figure names, got {v:?}"))
                    })?;
                    if !SWEEP_FIGURES.contains(&name) {
                        return Err(f.err(format!(
                            "unknown figure {name:?} (valid figures: {})",
                            SWEEP_FIGURES.join(", ")
                        )));
                    }
                    figures.push(name.to_owned());
                }
                sweep.figures = figures;
            }
            "shards" => {
                let n = f.u64()?;
                if n == 0 || n > u64::from(MAX_SHARDS) {
                    return Err(f.err(format!("must be in 1..={MAX_SHARDS}")));
                }
                sweep.shards = n as u32;
            }
            "eval_us" => {
                let n = f.u64()?;
                if n == 0 {
                    return Err(f.err("must be positive"));
                }
                sweep.eval_us = n;
            }
            "seed" => sweep.seed = f.u64()?,
            "obs" => sweep.obs = f.bool()?,
            "out" => sweep.out = Some(f.str()?.to_owned()),
            _ => unreachable!("walk_section rejects unknown keys"),
        }
        Ok(())
    })?;
    Ok(sweep)
}

/// A manifest resolved into something executable: the validated config,
/// the injected backend (when calibrated), and the job's cache identity.
#[derive(Debug, Clone)]
pub struct ResolvedJob {
    /// The manifest this job came from (limits and assertions live here).
    pub manifest: Manifest,
    /// The validated simulation configuration.
    pub cfg: SimConfig,
    /// Calibrated model replacing the stock backend, if any.
    pub backend: Option<IddModel>,
    /// Persistent-cache identity of the *full* run (the bench crate's
    /// schema-versioned fingerprint). Equal fingerprints guarantee
    /// byte-identical reports.
    pub fingerprint: String,
    /// In-flight dedup identity: the fingerprint plus any
    /// result-truncating limits. Two manifests with equal `job_key`
    /// produce byte-identical reports, so one simulation serves both.
    pub job_key: String,
    /// Whether the finished report may hit / populate the shared cache
    /// under `fingerprint` (false when a limit truncates the result).
    pub cache_eligible: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(s: &str) -> Result<Manifest, ManifestError> {
        Manifest::parse(s)
    }

    const MINIMAL: &str = "{\"schema\":\"memnet-manifest\",\"v\":1}";

    #[test]
    fn minimal_manifest_gets_cli_defaults() {
        let m = manifest(MINIMAL).expect("minimal manifest parses");
        assert_eq!(m.run.workload, "mixB");
        assert_eq!(m.run.eval_us, 1_000);
        assert_eq!(m.run.energy_backend, EnergyBackendKind::Analytical);
        assert_eq!(m.run.audit, AuditLevel::Off);
        assert!(m.run.faults.is_none());
        assert_eq!(m.limits, Limits::default());
        assert_eq!(m.assertions.expected_exit, "completed");
    }

    #[test]
    fn schema_and_version_are_mandatory_and_checked() {
        assert!(manifest("{}").unwrap_err().path == "schema");
        assert!(manifest("{\"schema\":\"memnet-manifest\"}").unwrap_err().path == "v");
        let err = manifest("{\"schema\":\"bogus\",\"v\":1}").unwrap_err();
        assert_eq!(err.path, "schema");
        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":3}").unwrap_err();
        assert_eq!(err.path, "v");
        assert!(err.msg.contains("unsupported"));
        // Both spoken versions parse.
        manifest("{\"schema\":\"memnet-manifest\",\"v\":1}").unwrap();
        manifest("{\"schema\":\"memnet-manifest\",\"v\":2}").unwrap();
    }

    #[test]
    fn errors_carry_field_path_and_line() {
        let text = "{\n  \"schema\": \"memnet-manifest\",\n  \"v\": 1,\n  \"run\": {\n    \
                    \"workload\": \"mixD\",\n    \"topology\": \"moebius\"\n  }\n}";
        let err = manifest(text).unwrap_err();
        assert_eq!(err.path, "run.topology");
        assert_eq!(err.line, Some(6));
        assert!(err.msg.contains("moebius"));
        assert!(err.to_string().contains("run.topology (line 6)"), "{err}");
    }

    #[test]
    fn unknown_keys_are_rejected_with_valid_alternatives() {
        let text = "{\"schema\":\"memnet-manifest\",\"v\":1,\n\"assertions\":{\"max_latency\":1}}";
        let err = manifest(text).unwrap_err();
        assert_eq!(err.path, "assertions.max_latency");
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("max_avg_latency_us"), "suggests valid keys: {}", err.msg);

        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":1,\"runs\":{}}").unwrap_err();
        assert_eq!(err.path, "runs");
    }

    #[test]
    fn invalid_json_reports_a_line() {
        let err = manifest("{\n  \"schema\": \"memnet-manifest\",\n  \"v\": 1,\n").unwrap_err();
        assert_eq!(err.path, "manifest");
        assert!(err.msg.contains("not valid JSON"));
        assert_eq!(err.line, Some(4));
    }

    #[test]
    fn multichannel_is_refused_like_replay() {
        let text = "{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"channels\":2}}";
        let err = manifest(text).unwrap_err();
        assert_eq!(err.path, "run.channels");
        assert!(err.msg.contains("single-channel"), "{}", err.msg);
        // channels: 1 is accepted (it is the only valid value).
        manifest("{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"channels\":1}}").unwrap();
    }

    #[test]
    fn calibration_requires_the_idd_backend() {
        let text = "{\"schema\":\"memnet-manifest\",\"v\":1,\
                    \"run\":{\"calibration\":\"c.json\"}}";
        let err = manifest(text).unwrap_err();
        assert_eq!(err.path, "run.calibration");
        assert!(err.msg.contains("idd"));
        manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{\"energy_backend\":\"idd\",\"calibration\":\"c.json\"}}",
        )
        .unwrap();
    }

    #[test]
    fn zero_limits_are_rejected() {
        let err =
            manifest("{\"schema\":\"memnet-manifest\",\"v\":1,\"limits\":{\"max_events\":0}}")
                .unwrap_err();
        assert_eq!(err.path, "limits.max_events");
        assert!(err.msg.contains("positive"));
    }

    #[test]
    fn unknown_workload_resolves_to_a_pathed_error() {
        let m =
            manifest("{\"schema\":\"memnet-manifest\",\"v\":1,\"run\":{\"workload\":\"nope\"}}")
                .unwrap();
        let err = m.resolve().unwrap_err();
        assert_eq!(err.path, "run.workload");
        assert!(err.msg.contains("unknown workload \"nope\""));
        assert!(err.msg.contains("mixB"), "lists the catalog: {}", err.msg);
    }

    #[test]
    fn fingerprint_matches_the_bench_cache_discipline() {
        let m = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{\"workload\":\"mixD\",\"eval_us\":50,\"seed\":7}}",
        )
        .unwrap();
        let job = m.resolve().unwrap();
        assert!(job.fingerprint.starts_with("v10|"), "{}", job.fingerprint);
        assert!(job.fingerprint.contains("wl=mixD"));
        assert!(job.fingerprint.contains("seed=7"));
        assert!(job.cache_eligible);
        assert_eq!(job.fingerprint, job.job_key, "no limits: job key is the fingerprint");
    }

    #[test]
    fn truncating_limits_split_the_job_key_from_the_fingerprint() {
        let m = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{\"workload\":\"mixD\",\"eval_us\":1000},\
             \"limits\":{\"max_sim_time_us\":50,\"wall_time_ms\":60000}}",
        )
        .unwrap();
        let job = m.resolve().unwrap();
        assert!(!job.cache_eligible, "a truncated result must not poison the cache");
        assert!(job.job_key.ends_with("|lim_sim_us=50"), "{}", job.job_key);
        assert_ne!(job.job_key, job.fingerprint);

        // A sim cap at/above the eval period is no truncation, and a pure
        // wall-clock limit never blocks caching.
        let m = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":1,\
             \"run\":{\"workload\":\"mixD\",\"eval_us\":1000},\
             \"limits\":{\"max_sim_time_us\":1000,\"wall_time_ms\":60000}}",
        )
        .unwrap();
        let job = m.resolve().unwrap();
        assert!(job.cache_eligible);
        assert_eq!(job.job_key, job.fingerprint);
    }

    #[test]
    fn sweep_section_parses_with_defaults() {
        let m = manifest("{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{}}").unwrap();
        let sweep = m.sweep.expect("sweep present");
        assert_eq!(sweep, SweepSpec::default());
        assert_eq!(sweep.figures.len(), SWEEP_FIGURES.len(), "defaults to every figure");
        assert_eq!(sweep.shards, 1);
        assert_eq!(sweep.eval_us, 1_000);
        assert_eq!(sweep.seed, 0xC0FFEE);
        assert!(!sweep.obs);
        assert!(sweep.out.is_none());

        let m = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":2,\
             \"sweep\":{\"figures\":[\"fig05\",\"model_diff\"],\"shards\":4,\
             \"eval_us\":50,\"seed\":7,\"obs\":true,\"out\":\"m.jsonl\"}}",
        )
        .unwrap();
        let sweep = m.sweep.unwrap();
        assert_eq!(sweep.figures, ["fig05", "model_diff"]);
        assert_eq!(sweep.shards, 4);
        assert_eq!(sweep.eval_us, 50);
        assert_eq!(sweep.seed, 7);
        assert!(sweep.obs);
        assert_eq!(sweep.out.as_deref(), Some("m.jsonl"));
    }

    #[test]
    fn sweep_requires_v2() {
        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":1,\n\"sweep\":{}}").unwrap_err();
        assert_eq!(err.path, "sweep");
        assert_eq!(err.line, Some(2));
        assert!(err.msg.contains("\"v\": 2"), "{}", err.msg);
    }

    #[test]
    fn sweep_excludes_run_limits_and_assertions() {
        let err = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{},\
             \"run\":{\"workload\":\"mixD\"}}",
        )
        .unwrap_err();
        assert_eq!(err.path, "run");
        assert!(err.msg.contains("sweep manifest"), "{}", err.msg);
        let err = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":2,\
             \"limits\":{\"max_events\":5},\"sweep\":{}}",
        )
        .unwrap_err();
        assert_eq!(err.path, "limits");
    }

    #[test]
    fn sweep_validates_figures_shards_and_obs() {
        let err = manifest(
            "{\"schema\":\"memnet-manifest\",\"v\":2,\
             \"sweep\":{\"figures\":[\"fig99\"]}}",
        )
        .unwrap_err();
        assert_eq!(err.path, "sweep.figures");
        assert!(err.msg.contains("fig99"));
        assert!(err.msg.contains("fig05"), "lists valid figures: {}", err.msg);

        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{\"shards\":0}}")
            .unwrap_err();
        assert_eq!(err.path, "sweep.shards");
        assert!(err.msg.contains("1..=4096"), "{}", err.msg);
        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{\"shards\":5000}}")
            .unwrap_err();
        assert_eq!(err.path, "sweep.shards");

        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{\"obs\":\"yes\"}}")
            .unwrap_err();
        assert_eq!(err.path, "sweep.obs");
        assert!(err.msg.contains("true or false"), "{}", err.msg);

        let err = manifest("{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{\"figs\":[]}}")
            .unwrap_err();
        assert_eq!(err.path, "sweep.figs");
        assert!(err.msg.contains("figures"), "suggests valid keys: {}", err.msg);
    }

    #[test]
    fn sweep_manifests_do_not_resolve_to_a_single_job() {
        let m = manifest("{\"schema\":\"memnet-manifest\",\"v\":2,\"sweep\":{}}").unwrap();
        let err = m.resolve().unwrap_err();
        assert_eq!(err.path, "sweep");
        assert!(err.msg.contains("not a single run"), "{}", err.msg);
    }

    #[test]
    fn calibration_digest_is_stable_and_content_sensitive() {
        let stock = IddModel::hmc_gen2();
        let mut hot = stock.clone();
        hot.io_on_current *= 1.1;
        assert_eq!(calibration_digest(&stock), calibration_digest(&stock));
        assert_ne!(calibration_digest(&stock), calibration_digest(&hot));
        assert_eq!(calibration_digest(&stock).len(), 16);
    }
}
