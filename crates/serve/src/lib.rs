#![warn(missing_docs)]

//! # memnet-serve — manifest-driven batch simulation server
//!
//! Turns the simulator into a long-running service. A **manifest** is a
//! schema-versioned JSON document describing one complete run — config,
//! workload or replay source, faults, energy backend with optional
//! calibration — plus execution **limits** (wall time, event budget,
//! sim-time cap) and **assertions** evaluated against the finished
//! report. Manifests can be executed three ways, all producing
//! byte-identical reports for the same document:
//!
//! - `memnet run-manifest M` — offline, in-process (see
//!   [`job::run_manifest`])
//! - `memnet submit M` — over TCP to a running daemon
//! - `memnet serve` — the daemon itself ([`server::Server`]): a bounded
//!   worker pool with per-client fair scheduling, dedup of identical
//!   in-flight jobs, a persistent result cache keyed by the bench-cache
//!   fingerprint, JSONL lifecycle events and graceful drain on
//!   SIGTERM/ctrl-c or a `shutdown` request
//!
//! A **v2 sweep manifest** describes a whole figure sweep instead of one
//! run; the daemon farms it out as one queue item per shard and merges
//! the results byte-identically to an unsharded `memnet sweep` (see
//! [`mod@sweep`])
//!
//! The server is std-only by design: `std::net::TcpListener` plus a
//! thread pool, no async runtime, no HTTP — one JSON object per line in
//! each direction.

pub mod job;
pub mod manifest;
pub mod server;
pub mod signal;
pub mod sweep;

pub use job::{
    run_manifest, CacheNote, ResultPayload, Verdict, EXIT_ASSERT_FAILED, EXIT_CANCELLED,
    EXIT_ERROR, EXIT_LIMIT_EXCEEDED, EXIT_PASS, EXIT_REJECTED,
};
pub use manifest::{
    Assertions, Limits, Manifest, ManifestError, ResolvedJob, RunSpec, SweepSpec, MANIFEST_SCHEMA,
    MANIFEST_VERSION,
};
pub use server::{Server, ServerConfig, Stats};
pub use sweep::{run_sweep_manifest, SweepPayload};
