//! In-tree stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of serde that memnet actually uses: a [`Serialize`] /
//! [`Deserialize`] trait pair with derive macros, backed directly by JSON.
//! Unlike real serde there is no pluggable data model — serialization writes
//! JSON text and deserialization reads a parsed [`json::Value`] tree. The
//! derive macros (enabled by the `derive` feature, like real serde) support
//! the shapes memnet defines: named-field structs, newtype/tuple structs,
//! and enums with unit or tuple variants.
//!
//! Numbers round-trip exactly: integers are written in full precision and
//! floats use Rust's shortest-round-trip formatting, so a serialized value
//! deserializes to a bit-identical one (non-finite floats are encoded as the
//! JSON strings `"NaN"`, `"inf"` and `"-inf"`).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod ser {
    //! JSON-writing serializer.

    /// A JSON text writer with comma/nesting bookkeeping.
    #[derive(Debug, Default)]
    pub struct Serializer {
        out: String,
        // Top of stack: whether the current container already has an entry
        // (so the next one needs a comma).
        has_entry: Vec<bool>,
    }

    impl Serializer {
        /// Creates an empty serializer.
        pub fn new() -> Self {
            Serializer::default()
        }

        /// Consumes the serializer, returning the JSON text.
        pub fn into_string(self) -> String {
            self.out
        }

        fn sep(&mut self) {
            if let Some(top) = self.has_entry.last_mut() {
                if *top {
                    self.out.push(',');
                }
                *top = true;
            }
        }

        /// Starts a JSON object.
        pub fn begin_object(&mut self) {
            self.out.push('{');
            self.has_entry.push(false);
        }

        /// Ends a JSON object.
        pub fn end_object(&mut self) {
            self.has_entry.pop();
            self.out.push('}');
        }

        /// Writes an object key (with separating comma as needed).
        pub fn key(&mut self, name: &str) {
            self.sep();
            self.write_quoted(name);
            self.out.push(':');
        }

        /// Starts a JSON array.
        pub fn begin_array(&mut self) {
            self.out.push('[');
            self.has_entry.push(false);
        }

        /// Ends a JSON array.
        pub fn end_array(&mut self) {
            self.has_entry.pop();
            self.out.push(']');
        }

        /// Marks the start of an array element (writes the comma).
        pub fn element(&mut self) {
            self.sep();
        }

        /// Writes a raw (pre-validated) JSON token, e.g. a number.
        pub fn write_raw(&mut self, token: &str) {
            self.out.push_str(token);
        }

        /// Writes a quoted, escaped JSON string.
        pub fn write_quoted(&mut self, s: &str) {
            self.out.push('"');
            for c in s.chars() {
                match c {
                    '"' => self.out.push_str("\\\""),
                    '\\' => self.out.push_str("\\\\"),
                    '\n' => self.out.push_str("\\n"),
                    '\r' => self.out.push_str("\\r"),
                    '\t' => self.out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        self.out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => self.out.push(c),
                }
            }
            self.out.push('"');
        }
    }
}

pub mod de {
    //! Deserialization error type.

    use core::fmt;

    /// Why a JSON value could not be turned into the requested type.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Error {
        /// Creates an error with the given message.
        pub fn msg(m: impl Into<String>) -> Error {
            Error(m.into())
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "deserialization error: {}", self.0)
        }
    }

    impl std::error::Error for Error {}
}

pub mod json {
    //! Parsed JSON values and text parsing.

    use super::de::Error;

    /// A parsed JSON value. Numbers keep their raw text so that integers
    /// larger than 2^53 and floats round-trip exactly.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number, kept as its raw JSON text.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object (insertion order preserved).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Looks up a key in an object.
        pub fn get(&self, key: &str) -> Result<&Value, Error> {
            match self {
                Value::Obj(pairs) => pairs
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| v)
                    .ok_or_else(|| Error::msg(format!("missing key {key:?}"))),
                _ => Err(Error::msg(format!("expected object with key {key:?}"))),
            }
        }

        /// The value as a string slice.
        pub fn as_str(&self) -> Result<&str, Error> {
            match self {
                Value::Str(s) => Ok(s),
                _ => Err(Error::msg(format!("expected string, got {self:?}"))),
            }
        }

        /// The value as an array slice.
        pub fn as_array(&self) -> Result<&[Value], Error> {
            match self {
                Value::Arr(items) => Ok(items),
                _ => Err(Error::msg(format!("expected array, got {self:?}"))),
            }
        }

        /// The value's numeric text parsed as `T`.
        pub fn num<T: core::str::FromStr>(&self) -> Result<T, Error> {
            match self {
                Value::Num(raw) => {
                    raw.parse::<T>().map_err(|_| Error::msg(format!("number {raw:?} out of range")))
                }
                _ => Err(Error::msg(format!("expected number, got {self:?}"))),
            }
        }
    }

    /// A `Value` serializes back to the JSON it parsed from (modulo
    /// whitespace): numbers re-emit their raw text, objects preserve
    /// insertion order. This lets callers round-trip documents they only
    /// partially understand.
    impl crate::Serialize for Value {
        fn serialize(&self, s: &mut crate::ser::Serializer) {
            match self {
                Value::Null => s.write_raw("null"),
                Value::Bool(b) => s.write_raw(if *b { "true" } else { "false" }),
                Value::Num(raw) => s.write_raw(raw),
                Value::Str(v) => s.write_quoted(v),
                Value::Arr(items) => {
                    s.begin_array();
                    for item in items {
                        s.element();
                        item.serialize(s);
                    }
                    s.end_array();
                }
                Value::Obj(pairs) => {
                    s.begin_object();
                    for (k, v) in pairs {
                        s.key(k);
                        v.serialize(s);
                    }
                    s.end_object();
                }
            }
        }
    }

    impl crate::Deserialize for Value {
        fn deserialize(v: &Value) -> Result<Self, Error> {
            Ok(v.clone())
        }
    }

    /// Parses one JSON document.
    pub fn parse(text: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
        }
        Ok(v)
    }

    /// Serializes a value to JSON text.
    pub fn to_string<T: crate::Serialize + ?Sized>(value: &T) -> String {
        let mut s = crate::ser::Serializer::new();
        value.serialize(&mut s);
        s.into_string()
    }

    /// Parses JSON text into a `T`.
    pub fn from_str<T: crate::Deserialize>(text: &str) -> Result<T, Error> {
        T::deserialize(&parse(text)?)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::msg(format!("expected {:?} at byte {}", b as char, self.pos)))
            }
        }

        fn value(&mut self) -> Result<Value, Error> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                other => Err(Error::msg(format!(
                    "unexpected {:?} at byte {}",
                    other.map(|b| b as char),
                    self.pos
                ))),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(Error::msg(format!("bad literal at byte {}", self.pos)))
            }
        }

        fn number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
                self.pos += 1;
            }
            if self.pos == start {
                return Err(Error::msg(format!("bad number at byte {start}")));
            }
            let raw = core::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::msg("invalid utf-8 in number"))?;
            Ok(Value::Num(raw.to_owned()))
        }

        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error::msg("unterminated string")),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| Error::msg("unterminated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{0008}'),
                            b'f' => out.push('\u{000C}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hex = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                                let hex = core::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|_| Error::msg("bad \\u escape"))?;
                                self.pos += 4;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::msg("bad \\u code point"))?,
                                );
                            }
                            other => {
                                return Err(Error::msg(format!("bad escape \\{}", other as char)))
                            }
                        }
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = core::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut pairs = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(pairs));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                pairs.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(pairs));
                    }
                    _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                }
            }
        }

        fn array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                }
            }
        }
    }
}

/// Types that can write themselves as JSON.
pub trait Serialize {
    /// Writes `self` into the serializer.
    fn serialize(&self, s: &mut ser::Serializer);
}

/// Types that can be reconstructed from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Builds `Self` from a JSON value.
    fn deserialize(v: &json::Value) -> Result<Self, de::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut ser::Serializer) {
        (**self).serialize(s);
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut ser::Serializer) {
                s.write_raw(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
                v.num::<$t>()
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut ser::Serializer) {
                if self.is_finite() {
                    // Rust's Display prints the shortest decimal that
                    // round-trips to the same bits.
                    s.write_raw(&self.to_string())
                } else if self.is_nan() {
                    s.write_quoted("NaN")
                } else if *self > 0.0 {
                    s.write_quoted("inf")
                } else {
                    s.write_quoted("-inf")
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
                match v {
                    json::Value::Str(s) if s == "NaN" => Ok(<$t>::NAN),
                    json::Value::Str(s) if s == "inf" => Ok(<$t>::INFINITY),
                    json::Value::Str(s) if s == "-inf" => Ok(<$t>::NEG_INFINITY),
                    _ => v.num::<$t>(),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.write_raw(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            _ => Err(de::Error::msg(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.write_quoted(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.write_quoted(self);
    }
}

impl Deserialize for String {
    fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
        Ok(v.as_str()?.to_owned())
    }
}

/// Deserializing to `&'static str` leaks the string. Cache loads are the
/// only consumer; they deserialize a bounded set of interned-by-design
/// labels (workload/policy/mechanism names), so the leak is bounded too.
impl Deserialize for &'static str {
    fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
        Ok(Box::leak(v.as_str()?.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut ser::Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut ser::Serializer) {
        s.begin_array();
        for item in self {
            s.element();
            item.serialize(s);
        }
        s.end_array();
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
        v.as_array()?.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut ser::Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
        let items = Vec::<T>::deserialize(v)?;
        let len = items.len();
        items.try_into().map_err(|_| de::Error::msg(format!("expected {N} elements, got {len}")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut ser::Serializer) {
        match self {
            None => s.write_raw("null"),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self, s: &mut ser::Serializer) {
                s.begin_array();
                $( s.element(); self.$n.serialize(s); )+
                s.end_array();
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &json::Value) -> Result<Self, de::Error> {
                let items = v.as_array()?;
                let expected = [$($n,)+].len();
                if items.len() != expected {
                    return Err(de::Error::msg(format!(
                        "expected {expected}-tuple, got {} elements", items.len()
                    )));
                }
                Ok(($($t::deserialize(&items[$n])?,)+))
            }
        }
    )+};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Value};
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(json::to_string(&42u64), "42");
        assert_eq!(json::from_str::<u64>("42").unwrap(), 42);
        assert_eq!(json::to_string(&u64::MAX), u64::MAX.to_string());
        assert_eq!(json::from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(json::to_string(&true), "true");
        assert_eq!(json::to_string(&"hi\n\"x\""), "\"hi\\n\\\"x\\\"\"");
        assert_eq!(json::from_str::<String>("\"hi\\n\"").unwrap(), "hi\n");
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.0f64, -0.0, 1.0 / 3.0, 6.02e23, 1e-300, -17.25, f64::MIN_POSITIVE] {
            let text = json::to_string(&x);
            let back: f64 = json::from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} via {text}");
        }
        let nan: f64 = json::from_str(&json::to_string(&f64::NAN)).unwrap();
        assert!(nan.is_nan());
        let inf: f64 = json::from_str(&json::to_string(&f64::INFINITY)).unwrap();
        assert_eq!(inf, f64::INFINITY);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(json::to_string(&v), "[1,2,3]");
        assert_eq!(json::from_str::<Vec<u32>>("[1,2,3]").unwrap(), v);
        let arr: [u64; 3] = json::from_str("[4,5,6]").unwrap();
        assert_eq!(arr, [4, 5, 6]);
        assert!(json::from_str::<[u64; 2]>("[4,5,6]").is_err());
        assert_eq!(json::to_string(&Option::<u32>::None), "null");
        assert_eq!(json::from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(json::from_str::<Option<u32>>("7").unwrap(), Some(7));
        let pair: (u32, String) = json::from_str("[7,\"x\"]").unwrap();
        assert_eq!(pair, (7, "x".to_owned()));
    }

    #[test]
    fn parser_handles_nesting_and_ws() {
        let v = parse(" { \"a\" : [ 1 , { \"b\" : null } ] , \"c\" : \"d\" } ").unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].num::<u32>().unwrap(), 1);
        assert!(matches!(a[1].get("b").unwrap(), Value::Null));
        assert_eq!(v.get("c").unwrap().as_str().unwrap(), "d");
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1] junk").is_err());
    }

    #[test]
    fn value_round_trips_as_canonical_text() {
        let text = "{\"a\":[1,{\"b\":null}],\"c\":\"d\",\"e\":1.5e-3,\"f\":true}";
        let v: Value = json::from_str(text).unwrap();
        assert_eq!(json::to_string(&v), text, "whitespace-free text is a fixed point");
        let spaced: Value = json::from_str(
            " { \"a\" : [ 1 , { \"b\" : null } ] , \
                                            \"c\" : \"d\" , \"e\" : 1.5e-3 , \"f\" : true } ",
        )
        .unwrap();
        assert_eq!(json::to_string(&spaced), text, "re-serialization canonicalizes whitespace");
    }

    #[test]
    fn static_str_leaks_and_matches() {
        let s: &'static str = json::from_str("\"mixD\"").unwrap();
        assert_eq!(s, "mixD");
    }
}
