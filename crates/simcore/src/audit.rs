//! Runtime invariant auditing: cheap self-checks compiled in always, gated
//! at runtime by an [`AuditLevel`].
//!
//! The simulator's conclusions rest entirely on simulated power and latency
//! numbers, so silently-wrong accounting (energy that does not integrate to
//! power × time, packets that vanish between links, AMS budgets spent twice)
//! corrupts every downstream figure. This module provides the machinery the
//! engine and policies use to audit themselves while running:
//!
//! - [`AuditLevel`] selects how much checking to do (`Off`/`Cheap`/`Full`),
//!   settable per run via `SimConfig` or globally via the `MEMNET_AUDIT`
//!   environment variable.
//! - [`Auditor`] collects check outcomes during a run. Checks never mutate
//!   simulation state, so enabling auditing cannot change results.
//! - [`AuditReport`] is the structured summary attached to a finished run's
//!   `RunReport`.
//!
//! Violations are recorded, not fatal, by default; set `MEMNET_AUDIT_PANIC=1`
//! (or construct the auditor with [`Auditor::with_panic`]) to abort on the
//! first violation, which is how the test suites turn audits into hard
//! failures.

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

/// How much runtime invariant checking to perform.
///
/// Levels are ordered: `Off < Cheap < Full`. A check registered at level
/// `L` runs whenever the configured level is `>= L`.
///
/// # Examples
///
/// ```
/// use memnet_simcore::audit::AuditLevel;
///
/// assert!(AuditLevel::Full > AuditLevel::Cheap);
/// assert_eq!(AuditLevel::parse("cheap"), Some(AuditLevel::Cheap));
/// assert_eq!(AuditLevel::parse("nonsense"), None);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum AuditLevel {
    /// No checking: zero per-event overhead beyond one branch.
    #[default]
    Off,
    /// End-of-run and per-epoch conservation checks (residency sums,
    /// energy double-entry, packet conservation, AMS budget ceilings).
    Cheap,
    /// Everything in `Cheap` plus per-event checks (timestamp
    /// monotonicity, mode-transition legality).
    Full,
}

impl AuditLevel {
    /// Parses a level name (case-insensitive): `off`/`0`, `cheap`/`1`,
    /// `full`/`2`. Returns `None` for anything else.
    pub fn parse(s: &str) -> Option<AuditLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" | "" => Some(AuditLevel::Off),
            "cheap" | "1" => Some(AuditLevel::Cheap),
            "full" | "2" => Some(AuditLevel::Full),
            _ => None,
        }
    }

    /// The process-wide default level from the `MEMNET_AUDIT` environment
    /// variable, read once and cached (so a sweep building thousands of
    /// configs warns at most once about a malformed value). Unset or
    /// malformed values mean [`AuditLevel::Off`].
    pub fn from_env() -> AuditLevel {
        static LEVEL: OnceLock<AuditLevel> = OnceLock::new();
        *LEVEL.get_or_init(|| match std::env::var("MEMNET_AUDIT") {
            Err(_) => AuditLevel::Off,
            Ok(v) => AuditLevel::parse(&v).unwrap_or_else(|| {
                crate::memnet_warn!(
                    "[audit] MEMNET_AUDIT={v:?} not recognized \
                     (want off|cheap|full); auditing disabled"
                );
                AuditLevel::Off
            }),
        })
    }
}

/// One failed invariant check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// Stable identifier of the check that failed (e.g.
    /// `"link-energy-conservation"`).
    pub check: String,
    /// Human-readable description of the observed inconsistency.
    pub detail: String,
}

/// Structured audit results for one simulation run, attached to its
/// `RunReport`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AuditReport {
    /// The level the run was audited at.
    pub level: AuditLevel,
    /// How many individual checks actually executed.
    pub checks_run: u64,
    /// Every check that failed, in the order observed.
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// True if no executed check failed. (Trivially true at
    /// [`AuditLevel::Off`], when nothing runs.)
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Collects invariant-check outcomes during a run.
///
/// Construct one per simulation with the run's configured level, call
/// [`Auditor::check`] at instrumentation points, and convert it into an
/// [`AuditReport`] with [`Auditor::finish`] when the run completes.
///
/// # Examples
///
/// ```
/// use memnet_simcore::audit::{AuditLevel, Auditor};
///
/// let mut a = Auditor::with_panic(AuditLevel::Cheap, false);
/// a.check(AuditLevel::Cheap, "example", 1 + 1 == 2, || "math broke".into());
/// a.check(AuditLevel::Full, "skipped", false, || unreachable!());
/// let report = a.finish();
/// assert!(report.is_clean());
/// assert_eq!(report.checks_run, 1);
/// ```
#[derive(Debug)]
pub struct Auditor {
    level: AuditLevel,
    panic_on_violation: bool,
    checks_run: u64,
    violations: Vec<AuditViolation>,
}

impl Auditor {
    /// Creates an auditor at `level`. Violations panic only when the
    /// `MEMNET_AUDIT_PANIC` environment variable is truthy (`1`, `true`,
    /// `yes`); otherwise they are recorded into the report.
    pub fn new(level: AuditLevel) -> Auditor {
        Auditor::with_panic(level, env_panic())
    }

    /// Creates an auditor with an explicit panic-on-violation setting,
    /// ignoring the environment. Tests use this to make violations fatal
    /// (or to assert on recorded violations without aborting).
    pub fn with_panic(level: AuditLevel, panic_on_violation: bool) -> Auditor {
        Auditor { level, panic_on_violation, checks_run: 0, violations: Vec::new() }
    }

    /// The level this auditor runs at.
    pub fn level(&self) -> AuditLevel {
        self.level
    }

    /// True if checks registered at `at` execute under this auditor.
    /// Callers use this to skip expensive *preparation* of check inputs;
    /// [`Auditor::check`] itself performs the same gate.
    pub fn enabled(&self, at: AuditLevel) -> bool {
        at != AuditLevel::Off && self.level >= at
    }

    /// Runs one invariant check registered at level `at`: a no-op unless
    /// [`Auditor::enabled`]`(at)`. `ok` is the invariant; `detail` is only
    /// invoked on failure, so formatting costs nothing on the happy path.
    ///
    /// # Panics
    ///
    /// Panics on a failed check when panic-on-violation is set.
    pub fn check(&mut self, at: AuditLevel, name: &str, ok: bool, detail: impl FnOnce() -> String) {
        if !self.enabled(at) {
            return;
        }
        self.checks_run += 1;
        if ok {
            return;
        }
        let v = AuditViolation { check: name.to_string(), detail: detail() };
        if self.panic_on_violation {
            panic!("audit violation [{}]: {}", v.check, v.detail);
        }
        self.violations.push(v);
    }

    /// Runs a double-entry conservation check registered at level `at`:
    /// `expected` and `actual` must agree to within `rel_eps` relative
    /// error (per [`approx_eq_rel`], so NaN or infinite totals always
    /// fail). The failure detail reports both sides and their difference.
    ///
    /// # Panics
    ///
    /// Panics on a failed check when panic-on-violation is set.
    pub fn check_conservation(
        &mut self,
        at: AuditLevel,
        name: &str,
        expected: f64,
        actual: f64,
        rel_eps: f64,
    ) {
        self.check(at, name, approx_eq_rel(expected, actual, rel_eps), || {
            format!(
                "expected {expected:.6e} but accounted {actual:.6e} \
                 (diff {:.3e}, tolerance {rel_eps:.1e} relative)",
                actual - expected
            )
        });
    }

    /// Number of checks executed so far.
    pub fn checks_run(&self) -> u64 {
        self.checks_run
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Consumes the auditor into its report.
    pub fn finish(self) -> AuditReport {
        AuditReport { level: self.level, checks_run: self.checks_run, violations: self.violations }
    }
}

fn env_panic() -> bool {
    static PANIC: OnceLock<bool> = OnceLock::new();
    *PANIC.get_or_init(|| {
        matches!(std::env::var("MEMNET_AUDIT_PANIC").as_deref(), Ok("1") | Ok("true") | Ok("yes"))
    })
}

/// Relative-epsilon float comparison for conservation checks: true when
/// `|a − b| ≤ rel_eps · max(|a|, |b|, 1e-12)`. Non-finite inputs never
/// compare equal (a NaN energy total is itself a violation).
///
/// # Examples
///
/// ```
/// use memnet_simcore::audit::approx_eq_rel;
///
/// assert!(approx_eq_rel(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!approx_eq_rel(1.0, 1.1, 1e-9));
/// assert!(!approx_eq_rel(f64::NAN, f64::NAN, 1e-9));
/// ```
pub fn approx_eq_rel(a: f64, b: f64, rel_eps: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return false;
    }
    (a - b).abs() <= rel_eps * a.abs().max(b.abs()).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered() {
        assert!(AuditLevel::Off < AuditLevel::Cheap);
        assert!(AuditLevel::Cheap < AuditLevel::Full);
        assert_eq!(AuditLevel::default(), AuditLevel::Off);
    }

    #[test]
    fn parse_accepts_names_and_digits() {
        assert_eq!(AuditLevel::parse("off"), Some(AuditLevel::Off));
        assert_eq!(AuditLevel::parse(""), Some(AuditLevel::Off));
        assert_eq!(AuditLevel::parse("Cheap"), Some(AuditLevel::Cheap));
        assert_eq!(AuditLevel::parse(" FULL "), Some(AuditLevel::Full));
        assert_eq!(AuditLevel::parse("0"), Some(AuditLevel::Off));
        assert_eq!(AuditLevel::parse("1"), Some(AuditLevel::Cheap));
        assert_eq!(AuditLevel::parse("2"), Some(AuditLevel::Full));
        assert_eq!(AuditLevel::parse("max"), None);
        assert_eq!(AuditLevel::parse("3"), None);
    }

    #[test]
    fn checks_gate_on_level() {
        let mut a = Auditor::with_panic(AuditLevel::Cheap, false);
        assert!(a.enabled(AuditLevel::Cheap));
        assert!(!a.enabled(AuditLevel::Full));
        assert!(!a.enabled(AuditLevel::Off));
        a.check(AuditLevel::Full, "full-only", false, || "should not run".into());
        assert_eq!(a.checks_run(), 0);
        a.check(AuditLevel::Cheap, "cheap", true, || unreachable!());
        assert_eq!(a.checks_run(), 1);
        assert!(a.finish().is_clean());
    }

    #[test]
    fn off_auditor_runs_nothing() {
        let mut a = Auditor::with_panic(AuditLevel::Off, false);
        a.check(AuditLevel::Cheap, "x", false, || unreachable!());
        let r = a.finish();
        assert_eq!(r.checks_run, 0);
        assert!(r.is_clean());
    }

    #[test]
    fn violations_are_recorded_in_order() {
        let mut a = Auditor::with_panic(AuditLevel::Full, false);
        a.check(AuditLevel::Cheap, "first", false, || "one".into());
        a.check(AuditLevel::Full, "ok", true, || unreachable!());
        a.check(AuditLevel::Full, "second", false, || "two".into());
        let r = a.finish();
        assert_eq!(r.checks_run, 3);
        assert!(!r.is_clean());
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[0].check, "first");
        assert_eq!(r.violations[0].detail, "one");
        assert_eq!(r.violations[1].check, "second");
    }

    #[test]
    fn conservation_checks_compare_with_relative_tolerance() {
        let mut a = Auditor::with_panic(AuditLevel::Cheap, false);
        a.check_conservation(AuditLevel::Cheap, "energy", 100.0, 100.0 + 1e-8, 1e-9);
        a.check_conservation(AuditLevel::Cheap, "energy", 100.0, 110.0, 1e-9);
        a.check_conservation(AuditLevel::Cheap, "nan", 1.0, f64::NAN, 1e-9);
        // Exact zero-against-zero (e.g. retransmission energy in a
        // fault-free run) passes through the absolute floor.
        a.check_conservation(AuditLevel::Cheap, "zero", 0.0, 0.0, 1e-9);
        let r = a.finish();
        assert_eq!(r.checks_run, 4);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[0].check, "energy");
        assert!(r.violations[0].detail.contains("expected 1.000000e2"));
        assert_eq!(r.violations[1].check, "nan");
    }

    #[test]
    #[should_panic(expected = "audit violation [boom]")]
    fn panic_mode_aborts_on_violation() {
        let mut a = Auditor::with_panic(AuditLevel::Cheap, true);
        a.check(AuditLevel::Cheap, "boom", false, || "fatal".into());
    }

    #[test]
    fn approx_eq_rel_behaves() {
        assert!(approx_eq_rel(100.0, 100.0, 0.0));
        assert!(approx_eq_rel(100.0, 100.0 + 1e-8, 1e-9));
        assert!(!approx_eq_rel(100.0, 101.0, 1e-9));
        // Near zero, the absolute floor keeps tiny noise from failing.
        assert!(approx_eq_rel(0.0, 1e-15, 1e-3));
        assert!(!approx_eq_rel(f64::NAN, 1.0, 1e-9));
        assert!(!approx_eq_rel(1.0, f64::INFINITY, 1e-9));
        assert!(!approx_eq_rel(f64::INFINITY, f64::INFINITY, 1e-9));
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = AuditReport {
            level: AuditLevel::Full,
            checks_run: 42,
            violations: vec![AuditViolation {
                check: "energy".into(),
                detail: "off by 10%".into(),
            }],
        };
        let json = serde::json::to_string(&r);
        let back: AuditReport = serde::json::from_str(&json).expect("round trip");
        assert_eq!(back, r);
    }
}
