//! Simulated time: picosecond instants and durations.
//!
//! [`SimTime`] is an instant on the simulated clock; [`SimDuration`] is a
//! span between instants. Both wrap a `u64` count of picoseconds, which
//! represents every interval used by the memory-network model exactly
//! (e.g. a 0.64 ns flit time is 640 ps) and supports simulations of up to
//! ~213 days of simulated time without overflow.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Number of picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Number of picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Number of picoseconds per second.
pub const PS_PER_S: u64 = 1_000_000_000_000;

/// An instant on the simulated clock, in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use memnet_simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_ns(3);
/// assert_eq!(t.as_ps(), 3_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_ns(3));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in picoseconds.
///
/// # Examples
///
/// ```
/// use memnet_simcore::SimDuration;
///
/// let flit = SimDuration::from_ps(640);
/// assert_eq!(flit * 5, SimDuration::from_ns(3) + SimDuration::from_ps(200));
/// assert_eq!(flit.as_ns(), 0.64);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (time zero).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from a raw picosecond count.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Returns this instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Returns this instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Duration since an earlier instant, saturating to zero if `earlier`
    /// is actually later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from a raw picosecond count.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from an integer nanosecond count.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a duration from an integer microsecond count.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a duration from an integer millisecond count.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is negative or not finite.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        assert!(
            ns.is_finite() && ns >= 0.0,
            "duration must be a non-negative finite number of ns, got {ns}"
        );
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Returns the raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Returns this duration expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / PS_PER_NS as f64
    }

    /// Returns this duration expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Returns this duration expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that saturates at zero instead of panicking.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Returns the shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Returns the longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Multiplies by a floating-point scale factor, rounding to the nearest
    /// picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be non-negative and finite, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The ratio of this duration to another, as a float.
    ///
    /// Returns 0.0 when `denom` is zero (a zero-length observation window
    /// contributes nothing to any utilization average).
    #[inline]
    pub fn ratio(self, denom: SimDuration) -> f64 {
        if denom.0 == 0 {
            0.0
        } else {
            self.0 as f64 / denom.0 as f64
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_and_duration_arithmetic_round_trips() {
        let t0 = SimTime::from_ps(1_000);
        let d = SimDuration::from_ns(3);
        let t1 = t0 + d;
        assert_eq!(t1.as_ps(), 4_000);
        assert_eq!(t1 - t0, d);
        assert_eq!(t1 - d, t0);
    }

    #[test]
    fn conversions_are_exact_for_model_constants() {
        // The model's fundamental interval: one flit over a full-width link.
        let flit = SimDuration::from_ns_f64(0.64);
        assert_eq!(flit.as_ps(), 640);
        // Router cycle equals flit time; four-cycle router latency.
        assert_eq!((flit * 4).as_ps(), 2_560);
        // Epoch length.
        assert_eq!(SimDuration::from_us(100).as_ps(), 100 * PS_PER_US);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_ps(10);
        let late = SimTime::from_ps(50);
        assert_eq!(late.saturating_since(early).as_ps(), 40);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let d = SimDuration::from_ns(10);
        assert_eq!(d.ratio(SimDuration::ZERO), 0.0);
        assert!((d.ratio(SimDuration::from_ns(40)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn mul_f64_rounds_to_nearest_ps() {
        let d = SimDuration::from_ps(3);
        assert_eq!(d.mul_f64(0.5).as_ps(), 2); // 1.5 rounds to 2
        assert_eq!(d.mul_f64(1.0 / 3.0).as_ps(), 1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn from_ns_f64_rejects_negative() {
        let _ = SimDuration::from_ns_f64(-1.0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        assert_eq!(format!("{}", SimTime::from_ps(640)), "0.640ns");
        assert_eq!(format!("{}", SimDuration::from_ns(14)), "14.000ns");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_ns).sum();
        assert_eq!(total, SimDuration::from_ns(10));
    }
}
