//! Uniform warning output for the whole workspace.
//!
//! Every crate that needs to surface a non-fatal problem (an unparsable
//! environment variable, a stale cache entry, a clamped setting) routes it
//! through [`memnet_warn!`] so all warnings carry the same greppable
//! `[memnet:warn]` prefix — `grep '\[memnet:warn\]'` over a CI log finds
//! every one, regardless of which subsystem emitted it.

/// Prints a warning line to stderr with the `[memnet:warn]` prefix.
///
/// Accepts the same arguments as `format!`. Subsystems conventionally open
/// the message with their own `[tag]` so the origin stays visible:
///
/// ```
/// memnet_simcore::memnet_warn!("[settings] unknown key {:?} ignored", "FOO");
/// ```
#[macro_export]
macro_rules! memnet_warn {
    ($($arg:tt)*) => {
        eprintln!("[memnet:warn] {}", format_args!($($arg)*))
    };
}

/// Prints an informational progress line to stderr with the `[memnet]`
/// prefix.
///
/// The companion to [`memnet_warn!`] for non-warning chatter (progress,
/// bookkeeping, file-written notices) that should stay off stdout —
/// stdout is reserved for machine-readable output — without masquerading
/// as a warning. Routing every stderr write through one of these two
/// macros keeps the streams greppable and lets a lint test enforce that
/// no bare `eprintln!` sneaks into library code.
///
/// ```
/// memnet_simcore::memnet_log!("[cache] wrote {} entries", 3);
/// ```
#[macro_export]
macro_rules! memnet_log {
    ($($arg:tt)*) => {
        eprintln!("[memnet] {}", format_args!($($arg)*))
    };
}
