//! Uniform warning output for the whole workspace.
//!
//! Every crate that needs to surface a non-fatal problem (an unparsable
//! environment variable, a stale cache entry, a clamped setting) routes it
//! through [`memnet_warn!`] so all warnings carry the same greppable
//! `[memnet:warn]` prefix — `grep '\[memnet:warn\]'` over a CI log finds
//! every one, regardless of which subsystem emitted it.

/// Prints a warning line to stderr with the `[memnet:warn]` prefix.
///
/// Accepts the same arguments as `format!`. Subsystems conventionally open
/// the message with their own `[tag]` so the origin stays visible:
///
/// ```
/// memnet_simcore::memnet_warn!("[settings] unknown key {:?} ignored", "FOO");
/// ```
#[macro_export]
macro_rules! memnet_warn {
    ($($arg:tt)*) => {
        eprintln!("[memnet:warn] {}", format_args!($($arg)*))
    };
}
