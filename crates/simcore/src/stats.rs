//! Accounting primitives: busy-time tracking, time-in-state accumulation,
//! bucketed histograms and online summary statistics.
//!
//! These are the building blocks the power model and management policies use
//! to turn a stream of simulation events into utilizations, energies and
//! latency aggregates.

use crate::time::{SimDuration, SimTime};

/// Accumulates how long a resource has been busy, for utilization reporting.
///
/// The resource toggles between busy and idle via [`BusyTracker::set_busy`];
/// [`BusyTracker::busy_time`] integrates the busy intervals up to `now`.
///
/// # Examples
///
/// ```
/// use memnet_simcore::stats::BusyTracker;
/// use memnet_simcore::{SimDuration, SimTime};
///
/// let mut tracker = BusyTracker::new(SimTime::ZERO);
/// tracker.set_busy(SimTime::from_ps(100), true);
/// tracker.set_busy(SimTime::from_ps(300), false);
/// assert_eq!(tracker.busy_time(SimTime::from_ps(400)), SimDuration::from_ps(200));
/// ```
#[derive(Debug, Clone)]
pub struct BusyTracker {
    busy: bool,
    last_change: SimTime,
    accumulated: SimDuration,
}

impl BusyTracker {
    /// Creates a tracker that is idle at `start`.
    pub fn new(start: SimTime) -> Self {
        BusyTracker { busy: false, last_change: start, accumulated: SimDuration::ZERO }
    }

    /// Records a busy/idle transition at time `now`.
    ///
    /// Setting the current state again is a no-op.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `now` precedes the previous transition.
    pub fn set_busy(&mut self, now: SimTime, busy: bool) {
        debug_assert!(now >= self.last_change, "time went backwards");
        if busy == self.busy {
            return;
        }
        if self.busy {
            self.accumulated += now - self.last_change;
        }
        self.busy = busy;
        self.last_change = now;
    }

    /// Whether the resource is currently busy.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Total busy time accumulated through `now`.
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        let mut total = self.accumulated;
        if self.busy && now > self.last_change {
            total += now - self.last_change;
        }
        total
    }

    /// Resets accumulation, keeping the current busy state, so a fresh
    /// observation window starts at `now`.
    pub fn reset_window(&mut self, now: SimTime) {
        self.accumulated = SimDuration::ZERO;
        self.last_change = now;
    }
}

/// Accumulates time spent in each of a small set of states indexed `0..N`.
///
/// Used for per-power-mode residency ("link hours"): the state index is the
/// power-mode index, and the accumulated durations become mode residencies.
#[derive(Debug, Clone)]
pub struct TimeInState {
    current: usize,
    since: SimTime,
    totals: Vec<SimDuration>,
}

impl TimeInState {
    /// Creates a tracker with `n_states` states, starting in state `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial >= n_states` or `n_states == 0`.
    pub fn new(n_states: usize, initial: usize, start: SimTime) -> Self {
        assert!(n_states > 0, "need at least one state");
        assert!(initial < n_states, "initial state out of range");
        TimeInState { current: initial, since: start, totals: vec![SimDuration::ZERO; n_states] }
    }

    /// Transitions to `state` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range. Debug-panics if time goes backwards.
    pub fn transition(&mut self, now: SimTime, state: usize) {
        assert!(state < self.totals.len(), "state {state} out of range");
        debug_assert!(now >= self.since, "time went backwards");
        self.totals[self.current] += now - self.since;
        self.current = state;
        self.since = now;
    }

    /// The state occupied right now.
    pub fn current(&self) -> usize {
        self.current
    }

    /// Residency of `state` through `now` (including the open interval).
    pub fn time_in(&self, state: usize, now: SimTime) -> SimDuration {
        let mut t = self.totals[state];
        if state == self.current && now > self.since {
            t += now - self.since;
        }
        t
    }

    /// Residencies of every state through `now`.
    pub fn snapshot(&self, now: SimTime) -> Vec<SimDuration> {
        (0..self.totals.len()).map(|s| self.time_in(s, now)).collect()
    }

    /// Number of states tracked.
    pub fn n_states(&self) -> usize {
        self.totals.len()
    }
}

/// A histogram over `f64` samples with caller-supplied bucket upper bounds.
///
/// A sample `x` lands in the first bucket whose upper bound is `>= x`;
/// samples above the last bound land in the overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "need at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly increasing"
        );
        Histogram { bounds: bounds.to_vec(), counts: vec![0; bounds.len()], overflow: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        match self.bounds.iter().position(|&b| x <= b) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    /// Count in bucket `i` (indexed by bound order).
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Count of samples above the last bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Clears all counts.
    pub fn clear(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.overflow = 0;
    }
}

/// Online count/sum/mean/min/max of a stream of `f64` samples.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_integrates_intervals() {
        let mut t = BusyTracker::new(SimTime::ZERO);
        t.set_busy(SimTime::from_ps(10), true);
        t.set_busy(SimTime::from_ps(30), false);
        t.set_busy(SimTime::from_ps(50), true);
        // Open interval counts up to the query time.
        assert_eq!(t.busy_time(SimTime::from_ps(70)), SimDuration::from_ps(40));
        assert!(t.is_busy());
    }

    #[test]
    fn busy_tracker_ignores_redundant_sets() {
        let mut t = BusyTracker::new(SimTime::ZERO);
        t.set_busy(SimTime::from_ps(10), true);
        t.set_busy(SimTime::from_ps(20), true); // no-op
        t.set_busy(SimTime::from_ps(40), false);
        assert_eq!(t.busy_time(SimTime::from_ps(100)), SimDuration::from_ps(30));
    }

    #[test]
    fn busy_tracker_window_reset() {
        let mut t = BusyTracker::new(SimTime::ZERO);
        t.set_busy(SimTime::from_ps(0), true);
        t.reset_window(SimTime::from_ps(50));
        assert_eq!(t.busy_time(SimTime::from_ps(80)), SimDuration::from_ps(30));
    }

    #[test]
    fn time_in_state_accumulates_per_state() {
        let mut t = TimeInState::new(3, 0, SimTime::ZERO);
        t.transition(SimTime::from_ps(100), 1);
        t.transition(SimTime::from_ps(150), 2);
        t.transition(SimTime::from_ps(170), 1);
        let now = SimTime::from_ps(200);
        assert_eq!(t.time_in(0, now), SimDuration::from_ps(100));
        assert_eq!(t.time_in(1, now), SimDuration::from_ps(80));
        assert_eq!(t.time_in(2, now), SimDuration::from_ps(20));
        // Snapshot covers the full elapsed window exactly.
        let total: SimDuration = t.snapshot(now).into_iter().sum();
        assert_eq!(total, SimDuration::from_ps(200));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[32.0, 128.0, 512.0, 2048.0]);
        h.record(10.0); // bucket 0
        h.record(32.0); // bucket 0 (inclusive upper bound)
        h.record(33.0); // bucket 1
        h.record(600.0); // bucket 3
        h.record(5000.0); // overflow
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 5);
        h.clear();
        assert_eq!(h.total(), 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10.0, 5.0]);
    }

    #[test]
    fn online_stats_summary() {
        let mut s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_none());
        for x in [3.0, 1.0, 2.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 6.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), Some(1.0));
        assert_eq!(s.max(), Some(3.0));
    }
}
