//! Deterministic, fast hashing for hot-path lookup tables.
//!
//! `std::collections::HashMap` defaults to SipHash with a per-process
//! random key — robust against adversarial keys, but slow for the
//! engine's integer-keyed tables and (by design) nondeterministic in
//! iteration order. [`FxHasher64`] is the classic Fx multiply-xor hash:
//! a couple of instructions per word, fixed constants, identical layout
//! on every run. Use it only where keys are trusted (packet ids, link
//! indices), never for external input.

use std::hash::{BuildHasherDefault, Hasher};

/// Seed constant: 2^64 / φ, the usual Fibonacci-hashing multiplier.
const K: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fast, deterministic 64-bit hasher (Fx multiply-xor).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }
}

/// `BuildHasher` for [`FxHasher64`]; plug into `HashMap::with_hasher` or
/// use via `HashMap<K, V, FastHashState>::default()`.
pub type FastHashState = BuildHasherDefault<FxHasher64>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn deterministic_across_instances() {
        let hash = |n: u64| {
            let mut h = FxHasher64::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(hash(42), hash(42));
        assert_ne!(hash(42), hash(43));
    }

    #[test]
    fn works_as_hashmap_state() {
        let mut m: HashMap<u64, &str, FastHashState> = HashMap::default();
        m.insert(7, "seven");
        m.insert(1 << 40, "big");
        assert_eq!(m.get(&7), Some(&"seven"));
        assert_eq!(m.remove(&(1 << 40)), Some("big"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn byte_writes_match_tail_padding() {
        let mut a = FxHasher64::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher64::default();
        b.write(&[1, 2, 3]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher64::default();
        c.write(&[1, 2, 4]);
        assert_ne!(a.finish(), c.finish());
    }
}
