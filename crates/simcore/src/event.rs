//! Deterministic time-ordered event queue.
//!
//! [`EventQueue`] is a priority queue keyed by [`SimTime`]. Events scheduled
//! for the same instant are delivered in insertion order (FIFO), which makes
//! simulation runs bit-for-bit reproducible regardless of queue internals.
//!
//! Discrete-event simulators schedule a large share of events *at the
//! current instant* (immediate follow-ups of the event being handled), so
//! the queue keeps a FIFO fast path for entries scheduled at the frontier —
//! the time of the most recent pop. Those bypass the timeline entirely;
//! pops merge the fast path and the timeline by exact `(time, seq)` order,
//! so the delivery sequence is identical to a single sorted queue's.
//!
//! Future events live in a *chunked sorted timeline*: bounded sorted
//! chunks kept descending by `(time, seq)` packed into a single `u128`
//! key, so the earliest entry is the last element of the last chunk.
//! Memory-network queue depths are small (hundreds of entries — bounded
//! by links plus outstanding requests), and nearly every push lands tens
//! of entries from the minimum; chunking caps the insert memmove at one
//! chunk while keeping pop O(1), which beats both a flat sorted `Vec`
//! (full tail memmove per insert) and a binary heap (O(log n) sift on
//! every pop). Keys are unique (`seq` is a strictly increasing
//! tie-break), so delivery order is the global `(time, seq)` minimum by
//! construction.

use std::collections::VecDeque;

use crate::time::SimTime;

/// Packs `(time, seq)` into one `u128` whose integer order equals the
/// lexicographic order of the pair.
#[inline]
fn pack(time: SimTime, seq: u64) -> u128 {
    (u128::from(time.as_ps()) << 64) | u128::from(seq)
}

#[inline]
fn unpack_time(key: u128) -> SimTime {
    SimTime::from_ps((key >> 64) as u64)
}

/// Entries each chunk holds at most. Splits move `CHUNK_CAP / 2` entries,
/// so inserts shift at most half a chunk on average; pops still come off
/// the tail of the last chunk in O(1).
const CHUNK_CAP: usize = 16;

/// A sorted timeline stored as a sequence of bounded sorted chunks
/// (an unrolled sorted list). Chunks are kept in globally *descending*
/// key order — `chunks[0]` holds the largest keys, the last chunk the
/// smallest — and entries within a chunk are descending too, so the
/// global minimum is the last entry of the last chunk and `pop` is O(1).
///
/// A push routes through `mins` (a lower bound per chunk of its smallest
/// key) to the first chunk whose bound is at or below the new key, then
/// inserts in sorted position inside that chunk. Insert shifts are capped
/// at one chunk (`CHUNK_CAP` entries) instead of the whole timeline,
/// which is what makes this beat the flat sorted `Vec` it replaced: the
/// engine's schedule pattern lands ~98% of pushes tens of entries from
/// the minimum, and the flat `Vec` paid a full tail memmove every time.
///
/// `mins[i]` is exact for every chunk except possibly the last: pops
/// raise the last chunk's true minimum, and the stale lower bound still
/// routes correctly because any key below the second-to-last chunk's
/// range belongs in the last chunk regardless of where inside it.
#[derive(Debug, Clone)]
struct ChunkedTimeline<E> {
    chunks: Vec<Vec<(u128, E)>>,
    mins: Vec<u128>,
    len: usize,
    /// Recycled chunk storage, so steady-state push/pop never allocates.
    spare: Vec<Vec<(u128, E)>>,
}

impl<E> ChunkedTimeline<E> {
    fn with_capacity(cap: usize) -> Self {
        ChunkedTimeline {
            chunks: Vec::with_capacity(cap.div_ceil(CHUNK_CAP)),
            mins: Vec::with_capacity(cap.div_ceil(CHUNK_CAP)),
            len: 0,
            spare: Vec::new(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn peek_key(&self) -> Option<u128> {
        self.chunks.last().and_then(|c| c.last()).map(|&(k, _)| k)
    }

    fn clear(&mut self) {
        for mut c in self.chunks.drain(..) {
            c.clear();
            self.spare.push(c);
        }
        self.mins.clear();
        self.len = 0;
    }

    fn fresh_chunk(&mut self) -> Vec<(u128, E)> {
        self.spare.pop().unwrap_or_else(|| Vec::with_capacity(CHUNK_CAP))
    }

    fn push(&mut self, key: u128, event: E) {
        self.len += 1;
        if self.chunks.is_empty() {
            let mut c = self.fresh_chunk();
            c.push((key, event));
            self.chunks.push(c);
            self.mins.push(key);
            return;
        }
        // Route: the first chunk whose min lower-bound is <= key; keys
        // below every bound belong in the last chunk (new global minimum,
        // which appends at its tail in O(1)).
        let i = self.mins.partition_point(|&m| m > key).min(self.chunks.len() - 1);
        if self.chunks[i].len() == CHUNK_CAP {
            self.split(i);
            // Re-route between the two halves: the upper half keeps keys
            // at or above its (now exact) min, everything else — including
            // a new global minimum when `i` was the last chunk — goes to
            // the lower half.
            let i = if self.mins[i] <= key { i } else { i + 1 };
            self.insert_in_chunk(i, key, event);
        } else {
            self.insert_in_chunk(i, key, event);
        }
    }

    /// Inserts into chunk `i` (which has room), keeping it descending and
    /// maintaining `mins[i]` as an exact bound when the key goes last.
    fn insert_in_chunk(&mut self, i: usize, key: u128, event: E) {
        let chunk = &mut self.chunks[i];
        match chunk.last() {
            Some(&(last, _)) if last < key => {
                let at = chunk.partition_point(|&(k, _)| k > key);
                chunk.insert(at, (key, event));
            }
            _ => {
                chunk.push((key, event));
                self.mins[i] = key;
            }
        }
    }

    /// Splits full chunk `i`, moving its smaller-key tail half into a new
    /// chunk at `i + 1` and tightening both min bounds to exact values.
    fn split(&mut self, i: usize) {
        let mut lower = self.fresh_chunk();
        lower.extend(self.chunks[i].drain(CHUNK_CAP / 2..));
        self.mins[i] = self.chunks[i].last().expect("upper half non-empty").0;
        let lower_min = lower.last().expect("lower half non-empty").0;
        self.chunks.insert(i + 1, lower);
        self.mins.insert(i + 1, lower_min);
    }

    #[inline]
    fn pop(&mut self) -> Option<(u128, E)> {
        let chunk = self.chunks.last_mut()?;
        let entry = chunk.pop().expect("chunks are never left empty");
        if chunk.is_empty() {
            let c = self.chunks.pop().expect("checked non-empty");
            self.spare.push(c);
            self.mins.pop();
        }
        self.len -= 1;
        Some(entry)
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use memnet_simcore::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_ps(30), 'b');
/// queue.push(SimTime::from_ps(10), 'a');
/// queue.push(SimTime::from_ps(30), 'c');
///
/// let order: Vec<char> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']); // same-time events keep insertion order
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    timeline: ChunkedTimeline<E>,
    /// FIFO of entries all scheduled exactly at `bucket_time` (ascending
    /// `seq`), so its front is the bucket's `(time, seq)` minimum.
    bucket: VecDeque<(u64, E)>,
    /// Firing time shared by every entry in `bucket`.
    bucket_time: SimTime,
    /// Time of the most recent pop (starts at the epoch, `SimTime::ZERO`).
    frontier: SimTime,
    seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::with_capacity(0)
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            timeline: ChunkedTimeline::with_capacity(cap),
            bucket: VecDeque::with_capacity(cap.min(256)),
            bucket_time: SimTime::ZERO,
            frontier: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        // Same-instant fast path: an event scheduled at the frontier (the
        // time currently being drained) joins the FIFO bucket with no
        // timeline insert. The bucket only ever holds entries for one
        // instant.
        if self.bucket.is_empty() {
            if time == self.frontier {
                self.bucket_time = time;
                self.bucket.push_back((seq, event));
                return;
            }
        } else if time == self.bucket_time {
            self.bucket.push_back((seq, event));
            return;
        }
        self.timeline.push(pack(time, seq), event);
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        // Merge the bucket and the timeline by exact (time, seq) order:
        // the bucket's front is its minimum (one shared time, ascending
        // seq), so comparing it against the timeline minimum yields the
        // global minimum and delivery order matches a single sorted queue.
        let take_timeline = match (self.bucket.front(), self.timeline.peek_key()) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(&(bseq, _)), Some(top)) => top < pack(self.bucket_time, bseq),
        };
        if take_timeline {
            self.timeline.pop().map(|(key, event)| {
                let time = unpack_time(key);
                self.frontier = time;
                (time, event)
            })
        } else {
            let time = self.bucket_time;
            self.bucket.pop_front().map(|(_, event)| {
                self.frontier = time;
                (time, event)
            })
        }
    }

    /// Removes and returns the earliest event if it fires at or before
    /// `limit`; leaves the queue untouched otherwise.
    ///
    /// This is the main-loop primitive: one call replaces the
    /// `peek_time` + `pop` pair, deciding between the bucket fast path and
    /// the sorted timeline exactly once per event.
    #[inline]
    pub fn pop_at_or_before(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        let take_timeline = match (self.bucket.front(), self.timeline.peek_key()) {
            (None, None) => return None,
            (None, Some(_)) => true,
            (Some(_), None) => false,
            (Some(&(bseq, _)), Some(top)) => top < pack(self.bucket_time, bseq),
        };
        if take_timeline {
            let time = unpack_time(self.timeline.peek_key().expect("checked non-empty"));
            if time > limit {
                return None;
            }
            self.frontier = time;
            self.timeline.pop().map(|(_, event)| (time, event))
        } else {
            if self.bucket_time > limit {
                return None;
            }
            let time = self.bucket_time;
            self.frontier = time;
            self.bucket.pop_front().map(|(_, event)| (time, event))
        }
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        let timeline_time = self.timeline.peek_key().map(unpack_time);
        let bucket_time = (!self.bucket.is_empty()).then_some(self.bucket_time);
        match (timeline_time, bucket_time) {
            (Some(h), Some(b)) => Some(h.min(b)),
            (h, b) => h.or(b),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.timeline.len() + self.bucket.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.timeline.is_empty() && self.bucket.is_empty()
    }

    /// Discards all pending events, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.timeline.clear();
        self.bucket.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(5), 5u32);
        q.push(SimTime::from_ps(1), 1);
        q.push(SimTime::from_ps(3), 3);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_ps())).collect();
        assert_eq!(times, [1, 3, 5]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ps(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_ps(9), ());
        q.push(SimTime::from_ps(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(2)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ps(15), "c");
        q.push(SimTime::from_ps(15), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.pop().is_none());
    }

    #[test]
    fn frontier_pushes_interleave_with_timeline_entries() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "a");
        assert_eq!(q.pop().unwrap(), (SimTime::from_ps(10), "a"));
        // These land in the frontier bucket (scheduled at the current time).
        q.push(SimTime::from_ps(10), "b");
        q.push(SimTime::from_ps(20), "c");
        q.push(SimTime::from_ps(10), "d");
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(10)));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ps(10), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ps(10), "d"));
        assert_eq!(q.pop().unwrap(), (SimTime::from_ps(20), "c"));
        assert!(q.is_empty());
    }

    #[test]
    fn timeline_entry_scheduled_earlier_beats_bucket_at_same_time() {
        let mut q = EventQueue::new();
        // Both at t=10, pushed before the frontier reaches 10: they go to
        // the timeline with seqs 0 and 1.
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(10), "b");
        assert_eq!(q.pop().unwrap().1, "a"); // frontier is now 10
                                             // Bucket entry at t=10 has seq 2, after "b"'s seq 1: FIFO order
                                             // must still deliver "b" first.
        q.push(SimTime::from_ps(10), "c");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn matches_reference_queue_on_random_schedule() {
        // Cross-check against a naive sorted-by-(time, seq) reference over
        // an interleaved push/pop workload biased toward frontier pushes.
        let mut rng = crate::SplitMix64::new(0xBEEF);
        let mut q = EventQueue::new();
        let mut reference: Vec<(u64, u64)> = Vec::new(); // (time_ps, seq)
        let mut seq = 0u64;
        let mut frontier = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for _ in 0..2000 {
            if rng.next_bool(0.6) {
                let t = if rng.next_bool(0.5) {
                    frontier // same-instant push
                } else {
                    frontier + rng.next_below(50)
                };
                q.push(SimTime::from_ps(t), seq);
                reference.push((t, seq));
                seq += 1;
            } else if let Some((t, e)) = q.pop() {
                frontier = t.as_ps();
                popped.push(e);
                let min = reference
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &(rt, rs))| (rt, rs))
                    .map(|(i, _)| i)
                    .expect("reference tracks queue");
                expected.push(reference.swap_remove(min).1);
            }
        }
        while let Some((_, e)) = q.pop() {
            popped.push(e);
            let min = reference
                .iter()
                .enumerate()
                .min_by_key(|(_, &(rt, rs))| (rt, rs))
                .map(|(i, _)| i)
                .unwrap();
            expected.push(reference.swap_remove(min).1);
        }
        assert_eq!(popped, expected);
        assert!(reference.is_empty());
    }

    #[test]
    fn pop_at_or_before_matches_reference_at_same_instant_boundaries() {
        // Adversarial cross-check of the main-loop primitive against a
        // naive min-by-(time, seq) reference. The schedule is biased to
        // hammer the decision boundaries: pushes land exactly at the
        // frontier (the FIFO-bucket fast path), exactly at the upcoming
        // limit, and one ps on either side of it; limits frequently equal
        // the pending minimum's firing time exactly. Every outcome must
        // agree with the reference — including the refusals (None), which
        // must leave the queue untouched.
        for salt in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
            let mut rng = crate::SplitMix64::new(salt);
            let mut q = EventQueue::new();
            let mut reference: Vec<(u64, u64)> = Vec::new(); // (time_ps, seq)
            let mut seq = 0u64;
            let mut frontier = 0u64;
            for step in 0..4000u64 {
                let roll = rng.next_below(10);
                if roll < 5 {
                    // Push, biased toward the boundary instants.
                    let t = match rng.next_below(5) {
                        0 | 1 => frontier,                 // bucket fast path
                        2 => frontier + rng.next_below(3), // straddles the next limit
                        _ => frontier + rng.next_below(40),
                    };
                    q.push(SimTime::from_ps(t), seq);
                    reference.push((t, seq));
                    seq += 1;
                } else {
                    // Drain with a limit that often equals the pending
                    // minimum exactly, or sits one ps to either side.
                    let min = reference.iter().copied().min();
                    let limit = match (min, rng.next_below(4)) {
                        (Some((t, _)), 0) => t, // exact boundary
                        (Some((t, _)), 1) => t + 1,
                        (Some((t, _)), 2) => t.saturating_sub(1),
                        _ => frontier + rng.next_below(8),
                    };
                    let len_before = q.len();
                    let got = q.pop_at_or_before(SimTime::from_ps(limit));
                    match min {
                        Some((t, s)) if t <= limit => {
                            let (gt, ge) = got.unwrap_or_else(|| {
                                panic!("step {step}: limit {limit} must yield ({t}, {s})")
                            });
                            assert_eq!((gt.as_ps(), ge), (t, s), "step {step}");
                            frontier = t;
                            let at = reference.iter().position(|&e| e == (t, s)).unwrap();
                            reference.swap_remove(at);
                        }
                        _ => {
                            assert!(got.is_none(), "step {step}: limit {limit} must refuse");
                            assert_eq!(q.len(), len_before, "a refusal must not disturb");
                            assert_eq!(
                                q.peek_time().map(|t| t.as_ps()),
                                min.map(|(t, _)| t),
                                "step {step}"
                            );
                        }
                    }
                }
            }
            // Drain the tail through the boundary primitive with an exact
            // limit each time, finishing the FIFO-order proof.
            while let Some(&(t, s)) = reference.iter().min_by_key(|&&(rt, rs)| (rt, rs)) {
                let (gt, ge) = q.pop_at_or_before(SimTime::from_ps(t)).expect("exact limit pops");
                assert_eq!((gt.as_ps(), ge), (t, s));
                let at = reference.iter().position(|&e| e == (t, s)).unwrap();
                reference.swap_remove(at);
            }
            assert!(q.is_empty());
        }
    }
}
