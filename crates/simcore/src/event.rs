//! Deterministic time-ordered event queue.
//!
//! [`EventQueue`] is a binary min-heap keyed by [`SimTime`]. Events scheduled
//! for the same instant are delivered in insertion order (FIFO), which makes
//! simulation runs bit-for-bit reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use memnet_simcore::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_ps(30), 'b');
/// queue.push(SimTime::from_ps(10), 'a');
/// queue.push(SimTime::from_ps(30), 'c');
///
/// let order: Vec<char> = std::iter::from_fn(|| queue.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, ['a', 'b', 'c']); // same-time events keep insertion order
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Order entries so that the *smallest* (time, seq) is the heap maximum,
// turning `BinaryHeap` (a max-heap) into a min-heap without `Reverse` noise.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0 }
    }

    /// Creates an empty queue with capacity for `cap` pending events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), seq: 0 }
    }

    /// Schedules `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The firing time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events, keeping allocated capacity.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(5), 5u32);
        q.push(SimTime::from_ps(1), 1);
        q.push(SimTime::from_ps(3), 3);
        let times: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t.as_ps())).collect();
        assert_eq!(times, [1, 3, 5]);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime::from_ps(7), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        let expected: Vec<u32> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::from_ps(9), ());
        q.push(SimTime::from_ps(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ps(2)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_ps(2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ps(10), "a");
        q.push(SimTime::from_ps(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_ps(15), "c");
        q.push(SimTime::from_ps(15), "d");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "d");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.clear();
        assert!(q.pop().is_none());
    }
}
