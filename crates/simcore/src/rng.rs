//! Deterministic pseudo-random number generation.
//!
//! The workload generators need a fast, seedable, reproducible source of
//! randomness. [`SplitMix64`] (Steele, Lea & Flood 2014) passes BigCrush,
//! needs no allocation, and — critically for experiment reproducibility —
//! produces identical streams for identical seeds on every platform.

/// A SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use memnet_simcore::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent generator for a named sub-stream.
    ///
    /// Forked streams let each simulation component (address sampler,
    /// arrival process, read/write mix, ...) consume randomness without
    /// perturbing the others, so adding a consumer does not change the
    /// requests the rest of the system sees.
    pub fn fork(&self, stream: u64) -> SplitMix64 {
        let mut child = SplitMix64::new(self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Burn one output so trivially related seeds decorrelate.
        child.next_u64();
        child
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is < 2^-64 * bound,
        // negligible for simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Samples an exponential distribution with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive and finite, got {mean}"
        );
        // Use 1 - u in (0, 1] so ln never sees zero.
        let u = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1], got {p}");
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent_and_each_other() {
        let parent = SplitMix64::new(1234);
        let mut s1 = parent.fork(1);
        let mut s2 = parent.fork(2);
        let mut p = parent.clone();
        let (a, b, c) = (s1.next_u64(), s2.next_u64(), p.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound_and_covers_range() {
        let mut rng = SplitMix64::new(5);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            let v = rng.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = SplitMix64::new(11);
        let n = 100_000;
        let mean = 40.0;
        let sum: f64 = (0..n).map(|_| rng.next_exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < mean * 0.02,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn next_bool_matches_probability() {
        let mut rng = SplitMix64::new(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.next_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate} too far from 0.3");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_bound_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
