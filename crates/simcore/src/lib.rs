#![warn(missing_docs)]

//! Discrete-event simulation kernel for the `memnet` workspace.
//!
//! This crate provides the foundation every other `memnet` crate builds on:
//!
//! - [`SimTime`] / [`SimDuration`] — picosecond-resolution simulated time.
//!   Memory-network links serialize one 16 B flit in 0.64 ns, so nanosecond
//!   resolution is too coarse; picoseconds represent every interval in the
//!   model exactly as an integer.
//! - [`EventQueue`] — a deterministic time-ordered event queue. Ties are
//!   broken by insertion order so that simulations are exactly reproducible.
//! - [`SplitMix64`] — a tiny, fast, deterministic PRNG used by the workload
//!   generators. Runs with equal seeds produce identical request streams.
//! - [`stats`] — counters, time-in-state trackers, histograms and online
//!   summary statistics used for power/performance accounting.
//! - [`audit`] — runtime invariant checking (energy conservation, packet
//!   conservation, budget ceilings) gated by an [`AuditLevel`].
//!
//! # Examples
//!
//! ```
//! use memnet_simcore::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.push(SimTime::ZERO + SimDuration::from_ns(5), "second");
//! queue.push(SimTime::ZERO + SimDuration::from_ns(2), "first");
//! let (time, event) = queue.pop().expect("queue is non-empty");
//! assert_eq!(event, "first");
//! assert_eq!(time.as_ps(), 2_000);
//! ```

pub mod audit;
pub mod event;
pub mod hash;
pub mod rng;
pub mod stats;
pub mod time;
pub mod warn;

pub use audit::{AuditLevel, AuditReport, AuditViolation, Auditor};
pub use event::EventQueue;
pub use hash::{FastHashState, FxHasher64};
pub use rng::SplitMix64;
pub use time::{SimDuration, SimTime};
