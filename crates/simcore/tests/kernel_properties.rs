//! Property tests of the simulation kernel.

use memnet_simcore::stats::{BusyTracker, Histogram, OnlineStats, TimeInState};
use memnet_simcore::{EventQueue, SimDuration, SimTime, SplitMix64};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_is_a_stable_time_sort(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), i);
        }
        let mut popped: Vec<(u64, usize)> = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_ps(), i));
        }
        // Expected: stable sort by time (ties keep insertion order).
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, _)| t);
        prop_assert_eq!(popped, expected);
    }

    #[test]
    fn event_queue_interleaved_operations_never_go_backwards(
        ops in prop::collection::vec((0u64..1_000_000, any::<bool>()), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut clock = 0u64;
        for (t, is_push) in ops {
            if is_push || q.is_empty() {
                // Never schedule in the past.
                q.push(SimTime::from_ps(clock + t), ());
            } else if let Some((popped, ())) = q.pop() {
                prop_assert!(popped.as_ps() >= clock, "time went backwards");
                clock = popped.as_ps();
            }
        }
    }

    #[test]
    fn rng_streams_are_reproducible_and_uncorrelated(seed in any::<u64>()) {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(seed);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(seed);
            (0..64).map(|_| r.next_u64()).collect()
        };
        prop_assert_eq!(&a, &b);
        let c: Vec<u64> = {
            let mut r = SplitMix64::new(seed.wrapping_add(1));
            (0..64).map(|_| r.next_u64()).collect()
        };
        prop_assert_ne!(a, c);
    }

    #[test]
    fn busy_tracker_never_exceeds_elapsed_time(
        toggles in prop::collection::vec((1u64..10_000, any::<bool>()), 1..100)
    ) {
        let mut tracker = BusyTracker::new(SimTime::ZERO);
        let mut now = 0u64;
        for (dt, busy) in toggles {
            now += dt;
            tracker.set_busy(SimTime::from_ps(now), busy);
        }
        let end = SimTime::from_ps(now + 1);
        prop_assert!(tracker.busy_time(end) <= end - SimTime::ZERO);
    }

    #[test]
    fn time_in_state_partitions_elapsed_time(
        transitions in prop::collection::vec((1u64..10_000, 0usize..5), 1..100)
    ) {
        let mut t = TimeInState::new(5, 0, SimTime::ZERO);
        let mut now = 0u64;
        for (dt, state) in transitions {
            now += dt;
            t.transition(SimTime::from_ps(now), state);
        }
        let end = SimTime::from_ps(now + 500);
        let total: SimDuration = t.snapshot(end).into_iter().sum();
        prop_assert_eq!(total, end - SimTime::ZERO);
    }

    #[test]
    fn histogram_total_counts_every_sample(
        samples in prop::collection::vec(0.0f64..10_000.0, 0..300)
    ) {
        let mut h = Histogram::new(&[32.0, 128.0, 512.0, 2048.0]);
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
    }

    #[test]
    fn online_stats_bounds_hold(samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = OnlineStats::new();
        for &x in &samples {
            s.record(x);
        }
        let min = s.min().unwrap();
        let max = s.max().unwrap();
        prop_assert!(min <= max);
        prop_assert!(s.mean() >= min - 1e-9 && s.mean() <= max + 1e-9);
        prop_assert_eq!(s.count(), samples.len() as u64);
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..1u64<<40, b in 0u64..1u64<<40) {
        let da = SimDuration::from_ps(a);
        let db = SimDuration::from_ps(b);
        prop_assert_eq!((da + db).as_ps(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_ps(), a.saturating_sub(b));
        prop_assert_eq!(da.min(db).as_ps(), a.min(b));
        prop_assert_eq!(da.max(db).as_ps(), a.max(b));
        let t = SimTime::from_ps(a) + db;
        prop_assert_eq!(t - SimTime::from_ps(a), db);
    }
}
