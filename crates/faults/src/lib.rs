//! Deterministic, seed-stable link-fault injection for the memory network.
//!
//! Real HMC links run a CRC + retry-buffer protocol over SerDes lanes that
//! suffer transient bit errors, error bursts, stuck lanes and (rarely) whole
//! link failures. This crate models those processes *deterministically*: every
//! fault decision is drawn from a per-link [`SplitMix64`] stream forked from
//! the run seed, so a sweep produces byte-identical results regardless of
//! thread count, and a fault-free configuration consumes **no** randomness at
//! all (bit-identical to a build without this crate).
//!
//! The crate is engine-agnostic: it decides *whether* a transmission was
//! corrupted, a wake timed out, or a link is degraded/failed. The simulation
//! engine (in `memnet-core`) owns *what happens next* (retry scheduling,
//! route-around, energy accounting).
//!
//! # Spec strings
//!
//! Fault scenarios are described by a compact comma-separated spec, used by
//! the `--faults` CLI flag, the `MEMNET_FAULTS` environment variable and the
//! bench cache key:
//!
//! ```text
//! ber=1e-6,burst=mild,degrade=0:8+3:4,fail=5,wake_timeout=0.01,retry_limit=8
//! ```
//!
//! | field | meaning |
//! |---|---|
//! | `ber=R` | per-flit CRC error probability in the good channel state |
//! | `burst=mild\|severe\|GB:BG:R` | Gilbert-Elliott burst process (presets or explicit `p_good_to_bad:p_bad_to_good:bad_rate`) |
//! | `degrade=L:W[+L:W...]` | link index `L` is stuck at `W` usable lanes (of 16) |
//! | `fail=M[+M...]` | the connectivity edge of module `M` is hard-failed |
//! | `wake_timeout=R` | probability a ROO wake misses its training window and retries |
//! | `retry_limit=N` | retransmission attempts per packet before forced delivery |
//!
//! The empty spec means "no faults".

#![warn(missing_docs)]

use memnet_simcore::SplitMix64;
use serde::{Deserialize, Serialize};

/// Stream salt separating fault randomness from every other consumer of the
/// run seed (the workload frontend forks its streams directly from the seed,
/// so fault draws can never perturb the generated request sequence).
/// Public so seed-derivation code elsewhere (e.g. multi-channel runs) can
/// prove its streams never collide with the per-link fault streams.
pub const FAULT_STREAM_SALT: u64 = 0xFA01_7CC5;

/// Default retransmission cap: after this many corrupted attempts the packet
/// is delivered anyway (mirrors a real controller escalating past link retry).
pub const DEFAULT_RETRY_LIMIT: u32 = 16;

/// Two-state Gilbert-Elliott burst-error channel.
///
/// The channel is either *good* (errors at the base `ber` rate) or *bad*
/// (errors at [`GilbertElliott::bad_flit_error_rate`]); it flips state with
/// the given per-flit transition probabilities. Mean burst length is
/// `1 / p_bad_to_good` flits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// Per-flit probability of the channel entering the bad state.
    pub p_good_to_bad: f64,
    /// Per-flit probability of the channel recovering to the good state.
    pub p_bad_to_good: f64,
    /// Per-flit CRC error probability while in the bad state.
    pub bad_flit_error_rate: f64,
}

impl GilbertElliott {
    /// Mild bursts: rare, short, moderately lossy (mean burst 10 flits,
    /// 1 in 1e3 flits corrupted inside a burst).
    pub fn mild() -> GilbertElliott {
        GilbertElliott { p_good_to_bad: 1e-4, p_bad_to_good: 0.1, bad_flit_error_rate: 1e-3 }
    }

    /// Severe bursts: an order of magnitude more frequent, longer (mean
    /// 20 flits) and lossier (1 in 1e2 flits corrupted inside a burst).
    pub fn severe() -> GilbertElliott {
        GilbertElliott { p_good_to_bad: 1e-3, p_bad_to_good: 0.05, bad_flit_error_rate: 1e-2 }
    }

    fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("p_good_to_bad", self.p_good_to_bad),
            ("p_bad_to_good", self.p_bad_to_good),
            ("bad_flit_error_rate", self.bad_flit_error_rate),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("burst {name} must be a probability in [0,1], got {p}"));
            }
        }
        Ok(())
    }

    fn spec(&self) -> String {
        if *self == GilbertElliott::mild() {
            "mild".into()
        } else if *self == GilbertElliott::severe() {
            "severe".into()
        } else {
            format!("{}:{}:{}", self.p_good_to_bad, self.p_bad_to_good, self.bad_flit_error_rate)
        }
    }

    fn parse(s: &str) -> Result<GilbertElliott, String> {
        match s {
            "mild" => return Ok(GilbertElliott::mild()),
            "severe" => return Ok(GilbertElliott::severe()),
            _ => {}
        }
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "burst must be mild, severe or p_good_to_bad:p_bad_to_good:bad_rate, got {s:?}"
            ));
        }
        let num = |p: &str| p.parse::<f64>().map_err(|e| format!("bad burst number {p:?}: {e}"));
        let ge = GilbertElliott {
            p_good_to_bad: num(parts[0])?,
            p_bad_to_good: num(parts[1])?,
            bad_flit_error_rate: num(parts[2])?,
        };
        ge.validate()?;
        Ok(ge)
    }
}

/// A link stuck at a reduced number of usable SerDes lanes.
///
/// The engine clamps every bandwidth mode applied to this link so it never
/// exceeds the surviving lane budget (VWL width, or the DVFS level of
/// equivalent bandwidth).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedLink {
    /// Unidirectional link index (edge `m` owns links `2m` request /
    /// `2m + 1` response).
    pub link: usize,
    /// Usable lanes out of the full 16.
    pub lanes: u8,
}

/// Complete description of a fault scenario.
///
/// The default ([`FaultConfig::none`]) injects nothing, consumes no
/// randomness and leaves simulation results bit-identical to a fault-free
/// build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-flit CRC error probability in the good channel state.
    pub flit_error_rate: f64,
    /// Optional Gilbert-Elliott burst process layered on top of the base
    /// rate.
    pub burst: Option<GilbertElliott>,
    /// Links stuck at reduced lane counts.
    pub degraded: Vec<DegradedLink>,
    /// Modules whose connectivity edge (to their parent) is hard-failed;
    /// the topology routes around them where spare ports exist.
    pub hard_failed: Vec<usize>,
    /// Probability that a ROO wake misses its SerDes training window and
    /// must retrain (paying the wake latency twice).
    pub wake_timeout_rate: f64,
    /// Retransmission attempts per packet before forced delivery.
    pub retry_limit: u32,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The fault-free configuration.
    pub fn none() -> FaultConfig {
        FaultConfig {
            flit_error_rate: 0.0,
            burst: None,
            degraded: Vec::new(),
            hard_failed: Vec::new(),
            wake_timeout_rate: 0.0,
            retry_limit: DEFAULT_RETRY_LIMIT,
        }
    }

    /// Convenience constructor for a uniform per-flit error rate.
    pub fn with_flit_error_rate(rate: f64) -> FaultConfig {
        FaultConfig { flit_error_rate: rate, ..FaultConfig::none() }
    }

    /// True when this configuration injects nothing: the engine then skips
    /// fault bookkeeping entirely, guaranteeing bit-identical results to the
    /// pre-fault baseline.
    pub fn is_none(&self) -> bool {
        self.flit_error_rate == 0.0
            && self.burst.is_none()
            && self.degraded.is_empty()
            && self.hard_failed.is_empty()
            && self.wake_timeout_rate == 0.0
    }

    /// Checks ranges; returns a human-readable description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.flit_error_rate) {
            return Err(format!("ber must be in [0,1], got {}", self.flit_error_rate));
        }
        if let Some(b) = &self.burst {
            b.validate()?;
        }
        for d in &self.degraded {
            if !(1..=16).contains(&d.lanes) {
                return Err(format!(
                    "degraded link {} must keep 1..=16 lanes, got {}",
                    d.link, d.lanes
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.wake_timeout_rate) {
            return Err(format!("wake_timeout must be in [0,1], got {}", self.wake_timeout_rate));
        }
        if self.retry_limit == 0 {
            return Err("retry_limit must be at least 1".into());
        }
        Ok(())
    }

    /// Canonical spec string: parseable by [`FaultConfig::parse`], stable
    /// across runs (fields in fixed order, defaults omitted), and therefore
    /// safe to use as a cache-key component. The fault-free config is `""`.
    pub fn spec(&self) -> String {
        let mut parts = Vec::new();
        if self.flit_error_rate != 0.0 {
            parts.push(format!("ber={}", self.flit_error_rate));
        }
        if let Some(b) = &self.burst {
            parts.push(format!("burst={}", b.spec()));
        }
        if !self.degraded.is_empty() {
            let list: Vec<String> =
                self.degraded.iter().map(|d| format!("{}:{}", d.link, d.lanes)).collect();
            parts.push(format!("degrade={}", list.join("+")));
        }
        if !self.hard_failed.is_empty() {
            let list: Vec<String> = self.hard_failed.iter().map(|m| m.to_string()).collect();
            parts.push(format!("fail={}", list.join("+")));
        }
        if self.wake_timeout_rate != 0.0 {
            parts.push(format!("wake_timeout={}", self.wake_timeout_rate));
        }
        if self.retry_limit != DEFAULT_RETRY_LIMIT {
            parts.push(format!("retry_limit={}", self.retry_limit));
        }
        parts.join(",")
    }

    /// Parses a spec string (see the crate docs for the grammar). The empty
    /// string (or whitespace) is the fault-free config. Strict: any
    /// malformed field is an error. Degraded/failed lists are sorted and
    /// deduplicated so equivalent specs canonicalize identically.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::none();
        for field in spec.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            cfg.apply_field(field)?;
        }
        cfg.normalize();
        cfg.validate()?;
        Ok(cfg)
    }

    /// Reads `MEMNET_FAULTS`, warning (to stderr) and skipping each
    /// malformed field instead of failing — the same warn-and-default
    /// convention as `MEMNET_THREADS`. Unset or empty means no faults.
    pub fn from_env() -> FaultConfig {
        let Ok(raw) = std::env::var("MEMNET_FAULTS") else {
            return FaultConfig::none();
        };
        let mut cfg = FaultConfig::none();
        for field in raw.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            if let Err(e) = cfg.apply_field(field) {
                memnet_simcore::memnet_warn!(
                    "[faults] ignoring MEMNET_FAULTS field {field:?}: {e}"
                );
            }
        }
        cfg.normalize();
        if let Err(e) = cfg.validate() {
            memnet_simcore::memnet_warn!(
                "[faults] MEMNET_FAULTS out of range ({e}); disabling faults"
            );
            return FaultConfig::none();
        }
        cfg
    }

    fn normalize(&mut self) {
        self.degraded.sort_by_key(|d| d.link);
        self.degraded.dedup_by_key(|d| d.link);
        self.hard_failed.sort_unstable();
        self.hard_failed.dedup();
    }

    fn apply_field(&mut self, field: &str) -> Result<(), String> {
        let (key, value) =
            field.split_once('=').ok_or_else(|| format!("expected key=value, got {field:?}"))?;
        match key {
            "ber" => {
                self.flit_error_rate =
                    value.parse().map_err(|e| format!("bad ber {value:?}: {e}"))?;
            }
            "burst" => self.burst = Some(GilbertElliott::parse(value)?),
            "degrade" => {
                for item in value.split('+') {
                    let (l, w) = item
                        .split_once(':')
                        .ok_or_else(|| format!("degrade expects LINK:LANES, got {item:?}"))?;
                    self.degraded.push(DegradedLink {
                        link: l.parse().map_err(|e| format!("bad link index {l:?}: {e}"))?,
                        lanes: w.parse().map_err(|e| format!("bad lane count {w:?}: {e}"))?,
                    });
                }
            }
            "fail" => {
                for item in value.split('+') {
                    self.hard_failed
                        .push(item.parse().map_err(|e| format!("bad module index {item:?}: {e}"))?);
                }
            }
            "wake_timeout" => {
                self.wake_timeout_rate =
                    value.parse().map_err(|e| format!("bad wake_timeout {value:?}: {e}"))?;
            }
            "retry_limit" => {
                self.retry_limit =
                    value.parse().map_err(|e| format!("bad retry_limit {value:?}: {e}"))?;
            }
            _ => return Err(format!("unknown fault field {key:?}")),
        }
        Ok(())
    }
}

/// Per-link channel state: an independent RNG stream plus the current
/// Gilbert-Elliott channel state.
#[derive(Debug, Clone)]
struct LinkChannel {
    rng: SplitMix64,
    burst_bad: bool,
}

/// The runtime fault process: owns one RNG stream per link, forked from the
/// run seed, and answers the engine's fault questions.
///
/// Determinism contract: each link's draws depend only on the seed, the link
/// index and the *sequence of queries for that link* — which the
/// deterministic event loop fixes — so results are independent of thread
/// count and of activity on other links.
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    links: Vec<LinkChannel>,
    /// Per-link surviving-lane cap (`None` = healthy), precomputed for O(1)
    /// lookup on the mode-apply path.
    degraded_lanes: Vec<Option<u8>>,
}

impl FaultModel {
    /// Builds the fault process for a network with `n_links` unidirectional
    /// links, forking one decorrelated stream per link from `seed`.
    ///
    /// Degraded/failed indices beyond the network size are ignored (the
    /// config layer validates them against the actual topology).
    pub fn new(cfg: &FaultConfig, n_links: usize, seed: u64) -> FaultModel {
        let root = SplitMix64::new(seed).fork(FAULT_STREAM_SALT);
        let links = (0..n_links)
            .map(|l| LinkChannel { rng: root.fork(l as u64), burst_bad: false })
            .collect();
        let mut degraded_lanes = vec![None; n_links];
        for d in &cfg.degraded {
            if let Some(slot) = degraded_lanes.get_mut(d.link) {
                *slot = Some(d.lanes);
            }
        }
        FaultModel { cfg: cfg.clone(), links, degraded_lanes }
    }

    /// The scenario this model was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides whether a `flits`-flit transmission over `link` failed its
    /// CRC check. Advances the link's burst channel one step per flit and
    /// draws one error decision per flit (always consuming the same number
    /// of draws regardless of outcome, so statistics are easy to reason
    /// about).
    pub fn transmission_corrupted(&mut self, link: usize, flits: u64) -> bool {
        let ch = &mut self.links[link];
        let mut corrupted = false;
        for _ in 0..flits {
            if let Some(b) = &self.cfg.burst {
                let flip =
                    ch.rng.next_bool(if ch.burst_bad { b.p_bad_to_good } else { b.p_good_to_bad });
                if flip {
                    ch.burst_bad = !ch.burst_bad;
                }
            }
            let rate = match (&self.cfg.burst, ch.burst_bad) {
                (Some(b), true) => b.bad_flit_error_rate,
                _ => self.cfg.flit_error_rate,
            };
            corrupted |= ch.rng.next_bool(rate);
        }
        corrupted
    }

    /// Decides whether a ROO wake on `link` misses its training window and
    /// must retrain (the engine doubles the wake latency).
    pub fn wake_times_out(&mut self, link: usize) -> bool {
        self.links[link].rng.next_bool(self.cfg.wake_timeout_rate)
    }

    /// Surviving lanes for `link`, or `None` when the link is healthy.
    pub fn degraded_lanes(&self, link: usize) -> Option<u8> {
        self.degraded_lanes.get(link).copied().flatten()
    }

    /// Retransmission attempts allowed per packet before forced delivery.
    pub fn retry_limit(&self) -> u32 {
        self.cfg.retry_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_none_and_roundtrips_empty() {
        let none = FaultConfig::none();
        assert!(none.is_none());
        assert_eq!(none.spec(), "");
        assert_eq!(FaultConfig::parse("").unwrap(), none);
        assert_eq!(FaultConfig::parse("  ").unwrap(), none);
        assert!(!FaultConfig::with_flit_error_rate(1e-9).is_none());
    }

    #[test]
    fn spec_roundtrips_and_canonicalizes() {
        let spec =
            "ber=0.001,burst=mild,degrade=3:4+0:8,fail=5+2+5,wake_timeout=0.01,retry_limit=8";
        let cfg = FaultConfig::parse(spec).unwrap();
        assert_eq!(cfg.flit_error_rate, 1e-3);
        assert_eq!(cfg.burst, Some(GilbertElliott::mild()));
        // Lists come back sorted and deduplicated.
        assert_eq!(
            cfg.degraded,
            vec![DegradedLink { link: 0, lanes: 8 }, DegradedLink { link: 3, lanes: 4 }]
        );
        assert_eq!(cfg.hard_failed, vec![2, 5]);
        assert_eq!(cfg.retry_limit, 8);
        // Canonical spec parses back to the same config.
        assert_eq!(FaultConfig::parse(&cfg.spec()).unwrap(), cfg);
        // Explicit Gilbert-Elliott parameters round-trip too.
        let custom = FaultConfig::parse("burst=0.01:0.2:0.5").unwrap();
        let b = custom.burst.unwrap();
        assert_eq!((b.p_good_to_bad, b.p_bad_to_good, b.bad_flit_error_rate), (0.01, 0.2, 0.5));
        assert_eq!(FaultConfig::parse(&custom.spec()).unwrap(), custom);
    }

    #[test]
    fn parse_rejects_malformed_and_out_of_range() {
        assert!(FaultConfig::parse("ber=fast").is_err());
        assert!(FaultConfig::parse("ber=2.0").is_err());
        assert!(FaultConfig::parse("nonsense").is_err());
        assert!(FaultConfig::parse("volts=1").is_err());
        assert!(FaultConfig::parse("burst=1:2").is_err());
        assert!(FaultConfig::parse("burst=0.5:0.5:7").is_err());
        assert!(FaultConfig::parse("degrade=0").is_err());
        assert!(FaultConfig::parse("degrade=0:32").is_err());
        assert!(FaultConfig::parse("retry_limit=0").is_err());
        assert!(FaultConfig::parse("wake_timeout=-0.5").is_err());
    }

    #[test]
    fn error_rate_statistics_are_approximately_right() {
        let mut fm = FaultModel::new(&FaultConfig::with_flit_error_rate(0.05), 2, 42);
        let n = 20_000u64;
        let hits = (0..n).filter(|_| fm.transmission_corrupted(0, 1)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "observed flit error rate {rate}");
        // Zero rate never corrupts (but still advances the stream the same way).
        let mut quiet = FaultModel::new(&FaultConfig::with_flit_error_rate(0.0), 1, 42);
        assert!((0..1000).all(|_| !quiet.transmission_corrupted(0, 5)));
    }

    #[test]
    fn identical_seeds_give_identical_draws_per_link() {
        let cfg = FaultConfig::parse("ber=0.2,burst=severe,wake_timeout=0.3").unwrap();
        let mut a = FaultModel::new(&cfg, 4, 7);
        let mut b = FaultModel::new(&cfg, 4, 7);
        for i in 0..500 {
            let link = i % 4;
            assert_eq!(a.transmission_corrupted(link, 5), b.transmission_corrupted(link, 5));
            assert_eq!(a.wake_times_out(link), b.wake_times_out(link));
        }
        // Draws on one link do not perturb another: a model that only ever
        // queries link 3 sees the same link-3 stream as one querying all.
        let mut solo = FaultModel::new(&cfg, 4, 7);
        let mut full = FaultModel::new(&solo.cfg, 4, 7);
        for i in 0..200 {
            for l in 0..3 {
                full.transmission_corrupted(l, (i % 5) + 1);
            }
            assert_eq!(solo.transmission_corrupted(3, 2), full.transmission_corrupted(3, 2));
        }
    }

    #[test]
    fn bursts_cluster_errors() {
        // With a zero base rate, every error comes from the bad state, so a
        // bursty channel must show back-to-back errors far more often than
        // an independent process at the same marginal rate would.
        let cfg = FaultConfig {
            burst: Some(GilbertElliott {
                p_good_to_bad: 0.01,
                p_bad_to_good: 0.2,
                bad_flit_error_rate: 0.5,
            }),
            ..FaultConfig::none()
        };
        let mut fm = FaultModel::new(&cfg, 1, 9);
        let outcomes: Vec<bool> = (0..50_000).map(|_| fm.transmission_corrupted(0, 1)).collect();
        let marginal = outcomes.iter().filter(|&&e| e).count() as f64 / outcomes.len() as f64;
        let pairs = outcomes.windows(2).filter(|w| w[0] && w[1]).count() as f64
            / (outcomes.len() - 1) as f64;
        assert!(marginal > 0.0, "burst process produced no errors");
        assert!(
            pairs > 3.0 * marginal * marginal,
            "errors not clustered: P(pair) = {pairs}, independent would be {}",
            marginal * marginal
        );
    }

    #[test]
    fn degraded_and_failed_lookups() {
        let cfg = FaultConfig::parse("degrade=1:4,fail=2").unwrap();
        let fm = FaultModel::new(&cfg, 4, 0);
        assert_eq!(fm.degraded_lanes(0), None);
        assert_eq!(fm.degraded_lanes(1), Some(4));
        assert_eq!(fm.degraded_lanes(99), None, "out-of-range lookups are healthy");
        assert_eq!(fm.config().hard_failed, vec![2]);
        assert_eq!(fm.retry_limit(), DEFAULT_RETRY_LIMIT);
    }

    /// Single env test (the environment is process-global, so all
    /// `MEMNET_FAULTS` cases live in one function).
    #[test]
    fn from_env_warns_and_defaults_on_malformed_fields() {
        std::env::remove_var("MEMNET_FAULTS");
        assert!(FaultConfig::from_env().is_none(), "unset env means no faults");

        std::env::set_var("MEMNET_FAULTS", "ber=1e-4,retry_limit=4");
        let cfg = FaultConfig::from_env();
        assert_eq!(cfg.flit_error_rate, 1e-4);
        assert_eq!(cfg.retry_limit, 4);

        // Malformed fields are skipped individually; valid ones survive.
        std::env::set_var("MEMNET_FAULTS", "ber=soup,wake_timeout=0.5,bogus");
        let cfg = FaultConfig::from_env();
        assert_eq!(cfg.flit_error_rate, 0.0, "malformed ber ignored");
        assert_eq!(cfg.wake_timeout_rate, 0.5, "valid field kept");

        // A field that parses but fails range validation disables faults
        // entirely rather than running a half-specified scenario.
        std::env::set_var("MEMNET_FAULTS", "ber=3.5");
        assert!(FaultConfig::from_env().is_none());

        std::env::remove_var("MEMNET_FAULTS");
    }
}
