#![warn(missing_docs)]

//! HMC vault DRAM timing model.
//!
//! An HMC stacks DRAM dies on a logic die; the stack is organized into
//! *vaults*, each with its own TSV data bus and a small memory controller on
//! the logic die. This crate models one vault at the fidelity of the paper's
//! DRAMSim2 configuration (Table I):
//!
//! - close page policy: every access is an activate → column access →
//!   auto-precharge sequence,
//! - bank-level parallelism with `tRRD` between activates and a shared
//!   per-vault data bus,
//! - a bounded command queue with reads prioritized over writes,
//! - 32-bit vault I/O at 2 Gbps, so a 64 B line bursts in 8 ns, giving the
//!   paper's nominal 30 ns unloaded read access (tRCD + tCL + burst).
//!
//! # Examples
//!
//! ```
//! use memnet_dram::{DramParams, Vault, VaultOp};
//! use memnet_simcore::SimTime;
//!
//! let params = DramParams::hmc_gen2();
//! let mut vault = Vault::new(&params, SimTime::ZERO);
//! vault.enqueue(VaultOp::read(1, 0, SimTime::ZERO))?;
//! let issued = vault.advance(SimTime::ZERO);
//! assert_eq!(issued[0].completion.as_ns(), 30.0); // tRCD + tCL + burst
//! # Ok::<(), memnet_dram::VaultFull>(())
//! ```

pub mod mapping;
pub mod params;
pub mod vault;

pub use mapping::line_to_vault_bank;
pub use params::DramParams;
pub use vault::{IssuedOp, Vault, VaultFull, VaultOp};
