//! Line-address to vault/bank mapping.
//!
//! Table I specifies *interleaved* line address mapping: consecutive 64 B
//! lines within an HMC rotate across vaults, and within a vault across
//! banks, maximizing bank-level parallelism for streaming accesses.

use crate::params::DramParams;

/// Maps a line index (relative to the start of one HMC) to its
/// `(vault, bank)` location under interleaved mapping.
///
/// # Examples
///
/// ```
/// use memnet_dram::{line_to_vault_bank, DramParams};
///
/// let p = DramParams::hmc_gen2();
/// assert_eq!(line_to_vault_bank(0, &p), (0, 0));
/// assert_eq!(line_to_vault_bank(1, &p), (1, 0));
/// assert_eq!(line_to_vault_bank(32, &p), (0, 1)); // wrapped to next bank
/// ```
pub fn line_to_vault_bank(line_in_hmc: u64, params: &DramParams) -> (usize, usize) {
    let vaults = params.vaults as u64;
    let banks = params.banks_per_vault as u64;
    let vault = (line_in_hmc % vaults) as usize;
    let bank = ((line_in_hmc / vaults) % banks) as usize;
    (vault, bank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consecutive_lines_rotate_vaults_first() {
        let p = DramParams::hmc_gen2();
        for i in 0..p.vaults as u64 {
            assert_eq!(line_to_vault_bank(i, &p), (i as usize, 0));
        }
        // After one full vault rotation, the bank advances.
        assert_eq!(line_to_vault_bank(p.vaults as u64, &p), (0, 1));
    }

    #[test]
    fn mapping_is_always_in_range() {
        let p = DramParams::hmc_gen2();
        for line in (0..p.lines_per_hmc()).step_by(1_048_573) {
            let (v, b) = line_to_vault_bank(line, &p);
            assert!(v < p.vaults);
            assert!(b < p.banks_per_vault);
        }
    }

    #[test]
    fn streaming_access_touches_all_banks_evenly() {
        let p = DramParams::hmc_gen2();
        let n = (p.vaults * p.banks_per_vault) as u64;
        let mut counts = vec![0u32; p.vaults * p.banks_per_vault];
        for line in 0..n {
            let (v, b) = line_to_vault_bank(line, &p);
            counts[v * p.banks_per_vault + b] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1), "perfectly balanced over one period");
    }
}
