//! Event-driven vault model: bounded command queue, read priority,
//! per-bank close-page timing, shared data bus.
//!
//! The vault is passive: the simulation engine calls [`Vault::advance`] when
//! simulated time reaches the next possible issue instant (obtained from
//! [`Vault::next_issue_time`]), and the vault returns every operation it
//! issued together with its completion time.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use memnet_simcore::{SimDuration, SimTime};

use crate::params::DramParams;

/// A memory operation submitted to a vault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultOp {
    /// Caller-chosen identifier carried through to the completion.
    pub id: u64,
    /// Target bank within the vault.
    pub bank: usize,
    /// True for reads, false for writes.
    pub is_read: bool,
    /// When the operation entered the vault queue.
    pub arrival: SimTime,
}

impl VaultOp {
    /// Convenience constructor for a read.
    pub fn read(id: u64, bank: usize, arrival: SimTime) -> Self {
        VaultOp { id, bank, is_read: true, arrival }
    }

    /// Convenience constructor for a write.
    pub fn write(id: u64, bank: usize, arrival: SimTime) -> Self {
        VaultOp { id, bank, is_read: false, arrival }
    }
}

/// An operation the vault has issued, with its resolved timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssuedOp {
    /// The original operation.
    pub op: VaultOp,
    /// When the activate command was issued.
    pub act_start: SimTime,
    /// When the operation's data burst finishes (read data available /
    /// write data absorbed).
    pub completion: SimTime,
}

impl IssuedOp {
    /// Queueing + service latency experienced by this operation.
    pub fn latency(&self) -> SimDuration {
        self.completion - self.op.arrival
    }
}

/// Error returned when a vault's command buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VaultFull;

impl fmt::Display for VaultFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("vault command buffer is full")
    }
}

impl Error for VaultFull {}

/// One HMC vault: command queue, banks, and TSV data bus.
///
/// # Examples
///
/// ```
/// use memnet_dram::{DramParams, Vault, VaultOp};
/// use memnet_simcore::SimTime;
///
/// let p = DramParams::hmc_gen2();
/// let mut v = Vault::new(&p, SimTime::ZERO);
/// v.enqueue(VaultOp::write(0, 0, SimTime::ZERO))?;
/// v.enqueue(VaultOp::read(1, 1, SimTime::ZERO))?;
/// let issued = v.advance(SimTime::ZERO);
/// // The read issues first even though the write arrived first.
/// assert!(issued[0].op.is_read);
/// # Ok::<(), memnet_dram::VaultFull>(())
/// ```
#[derive(Debug, Clone)]
pub struct Vault {
    tcl: SimDuration,
    trcd: SimDuration,
    tras: SimDuration,
    trp: SimDuration,
    trrd: SimDuration,
    twr: SimDuration,
    burst: SimDuration,
    buffer_entries: usize,

    /// Per-bank earliest next-activate time (close page: precharge done).
    bank_ready: Vec<SimTime>,
    /// Earliest next activate anywhere in the vault (tRRD window).
    next_act_allowed: SimTime,
    /// Data bus free time.
    bus_free: SimTime,

    reads: VecDeque<VaultOp>,
    writes: VecDeque<VaultOp>,

    reads_issued: u64,
    writes_issued: u64,
    read_latency_total: SimDuration,
}

impl Vault {
    /// Creates an idle vault at time `start`.
    ///
    /// # Panics
    ///
    /// Panics if `params` fails [`DramParams::validate`].
    pub fn new(params: &DramParams, start: SimTime) -> Self {
        params.validate().expect("invalid DRAM parameters");
        Vault {
            tcl: params.tcl,
            trcd: params.trcd,
            tras: params.tras,
            trp: params.trp,
            trrd: params.trrd,
            twr: params.twr,
            burst: params.line_burst_time(),
            buffer_entries: params.vault_buffer_entries,
            bank_ready: vec![start; params.banks_per_vault],
            next_act_allowed: start,
            bus_free: start,
            reads: VecDeque::new(),
            writes: VecDeque::new(),
            reads_issued: 0,
            writes_issued: 0,
            read_latency_total: SimDuration::ZERO,
        }
    }

    /// Number of queued (not yet issued) operations.
    pub fn occupancy(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// True if another operation can be enqueued.
    pub fn has_space(&self) -> bool {
        self.occupancy() < self.buffer_entries
    }

    /// Adds an operation to the command queue.
    ///
    /// # Errors
    ///
    /// Returns [`VaultFull`] if the buffer is at capacity.
    ///
    /// # Panics
    ///
    /// Panics if `op.bank` is out of range.
    pub fn enqueue(&mut self, op: VaultOp) -> Result<(), VaultFull> {
        assert!(op.bank < self.bank_ready.len(), "bank {} out of range", op.bank);
        if !self.has_space() {
            return Err(VaultFull);
        }
        if op.is_read {
            self.reads.push_back(op);
        } else {
            self.writes.push_back(op);
        }
        Ok(())
    }

    /// The next operation the scheduler would pick (reads before writes).
    fn head(&self) -> Option<&VaultOp> {
        self.reads.front().or_else(|| self.writes.front())
    }

    /// Earliest time the head operation's activate could issue, given bank,
    /// tRRD and arrival constraints. `None` when the queue is empty.
    pub fn next_issue_time(&self, now: SimTime) -> Option<SimTime> {
        self.head()
            .map(|op| self.bank_ready[op.bank].max(self.next_act_allowed).max(op.arrival).max(now))
    }

    /// Issues every operation whose activate can start at or before `now`,
    /// returning them with resolved completion times (ascending).
    ///
    /// Allocates a fresh `Vec` per call; the engine's hot loop uses
    /// [`Vault::advance_into`] with a reused scratch buffer instead.
    pub fn advance(&mut self, now: SimTime) -> Vec<IssuedOp> {
        let mut issued = Vec::new();
        self.advance_into(now, &mut issued);
        issued
    }

    /// Allocation-free form of [`Vault::advance`]: appends every issued
    /// operation to `issued` (completion times ascending) instead of
    /// returning a new vector.
    pub fn advance_into(&mut self, now: SimTime, issued: &mut Vec<IssuedOp>) {
        while let Some(op) = self.head().copied() {
            let act_start = self.bank_ready[op.bank].max(self.next_act_allowed).max(op.arrival);
            if act_start > now {
                break;
            }
            // Dequeue from the appropriate priority class.
            if op.is_read {
                self.reads.pop_front();
            } else {
                self.writes.pop_front();
            }

            // Close-page sequence: ACT, column access, burst, auto-precharge.
            let column_ready = act_start + self.trcd + self.tcl;
            let burst_start = column_ready.max(self.bus_free);
            let burst_end = burst_start + self.burst;
            self.bus_free = burst_end;
            self.next_act_allowed = act_start + self.trrd;

            // Precharge may begin only after tRAS and (for writes) the write
            // recovery window following the last data.
            let precharge_start = if op.is_read {
                (act_start + self.tras).max(burst_end)
            } else {
                (act_start + self.tras).max(burst_end + self.twr)
            };
            self.bank_ready[op.bank] = precharge_start + self.trp;

            if op.is_read {
                self.reads_issued += 1;
                self.read_latency_total += burst_end - op.arrival;
            } else {
                self.writes_issued += 1;
            }
            issued.push(IssuedOp { op, act_start, completion: burst_end });
        }
    }

    /// Reads issued so far.
    pub fn reads_issued(&self) -> u64 {
        self.reads_issued
    }

    /// Writes issued so far.
    pub fn writes_issued(&self) -> u64 {
        self.writes_issued
    }

    /// Sum of (completion − arrival) over all issued reads.
    pub fn read_latency_total(&self) -> SimDuration {
        self.read_latency_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> DramParams {
        DramParams::hmc_gen2()
    }

    #[test]
    fn unloaded_read_takes_nominal_latency() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        v.enqueue(VaultOp::read(1, 0, SimTime::ZERO)).unwrap();
        let issued = v.advance(SimTime::ZERO);
        assert_eq!(issued.len(), 1);
        assert_eq!(issued[0].completion, SimTime::ZERO + p.nominal_read_latency());
        assert_eq!(issued[0].latency(), p.nominal_read_latency());
    }

    #[test]
    fn reads_preempt_queued_writes() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        v.enqueue(VaultOp::write(0, 0, SimTime::ZERO)).unwrap();
        v.enqueue(VaultOp::write(1, 1, SimTime::ZERO)).unwrap();
        v.enqueue(VaultOp::read(2, 2, SimTime::ZERO)).unwrap();
        let first = v.advance(SimTime::ZERO);
        assert!(first[0].op.is_read, "read must issue before older writes");
    }

    #[test]
    fn same_bank_back_to_back_waits_for_row_cycle() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        v.enqueue(VaultOp::read(1, 0, SimTime::ZERO)).unwrap();
        v.enqueue(VaultOp::read(2, 0, SimTime::ZERO)).unwrap();
        let first = v.advance(SimTime::ZERO);
        assert_eq!(first.len(), 1, "second read must wait for precharge");
        // Read: precharge starts at max(tRAS, burst_end)=30ns, ready at 41ns.
        let t2 = v.next_issue_time(SimTime::ZERO).unwrap();
        assert_eq!(t2, SimTime::from_ps(41_000));
        let second = v.advance(t2);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].act_start, t2);
    }

    #[test]
    fn different_banks_respect_trrd_only() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        v.enqueue(VaultOp::read(1, 0, SimTime::ZERO)).unwrap();
        v.enqueue(VaultOp::read(2, 1, SimTime::ZERO)).unwrap();
        let t = SimTime::ZERO + p.trrd;
        let mut issued = v.advance(SimTime::ZERO);
        issued.extend(v.advance(t));
        assert_eq!(issued.len(), 2);
        assert_eq!(issued[1].act_start - issued[0].act_start, p.trrd);
        // Bursts serialize on the shared bus.
        assert!(issued[1].completion >= issued[0].completion + SimDuration::ZERO);
        assert_eq!(issued[1].completion - issued[0].completion, p.line_burst_time());
    }

    #[test]
    fn write_recovery_delays_bank_reuse() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        v.enqueue(VaultOp::write(1, 0, SimTime::ZERO)).unwrap();
        v.enqueue(VaultOp::write(2, 0, SimTime::ZERO)).unwrap();
        v.advance(SimTime::ZERO);
        // Write burst ends at 30 ns; precharge at 30+tWR=42 ns; ready at 53 ns.
        let t2 = v.next_issue_time(SimTime::ZERO).unwrap();
        assert_eq!(t2, SimTime::from_ps(53_000));
    }

    #[test]
    fn buffer_capacity_is_enforced() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        for i in 0..p.vault_buffer_entries as u64 {
            v.enqueue(VaultOp::read(i, 0, SimTime::ZERO)).unwrap();
        }
        assert!(!v.has_space());
        assert_eq!(v.enqueue(VaultOp::read(99, 0, SimTime::ZERO)), Err(VaultFull));
    }

    #[test]
    fn stats_accumulate() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        v.enqueue(VaultOp::read(1, 0, SimTime::ZERO)).unwrap();
        v.enqueue(VaultOp::write(2, 1, SimTime::ZERO)).unwrap();
        let mut t = SimTime::ZERO;
        while v.occupancy() > 0 {
            t = v.next_issue_time(t).unwrap();
            v.advance(t);
        }
        assert_eq!(v.reads_issued(), 1);
        assert_eq!(v.writes_issued(), 1);
        assert_eq!(v.read_latency_total(), p.nominal_read_latency());
    }

    #[test]
    fn arrival_time_gates_issue() {
        let p = params();
        let mut v = Vault::new(&p, SimTime::ZERO);
        let arrival = SimTime::from_ps(5_000);
        v.enqueue(VaultOp::read(1, 0, arrival)).unwrap();
        assert!(v.advance(SimTime::ZERO).is_empty());
        assert_eq!(v.next_issue_time(SimTime::ZERO), Some(arrival));
        let issued = v.advance(arrival);
        assert_eq!(issued[0].act_start, arrival);
    }
}
