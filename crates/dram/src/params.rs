//! DRAM array parameters (paper Table I).

use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// HMC DRAM array parameters.
///
/// Defaults come from Table I of the paper; all timing values are stored as
/// picosecond durations so arithmetic stays exact.
///
/// # Examples
///
/// ```
/// use memnet_dram::DramParams;
///
/// let p = DramParams::hmc_gen2();
/// assert_eq!(p.vaults, 32);
/// assert_eq!(p.line_burst_time().as_ns(), 8.0);
/// assert_eq!(p.nominal_read_latency().as_ns(), 30.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramParams {
    /// Total capacity of one HMC, in bytes (Table I: 4 GB).
    pub capacity_bytes: u64,
    /// Number of vaults per HMC (Table I: 32).
    pub vaults: usize,
    /// Banks per vault. Table I does not list this; HMC gen2 uses 8 banks
    /// per vault for 4 GB cubes, which we adopt.
    pub banks_per_vault: usize,
    /// Vault data rate per TSV lane, bits per second (Table I: 2 Gbps).
    pub vault_data_rate_bps: u64,
    /// Vault I/O width in bits (Table I: x32).
    pub vault_io_bits: u32,
    /// Vault command-buffer entries (Table I: 16).
    pub vault_buffer_entries: usize,
    /// Cache-line / memory-access granularity in bytes (64 B).
    pub line_bytes: u64,
    /// CAS latency.
    pub tcl: SimDuration,
    /// RAS-to-CAS (activate) delay.
    pub trcd: SimDuration,
    /// Row-active minimum time.
    pub tras: SimDuration,
    /// Row precharge time.
    pub trp: SimDuration,
    /// Activate-to-activate delay between banks of the same vault.
    pub trrd: SimDuration,
    /// Write recovery time (last write data to precharge).
    pub twr: SimDuration,
}

impl DramParams {
    /// The paper's Table I configuration: a 4 GB, 32-vault HMC.
    pub fn hmc_gen2() -> Self {
        DramParams {
            capacity_bytes: 4 << 30,
            vaults: 32,
            banks_per_vault: 8,
            vault_data_rate_bps: 2_000_000_000,
            vault_io_bits: 32,
            vault_buffer_entries: 16,
            line_bytes: 64,
            tcl: SimDuration::from_ns(11),
            trcd: SimDuration::from_ns(11),
            tras: SimDuration::from_ns(22),
            trp: SimDuration::from_ns(11),
            trrd: SimDuration::from_ns(5),
            twr: SimDuration::from_ns(12),
        }
    }

    /// Time to burst one line over the vault data bus.
    ///
    /// With Table I values: 64 B × 8 bits / (32 lanes × 2 Gbps) = 8 ns.
    pub fn line_burst_time(&self) -> SimDuration {
        let bits = self.line_bytes * 8;
        let bps = self.vault_data_rate_bps * u64::from(self.vault_io_bits);
        // bits / bps seconds = bits * 1e12 / bps picoseconds.
        SimDuration::from_ps(bits * 1_000_000_000_000 / bps)
    }

    /// Unloaded close-page read latency: tRCD + tCL + burst.
    ///
    /// This is the "DRAM access latency (e.g., 30 ns)" the paper's
    /// management policies use when charging DRAM latency to a module's
    /// actual epoch latency.
    pub fn nominal_read_latency(&self) -> SimDuration {
        self.trcd + self.tcl + self.line_burst_time()
    }

    /// Peak data bandwidth of one vault, bytes per second.
    pub fn vault_peak_bandwidth(&self) -> f64 {
        self.vault_data_rate_bps as f64 * f64::from(self.vault_io_bits) / 8.0
    }

    /// Peak data bandwidth of all vaults in one HMC, bytes per second.
    pub fn hmc_peak_bandwidth(&self) -> f64 {
        self.vault_peak_bandwidth() * self.vaults as f64
    }

    /// Number of 64 B lines the HMC holds.
    pub fn lines_per_hmc(&self) -> u64 {
        self.capacity_bytes / self.line_bytes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.vaults == 0 {
            return Err("vaults must be positive".into());
        }
        if self.banks_per_vault == 0 {
            return Err("banks_per_vault must be positive".into());
        }
        if self.vault_buffer_entries == 0 {
            return Err("vault_buffer_entries must be positive".into());
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err("line_bytes must be a positive power of two".into());
        }
        if !self.capacity_bytes.is_multiple_of(self.line_bytes * self.vaults as u64) {
            return Err("capacity must divide evenly into lines across vaults".into());
        }
        if self.tras < self.trcd {
            return Err("tRAS must be at least tRCD".into());
        }
        Ok(())
    }
}

impl Default for DramParams {
    fn default() -> Self {
        DramParams::hmc_gen2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_derived_values() {
        let p = DramParams::hmc_gen2();
        assert_eq!(p.line_burst_time(), SimDuration::from_ns(8));
        assert_eq!(p.nominal_read_latency(), SimDuration::from_ns(30));
        assert_eq!(p.vault_peak_bandwidth(), 8e9);
        assert_eq!(p.hmc_peak_bandwidth(), 256e9);
        assert_eq!(p.lines_per_hmc(), (4u64 << 30) / 64);
        p.validate().expect("defaults are valid");
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut p = DramParams::hmc_gen2();
        p.vaults = 0;
        assert!(p.validate().is_err());

        let mut p = DramParams::hmc_gen2();
        p.line_bytes = 48;
        assert!(p.validate().is_err());

        let mut p = DramParams::hmc_gen2();
        p.tras = SimDuration::from_ns(5);
        assert!(p.validate().is_err());
    }
}
