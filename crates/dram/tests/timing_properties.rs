//! Property tests: the vault never violates DRAM timing constraints,
//! regardless of the traffic thrown at it.

use memnet_dram::{DramParams, IssuedOp, Vault, VaultOp};
use memnet_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

/// Drives the vault to completion over an arbitrary op sequence, collecting
/// every issued operation.
fn run_vault(params: &DramParams, ops: Vec<(u64, usize, bool)>) -> Vec<IssuedOp> {
    let mut vault = Vault::new(params, SimTime::ZERO);
    let mut issued = Vec::new();
    let mut now = SimTime::ZERO;
    let mut pending = ops.into_iter().enumerate();
    let mut next = pending.next();

    loop {
        // Feed ops as space allows; arrivals are spaced 2 ns apart.
        while vault.has_space() {
            match next.take() {
                Some((i, (id, bank, is_read))) => {
                    let arrival = SimTime::from_ps(i as u64 * 2_000);
                    let op = if is_read {
                        VaultOp::read(id, bank, arrival)
                    } else {
                        VaultOp::write(id, bank, arrival)
                    };
                    vault.enqueue(op).expect("space was checked");
                    next = pending.next();
                }
                None => break,
            }
        }
        match vault.next_issue_time(now) {
            Some(t) => {
                now = t;
                issued.extend(vault.advance(now));
            }
            None => {
                if next.is_none() {
                    break;
                }
                // Queue drained but more ops remain: jump to next arrival.
                now += SimDuration::from_ns(2);
            }
        }
    }
    issued
}

fn op_strategy(banks: usize) -> impl Strategy<Value = Vec<(u64, usize, bool)>> {
    prop::collection::vec((any::<u64>(), 0..banks, any::<bool>()), 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn activates_respect_trrd(ops in op_strategy(8)) {
        let p = DramParams::hmc_gen2();
        let issued = run_vault(&p, ops);
        for w in issued.windows(2) {
            prop_assert!(
                w[1].act_start >= w[0].act_start + p.trrd,
                "tRRD violated: {:?} then {:?}", w[0], w[1]
            );
        }
    }

    #[test]
    fn per_bank_row_cycle_is_respected(ops in op_strategy(4)) {
        let p = DramParams::hmc_gen2();
        let issued = run_vault(&p, ops);
        let mut last_per_bank: Vec<Option<&IssuedOp>> = vec![None; p.banks_per_vault];
        for op in &issued {
            if let Some(prev) = last_per_bank[op.op.bank] {
                // Minimum separation: previous precharge must complete.
                let min_ready = if prev.op.is_read {
                    (prev.act_start + p.tras).max(prev.completion) + p.trp
                } else {
                    (prev.act_start + p.tras).max(prev.completion + p.twr) + p.trp
                };
                prop_assert!(
                    op.act_start >= min_ready,
                    "row cycle violated on bank {}", op.op.bank
                );
            }
            last_per_bank[op.op.bank] = Some(op);
        }
    }

    #[test]
    fn bus_bursts_never_overlap(ops in op_strategy(8)) {
        let p = DramParams::hmc_gen2();
        let issued = run_vault(&p, ops);
        let burst = p.line_burst_time();
        for w in issued.windows(2) {
            prop_assert!(
                w[1].completion >= w[0].completion + burst,
                "data bursts overlap on the shared vault bus"
            );
        }
    }

    #[test]
    fn all_ops_complete_exactly_once(ops in op_strategy(8)) {
        let p = DramParams::hmc_gen2();
        let n = ops.len();
        let issued = run_vault(&p, ops);
        prop_assert_eq!(issued.len(), n);
    }

    #[test]
    fn completions_are_monotone(ops in op_strategy(8)) {
        let p = DramParams::hmc_gen2();
        let issued = run_vault(&p, ops);
        for w in issued.windows(2) {
            prop_assert!(w[1].completion > w[0].completion);
        }
    }

    #[test]
    fn latency_is_at_least_unloaded_service_time(ops in op_strategy(8)) {
        let p = DramParams::hmc_gen2();
        let issued = run_vault(&p, ops);
        for op in issued {
            prop_assert!(op.latency() >= p.nominal_read_latency());
        }
    }
}
