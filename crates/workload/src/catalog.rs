//! The 14 paper workloads (seven NAS HPC + seven cloud mixes) and the
//! Table III mixed-workload composition.
//!
//! Parameter values are calibrated to the characteristics the paper
//! publishes: footprints average ~17 GB (Figure 4), channel utilizations
//! average 43 % with sp.D lowest and mixB highest at ~75 % (Figure 9), and
//! CDF control points reproduce Figure 4's shapes, including flat cold
//! ranges in cg.D/is.D and the hot low-address regions of the cloud mixes
//! (applications are invoked in order, so the first-invoked hot
//! applications own low physical addresses).

use memnet_simcore::SimDuration;

use crate::spec::{WorkloadClass, WorkloadSpec};

/// Table III: the composition of each mixed cloud workload, in invocation
/// order (invocation order determines memory allocation order).
pub const MIX_COMPOSITION: [(&str, &str); 7] = [
    ("mixA", "4 bwaves, 4 cactusADM, 4 wrf, 4T ocean_cp"),
    ("mixB", "4 mcf, 4 GemsFDTD, 4T barnes, 4T radiosity"),
    ("mixC", "4 omnetpp, 4 mcf, 4 wrf, 4T ocean_cp"),
    ("mixD", "4 sjeng, 4 cactusADM, 4T radiosity, 4T fft"),
    ("mixE", "4 cactusADM, 4 sjeng, 4 wrf, 4T fft"),
    ("mixF", "4 cactusADM, 4 bwaves, 4 sjeng, 4T fft"),
    ("mixG", "4 mcf, 4 omnetpp, 4 astar, 4T fft"),
];

macro_rules! workload {
    ($name:literal, $class:ident, $fp:literal GB, util $util:literal,
     on $on:literal, burst_us $burst:literal, cdf $cdf:expr) => {
        WorkloadSpec {
            name: $name,
            class: WorkloadClass::$class,
            footprint_gb: $fp,
            channel_utilization: $util,
            read_fraction: 2.0 / 3.0,
            cdf_points: $cdf,
            on_fraction: $on,
            burst_mean: SimDuration::from_us($burst),
        }
    };
}

/// All 14 workloads, HPC first, in the order the paper's figures use.
pub fn all() -> Vec<WorkloadSpec> {
    vec![
        // --- NAS class D, 16 threads ---
        workload!("ua.D", Hpc, 14 GB, util 0.45, on 0.70, burst_us 3,
            cdf &[(0.0, 0.0), (6.0, 0.55), (14.0, 1.0)]),
        workload!("lu.D", Hpc, 10 GB, util 0.55, on 0.90, burst_us 4,
            cdf &[(0.0, 0.0), (5.0, 0.60), (10.0, 1.0)]),
        workload!("bt.D", Hpc, 22 GB, util 0.35, on 0.60, burst_us 3,
            cdf &[(0.0, 0.0), (8.0, 0.50), (22.0, 1.0)]),
        workload!("sp.D", Hpc, 22 GB, util 0.08, on 0.30, burst_us 1,
            cdf &[(0.0, 0.0), (10.0, 0.50), (22.0, 1.0)]),
        workload!("cg.D", Hpc, 30 GB, util 0.30, on 0.50, burst_us 2,
            cdf &[(0.0, 0.0), (8.0, 0.60), (20.0, 0.70), (30.0, 1.0)]),
        workload!("mg.D", Hpc, 26 GB, util 0.50, on 0.80, burst_us 3,
            cdf &[(0.0, 0.0), (10.0, 0.45), (26.0, 1.0)]),
        workload!("is.D", Hpc, 36 GB, util 0.25, on 0.40, burst_us 2,
            cdf &[(0.0, 0.0), (6.0, 0.50), (28.0, 0.60), (36.0, 1.0)]),
        // --- Cloud mixes (Table III) ---
        workload!("mixA", Cloud, 14 GB, util 0.55, on 0.70, burst_us 2,
            cdf &[(0.0, 0.0), (4.0, 0.45), (9.0, 0.75), (14.0, 1.0)]),
        workload!("mixB", Cloud, 12 GB, util 0.75, on 0.90, burst_us 3,
            cdf &[(0.0, 0.0), (3.0, 0.50), (7.0, 0.80), (12.0, 1.0)]),
        workload!("mixC", Cloud, 12 GB, util 0.60, on 0.75, burst_us 2,
            cdf &[(0.0, 0.0), (4.0, 0.55), (8.0, 0.80), (12.0, 1.0)]),
        workload!("mixD", Cloud, 8 GB, util 0.30, on 0.50, burst_us 1,
            cdf &[(0.0, 0.0), (2.0, 0.40), (6.0, 0.80), (8.0, 1.0)]),
        workload!("mixE", Cloud, 8 GB, util 0.35, on 0.50, burst_us 2,
            cdf &[(0.0, 0.0), (3.0, 0.50), (8.0, 1.0)]),
        workload!("mixF", Cloud, 10 GB, util 0.40, on 0.60, burst_us 2,
            cdf &[(0.0, 0.0), (3.0, 0.45), (10.0, 1.0)]),
        workload!("mixG", Cloud, 12 GB, util 0.60, on 0.70, burst_us 2,
            cdf &[(0.0, 0.0), (4.0, 0.60), (9.0, 0.85), (12.0, 1.0)]),
    ]
}

/// Looks up one workload by its paper name.
pub fn by_name(name: &str) -> Option<WorkloadSpec> {
    all().into_iter().find(|w| w.name == name)
}

/// The 14 workload names in figure order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|w| w.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_workloads_all_valid() {
        let ws = all();
        assert_eq!(ws.len(), 14);
        for w in &ws {
            w.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn average_footprint_matches_paper() {
        let ws = all();
        let avg = ws.iter().map(|w| w.footprint_gb as f64).sum::<f64>() / ws.len() as f64;
        assert!((16.0..18.0).contains(&avg), "paper reports 17 GB average footprint, got {avg}");
    }

    #[test]
    fn average_channel_utilization_matches_paper() {
        let ws = all();
        let avg = ws.iter().map(|w| w.channel_utilization).sum::<f64>() / ws.len() as f64;
        assert!(
            (0.40..0.46).contains(&avg),
            "paper reports 43 % average channel utilization, got {avg}"
        );
    }

    #[test]
    fn sp_d_is_least_and_mixb_most_utilized() {
        let ws = all();
        let min = ws.iter().min_by(|a, b| a.channel_utilization.total_cmp(&b.channel_utilization));
        let max = ws.iter().max_by(|a, b| a.channel_utilization.total_cmp(&b.channel_utilization));
        assert_eq!(min.unwrap().name, "sp.D");
        assert_eq!(max.unwrap().name, "mixB");
        assert!((max.unwrap().channel_utilization - 0.75).abs() < 1e-12);
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("cg.D").is_some());
        assert!(by_name("mixG").is_some());
        assert!(by_name("nope").is_none());
        assert_eq!(names().len(), 14);
    }

    #[test]
    fn hpc_and_cloud_split_seven_seven() {
        let ws = all();
        let hpc = ws.iter().filter(|w| w.class == WorkloadClass::Hpc).count();
        assert_eq!(hpc, 7);
        assert_eq!(ws.len() - hpc, 7);
        assert_eq!(MIX_COMPOSITION.len(), 7);
    }

    #[test]
    fn mix_names_align_with_composition_table() {
        let ws = all();
        for (name, _) in MIX_COMPOSITION {
            assert!(ws.iter().any(|w| w.name == name), "{name} missing");
        }
    }
}
