//! Piecewise-linear address CDFs: inverse-transform sampling and Figure 4
//! series generation.

use memnet_simcore::SplitMix64;

use crate::spec::WorkloadSpec;

/// A sampled cumulative distribution over a workload's address space.
///
/// Built from a spec's control points; supports `O(log n)` inverse
/// sampling (uniform random → line address) and forward evaluation
/// (address → cumulative fraction, the Figure 4 series).
///
/// # Examples
///
/// ```
/// use memnet_simcore::SplitMix64;
/// use memnet_workload::{catalog, AddressCdf};
///
/// let spec = catalog::by_name("cg.D").expect("known workload");
/// let cdf = AddressCdf::from_spec(&spec);
/// let mut rng = SplitMix64::new(1);
/// let line = cdf.sample_line(&mut rng);
/// assert!(line < spec.total_lines());
/// ```
#[derive(Debug, Clone)]
pub struct AddressCdf {
    /// Control points `(gb, cumulative)`, strictly increasing in gb.
    points: Vec<(f64, f64)>,
    footprint_gb: f64,
    total_lines: u64,
}

impl AddressCdf {
    /// Builds a CDF from a validated workload spec.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn from_spec(spec: &WorkloadSpec) -> Self {
        spec.validate().expect("invalid workload spec");
        AddressCdf {
            points: spec.cdf_points.to_vec(),
            footprint_gb: spec.footprint_gb as f64,
            total_lines: spec.total_lines(),
        }
    }

    /// Cumulative fraction of accesses at or below `gb` into the footprint
    /// (forward evaluation; the Figure 4 y-value).
    pub fn fraction_at(&self, gb: f64) -> f64 {
        if gb <= 0.0 {
            return 0.0;
        }
        if gb >= self.footprint_gb {
            return 1.0;
        }
        // Find the segment containing gb.
        let idx = self.points.windows(2).position(|w| gb <= w[1].0).expect("gb within footprint");
        let (x0, y0) = self.points[idx];
        let (x1, y1) = self.points[idx + 1];
        y0 + (y1 - y0) * (gb - x0) / (x1 - x0)
    }

    /// Inverse evaluation: the GB offset at cumulative fraction `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]`.
    pub fn quantile(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "u must be in [0,1], got {u}");
        if u <= 0.0 {
            return 0.0;
        }
        if u >= 1.0 {
            // The top of the CDF may be a run of flat (cold) segments
            // that never receive mass; returning the raw footprint here
            // would place u == 1.0 *past* the last line of the footprint
            // (`total_lines()` exactly, before clamping). All remaining
            // mass sits at the start of the trailing flat run.
            let mut i = self.points.len() - 1;
            while i > 0 && self.points[i].1 <= self.points[i - 1].1 {
                i -= 1;
            }
            return self.points[i].0;
        }
        let idx = self.points.windows(2).position(|w| u <= w[1].1).expect("u within [0,1]");
        let (x0, y0) = self.points[idx];
        let (x1, y1) = self.points[idx + 1];
        if y1 == y0 {
            // Flat (cold) segment: all mass sits at its start.
            return x0;
        }
        x0 + (x1 - x0) * (u - y0) / (y1 - y0)
    }

    /// Samples a line address according to the CDF.
    pub fn sample_line(&self, rng: &mut SplitMix64) -> u64 {
        let gb = self.quantile(rng.next_f64());
        let lines_per_gb = (1u64 << 30) / 64;
        let line = (gb * lines_per_gb as f64) as u64;
        line.min(self.total_lines - 1)
    }

    /// The Figure 4 series: cumulative fraction at each integer GB from 0
    /// through `max_gb`.
    pub fn figure4_series(&self, max_gb: u64) -> Vec<f64> {
        (0..=max_gb).map(|g| self.fraction_at(g as f64)).collect()
    }

    /// Footprint in GB.
    pub fn footprint_gb(&self) -> f64 {
        self.footprint_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use crate::spec::WorkloadClass;
    use memnet_simcore::SimDuration;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "t",
            class: WorkloadClass::Hpc,
            footprint_gb: 10,
            channel_utilization: 0.4,
            read_fraction: 2.0 / 3.0,
            cdf_points: &[(0.0, 0.0), (2.0, 0.8), (10.0, 1.0)],
            on_fraction: 0.5,
            burst_mean: SimDuration::from_us(1),
        }
    }

    #[test]
    fn forward_and_inverse_are_consistent() {
        let cdf = AddressCdf::from_spec(&spec());
        for &u in &[0.1, 0.25, 0.5, 0.79, 0.85, 0.99] {
            let gb = cdf.quantile(u);
            assert!((cdf.fraction_at(gb) - u).abs() < 1e-9, "u={u}");
        }
    }

    #[test]
    fn boundaries() {
        let cdf = AddressCdf::from_spec(&spec());
        assert_eq!(cdf.fraction_at(0.0), 0.0);
        assert_eq!(cdf.fraction_at(10.0), 1.0);
        assert_eq!(cdf.fraction_at(20.0), 1.0);
        assert_eq!(cdf.quantile(0.0), 0.0);
        assert_eq!(cdf.quantile(1.0), 10.0);
    }

    #[test]
    fn flat_top_quantile_stays_at_the_last_mass() {
        // A CDF whose top is cold: all mass lives in the first 2 GB, the
        // remaining 8 GB are never touched. u == 1.0 must map into the
        // hot region, not to the footprint edge (which would be
        // total_lines before clamping).
        let mut s = spec();
        s.cdf_points = &[(0.0, 0.0), (2.0, 1.0), (10.0, 1.0)];
        let cdf = AddressCdf::from_spec(&s);
        assert_eq!(cdf.quantile(1.0), 2.0);
        let lines_per_gb = (1u64 << 30) / 64;
        let mut rng = SplitMix64::new(17);
        for _ in 0..10_000 {
            assert!(cdf.sample_line(&mut rng) <= 2 * lines_per_gb);
        }
    }

    #[test]
    fn hot_region_receives_its_share_of_samples() {
        let cdf = AddressCdf::from_spec(&spec());
        let mut rng = SplitMix64::new(7);
        let n = 100_000;
        let lines_per_gb = (1u64 << 30) / 64;
        let hot = (0..n).filter(|_| cdf.sample_line(&mut rng) < 2 * lines_per_gb).count();
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "hot fraction {frac}, expected 0.8");
    }

    #[test]
    fn samples_stay_in_range() {
        let cdf = AddressCdf::from_spec(&spec());
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(cdf.sample_line(&mut rng) < spec().total_lines());
        }
    }

    #[test]
    fn figure4_series_is_monotone_for_all_workloads() {
        for w in catalog::all() {
            let cdf = AddressCdf::from_spec(&w);
            let series = cdf.figure4_series(38);
            assert_eq!(series.len(), 39);
            for pair in series.windows(2) {
                assert!(pair[1] >= pair[0] - 1e-12, "{} series not monotone", w.name);
            }
            assert!((series[38] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cold_ranges_attract_few_samples() {
        // cg.D has a near-flat segment from 8..20 GB holding only 10 % of
        // accesses over 40 % of the footprint.
        let w = catalog::by_name("cg.D").unwrap();
        let cdf = AddressCdf::from_spec(&w);
        let mut rng = SplitMix64::new(11);
        let lines_per_gb = (1u64 << 30) / 64;
        let n = 100_000;
        let cold = (0..n)
            .filter(|_| {
                let l = cdf.sample_line(&mut rng);
                l >= 8 * lines_per_gb && l < 20 * lines_per_gb
            })
            .count();
        let frac = cold as f64 / n as f64;
        assert!((frac - 0.10).abs() < 0.01, "cold fraction {frac}");
    }
}
