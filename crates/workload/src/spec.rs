//! Workload parameter sets.

use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Whether a workload is an HPC (NAS) benchmark or a mixed cloud workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// 16-threaded NAS class D benchmark.
    Hpc,
    /// Four-application mixed cloud workload (Table III).
    Cloud,
}

/// A calibrated synthetic workload.
///
/// See the crate docs for how the fields map onto the characteristics the
/// paper publishes. (Serializable for experiment logs; not deserializable —
/// specs are static data in [`crate::catalog`].)
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Workload name as the paper reports it ("ua.D", "mixB", ...).
    pub name: &'static str,
    /// HPC or cloud.
    pub class: WorkloadClass,
    /// Memory footprint in GB (Figure 4 x-extent).
    pub footprint_gb: u64,
    /// Target utilization of the processor channel's response link
    /// (Figure 9 "chan" series).
    pub channel_utilization: f64,
    /// Fraction of memory accesses that are reads.
    pub read_fraction: f64,
    /// Piecewise-linear cumulative access CDF over the footprint:
    /// `(gb_offset, cumulative_fraction)` control points. Must start at
    /// `(0, 0)` and end at `(footprint_gb, 1)`.
    pub cdf_points: &'static [(f64, f64)],
    /// Fraction of wall time the workload actively issues requests
    /// (two-state on/off arrival modulation; lower = burstier).
    pub on_fraction: f64,
    /// Mean duration of one ON burst.
    pub burst_mean: SimDuration,
}

impl WorkloadSpec {
    /// Number of 64 B lines in the footprint.
    pub fn total_lines(&self) -> u64 {
        self.footprint_gb * (1 << 30) / 64
    }

    /// Mean inter-arrival time between memory accesses that achieves the
    /// target channel utilization.
    ///
    /// The channel's *response* link is the busier direction (every read
    /// returns five flits vs. a one-flit request), so it calibrates the
    /// rate: `util = λ_read × 5 flits × 0.64 ns`, and the total access
    /// rate is `λ_read / read_fraction`.
    pub fn mean_interarrival(&self) -> SimDuration {
        let flit_ps = 640.0;
        let read_ia_ps = 5.0 * flit_ps / self.channel_utilization;
        SimDuration::from_ps((read_ia_ps * self.read_fraction).round() as u64)
    }

    /// Mean duration of one OFF (quiet) period, derived from
    /// [`on_fraction`](Self::on_fraction) and
    /// [`burst_mean`](Self::burst_mean).
    pub fn quiet_mean(&self) -> SimDuration {
        // on_fraction = on / (on + off)  =>  off = on * (1 - f) / f.
        self.burst_mean.mul_f64((1.0 - self.on_fraction) / self.on_fraction)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.footprint_gb == 0 {
            return Err(format!("{}: footprint must be positive", self.name));
        }
        if !(0.0 < self.channel_utilization && self.channel_utilization <= 1.0) {
            return Err(format!("{}: channel utilization out of (0,1]", self.name));
        }
        if !(0.0 < self.read_fraction && self.read_fraction <= 1.0) {
            return Err(format!("{}: read fraction out of (0,1]", self.name));
        }
        if !(0.0 < self.on_fraction && self.on_fraction <= 1.0) {
            return Err(format!(
                "{}: on fraction must be in (0, 1] (0 would mean an infinite-rate burst \
                 process), got {}",
                self.name, self.on_fraction
            ));
        }
        if self.burst_mean.is_zero() {
            return Err(format!("{}: burst mean must be positive", self.name));
        }
        let pts = self.cdf_points;
        if pts.len() < 2 {
            return Err(format!("{}: CDF needs at least two points", self.name));
        }
        if pts[0] != (0.0, 0.0) {
            return Err(format!("{}: CDF must start at (0,0)", self.name));
        }
        let last = pts[pts.len() - 1];
        if (last.0 - self.footprint_gb as f64).abs() > 1e-9 || (last.1 - 1.0).abs() > 1e-9 {
            return Err(format!("{}: CDF must end at (footprint, 1)", self.name));
        }
        for w in pts.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(format!("{}: CDF x must strictly increase", self.name));
            }
            if w[1].1 < w[0].1 {
                return Err(format!("{}: CDF must be non-decreasing", self.name));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> WorkloadSpec {
        WorkloadSpec {
            name: "toy",
            class: WorkloadClass::Hpc,
            footprint_gb: 8,
            channel_utilization: 0.5,
            read_fraction: 2.0 / 3.0,
            cdf_points: &[(0.0, 0.0), (4.0, 0.75), (8.0, 1.0)],
            on_fraction: 0.5,
            burst_mean: SimDuration::from_us(2),
        }
    }

    #[test]
    fn interarrival_hits_target_utilization() {
        let s = toy();
        // λ_read = util / 3.2ns = 0.15625 reads/ns; total = ×1.5.
        // mean ia = 2/3 * 3200/0.5 = 4266.67 ps.
        assert_eq!(s.mean_interarrival().as_ps(), 4267);
        // Round trip: reads/s × 5 flits × 0.64 ns ≈ util.
        let ia = s.mean_interarrival().as_ns();
        let read_rate_per_ns = s.read_fraction / ia;
        let util = read_rate_per_ns * 5.0 * 0.64;
        assert!((util - s.channel_utilization).abs() < 0.001);
    }

    #[test]
    fn quiet_mean_balances_on_fraction() {
        let s = toy();
        assert_eq!(s.quiet_mean(), s.burst_mean);
        let mut bursty = toy();
        bursty.on_fraction = 0.25;
        assert_eq!(bursty.quiet_mean(), bursty.burst_mean * 3);
    }

    #[test]
    fn total_lines() {
        assert_eq!(toy().total_lines(), 8 * (1 << 30) / 64);
    }

    #[test]
    fn validation_rejects_malformed_cdf() {
        let mut s = toy();
        s.cdf_points = &[(0.0, 0.0), (9.0, 1.0)];
        assert!(s.validate().is_err(), "CDF must end at footprint");

        let mut s = toy();
        s.cdf_points = &[(0.0, 0.1), (8.0, 1.0)];
        assert!(s.validate().is_err(), "CDF must start at zero");

        let mut s = toy();
        s.channel_utilization = 0.0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn valid_spec_passes() {
        toy().validate().unwrap();
    }
}
