//! Schema-versioned request traces: record a workload's `MemoryRequest`
//! stream to a compact JSONL file and replay it later, bit-identically.
//!
//! The format mirrors the observability trace (`memnet-obs`): one JSON
//! header line identifying the schema, the workload, the seed and a
//! content digest; one compact record line per request; and an `end`
//! footer carrying the record count so truncated files are detected.
//!
//! ```text
//! {"schema":"memnet-reqtrace","version":1,"workload":"mixD","seed":7,"count":3,"digest":"1a2b..."}
//! {"t":1234,"a":98765,"r":1}
//! {"t":2345,"a":43210,"r":0}
//! {"t":3456,"a":11111,"r":1}
//! {"ev":"end","count":3}
//! ```
//!
//! `t` is the request's schedule time in picoseconds, `a` the line
//! address, `r` 1 for a read. The digest is FNV-1a 64 over every record's
//! fields, so a replayed run can carry a stable identity (e.g. into a
//! result-cache key) and corrupted or hand-edited traces are rejected at
//! parse time rather than silently producing different results.

use std::sync::Arc;

use memnet_simcore::SimTime;
use serde::json;

use crate::gen::MemoryRequest;

/// Schema tag written into (and required from) every trace header.
pub const REQTRACE_SCHEMA: &str = "memnet-reqtrace";

/// Version of the request-trace line format. Bump whenever a line shape,
/// field name, or field meaning changes; the parser refuses traces whose
/// header carries a different version.
pub const REQTRACE_VERSION: u32 = 1;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// FNV-1a 64 digest over a record sequence (schedule time, address, kind).
fn digest_records(records: &[MemoryRequest]) -> u64 {
    let mut h = FNV_OFFSET;
    for r in records {
        h = fnv1a(h, &r.ready_at.as_ps().to_le_bytes());
        h = fnv1a(h, &r.line_addr.to_le_bytes());
        h = fnv1a(h, &[u8::from(r.is_read)]);
    }
    h
}

/// A recorded request stream with the identity needed to replay it.
///
/// # Examples
///
/// ```
/// use memnet_workload::trace::RequestTrace;
/// use memnet_workload::MemoryRequest;
/// use memnet_simcore::SimTime;
///
/// let records = vec![MemoryRequest {
///     ready_at: SimTime::from_ps(100),
///     line_addr: 42,
///     is_read: true,
/// }];
/// let trace = RequestTrace::new("mixD", 7, records);
/// let text = trace.to_jsonl();
/// let back = RequestTrace::parse_jsonl(&text).expect("round trip");
/// assert_eq!(back, trace);
/// assert_eq!(back.digest(), trace.digest());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTrace {
    /// Name of the workload the trace was recorded from (catalog or
    /// stress-catalog name; replay resolves it for footprint and scale).
    pub workload: String,
    /// Seed the recording run used. A replay seeded identically drives
    /// every non-frontend RNG stream (faults, channels) the same way, so
    /// record→replay round trips are bit-identical by default.
    pub seed: u64,
    records: Vec<MemoryRequest>,
    digest: u64,
}

impl RequestTrace {
    /// Wraps a record sequence, computing its digest.
    pub fn new(workload: impl Into<String>, seed: u64, records: Vec<MemoryRequest>) -> Self {
        let digest = digest_records(&records);
        RequestTrace { workload: workload.into(), seed, records, digest }
    }

    /// The recorded requests, in schedule order.
    pub fn records(&self) -> &[MemoryRequest] {
        &self.records
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// FNV-1a 64 digest of the record content.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest as the 16-hex-digit string used in headers and cache
    /// keys.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }

    /// Serializes the trace to its JSONL form (header, records, footer).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.records.len() * 32);
        out.push_str(&format!(
            "{{\"schema\":\"{REQTRACE_SCHEMA}\",\"version\":{REQTRACE_VERSION},\
             \"workload\":{},\"seed\":{},\"count\":{},\"digest\":\"{}\"}}\n",
            json::to_string(self.workload.as_str()),
            self.seed,
            self.records.len(),
            self.digest_hex(),
        ));
        for r in &self.records {
            out.push_str(&format!(
                "{{\"t\":{},\"a\":{},\"r\":{}}}\n",
                r.ready_at.as_ps(),
                r.line_addr,
                u8::from(r.is_read)
            ));
        }
        out.push_str(&format!("{{\"ev\":\"end\",\"count\":{}}}\n", self.records.len()));
        out
    }

    /// Parses and validates a JSONL trace: schema and version must match,
    /// the footer count must equal the records present, schedule times
    /// must be non-decreasing, and the recomputed digest must equal the
    /// header's.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending line or mismatch.
    pub fn parse_jsonl(text: &str) -> Result<RequestTrace, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, header_line) = lines.next().ok_or("empty trace file")?;
        let header = json::parse(header_line).map_err(|e| format!("line 1: {e}"))?;
        let schema =
            header.get("schema").and_then(|v| v.as_str()).map_err(|e| format!("header: {e}"))?;
        if schema != REQTRACE_SCHEMA {
            return Err(format!(
                "not a request trace (schema {schema:?}, want {REQTRACE_SCHEMA:?})"
            ));
        }
        let version: u32 =
            header.get("version").and_then(|v| v.num()).map_err(|e| format!("header: {e}"))?;
        if version != REQTRACE_VERSION {
            return Err(format!(
                "unsupported trace version {version} (this build reads version {REQTRACE_VERSION})"
            ));
        }
        let workload = header
            .get("workload")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("header: {e}"))?
            .to_owned();
        let seed: u64 =
            header.get("seed").and_then(|v| v.num()).map_err(|e| format!("header: {e}"))?;
        let count: usize =
            header.get("count").and_then(|v| v.num()).map_err(|e| format!("header: {e}"))?;
        let digest_hex = header
            .get("digest")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("header: {e}"))?
            .to_owned();
        let declared_digest = u64::from_str_radix(&digest_hex, 16)
            .map_err(|_| format!("header: digest {digest_hex:?} is not 16 hex digits"))?;

        let mut records = Vec::with_capacity(count);
        let mut footer_count: Option<usize> = None;
        let mut prev = SimTime::ZERO;
        for (idx, line) in lines {
            let n = idx + 1;
            let v = json::parse(line).map_err(|e| format!("line {n}: {e}"))?;
            if let Ok(ev) = v.get("ev") {
                let ev = ev.as_str().map_err(|e| format!("line {n}: {e}"))?;
                if ev != "end" {
                    return Err(format!("line {n}: unexpected event {ev:?}"));
                }
                footer_count = Some(
                    v.get("count").and_then(|c| c.num()).map_err(|e| format!("line {n}: {e}"))?,
                );
                continue;
            }
            if footer_count.is_some() {
                return Err(format!("line {n}: record after the end footer"));
            }
            let t: u64 = v.get("t").and_then(|t| t.num()).map_err(|e| format!("line {n}: {e}"))?;
            let a: u64 = v.get("a").and_then(|a| a.num()).map_err(|e| format!("line {n}: {e}"))?;
            let r: u8 = v.get("r").and_then(|r| r.num()).map_err(|e| format!("line {n}: {e}"))?;
            if r > 1 {
                return Err(format!("line {n}: r must be 0 or 1, got {r}"));
            }
            let ready_at = SimTime::from_ps(t);
            if ready_at < prev {
                return Err(format!("line {n}: schedule time {t} ps goes backwards"));
            }
            prev = ready_at;
            records.push(MemoryRequest { ready_at, line_addr: a, is_read: r == 1 });
        }
        let footer_count = footer_count.ok_or("missing end footer (truncated trace?)")?;
        if footer_count != records.len() || count != records.len() {
            return Err(format!(
                "record count mismatch: header declares {count}, footer {footer_count}, found {}",
                records.len()
            ));
        }
        let digest = digest_records(&records);
        if digest != declared_digest {
            return Err(format!(
                "digest mismatch: header declares {digest_hex}, content hashes to {digest:016x} \
                 (corrupted or edited trace)"
            ));
        }
        Ok(RequestTrace { workload, seed, records, digest })
    }
}

/// A shared-ownership read cursor over a [`RequestTrace`], cheap to clone
/// (sweeps clone configurations freely; the records are never copied).
#[derive(Debug, Clone)]
pub struct TraceCursor {
    trace: Arc<RequestTrace>,
    next: usize,
}

impl TraceCursor {
    /// Starts a cursor at the beginning of `trace`.
    pub fn new(trace: Arc<RequestTrace>) -> Self {
        TraceCursor { trace, next: 0 }
    }

    /// The next recorded request, or `None` once the trace is exhausted.
    pub fn next_request(&mut self) -> Option<MemoryRequest> {
        let r = self.trace.records.get(self.next).copied();
        if r.is_some() {
            self.next += 1;
        }
        r
    }

    /// Requests consumed so far.
    pub fn position(&self) -> usize {
        self.next
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Arc<RequestTrace> {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: u64) -> Vec<MemoryRequest> {
        (0..n)
            .map(|i| MemoryRequest {
                ready_at: SimTime::from_ps(100 * i),
                line_addr: 7 * i + 1,
                is_read: i % 3 != 0,
            })
            .collect()
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let t = RequestTrace::new("mixB", 42, sample(20));
        let back = RequestTrace::parse_jsonl(&t.to_jsonl()).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.digest_hex(), t.digest_hex());
        assert_eq!(back.workload, "mixB");
        assert_eq!(back.seed, 42);
    }

    #[test]
    fn digest_is_content_sensitive() {
        let a = RequestTrace::new("w", 1, sample(5));
        let mut records = sample(5);
        records[3].line_addr += 1;
        let b = RequestTrace::new("w", 1, records);
        assert_ne!(a.digest(), b.digest());
        // ...but not identity-sensitive: workload/seed are not hashed.
        let c = RequestTrace::new("other", 9, sample(5));
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn corrupted_record_is_rejected_by_digest() {
        let t = RequestTrace::new("w", 1, sample(8));
        let text = t.to_jsonl().replace("\"a\":22", "\"a\":23");
        let err = RequestTrace::parse_jsonl(&text).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
    }

    #[test]
    fn wrong_version_and_schema_are_rejected() {
        let t = RequestTrace::new("w", 1, sample(2));
        let text = t.to_jsonl().replace("\"version\":1", "\"version\":99");
        let err = RequestTrace::parse_jsonl(&text).unwrap_err();
        assert!(err.contains("version 99"), "{err}");
        let text = t.to_jsonl().replace(REQTRACE_SCHEMA, "memnet-trace");
        let err = RequestTrace::parse_jsonl(&text).unwrap_err();
        assert!(err.contains("not a request trace"), "{err}");
    }

    #[test]
    fn truncated_trace_is_rejected() {
        let t = RequestTrace::new("w", 1, sample(5));
        let full = t.to_jsonl();
        let cut: String = full.lines().take(4).map(|l| format!("{l}\n")).collect();
        let err = RequestTrace::parse_jsonl(&cut).unwrap_err();
        assert!(err.contains("missing end footer"), "{err}");
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let t = RequestTrace::new("w", 1, sample(5));
        let text = t.to_jsonl().replace("\"count\":5,", "\"count\":6,");
        let err = RequestTrace::parse_jsonl(&text).unwrap_err();
        assert!(err.contains("count mismatch"), "{err}");
    }

    #[test]
    fn non_monotone_schedule_is_rejected() {
        let mut records = sample(3);
        records[2].ready_at = SimTime::from_ps(50);
        let digest = super::digest_records(&records);
        let text = format!(
            "{{\"schema\":\"{REQTRACE_SCHEMA}\",\"version\":{REQTRACE_VERSION},\"workload\":\"w\",\
             \"seed\":1,\"count\":3,\"digest\":\"{digest:016x}\"}}\n\
             {{\"t\":0,\"a\":1,\"r\":1}}\n{{\"t\":100,\"a\":8,\"r\":1}}\n\
             {{\"t\":50,\"a\":15,\"r\":1}}\n{{\"ev\":\"end\",\"count\":3}}\n"
        );
        let err = RequestTrace::parse_jsonl(&text).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn cursor_walks_once_and_exhausts() {
        let t = Arc::new(RequestTrace::new("w", 1, sample(3)));
        let mut c = TraceCursor::new(t.clone());
        let mut seen = Vec::new();
        while let Some(r) = c.next_request() {
            seen.push(r);
        }
        assert_eq!(seen, t.records());
        assert_eq!(c.position(), 3);
        assert_eq!(c.next_request(), None, "stays exhausted");
    }

    #[test]
    fn empty_trace_round_trips() {
        let t = RequestTrace::new("w", 3, Vec::new());
        let back = RequestTrace::parse_jsonl(&t.to_jsonl()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back, t);
    }
}
