//! The request generator: a two-state (burst/quiet) modulated arrival
//! process over a workload's address CDF.
//!
//! During an ON burst, inter-arrival times are exponential with a mean
//! chosen so the *long-run* rate (including OFF periods) hits the
//! workload's target channel utilization. OFF periods produce the idle
//! gaps that rapid-on/off power management exploits.

use memnet_simcore::{SimDuration, SimTime, SplitMix64};

use crate::cdf::AddressCdf;
use crate::spec::WorkloadSpec;

/// One memory access produced by the generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryRequest {
    /// Earliest time the processor would issue this access, relative to
    /// the previous one having been issued on schedule.
    pub ready_at: SimTime,
    /// Global line address within the workload footprint.
    pub line_addr: u64,
    /// True for a read, false for a write.
    pub is_read: bool,
}

/// Deterministic synthetic request stream for one workload.
///
/// # Examples
///
/// ```
/// use memnet_simcore::SplitMix64;
/// use memnet_workload::{catalog, RequestGenerator};
///
/// let spec = catalog::by_name("sp.D").expect("known workload");
/// let mut generator = RequestGenerator::new(spec.clone(), SplitMix64::new(7));
/// let a = generator.next_request();
/// let b = generator.next_request();
/// assert!(b.ready_at >= a.ready_at);
/// ```
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    spec: WorkloadSpec,
    cdf: AddressCdf,
    addr_rng: SplitMix64,
    time_rng: SplitMix64,
    kind_rng: SplitMix64,
    clock: SimTime,
    burst_ends: SimTime,
    on_interarrival_mean: f64,
}

impl RequestGenerator {
    /// Creates a generator for `spec`, seeded deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`WorkloadSpec::validate`].
    pub fn new(spec: WorkloadSpec, seed: SplitMix64) -> Self {
        spec.validate().expect("invalid workload spec");
        let cdf = AddressCdf::from_spec(&spec);
        // The long-run mean inter-arrival must equal spec.mean_interarrival;
        // arrivals only happen during ON bursts, so the in-burst rate is
        // boosted by 1/on_fraction.
        let on_ia = spec.mean_interarrival().as_ps() as f64 * spec.on_fraction;
        let mut time_rng = seed.fork(1);
        // An always-on workload has no OFF periods at all: one unbounded
        // burst, and the quiet-gap machinery (whose mean would be zero)
        // never runs.
        let burst_ends = if spec.on_fraction >= 1.0 {
            SimTime::MAX
        } else {
            let burst = time_rng.next_exp(spec.burst_mean.as_ps() as f64);
            SimTime::ZERO + SimDuration::from_ps(burst as u64)
        };
        RequestGenerator {
            addr_rng: seed.fork(0),
            kind_rng: seed.fork(2),
            clock: SimTime::ZERO,
            burst_ends,
            on_interarrival_mean: on_ia,
            time_rng,
            cdf,
            spec,
        }
    }

    /// The workload this generator models.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Produces the next memory access in schedule order.
    pub fn next_request(&mut self) -> MemoryRequest {
        let gap = self.time_rng.next_exp(self.on_interarrival_mean);
        self.clock += SimDuration::from_ps(gap as u64);
        // If the burst ended before this arrival, insert quiet periods
        // until an ON window covers the arrival.
        while self.clock >= self.burst_ends {
            let quiet = self.time_rng.next_exp(self.spec.quiet_mean().as_ps() as f64);
            let next_on = self.burst_ends + SimDuration::from_ps(quiet as u64);
            if self.clock < next_on {
                self.clock = next_on;
            }
            let burst = self.time_rng.next_exp(self.spec.burst_mean.as_ps() as f64);
            self.burst_ends = next_on + SimDuration::from_ps(burst.max(1.0) as u64);
        }
        MemoryRequest {
            ready_at: self.clock,
            line_addr: self.cdf.sample_line(&mut self.addr_rng),
            is_read: self.kind_rng.next_bool(self.spec.read_fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn generate(name: &str, n: usize, seed: u64) -> Vec<MemoryRequest> {
        let spec = catalog::by_name(name).unwrap();
        let mut g = RequestGenerator::new(spec, SplitMix64::new(seed));
        (0..n).map(|_| g.next_request()).collect()
    }

    #[test]
    fn schedule_is_monotone() {
        let reqs = generate("ua.D", 10_000, 1);
        for w in reqs.windows(2) {
            assert!(w[1].ready_at >= w[0].ready_at);
        }
    }

    #[test]
    fn long_run_rate_matches_target_utilization() {
        let spec = catalog::by_name("mixB").unwrap();
        let n = 200_000;
        let reqs = generate("mixB", n, 3);
        let span = reqs.last().unwrap().ready_at - reqs[0].ready_at;
        let measured_ia = span.as_ps() as f64 / (n - 1) as f64;
        let target_ia = spec.mean_interarrival().as_ps() as f64;
        let err = (measured_ia - target_ia).abs() / target_ia;
        assert!(err < 0.05, "inter-arrival off by {:.1}%", err * 100.0);
    }

    #[test]
    fn read_fraction_matches_spec() {
        let reqs = generate("cg.D", 100_000, 5);
        let reads = reqs.iter().filter(|r| r.is_read).count();
        let frac = reads as f64 / reqs.len() as f64;
        assert!((frac - 2.0 / 3.0).abs() < 0.01, "read fraction {frac}");
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let spec = catalog::by_name("is.D").unwrap();
        let reqs = generate("is.D", 50_000, 9);
        assert!(reqs.iter().all(|r| r.line_addr < spec.total_lines()));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = generate("mixD", 5_000, 42);
        let b = generate("mixD", 5_000, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate("mixD", 100, 1);
        let b = generate("mixD", 100, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn always_on_workload_has_no_quiet_gaps() {
        // on_fraction == 1.0 must mean literally no OFF periods: the
        // stream is a plain exponential process, so gaps beyond ~25× the
        // mean (P ≈ e⁻²⁵ per draw) would betray inserted quiet periods.
        let mut spec = catalog::by_name("mixB").unwrap();
        spec.on_fraction = 1.0;
        let mean_ia = spec.mean_interarrival();
        let mut g = RequestGenerator::new(spec, SplitMix64::new(21));
        let reqs: Vec<MemoryRequest> = (0..50_000).map(|_| g.next_request()).collect();
        let worst = reqs.windows(2).map(|w| (w[1].ready_at - w[0].ready_at).as_ps()).max().unwrap();
        assert!(worst < mean_ia.as_ps() * 25, "quiet gap of {worst} ps in an always-on stream");
    }

    #[test]
    fn bursty_workload_has_long_gaps() {
        // sp.D runs at 8 % utilization with 30 % on-fraction: quiet gaps
        // far above the mean inter-arrival must appear.
        let reqs = generate("sp.D", 50_000, 13);
        let mean_ia = catalog::by_name("sp.D").unwrap().mean_interarrival();
        let long_gaps =
            reqs.windows(2).filter(|w| w[1].ready_at - w[0].ready_at > mean_ia * 20).count();
        assert!(long_gaps > 10, "expected bursty gaps, found {long_gaps}");
    }
}
