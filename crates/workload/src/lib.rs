#![warn(missing_docs)]

//! Synthetic models of the paper's 14 workloads.
//!
//! The paper drives its memory networks with GEM5 full-system traces of
//! seven NAS (class D) HPC workloads and seven mixed cloud workloads
//! (Table III). Reproducing those traces requires the authors' simulator
//! checkpoints, so this crate substitutes *calibrated synthetic
//! generators*: each workload is a parameter set matching the
//! characteristics the paper itself publishes —
//!
//! - memory **footprint** (Figure 4's x-extent; 17 GB on average),
//! - the cumulative **address-space access CDF** (Figure 4's shape,
//!   including flat "cold" ranges),
//! - average **channel utilization** (Figure 9; 43 % on average, sp.D
//!   lowest, mixB highest),
//! - a read/write mix and an on/off **burstiness** profile that produces
//!   the idle-interval distribution rapid-on/off management feeds on.
//!
//! Since the power study depends on the request stream and not on core
//! microarchitecture, this preserves the behaviors the paper measures:
//! traffic attenuation across the network, cold modules, and bursty idle
//! gaps.
//!
//! # Examples
//!
//! ```
//! use memnet_simcore::SplitMix64;
//! use memnet_workload::{catalog, RequestGenerator};
//!
//! let spec = catalog::by_name("mixB").expect("known workload");
//! assert_eq!(spec.footprint_gb, 12);
//! let total_lines = spec.total_lines();
//! let mut generator = RequestGenerator::new(spec, SplitMix64::new(42));
//! let req = generator.next_request();
//! assert!(req.line_addr < total_lines);
//! ```

pub mod catalog;
pub mod cdf;
pub mod gen;
pub mod spec;
pub mod stress;
pub mod trace;

pub use cdf::AddressCdf;
pub use gen::{MemoryRequest, RequestGenerator};
pub use spec::{WorkloadClass, WorkloadSpec};
pub use stress::{StressEnv, StressGenerator, StressPattern, StressSpec, STRESS_STREAM_SALT};
pub use trace::{RequestTrace, TraceCursor};
