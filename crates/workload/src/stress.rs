//! Adversarial stress workloads: synthetic traffic shaped to attack the
//! power-management machinery rather than to model an application.
//!
//! The catalog workloads ([`crate::catalog`]) are calibrated to the
//! paper's published characteristics, which means the policies are only
//! ever evaluated on traffic they were designed around. Each
//! [`StressSpec`] instead targets one specific mechanism weakness:
//!
//! * [`StressPattern::PhaseShift`] — hot/cold traffic windows the length
//!   of one management epoch, phase-shifted by half an epoch, so every
//!   epoch the controller measures straddles a hot→cold flip and its
//!   per-epoch utilization estimate mispredicts the next epoch.
//! * [`StressPattern::WakeChainStorm`] — long quiet gaps (past every ROO
//!   idleness threshold, so all managed links power off) punctuated by
//!   back-to-back round-robin sweeps touching *every* module, forcing a
//!   wake chain down each route at once.
//! * [`StressPattern::AllLinksHot`] — alternating one saturating epoch of
//!   flit-pace round-robin traffic with one silent epoch (links power
//!   down, the AMS rescue pool refills), so each burst front needs every
//!   link hot at once and the concentrated wake stalls drain the pool.
//! * [`StressPattern::DutyFlip`] — the workload is ON for exactly one
//!   management epoch and silent for the next, toggling precisely at
//!   epoch multiples (the controller's evaluation boundary; in this
//!   codebase `eval_period` is the whole run, so the 100 µs management
//!   epoch is the boundary that matters).
//!
//! Stress workloads are first-class citizens of the configuration layer:
//! `SimConfig::builder().workload("adv.wakestorm")` resolves here after
//! the paper catalog misses, and the engine swaps the synthetic
//! [`RequestGenerator`](crate::RequestGenerator) for a [`StressGenerator`]
//! transparently — reports, audits and result caching are unchanged.

use memnet_simcore::{SimDuration, SimTime, SplitMix64};

use crate::gen::MemoryRequest;
use crate::spec::{WorkloadClass, WorkloadSpec};

/// Stream salt separating stress-generator randomness from every other
/// consumer of the base seed. The synthetic
/// [`RequestGenerator`](crate::RequestGenerator) forks raw streams 0/1/2
/// straight off the seed; before this salt existed the stress generator
/// did the same, so a stress run and a synthetic run under one seed drew
/// *identical* address/time/kind randomness — and `fork(0)` is the
/// parent stream itself (XOR with 0 is the identity), colliding with any
/// direct consumer of the seed. Forking through this salt first gives
/// stress traffic its own stream family for every replica seed.
pub const STRESS_STREAM_SALT: u64 = 0x57E5_50A7;

/// Quiet gap between wake-chain storms: comfortably past the largest ROO
/// idleness threshold (2048 ns), so every managed link is off when the
/// sweep arrives.
pub const STORM_GAP: SimDuration = SimDuration::from_ps(4_000_000);

/// Spacing between the touches of one storm sweep (back-to-back at the
/// scale of a few flit times).
pub const SWEEP_STEP: SimDuration = SimDuration::from_ps(10_000);

/// Inter-arrival during an all-links-hot burst: five 0.64 ns flit times,
/// the pace of a fully loaded response link.
pub const BURST_STEP: SimDuration = SimDuration::from_ps(3_200);

/// The adversarial traffic shape a [`StressSpec`] generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StressPattern {
    /// Hot/cold epochs phase-shifted half an epoch against the controller.
    PhaseShift,
    /// ROO wake-chain storms: idle past every threshold, then sweep all
    /// modules.
    WakeChainStorm,
    /// Silent epoch then saturating all-module burst, draining the AMS
    /// rescue pool.
    AllLinksHot,
    /// ON/OFF duty cycle toggling exactly at management-epoch multiples.
    DutyFlip,
}

/// One adversarial workload: a base [`WorkloadSpec`] (name, footprint and
/// rate anchor, so scaling/mapping/reporting work unchanged) plus the
/// pattern that replaces the two-state arrival process.
#[derive(Debug, Clone, PartialEq)]
pub struct StressSpec {
    /// Identity and sizing; `base.name` is the stress workload's name.
    pub base: WorkloadSpec,
    /// The traffic shape.
    pub pattern: StressPattern,
}

impl StressSpec {
    /// The stress workload's name ("adv.…").
    pub fn name(&self) -> &'static str {
        self.base.name
    }
}

// Uniform-CDF control points for the stress footprints. `cdf_points` is
// `&'static`, so each footprint needs its own constant.
static CDF_8: &[(f64, f64)] = &[(0.0, 0.0), (8.0, 1.0)];
static CDF_12: &[(f64, f64)] = &[(0.0, 0.0), (12.0, 1.0)];
static CDF_16: &[(f64, f64)] = &[(0.0, 0.0), (16.0, 1.0)];

fn base(
    name: &'static str,
    footprint_gb: u64,
    cdf: &'static [(f64, f64)],
    util: f64,
) -> WorkloadSpec {
    WorkloadSpec {
        name,
        class: WorkloadClass::Cloud,
        footprint_gb,
        channel_utilization: util,
        read_fraction: 2.0 / 3.0,
        cdf_points: cdf,
        // The pattern owns the time structure; the base duty cycle is
        // always-on (exercising the on_fraction == 1.0 "no OFF periods"
        // contract of the plain generator, should one ever run the base).
        on_fraction: 1.0,
        burst_mean: SimDuration::from_us(2),
    }
}

/// All stress workloads, in catalog order.
pub fn all() -> Vec<StressSpec> {
    vec![
        StressSpec {
            base: base("adv.phase", 12, CDF_12, 0.50),
            pattern: StressPattern::PhaseShift,
        },
        StressSpec {
            base: base("adv.wakestorm", 16, CDF_16, 0.20),
            pattern: StressPattern::WakeChainStorm,
        },
        StressSpec {
            base: base("adv.hotburst", 12, CDF_12, 0.60),
            pattern: StressPattern::AllLinksHot,
        },
        StressSpec { base: base("adv.flip", 8, CDF_8, 0.40), pattern: StressPattern::DutyFlip },
    ]
}

/// Looks up one stress workload by name.
pub fn by_name(name: &str) -> Option<StressSpec> {
    all().into_iter().find(|s| s.base.name == name)
}

/// The stress workload names in catalog order.
pub fn names() -> Vec<&'static str> {
    all().into_iter().map(|s| s.base.name).collect()
}

/// The network parameters a stress pattern aims at. Taken from the run's
/// configuration so the attack tracks the actual epoch length and module
/// count instead of hard-coding the defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressEnv {
    /// Management epoch length (phase windows and duty flips align to it).
    pub epoch: SimDuration,
    /// Modules in the network (round-robin sweep width).
    pub n_modules: usize,
    /// Lines of physical space mapped to each module chunk.
    pub chunk_lines: u64,
}

/// Deterministic request stream for one [`StressSpec`].
///
/// Mirrors [`RequestGenerator`](crate::RequestGenerator)'s construction
/// discipline — the root forks into address (0), time (1) and kind (2)
/// streams, requests are produced in non-decreasing schedule order, and
/// equal seeds reproduce the stream exactly — except that the root is
/// first forked through [`STRESS_STREAM_SALT`], so stress streams never
/// coincide with the synthetic generator's under a shared seed.
#[derive(Debug, Clone)]
pub struct StressGenerator {
    spec: StressSpec,
    env: StressEnv,
    addr_rng: SplitMix64,
    time_rng: SplitMix64,
    kind_rng: SplitMix64,
    clock: SimTime,
    seq: u64,
    mean_ia_ps: f64,
    total_lines: u64,
}

impl StressGenerator {
    /// Creates a generator for `spec` attacking a network shaped like
    /// `env`, seeded deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the base spec is invalid or `env` is degenerate.
    pub fn new(spec: StressSpec, env: StressEnv, seed: SplitMix64) -> Self {
        spec.base.validate().expect("invalid stress base spec");
        assert!(!env.epoch.is_zero(), "stress env needs a positive epoch");
        assert!(env.n_modules > 0, "stress env needs at least one module");
        assert!(env.chunk_lines > 0, "stress env needs a positive chunk size");
        let mean_ia_ps = spec.base.mean_interarrival().as_ps() as f64;
        let total_lines = spec.base.total_lines();
        let root = seed.fork(STRESS_STREAM_SALT);
        StressGenerator {
            addr_rng: root.fork(0),
            time_rng: root.fork(1),
            kind_rng: root.fork(2),
            clock: SimTime::ZERO,
            seq: 0,
            mean_ia_ps,
            total_lines,
            spec,
            env,
        }
    }

    /// The stress workload this generator attacks with.
    pub fn spec(&self) -> &StressSpec {
        &self.spec
    }

    /// A line inside module `m`'s chunk (the last chunk may be partial).
    fn line_in_module(&mut self, m: u64) -> u64 {
        let start = m * self.env.chunk_lines;
        let span = self.env.chunk_lines.min(self.total_lines.saturating_sub(start)).max(1);
        (start + self.addr_rng.next_below(span)).min(self.total_lines - 1)
    }

    /// A line anywhere in the footprint.
    fn line_anywhere(&mut self) -> u64 {
        self.addr_rng.next_below(self.total_lines)
    }

    /// Produces the next request in schedule order.
    pub fn next_request(&mut self) -> MemoryRequest {
        let epoch = self.env.epoch.as_ps();
        let n = self.env.n_modules as u64;
        let line_addr = match self.spec.pattern {
            StressPattern::PhaseShift => {
                // Gap drawn at the rate of the half-epoch-shifted window
                // the clock currently sits in: window index flips hot/cold
                // every `epoch`, offset by epoch/2 against the controller.
                let window = (self.clock.as_ps() + epoch / 2) / epoch;
                let mean = if window.is_multiple_of(2) {
                    self.mean_ia_ps / 4.0
                } else {
                    self.mean_ia_ps * 4.0
                };
                let gap = self.time_rng.next_exp(mean);
                self.clock += SimDuration::from_ps(gap as u64);
                // Hot windows spray all modules; cold windows huddle on
                // module 0, so consolidation flips against the estimate.
                let window = (self.clock.as_ps() + epoch / 2) / epoch;
                if window.is_multiple_of(2) {
                    self.line_in_module(self.seq % n)
                } else {
                    self.line_in_module(0)
                }
            }
            StressPattern::WakeChainStorm => {
                // One quiet gap per sweep, then every module back-to-back.
                let pos = self.seq % n;
                if pos == 0 {
                    self.clock += STORM_GAP;
                } else {
                    self.clock += SWEEP_STEP;
                }
                self.line_in_module(pos)
            }
            StressPattern::AllLinksHot => {
                // Bursts fill the even epochs at flit pace across all
                // modules; odd epochs are silent (links power off, the
                // rescue pool refills — then the next burst front hits
                // every link at once). Burst-first so even a sub-epoch
                // run exercises the saturating phase.
                self.clock += BURST_STEP;
                let t = self.clock.as_ps();
                if (t / epoch) % 2 == 1 {
                    // Landed in a quiet epoch: jump to the next burst.
                    self.clock = SimTime::from_ps((t / epoch + 1) * epoch);
                }
                self.line_in_module(self.seq % n)
            }
            StressPattern::DutyFlip => {
                let gap = self.time_rng.next_exp(self.mean_ia_ps);
                self.clock += SimDuration::from_ps(gap as u64);
                let ep = self.clock.as_ps() / epoch;
                if ep % 2 == 1 {
                    // Odd epochs are silent: resume exactly on the next
                    // even epoch boundary.
                    self.clock = SimTime::from_ps((ep + 1) * epoch);
                }
                self.line_anywhere()
            }
        };
        self.seq += 1;
        MemoryRequest {
            ready_at: self.clock,
            line_addr,
            is_read: self.kind_rng.next_bool(self.spec.base.read_fraction),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> StressEnv {
        StressEnv {
            epoch: SimDuration::from_us(100),
            n_modules: 4,
            chunk_lines: 4 * (1 << 30) / 64,
        }
    }

    fn generate(name: &str, n: usize, seed: u64) -> Vec<MemoryRequest> {
        let spec = by_name(name).unwrap();
        let mut g = StressGenerator::new(spec, env(), SplitMix64::new(seed));
        (0..n).map(|_| g.next_request()).collect()
    }

    #[test]
    fn catalog_has_four_valid_specs_with_distinct_names() {
        let specs = all();
        assert_eq!(specs.len(), 4);
        for s in &specs {
            s.base.validate().unwrap_or_else(|e| panic!("{e}"));
            assert!(s.name().starts_with("adv."), "{}", s.name());
        }
        assert_eq!(names().len(), 4);
        assert!(by_name("adv.wakestorm").is_some());
        assert!(by_name("mixB").is_none(), "paper workloads are not stress workloads");
    }

    #[test]
    fn every_pattern_is_monotone_deterministic_and_in_range() {
        for name in names() {
            let spec = by_name(name).unwrap();
            let lines = spec.base.total_lines();
            let a = generate(name, 5_000, 11);
            let b = generate(name, 5_000, 11);
            assert_eq!(a, b, "{name} must be deterministic");
            let mut prev = SimTime::ZERO;
            for r in &a {
                assert!(r.ready_at >= prev, "{name} schedule goes backwards");
                assert!(r.line_addr < lines, "{name} address out of footprint");
                prev = r.ready_at;
            }
            let c = generate(name, 100, 12);
            assert_ne!(a[..100], c[..], "{name} must vary with the seed");
        }
    }

    #[test]
    fn wakestorm_sweeps_touch_every_module() {
        let reqs = generate("adv.wakestorm", 64, 5);
        let chunk = env().chunk_lines;
        for m in 0..env().n_modules as u64 {
            assert!(
                reqs.iter().any(|r| r.line_addr / chunk == m),
                "module {m} never touched by the storm"
            );
        }
        // Each sweep opens with the long quiet gap and then packs the
        // remaining touches tightly.
        let gaps: Vec<u64> =
            reqs.windows(2).map(|w| (w[1].ready_at - w[0].ready_at).as_ps()).collect();
        assert!(gaps.iter().any(|&g| g >= STORM_GAP.as_ps()), "no inter-storm quiet gap");
        assert!(gaps.iter().any(|&g| g <= SWEEP_STEP.as_ps()), "no tight in-sweep spacing");
    }

    #[test]
    fn duty_flip_is_silent_on_odd_epochs() {
        let e = env().epoch.as_ps();
        for r in generate("adv.flip", 20_000, 3) {
            let within = r.ready_at.as_ps() % (2 * e);
            assert!(
                within < e || within.is_multiple_of(e),
                "arrival {} ps lands inside a silent epoch",
                r.ready_at.as_ps()
            );
        }
    }

    #[test]
    fn hotburst_leaves_quiet_epochs_empty() {
        let e = env().epoch.as_ps();
        let reqs = generate("adv.hotburst", 20_000, 7);
        for r in &reqs {
            let t = r.ready_at.as_ps();
            assert!((t / e).is_multiple_of(2), "arrival at {t} ps inside a quiet epoch");
        }
        // Burst pace is flit-scale.
        let tight =
            reqs.windows(2).filter(|w| (w[1].ready_at - w[0].ready_at) <= BURST_STEP).count();
        assert!(tight > reqs.len() / 2, "burst is not saturating: {tight} tight gaps");
    }

    #[test]
    fn phase_shift_alternates_rates_across_windows() {
        let e = env().epoch.as_ps();
        let reqs = generate("adv.phase", 50_000, 9);
        // Count arrivals per half-shifted window; hot windows must hold
        // far more than cold ones.
        let mut per_window = std::collections::HashMap::new();
        for r in &reqs {
            *per_window.entry((r.ready_at.as_ps() + e / 2) / e).or_insert(0u64) += 1;
        }
        let hot: Vec<u64> =
            per_window.iter().filter(|(w, _)| *w % 2 == 0).map(|(_, &c)| c).collect();
        let cold: Vec<u64> =
            per_window.iter().filter(|(w, _)| *w % 2 == 1).map(|(_, &c)| c).collect();
        assert!(!hot.is_empty() && !cold.is_empty(), "both phases must appear");
        let hot_avg = hot.iter().sum::<u64>() as f64 / hot.len() as f64;
        let cold_avg = cold.iter().sum::<u64>() as f64 / cold.len() as f64;
        assert!(hot_avg > 4.0 * cold_avg, "hot {hot_avg:.0} vs cold {cold_avg:.0}");
    }

    #[test]
    fn partial_last_chunk_stays_in_footprint() {
        // 16 GB over 3 modules of 4 GB covers only 12: force the partial-
        // chunk clamp by shrinking the network below the footprint.
        let spec = by_name("adv.wakestorm").unwrap();
        let lines = spec.base.total_lines();
        let tight = StressEnv { n_modules: 5, ..env() };
        let mut g = StressGenerator::new(spec, tight, SplitMix64::new(1));
        for _ in 0..1_000 {
            assert!(g.next_request().line_addr < lines);
        }
    }
}
