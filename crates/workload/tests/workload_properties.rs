//! Property tests over the workload catalog and generators.

use memnet_simcore::{SimDuration, SimTime, SplitMix64};
use memnet_workload::{catalog, stress, AddressCdf, RequestGenerator, StressEnv, StressGenerator};
use proptest::prelude::*;

fn workload_index() -> impl Strategy<Value = usize> {
    0usize..catalog::all().len()
}

fn stress_index() -> impl Strategy<Value = usize> {
    0usize..stress::all().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cdf_quantile_is_monotone(idx in workload_index(), us in prop::collection::vec(0.0f64..=1.0, 2..40)) {
        let spec = catalog::all().remove(idx);
        let cdf = AddressCdf::from_spec(&spec);
        let mut sorted = us.clone();
        sorted.sort_by(f64::total_cmp);
        let qs: Vec<f64> = sorted.iter().map(|&u| cdf.quantile(u)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn cdf_forward_inverse_round_trip(idx in workload_index(), u in 0.001f64..0.999) {
        let spec = catalog::all().remove(idx);
        let cdf = AddressCdf::from_spec(&spec);
        let gb = cdf.quantile(u);
        // Forward evaluation recovers u except on flat (cold) segments,
        // where fraction_at(gb) is the segment's left edge value <= u.
        let back = cdf.fraction_at(gb);
        prop_assert!(back <= u + 1e-9, "inverse overshoot: {back} > {u}");
    }

    #[test]
    fn generator_is_deterministic_and_in_range(idx in workload_index(), seed in any::<u64>()) {
        let spec = catalog::all().remove(idx);
        let lines = spec.total_lines();
        let mut g1 = RequestGenerator::new(spec.clone(), SplitMix64::new(seed));
        let mut g2 = RequestGenerator::new(spec, SplitMix64::new(seed));
        let mut prev = SimTime::ZERO;
        for _ in 0..200 {
            let a = g1.next_request();
            let b = g2.next_request();
            prop_assert_eq!(a, b);
            prop_assert!(a.line_addr < lines);
            prop_assert!(a.ready_at >= prev);
            prev = a.ready_at;
        }
    }

    #[test]
    fn quantile_never_reaches_past_the_footprint(idx in workload_index(), u in 0.0f64..=1.0) {
        // Even u == 1.0 must map strictly inside the footprint once
        // converted to a line address: on flat-topped CDFs the quantile
        // retreats to the last segment carrying mass, and sample_line
        // clamps the footprint edge itself.
        let spec = catalog::all().remove(idx);
        let cdf = AddressCdf::from_spec(&spec);
        prop_assert!(cdf.quantile(u) <= spec.footprint_gb as f64);
        let lines_per_gb = (1u64 << 30) / 64;
        let line = (cdf.quantile(u) * lines_per_gb as f64) as u64;
        prop_assert!(line.min(spec.total_lines() - 1) < spec.total_lines());
    }

    #[test]
    fn sampled_lines_stay_in_range_for_every_catalog_spec(idx in workload_index(), seed in any::<u64>()) {
        let spec = catalog::all().remove(idx);
        let lines = spec.total_lines();
        let cdf = AddressCdf::from_spec(&spec);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..500 {
            prop_assert!(cdf.sample_line(&mut rng) < lines);
        }
    }

    #[test]
    fn stress_generators_are_deterministic_and_in_range(idx in stress_index(), seed in any::<u64>()) {
        let spec = stress::all().remove(idx);
        let lines = spec.base.total_lines();
        let env = StressEnv {
            epoch: SimDuration::from_us(100),
            n_modules: 8,
            chunk_lines: lines / 8 + 1,
        };
        let mut g1 = StressGenerator::new(spec.clone(), env, SplitMix64::new(seed));
        let mut g2 = StressGenerator::new(spec, env, SplitMix64::new(seed));
        let mut prev = SimTime::ZERO;
        for _ in 0..200 {
            let a = g1.next_request();
            prop_assert_eq!(a, g2.next_request());
            prop_assert!(a.line_addr < lines);
            prop_assert!(a.ready_at >= prev);
            prev = a.ready_at;
        }
    }

    #[test]
    fn long_run_rate_approaches_target(idx in workload_index()) {
        // Bursty workloads insert few but long quiet periods, so the
        // sample variance of the mean inter-arrival is dominated by the
        // count of quiet periods observed; 150k arrivals keeps the
        // relative error within ~20 % even for the burstiest specs.
        let spec = catalog::all().remove(idx);
        let target = spec.mean_interarrival().as_ps() as f64;
        let mut g = RequestGenerator::new(spec, SplitMix64::new(99));
        let n = 150_000;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = g.next_request().ready_at;
        }
        let measured = last.as_ps() as f64 / n as f64;
        let err = (measured - target).abs() / target;
        prop_assert!(err < 0.20, "rate error {:.1}%", err * 100.0);
    }
}

#[test]
fn every_workload_cdf_spans_exactly_its_footprint() {
    for spec in catalog::all() {
        let cdf = AddressCdf::from_spec(&spec);
        assert_eq!(cdf.footprint_gb(), spec.footprint_gb as f64, "{}", spec.name);
        assert_eq!(cdf.fraction_at(spec.footprint_gb as f64), 1.0, "{}", spec.name);
    }
}

#[test]
fn sampled_cdf_matches_analytic_cdf() {
    // Kolmogorov–Smirnov-style check: the empirical CDF of 100k samples
    // stays within 1.5 % of the analytic CDF at every integer GB.
    for spec in catalog::all() {
        let cdf = AddressCdf::from_spec(&spec);
        let mut rng = SplitMix64::new(2024);
        let n = 100_000;
        let lines_per_gb = (1u64 << 30) / 64;
        let samples: Vec<u64> = (0..n).map(|_| cdf.sample_line(&mut rng)).collect();
        for gb in 1..=spec.footprint_gb {
            let empirical =
                samples.iter().filter(|&&l| l < gb * lines_per_gb).count() as f64 / n as f64;
            let analytic = cdf.fraction_at(gb as f64);
            assert!(
                (empirical - analytic).abs() < 0.015,
                "{} at {gb} GB: empirical {empirical:.3} vs analytic {analytic:.3}",
                spec.name
            );
        }
    }
}
