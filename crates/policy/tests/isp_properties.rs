//! Property tests of Iterative Slowdown Propagation under arbitrary
//! telemetry: budgets are conserved, monotonicity holds, and the rescue
//! pool never goes negative.

use memnet_net::{Direction, LinkId, ModuleId, Topology, TopologyKind};
use memnet_policy::{Mechanism, PolicyConfig, PolicyKind, PowerController};
use memnet_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::DaisyChain),
        Just(TopologyKind::TernaryTree),
        Just(TopologyKind::Star),
        Just(TopologyKind::DdrxLike),
    ]
}

fn mech_strategy() -> impl Strategy<Value = Mechanism> {
    prop_oneof![
        Just(Mechanism::Vwl),
        Just(Mechanism::Roo),
        Just(Mechanism::VwlRoo),
        Just(Mechanism::Dvfs),
        Just(Mechanism::DvfsRoo),
    ]
}

/// Builds an aware controller and feeds one epoch of pseudo-random
/// telemetry derived from `traffic` (per-module intensity seeds).
fn primed(kind: TopologyKind, mech: Mechanism, traffic: &[u8]) -> PowerController {
    let n = traffic.len().max(1);
    let topo = std::sync::Arc::new(Topology::build(kind, n));
    let cfg = PolicyConfig::new(PolicyKind::NetworkAware, mech, 0.05);
    let mut c = PowerController::new(topo.clone(), cfg, SimDuration::from_ns(30));
    for (m, &intensity) in traffic.iter().enumerate() {
        for _ in 0..u32::from(intensity) {
            c.on_dram_read(ModuleId(m));
        }
        // Feed packets over the module's connectivity links: traffic
        // attenuates naturally because deeper modules get less.
        for dir in Direction::BOTH {
            let link = LinkId::of(ModuleId(m), dir);
            for i in 0..u64::from(intensity / 8) {
                let t = SimTime::from_ps(i * 400_000 + m as u64 * 97);
                c.on_packet_arrival(link, t, true);
                c.on_packet_departure(link, t, t, t + SimDuration::from_ps(3_200), 5, true);
                c.on_idle_interval(link, SimDuration::from_ns(300));
            }
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn isp_enforces_upstream_monotonicity(
        kind in kind_strategy(),
        mech in mech_strategy(),
        traffic in prop::collection::vec(0u8..=255, 1..24),
    ) {
        let mut c = primed(kind, mech, &traffic);
        let _ = c.epoch_end(SimTime::from_ps(100_000_000));
        let topo = c.topology().clone();
        for l in topo.links() {
            for d in topo.downstream_same_type(l) {
                let up = PowerController::power_rank(c.selected_mode(l));
                let down = PowerController::power_rank(c.selected_mode(d));
                prop_assert!(
                    up + 1e-9 >= down,
                    "{l:?} rank {up} below downstream {d:?} rank {down}"
                );
            }
        }
    }

    #[test]
    fn rescue_pool_is_never_negative_and_bounded_by_earned_ams(
        kind in kind_strategy(),
        mech in mech_strategy(),
        traffic in prop::collection::vec(0u8..=255, 1..24),
    ) {
        let mut c = primed(kind, mech, &traffic);
        let _ = c.epoch_end(SimTime::from_ps(100_000_000));
        let pool = c.rescue_pool();
        prop_assert!(pool >= 0, "pool {pool} negative");
        let earned = c.head_account().ams(0.05).max(0);
        prop_assert!(pool <= earned, "pool {pool} exceeds earned AMS {earned}");
    }

    #[test]
    fn decisions_cover_every_link_with_valid_modes(
        kind in kind_strategy(),
        mech in mech_strategy(),
        traffic in prop::collection::vec(0u8..=255, 1..24),
    ) {
        let mut c = primed(kind, mech, &traffic);
        let decisions = c.epoch_end(SimTime::from_ps(100_000_000));
        prop_assert_eq!(decisions.len(), traffic.len().max(1) * 2);
        let candidates = mech.candidate_modes();
        for d in decisions {
            prop_assert!(
                candidates.contains(&d.mode) || d.mode == mech.full_mode(),
                "decision {d:?} outside the mechanism's mode space"
            );
        }
    }

    #[test]
    fn repeated_idle_epochs_drive_budgets_up_not_down(
        kind in kind_strategy(),
        traffic in prop::collection::vec(1u8..=255, 2..16),
    ) {
        // With DRAM traffic but idle links, each epoch earns AMS, so the
        // pool should be non-decreasing over consecutive identical epochs.
        let mut c = primed(kind, Mechanism::Vwl, &traffic);
        let _ = c.epoch_end(SimTime::from_ps(100_000_000));
        let first = c.rescue_pool();
        for (m, &intensity) in traffic.iter().enumerate() {
            for _ in 0..u32::from(intensity) {
                c.on_dram_read(ModuleId(m));
            }
        }
        let _ = c.epoch_end(SimTime::from_ps(200_000_000));
        prop_assert!(c.rescue_pool() >= first);
    }
}
