//! Behavioral tests of policy decisions through the public API.

use memnet_net::mech::{BwMode, DvfsLevel, RooThreshold};
use memnet_net::{Direction, LinkId, ModuleId, Topology, TopologyKind};
use memnet_policy::{Mechanism, PolicyConfig, PolicyKind, PowerController};
use memnet_simcore::{SimDuration, SimTime};

fn controller(kind: PolicyKind, mech: Mechanism, n: usize) -> PowerController {
    PowerController::new(
        std::sync::Arc::new(Topology::build(TopologyKind::TernaryTree, n)),
        PolicyConfig::new(kind, mech, 0.05),
        SimDuration::from_ns(30),
    )
}

/// Feeds `count` read packets through `link`, spaced `gap_ns` apart, each
/// taking exactly its unqueued full-power time (no measured overhead).
fn feed_clean_reads(c: &mut PowerController, link: LinkId, count: u64, gap_ns: u64) {
    for i in 0..count {
        let t = SimTime::from_ps(i * gap_ns * 1_000);
        c.on_packet_arrival(link, t, true);
        c.on_packet_departure(link, t, t, t + SimDuration::from_ps(3_200), 5, true);
        if i > 0 {
            c.on_idle_interval(link, SimDuration::from_ns(gap_ns - 3));
        }
    }
}

#[test]
fn dvfs_serdes_overhead_gates_mode_depth() {
    // Two identical links with identical traffic; the module with a much
    // larger AMS budget can afford the deep DVFS mode's SERDES stretch,
    // the poorer one cannot.
    let mut rich = controller(PolicyKind::NetworkUnaware, Mechanism::Dvfs, 2);
    let mut poor = controller(PolicyKind::NetworkUnaware, Mechanism::Dvfs, 2);
    let link = LinkId::of(ModuleId(1), Direction::Request);
    for (c, dram_reads) in [(&mut rich, 40_000u32), (&mut poor, 40u32)] {
        feed_clean_reads(c, link, 400, 250);
        for _ in 0..dram_reads {
            c.on_dram_read(ModuleId(1));
        }
        let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
    }
    let rich_mode = rich.selected_mode(link).bw;
    let poor_mode = poor.selected_mode(link).bw;
    assert_eq!(rich_mode, BwMode::Dvfs(DvfsLevel::P14), "rich budget affords Vmin");
    assert!(
        poor_mode.power_fraction() > rich_mode.power_fraction(),
        "poor budget must stay shallower: {poor_mode:?} vs {rich_mode:?}"
    );
}

#[test]
fn roo_threshold_choice_follows_idle_interval_lengths() {
    // A link with only short (40 ns) idle gaps cannot profit from deep
    // thresholds and should not pay wakeups for nothing; a link with long
    // (3 µs) gaps should pick an aggressive threshold.
    let mut c = controller(PolicyKind::NetworkUnaware, Mechanism::Roo, 3);
    let short = LinkId::of(ModuleId(1), Direction::Request);
    let long = LinkId::of(ModuleId(2), Direction::Request);
    for m in [1usize, 2] {
        for _ in 0..2_000 {
            c.on_dram_read(ModuleId(m)); // generous budgets for both
        }
    }
    for i in 0..500u64 {
        let t = SimTime::from_ps(i * 45_000);
        c.on_packet_arrival(short, t, true);
        c.on_packet_departure(short, t, t, t + SimDuration::from_ps(3_200), 5, true);
        c.on_idle_interval(short, SimDuration::from_ns(40));
    }
    for i in 0..30u64 {
        let t = SimTime::from_ps(i * 3_000_000);
        c.on_packet_arrival(long, t, true);
        c.on_packet_departure(long, t, t, t + SimDuration::from_ps(3_200), 5, true);
        c.on_idle_interval(long, SimDuration::from_us(3));
    }
    let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
    let thr_long = c.selected_mode(long).roo.expect("ROO mechanism");
    assert_eq!(thr_long, RooThreshold::T32, "long gaps: turn off fast");
    // The short-gap link saves < 1 % energy per wakeup; whatever it
    // picks, its expected power must not be *worse* than staying on, and
    // the long-gap link must be at least as aggressive.
    let thr_short = c.selected_mode(short).roo.expect("ROO mechanism");
    assert!(thr_long <= thr_short);
}

#[test]
fn congestion_discount_returns_ams_to_the_pool() {
    // Same downstream overhead; in one controller the upstream response
    // link is congested (packets queue behind ≥3 others), so §VI-C
    // discounts the downstream overhead and more AMS survives.
    let build = |congested: bool| {
        let mut c = controller(PolicyKind::NetworkAware, Mechanism::Vwl, 4);
        for _ in 0..20_000 {
            c.on_dram_read(ModuleId(0));
        }
        // Downstream request link of module 1 runs 100 ns of overhead per
        // packet (actual departure far beyond the full-power estimate).
        let down = LinkId::of(ModuleId(1), Direction::Request);
        for i in 0..200u64 {
            let t = SimTime::from_ps(i * 400_000);
            c.on_packet_arrival(down, t, true);
            c.on_packet_departure(
                down,
                t,
                t + SimDuration::from_ns(100),
                t + SimDuration::from_ns(100) + SimDuration::from_ps(3_200),
                5,
                true,
            );
        }
        // Upstream response link of module 0: either smooth or congested.
        let up = LinkId::of(ModuleId(0), Direction::Response);
        for burst in 0..50u64 {
            for j in 0..6u64 {
                let arrival = if congested {
                    SimTime::from_ps(burst * 2_000_000) // six arrive together
                } else {
                    SimTime::from_ps(burst * 2_000_000 + j * 300_000)
                };
                let start = arrival + SimDuration::from_ps(j * 3_200);
                c.on_packet_arrival(up, arrival, true);
                c.on_packet_departure(
                    up,
                    arrival,
                    start,
                    start + SimDuration::from_ps(3_200),
                    5,
                    true,
                );
            }
        }
        let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        c.rescue_pool()
    };
    let smooth_pool = build(false);
    let congested_pool = build(true);
    assert!(
        congested_pool > smooth_pool,
        "congestion discount should leave more AMS: {congested_pool} vs {smooth_pool}"
    );
}

#[test]
fn chained_response_links_take_aggressive_thresholds_for_free() {
    let mut c = controller(PolicyKind::NetworkAware, Mechanism::Roo, 4);
    // Some DRAM traffic so the epoch is not degenerate.
    for _ in 0..1_000 {
        c.on_dram_read(ModuleId(0));
    }
    // Response links see long idle gaps.
    for m in 0..4 {
        let resp = LinkId::of(ModuleId(m), Direction::Response);
        for i in 0..20u64 {
            let t = SimTime::from_ps(i * 5_000_000);
            c.on_packet_arrival(resp, t, true);
            c.on_packet_departure(resp, t, t, t + SimDuration::from_ps(3_200), 5, true);
            c.on_idle_interval(resp, SimDuration::from_us(4));
        }
    }
    let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
    for m in 0..4 {
        let resp = LinkId::of(ModuleId(m), Direction::Response);
        assert_eq!(
            c.selected_mode(resp).roo,
            Some(RooThreshold::T32),
            "chaining hides response wakeups, so module {m} should turn off eagerly"
        );
    }
}

#[test]
fn static_policy_produces_no_epoch_decisions_or_violations() {
    let mut c = controller(PolicyKind::StaticSelection, Mechanism::Vwl, 5);
    let init = c.initial_decisions();
    assert_eq!(init.len(), 10);
    let link = LinkId::of(ModuleId(0), Direction::Request);
    // Even outrageous latency does not trigger violation handling.
    c.on_packet_arrival(link, SimTime::ZERO, true);
    let action = c.on_packet_departure(
        link,
        SimTime::ZERO,
        SimTime::from_ps(10_000_000),
        SimTime::from_ps(10_003_200),
        5,
        true,
    );
    assert_eq!(action, memnet_policy::ViolationAction::None);
    assert!(c.epoch_end(SimTime::ZERO + SimDuration::from_us(100)).is_empty());
    assert_eq!(c.violations(), 0);
}
