//! The epoch-based power controller implementing network-unaware (§V) and
//! network-aware (§VI) management.
//!
//! The controller is fed telemetry by the simulation engine during each
//! epoch (packet arrivals/departures per link, DRAM reads per module, link
//! idle intervals) and, at the epoch boundary, produces one power-mode
//! decision per unidirectional link. Between boundaries it performs the
//! paper's violation detection, bouncing a link to full power (after
//! consulting the network-aware rescue pool) when its measured latency
//! overhead exceeds its allowable memory slowdown.

use std::sync::Arc;

use memnet_net::mech::{LinkPowerMode, Mechanism, RooParams, RooThreshold};
use memnet_net::{Direction, LinkId, NodeRef, Topology};
use memnet_simcore::{AuditLevel, Auditor, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::ams::{ps, AmsAccount, LatencyPs};
use crate::monitors::{DelayMonitor, IdleHistogram, WakeupSampler};
use crate::static_sel::static_width_decisions;

/// Which management policy governs the network's links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No management: every link always on at full bandwidth.
    FullPower,
    /// §V: per-module AMS budgeting (adapted prior work).
    NetworkUnaware,
    /// §VI: ISP slowdown redistribution + wakeup chaining + congestion
    /// discounting.
    NetworkAware,
    /// §VII-A: static fat/tapered-tree bandwidth selection.
    StaticSelection,
}

impl PolicyKind {
    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::FullPower => "full power",
            PolicyKind::NetworkUnaware => "network-unaware",
            PolicyKind::NetworkAware => "network-aware",
            PolicyKind::StaticSelection => "static selection",
        }
    }

    /// Parses the CLI/manifest spellings (`fp|full`, `unaware`, `aware`,
    /// `static`).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s {
            "fp" | "full" => Some(PolicyKind::FullPower),
            "unaware" => Some(PolicyKind::NetworkUnaware),
            "aware" => Some(PolicyKind::NetworkAware),
            "static" => Some(PolicyKind::StaticSelection),
            _ => None,
        }
    }
}

/// Tunable policy parameters (paper values as defaults via
/// [`PolicyConfig::new`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Which policy runs.
    pub kind: PolicyKind,
    /// Which circuit-level mechanism the links support.
    pub mechanism: Mechanism,
    /// Allowable slowdown factor α (0.025 or 0.05 in the main study).
    pub alpha: f64,
    /// Epoch length (100 µs in the paper).
    pub epoch: SimDuration,
    /// ROO wakeup latency / off power.
    pub roo_params: RooParams,
    /// Maximum ISP scatter/gather iterations (3 in the paper).
    pub isp_iterations: usize,
    /// A link stays a slowdown-receiving candidate if its budget reaches
    /// this fraction of the next lower mode's FLO (25 % in the paper).
    pub src_fraction: f64,
    /// Fraction of the original leftover pool granted per rescue request
    /// (1/16 in the paper).
    pub rescue_grant_fraction: f64,
    /// Maximum rescue requests per link per epoch (4 in the paper).
    pub rescue_max_requests: u32,
    /// Share of the scatter pool given to request links when both ROO and
    /// bandwidth scaling are active (3/4 in the paper).
    pub request_pool_share: f64,
    /// Wakeup-arrival sampler period (one sample window per this many
    /// read arrivals).
    pub sampler_period: u64,
    /// Enables §VI-B response-link wakeup chaining under network-aware
    /// management (disable for ablation studies).
    pub wake_chaining: bool,
}

impl PolicyConfig {
    /// Paper-default parameters for the given policy/mechanism/α.
    pub fn new(kind: PolicyKind, mechanism: Mechanism, alpha: f64) -> Self {
        PolicyConfig {
            kind,
            mechanism,
            alpha,
            epoch: SimDuration::from_us(100),
            roo_params: RooParams::fast(),
            isp_iterations: 3,
            src_fraction: 0.25,
            rescue_grant_fraction: 1.0 / 16.0,
            rescue_max_requests: 4,
            request_pool_share: 0.75,
            sampler_period: 64,
            wake_chaining: true,
        }
    }
}

/// One per-link power-mode decision produced at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDecision {
    /// The link to reconfigure.
    pub link: LinkId,
    /// Target mode.
    pub mode: LinkPowerMode,
}

/// What the engine must do after feeding a packet departure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationAction {
    /// Nothing; the link stays in its mode.
    None,
    /// The link exceeded its AMS (and, under network-aware management,
    /// the rescue pool could not cover it): force full power until the
    /// epoch ends.
    ForceFullPower,
}

/// Per-link controller state for one epoch.
#[derive(Debug, Clone)]
struct LinkState {
    /// One delay monitor per candidate bandwidth mode; index 0 is the
    /// full-power monitor (the link-latency FEL estimator).
    monitors: Vec<DelayMonitor>,
    histogram: IdleHistogram,
    sampler: WakeupSampler,
    /// Aggregate measured read-packet latency this epoch (the AEL link part).
    actual_read_latency: SimDuration,
    /// Cumulative queuing delay this epoch (QD).
    queuing_delay: SimDuration,
    /// Packets that arrived behind ≥ 3 older packets (numerator of QF).
    queued_packets: u64,
    /// All packets observed this epoch (denominator of QF).
    total_packets: u64,
    /// Slowdown budget for the running epoch.
    budget: LatencyPs,
    /// The link was bounced to full power this epoch.
    forced_full: bool,
    rescue_used: u32,
    /// Mode currently assigned by the policy.
    selected: LinkPowerMode,
    // --- ISP working state ---
    src: bool,
    src_next: bool,
    dsrc: u64,
    isp_ams: LatencyPs,
    unused: LatencyPs,
}

impl LinkState {
    fn new(mechanism: Mechanism, roo: RooParams, sampler_period: u64) -> Self {
        LinkState {
            monitors: mechanism
                .bw_modes()
                .iter()
                .enumerate()
                // Only the full-power monitor's queue depth feeds the QF
                // statistic; the rest skip the virtual-queue bookkeeping.
                .map(
                    |(i, &m)| {
                        if i == 0 {
                            DelayMonitor::new(m)
                        } else {
                            DelayMonitor::new_untracked(m)
                        }
                    },
                )
                .collect(),
            histogram: IdleHistogram::new(),
            sampler: WakeupSampler::new(roo.wakeup_latency, sampler_period),
            actual_read_latency: SimDuration::ZERO,
            queuing_delay: SimDuration::ZERO,
            queued_packets: 0,
            total_packets: 0,
            budget: 0,
            forced_full: false,
            rescue_used: 0,
            selected: mechanism.full_mode(),
            src: false,
            src_next: false,
            dsrc: 0,
            isp_ams: 0,
            unused: 0,
        }
    }

    /// QF: the fraction of this epoch's packets that queued.
    fn queuing_fraction(&self) -> f64 {
        if self.total_packets == 0 {
            0.0
        } else {
            self.queued_packets as f64 / self.total_packets as f64
        }
    }

    /// The link-latency part of this epoch's FEL.
    fn fel(&self) -> SimDuration {
        self.monitors[0].read_latency_sum()
    }

    /// Measured latency overhead so far this epoch.
    fn overhead(&self) -> LatencyPs {
        ps(self.actual_read_latency) - ps(self.fel())
    }
}

/// The power controller: one per simulated network.
///
/// See the crate docs for the telemetry protocol between the engine and
/// the controller.
#[derive(Debug, Clone)]
pub struct PowerController {
    cfg: PolicyConfig,
    topo: Arc<Topology>,
    links: Vec<LinkState>,
    /// Per-module running AMS accounts (network-unaware).
    modules: Vec<AmsAccount>,
    /// Head-module running account (network-aware).
    head: AmsAccount,
    /// Rescue pool: leftover AMS after ISP, available for grants.
    pool: LatencyPs,
    pool_original: LatencyPs,
    /// DRAM reads per module this epoch.
    dram_reads: Vec<u64>,
    /// Nominal DRAM access latency charged per read (30 ns for Table I).
    dram_nominal: SimDuration,
    epochs_completed: u64,
    violations: u64,
}

impl PowerController {
    /// Creates a controller for `topology` with all links in the
    /// mechanism's full-power mode.
    ///
    /// The topology is shared (`Arc`) with the engine rather than cloned:
    /// the controller never mutates it, and per-run deep copies of the
    /// routing tables were measurable in sweep setup cost.
    pub fn new(topology: Arc<Topology>, cfg: PolicyConfig, dram_nominal: SimDuration) -> Self {
        let n_links = topology.n_links();
        let n_modules = topology.len();
        let links = (0..n_links)
            .map(|_| LinkState::new(cfg.mechanism, cfg.roo_params, cfg.sampler_period))
            .collect();
        PowerController {
            links,
            modules: vec![AmsAccount::new(); n_modules],
            head: AmsAccount::new(),
            pool: 0,
            pool_original: 0,
            dram_reads: vec![0; n_modules],
            dram_nominal,
            epochs_completed: 0,
            violations: 0,
            topo: topology,
            cfg,
        }
    }

    /// The policy configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// The network under management.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// True if the engine should run network-aware response-link wakeup
    /// chaining (§VI-B): proactively waking response links along the
    /// return path and keeping an upstream response link on while any
    /// downstream one is on.
    pub fn wake_chaining(&self) -> bool {
        self.cfg.kind == PolicyKind::NetworkAware
            && self.cfg.mechanism.uses_roo()
            && self.cfg.wake_chaining
    }

    /// The mode currently assigned to `link`.
    pub fn selected_mode(&self, link: LinkId) -> LinkPowerMode {
        self.links[link.0].selected
    }

    /// The slowdown budget assigned to `link` for the running epoch.
    pub fn budget(&self, link: LinkId) -> LatencyPs {
        self.links[link.0].budget
    }

    /// Epochs completed so far.
    pub fn epochs_completed(&self) -> u64 {
        self.epochs_completed
    }

    /// Violations (forced full-power transitions) so far.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The initial per-link decisions to apply at simulation start.
    pub fn initial_decisions(&mut self) -> Vec<LinkDecision> {
        let decisions: Vec<LinkDecision> = match self.cfg.kind {
            PolicyKind::StaticSelection => static_width_decisions(&self.topo),
            _ => {
                let full = self.cfg.mechanism.full_mode();
                self.topo.links().map(|l| LinkDecision { link: l, mode: full }).collect()
            }
        };
        for d in &decisions {
            self.links[d.link.0].selected = d.mode;
        }
        decisions
    }

    /// Feeds a packet arrival at a link controller's queue.
    pub fn on_packet_arrival(&mut self, link: LinkId, now: SimTime, is_read: bool) {
        if is_read && self.cfg.mechanism.uses_roo() {
            self.links[link.0].sampler.on_arrival(now);
        }
    }

    /// Feeds a completed transmission: the packet arrived at `arrival`,
    /// began serializing at `start` and fully departed at `departure`.
    ///
    /// The engine reports `departure` only when the packet finally passes
    /// CRC, so under fault injection it includes every NAK turnaround and
    /// retry replay. The delay monitors and AMS accounting therefore
    /// observe retry-induced slowdown exactly like any other congestion —
    /// no fault-specific plumbing is needed for the policies to react to
    /// a noisy link.
    ///
    /// Returns whether the engine must bounce the link to full power.
    pub fn on_packet_departure(
        &mut self,
        link: LinkId,
        arrival: SimTime,
        start: SimTime,
        departure: SimTime,
        flits: u64,
        is_read: bool,
    ) -> ViolationAction {
        let managed =
            matches!(self.cfg.kind, PolicyKind::NetworkUnaware | PolicyKind::NetworkAware);
        let st = &mut self.links[link.0];
        if managed {
            for m in &mut st.monitors {
                m.record(arrival, flits, is_read);
            }
        } else {
            // Unmanaged policies never read the alternate-mode monitors
            // (only `flo` does): feed just the full-power reference, which
            // the QF and FEL statistics come from.
            st.monitors[0].record(arrival, flits, is_read);
        }
        st.total_packets += 1;
        if st.monitors[0].queue_depth_at_last_arrival() >= 3 {
            st.queued_packets += 1;
        }
        st.queuing_delay += start.saturating_since(arrival);
        if is_read {
            st.actual_read_latency += departure - arrival;
        }
        if !managed || st.forced_full {
            return ViolationAction::None;
        }
        // Violation detection: measured overhead vs. the link's AMS.
        if st.overhead() > st.budget {
            if self.cfg.kind == PolicyKind::NetworkAware {
                // Ask the head module for a share of the leftover pool.
                while st.rescue_used < self.cfg.rescue_max_requests && st.overhead() > st.budget {
                    let grant = ((self.pool_original as f64 * self.cfg.rescue_grant_fraction)
                        as LatencyPs)
                        .min(self.pool);
                    if grant <= 0 {
                        break;
                    }
                    self.pool -= grant;
                    st.budget += grant;
                    st.rescue_used += 1;
                }
                if st.overhead() <= st.budget {
                    return ViolationAction::None;
                }
            }
            st.forced_full = true;
            st.selected = self.cfg.mechanism.full_mode();
            self.violations += 1;
            return ViolationAction::ForceFullPower;
        }
        ViolationAction::None
    }

    /// Feeds one DRAM read serviced by `module`'s vaults.
    pub fn on_dram_read(&mut self, module: memnet_net::ModuleId) {
        self.dram_reads[module.0] += 1;
    }

    /// Feeds one link idle interval (gap between transmissions).
    pub fn on_idle_interval(&mut self, link: LinkId, interval: SimDuration) {
        if self.cfg.mechanism.uses_roo() {
            self.links[link.0].histogram.record(interval);
        }
    }

    // ------------------------------------------------------------------
    // FLO estimation
    // ------------------------------------------------------------------

    /// Predicted latency overhead of running `link` at `mode` next epoch,
    /// relative to full power (Section V-B).
    fn flo(&self, link: LinkId, mode: LinkPowerMode) -> LatencyPs {
        let st = &self.links[link.0];
        // Bandwidth part: the candidate monitor's aggregate read latency
        // minus the full-power monitor's, plus any SERDES stretch (DVFS)
        // applied to every read packet.
        let idx = self
            .cfg
            .mechanism
            .bw_modes()
            .iter()
            .position(|&m| m == mode.bw)
            .expect("mode must belong to the mechanism");
        let bw_part = (ps(st.monitors[idx].read_latency_sum()) - ps(st.fel())).max(0)
            + ps(mode.bw.serdes_overhead()) * st.monitors[0].read_packets() as LatencyPs;
        // ROO part: predicted wakeups times the per-wakeup latency cost.
        let roo_part = match mode.roo {
            None => 0,
            Some(thr) => {
                if self.wake_chaining() && link.direction() == Direction::Response {
                    // §VI-B: response-link wakeups are fully hidden.
                    0
                } else {
                    let wakeups = st.histogram.wakeups(thr) as LatencyPs;
                    let wake = ps(self.cfg.roo_params.wakeup_latency);
                    let arrivals = st.sampler.average_arrivals();
                    let mut per_wake = wake + (wake as f64 * arrivals) as LatencyPs;
                    if link.direction() == Direction::Request {
                        // §V-B: waking a request link inflates a later
                        // response link's queue (responses are 5× bigger).
                        per_wake += (wake as f64 * arrivals) as LatencyPs;
                    }
                    wakeups * per_wake
                }
            }
        };
        bw_part + roo_part
    }

    /// The FLO estimate for `link`'s currently selected mode, over the
    /// epoch currently being accumulated — a pure read exposed for
    /// observability sampling. Non-adaptive policies (full power, static
    /// selection) have no meaningful FLO and report zero. Call before
    /// [`Self::epoch_end`] closes the epoch and resets the monitors.
    pub fn flo_estimate(&self, link: LinkId) -> LatencyPs {
        match self.cfg.kind {
            PolicyKind::FullPower | PolicyKind::StaticSelection => 0,
            PolicyKind::NetworkUnaware | PolicyKind::NetworkAware => {
                self.flo(link, self.links[link.0].selected)
            }
        }
    }

    /// Expected power of `mode` on `link` as a fraction of full link
    /// power, using the idle histogram's off-time estimate.
    fn expected_power(&self, link: LinkId, mode: LinkPowerMode) -> f64 {
        let st = &self.links[link.0];
        let off_frac = match mode.roo {
            None => 0.0,
            Some(thr) => st.histogram.off_time(thr).ratio(self.cfg.epoch).clamp(0.0, 1.0),
        };
        mode.bw.power_fraction() * (1.0 - off_frac)
            + self.cfg.roo_params.off_power_fraction * off_frac
    }

    /// Static power rank of a mode, comparable across links — the order
    /// the ISP monotonicity constraint (upstream ≥ downstream) enforces.
    pub fn power_rank(mode: LinkPowerMode) -> f64 {
        Self::power_key(mode)
    }

    /// The leftover-AMS rescue pool currently held at the head module.
    pub fn rescue_pool(&self) -> LatencyPs {
        self.pool
    }

    /// Audits the controller's budget invariants into `auditor` (at
    /// [`AuditLevel::Cheap`]): per-link budgets are non-negative, no link
    /// exceeded its rescue-request ceiling, every selected mode is legal
    /// for the mechanism, the rescue pool sits within `[0, original]`,
    /// and every AMS account is consistent. The engine calls this at each
    /// epoch boundary and once more at the end of the run.
    pub fn audit_epoch(&self, auditor: &mut Auditor) {
        if !auditor.enabled(AuditLevel::Cheap) {
            return;
        }
        for (i, st) in self.links.iter().enumerate() {
            auditor.check(AuditLevel::Cheap, "ams-budget-non-negative", st.budget >= 0, || {
                format!("link {i}: epoch budget {} ps is negative", st.budget)
            });
            auditor.check(
                AuditLevel::Cheap,
                "rescue-request-ceiling",
                st.rescue_used <= self.cfg.rescue_max_requests,
                || {
                    format!(
                        "link {i}: {} rescue requests exceed the ceiling of {}",
                        st.rescue_used, self.cfg.rescue_max_requests
                    )
                },
            );
            auditor.check(
                AuditLevel::Cheap,
                "selected-mode-legal",
                self.cfg.mechanism.allows(st.selected),
                || {
                    format!(
                        "link {i}: selected mode {:?} is not a candidate of {:?}",
                        st.selected, self.cfg.mechanism
                    )
                },
            );
        }
        auditor.check(
            AuditLevel::Cheap,
            "rescue-pool-bounds",
            self.pool >= 0 && self.pool <= self.pool_original.max(0),
            || format!("rescue pool {} ps outside [0, {}]", self.pool, self.pool_original),
        );
        let accounts_ok =
            self.head.is_consistent() && self.modules.iter().all(AmsAccount::is_consistent);
        auditor.check(AuditLevel::Cheap, "ams-account-consistent", accounts_ok, || {
            format!("head {:?} or a module account has negative Σ FEL", self.head)
        });
    }

    /// The head module's running AMS account (network-aware management).
    pub fn head_account(&self) -> AmsAccount {
        self.head
    }

    /// Static power rank used for the ISP monotonicity constraint
    /// (comparable across links, unlike [`expected_power`] which depends
    /// on each link's own traffic).
    ///
    /// [`expected_power`]: Self::expected_power
    fn power_key(mode: LinkPowerMode) -> f64 {
        let roo_weight = match mode.roo {
            None | Some(RooThreshold::T2048) => 1.0,
            Some(RooThreshold::T512) => 0.75,
            Some(RooThreshold::T128) => 0.5,
            Some(RooThreshold::T32) => 0.25,
        };
        mode.bw.power_fraction() * roo_weight
    }

    /// Picks the lowest-expected-power candidate whose FLO fits `budget`.
    /// The mechanism's full mode is always admissible (a link can always
    /// run at full power).
    fn select_mode(&self, link: LinkId, budget: LatencyPs) -> (LinkPowerMode, LatencyPs) {
        let full = self.cfg.mechanism.full_mode();
        let mut best = (full, self.flo(link, full));
        let mut best_power = self.expected_power(link, full);
        for mode in self.cfg.mechanism.candidate_modes() {
            let flo = self.flo(link, mode);
            if flo > budget && mode != full {
                continue;
            }
            let p = self.expected_power(link, mode);
            if p < best_power - 1e-12 || (p < best_power + 1e-12 && flo < best.1) {
                best = (mode, flo);
                best_power = p;
            }
        }
        best
    }

    /// The FLO of the next-cheaper candidate below `mode` on `link`, if any.
    fn next_lower_mode_flo(&self, link: LinkId, mode: LinkPowerMode) -> Option<LatencyPs> {
        let current = self.expected_power(link, mode);
        self.cfg
            .mechanism
            .candidate_modes()
            .into_iter()
            .filter(|&m| self.expected_power(link, m) < current - 1e-12)
            .map(|m| (self.expected_power(link, m), self.flo(link, m)))
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .map(|(_, flo)| flo)
    }

    // ------------------------------------------------------------------
    // Epoch boundary
    // ------------------------------------------------------------------

    /// Closes the epoch: updates AMS accounts, selects next-epoch modes
    /// (per §V for unaware, per §VI ISP for aware) and resets epoch state.
    pub fn epoch_end(&mut self, now: SimTime) -> Vec<LinkDecision> {
        let mut decisions = Vec::new();
        self.epoch_end_into(now, &mut decisions);
        decisions
    }

    /// Arena variant of [`Self::epoch_end`]: clears `out` and fills it
    /// with this epoch's decisions so the caller can reuse one allocation
    /// across every epoch of a run.
    pub fn epoch_end_into(&mut self, _now: SimTime, out: &mut Vec<LinkDecision>) {
        out.clear();
        self.epochs_completed += 1;
        match self.cfg.kind {
            PolicyKind::FullPower | PolicyKind::StaticSelection => {}
            PolicyKind::NetworkUnaware => self.epoch_end_unaware(out),
            PolicyKind::NetworkAware => self.epoch_end_aware(out),
        }
        self.reset_epoch_state();
    }

    /// Per-module FEL for the closing epoch: DRAM part plus the link part
    /// of its connectivity links.
    fn module_fel(&self, m: usize) -> SimDuration {
        let dram = self.dram_nominal * self.dram_reads[m];
        let req = self.links[LinkId::of(memnet_net::ModuleId(m), Direction::Request).0].fel();
        let resp = self.links[LinkId::of(memnet_net::ModuleId(m), Direction::Response).0].fel();
        dram + req + resp
    }

    /// Per-module latency overhead (AEL − FEL) for the closing epoch. The
    /// DRAM part cancels (it is charged identically to AEL and FEL).
    fn module_overhead(&self, m: usize) -> LatencyPs {
        let req = &self.links[LinkId::of(memnet_net::ModuleId(m), Direction::Request).0];
        let resp = &self.links[LinkId::of(memnet_net::ModuleId(m), Direction::Response).0];
        req.overhead() + resp.overhead()
    }

    fn epoch_end_unaware(&mut self, decisions: &mut Vec<LinkDecision>) {
        let n = self.topo.len();
        for m in 0..n {
            let fel = self.module_fel(m);
            let over = self.module_overhead(m);
            self.modules[m].record_epoch(fel, over);
        }
        decisions.reserve(self.topo.n_links());
        for m in 0..n {
            // Each connectivity link receives an equal share of the
            // module's AMS.
            let module_ams = self.modules[m].ams(self.cfg.alpha);
            let link_share = module_ams / 2;
            for dir in Direction::BOTH {
                let link = LinkId::of(memnet_net::ModuleId(m), dir);
                let (mode, _flo) = self.select_mode(link, link_share.max(0));
                let st = &mut self.links[link.0];
                st.selected = mode;
                st.budget = link_share.max(0);
                decisions.push(LinkDecision { link, mode });
            }
        }
    }

    fn epoch_end_aware(&mut self, decisions: &mut Vec<LinkDecision>) {
        let n = self.topo.len();
        // --- Network-wide AMS via Equation 1, with the §VI-C congestion
        // discount applied while reducing overheads upstream. ---
        let total_fel: SimDuration = (0..n).map(|m| self.module_fel(m)).sum();
        let mut subtree = vec![0 as LatencyPs; n];
        for m in (0..n).rev() {
            let module = memnet_net::ModuleId(m);
            let req = &self.links[LinkId::of(module, Direction::Request).0];
            let resp_link = LinkId::of(module, Direction::Response);
            let resp = &self.links[resp_link.0];
            let mut downstream = req.overhead().max(0);
            for &c in self.topo.children(module) {
                downstream += subtree[c.0];
            }
            // Congestion at this response link hides downstream overheads.
            let qf = resp.queuing_fraction();
            let discount = ((downstream as f64 * qf) as LatencyPs).min(ps(resp.queuing_delay));
            subtree[m] = (downstream - discount).max(0) + resp.overhead().max(0);
        }
        let total_overhead: LatencyPs = self
            .topo
            .modules()
            .filter(|&m| self.topo.parent(m) == NodeRef::Processor)
            .map(|m| subtree[m.0])
            .sum();
        self.head.record_epoch(total_fel, total_overhead);
        let mut pool = self.head.ams(self.cfg.alpha).max(0);

        // --- ISP initialization. ---
        let roo_only = self.cfg.mechanism.uses_roo() && !self.cfg.mechanism.uses_bw_scaling();
        for l in self.topo.links() {
            let src = if roo_only { l.direction() == Direction::Request } else { true };
            let st = &mut self.links[l.0];
            st.src = src;
            st.src_next = src;
            st.isp_ams = 0;
            st.unused = 0;
            st.selected = self.cfg.mechanism.full_mode();
        }
        if roo_only && self.wake_chaining() {
            // Response links are not SRCs because chaining hides their
            // wake latency entirely (§VI-B) — which also means they can
            // take the most aggressive threshold at zero cost.
            for i in 0..self.topo.n_links() {
                let l = LinkId(i);
                if l.direction() == Direction::Response {
                    let (mode, _flo) = self.select_mode(l, 0);
                    self.links[l.0].selected = mode;
                }
            }
        }
        self.update_dsrc();

        for _iter in 0..self.cfg.isp_iterations {
            // Scatter: split the pool across link types, then push PCS
            // values down each type's tree. A type with no SRCs cannot
            // absorb its share; that portion stays at the head.
            let (req_pool, resp_pool) = self.split_pool(pool, roo_only);
            let mut undistributed = pool - req_pool - resp_pool;
            if self.src_count(Direction::Request) > 0 {
                self.scatter(Direction::Request, req_pool);
            } else {
                undistributed += req_pool;
            }
            if self.src_count(Direction::Response) > 0 {
                self.scatter(Direction::Response, resp_pool);
            } else {
                undistributed += resp_pool;
            }
            // Gather: enforce power-mode monotonicity and collect unused
            // AMS back to the head.
            pool = undistributed + self.gather();
        }

        self.pool = pool;
        self.pool_original = pool;

        decisions.reserve(self.topo.n_links());
        for l in self.topo.links() {
            let mode = self.links[l.0].selected;
            let flo = self.flo(l, mode);
            let st = &mut self.links[l.0];
            st.budget = flo.max(st.isp_ams).max(0);
            decisions.push(LinkDecision { link: l, mode });
        }
    }

    fn split_pool(&self, pool: LatencyPs, roo_only: bool) -> (LatencyPs, LatencyPs) {
        if roo_only {
            return (pool, 0);
        }
        if self.cfg.mechanism.uses_roo() {
            let req = (pool as f64 * self.cfg.request_pool_share) as LatencyPs;
            return (req, pool - req);
        }
        // Pure bandwidth scaling: a single PCS across both types, i.e.
        // split the pool proportionally to SRC counts.
        let src_req = self.src_count(Direction::Request) as LatencyPs;
        let src_resp = self.src_count(Direction::Response) as LatencyPs;
        let total = src_req + src_resp;
        if total == 0 {
            (0, 0)
        } else {
            let req = pool * src_req / total;
            (req, pool - req)
        }
    }

    fn src_count(&self, dir: Direction) -> u64 {
        self.topo.links().filter(|l| l.direction() == dir && self.links[l.0].src).count() as u64
    }

    /// ISP scatter for one link type: each SRC adds the received PCS to
    /// its AMS, selects a mode, and forwards its leftover split over its
    /// downstream SRCs.
    fn scatter(&mut self, dir: Direction, type_pool: LatencyPs) {
        let n = self.topo.len();
        let srcs = self.src_count(dir) as LatencyPs;
        let pcs0 = if srcs == 0 { 0 } else { type_pool / srcs };
        let mut pcs_in = vec![0 as LatencyPs; n];
        for m in self.topo.modules() {
            if self.topo.parent(m) == NodeRef::Processor {
                pcs_in[m.0] = pcs0;
            }
        }
        // Account for pool remainder lost to integer division.
        if srcs > 0 {
            let used = pcs0 * srcs;
            // Stash the remainder on the first root's unused so gather
            // reclaims it.
            if let Some(root) =
                self.topo.modules().find(|&m| self.topo.parent(m) == NodeRef::Processor)
            {
                self.links[LinkId::of(root, dir).0].unused += type_pool - used;
            }
        }
        for m in 0..n {
            let module = memnet_net::ModuleId(m);
            let link = LinkId::of(module, dir);
            let pcs = pcs_in[m];
            let mut out = pcs;
            if self.links[link.0].src {
                let budget = self.links[link.0].isp_ams + pcs;
                let (mode, flo) = self.select_mode(link, budget);
                let leftover = (budget - flo).max(0);
                let next_lower = self.next_lower_mode_flo(link, mode);
                let st = &mut self.links[link.0];
                st.isp_ams = flo.min(budget).max(0);
                st.selected = mode;
                if st.dsrc > 0 {
                    let share = leftover / st.dsrc as LatencyPs;
                    out = pcs + share;
                    st.unused += leftover - share * st.dsrc as LatencyPs;
                } else {
                    st.unused += leftover;
                }
                // SRC continuation rule (§VI-A1).
                st.src_next = match next_lower {
                    None => false, // already at the lowest mode
                    Some(flo_lower) => {
                        (pcs + st.isp_ams) as f64 >= self.cfg.src_fraction * flo_lower as f64
                    }
                };
            }
            for &c in self.topo.children(module) {
                pcs_in[c.0] = out;
            }
        }
    }

    /// ISP gather: bottom-up over both link types — enforce that an
    /// upstream link runs at a power mode at least as high as every
    /// downstream link of the same type, reclaim unused AMS, and refresh
    /// SRC/DSRC state for the next iteration.
    fn gather(&mut self) -> LatencyPs {
        let mut collected: LatencyPs = 0;
        let n = self.topo.len();
        for dir in Direction::BOTH {
            for m in (0..n).rev() {
                let module = memnet_net::ModuleId(m);
                let link = LinkId::of(module, dir);
                // Monotonicity: find the highest-power downstream mode.
                let max_child_key = self
                    .topo
                    .children(module)
                    .iter()
                    .map(|&c| Self::power_key(self.links[LinkId::of(c, dir).0].selected))
                    .fold(0.0_f64, f64::max);
                let current = self.links[link.0].selected;
                if Self::power_key(current) + 1e-12 < max_child_key {
                    // Raise to the cheapest candidate at or above the bar.
                    let replacement = self
                        .cfg
                        .mechanism
                        .candidate_modes()
                        .into_iter()
                        .filter(|&mode| Self::power_key(mode) + 1e-12 >= max_child_key)
                        .min_by(|a, b| Self::power_key(*a).total_cmp(&Self::power_key(*b)))
                        .unwrap_or(self.cfg.mechanism.full_mode());
                    let old_flo = self.flo(link, current);
                    let new_flo = self.flo(link, replacement);
                    let st = &mut self.links[link.0];
                    st.unused += (old_flo - new_flo).max(0).min(st.isp_ams);
                    st.isp_ams = (st.isp_ams - (old_flo - new_flo).max(0)).max(0);
                    st.selected = replacement;
                }
                let st = &mut self.links[link.0];
                collected += st.unused;
                st.unused = 0;
                st.src = st.src_next;
            }
        }
        self.update_dsrc();
        collected
    }

    /// Recomputes every link's count of downstream same-type SRCs.
    fn update_dsrc(&mut self) {
        let n = self.topo.len();
        for dir in Direction::BOTH {
            let mut sub = vec![0u64; n];
            for m in (0..n).rev() {
                let module = memnet_net::ModuleId(m);
                let mut count = 0;
                for &c in self.topo.children(module) {
                    let child_link = LinkId::of(c, dir);
                    count += sub[c.0] + u64::from(self.links[child_link.0].src);
                }
                sub[m] = count;
                self.links[LinkId::of(module, dir).0].dsrc = count;
            }
        }
    }

    fn reset_epoch_state(&mut self) {
        for st in &mut self.links {
            for m in &mut st.monitors {
                m.reset_epoch();
            }
            st.histogram.reset_epoch();
            st.sampler.reset_epoch();
            st.actual_read_latency = SimDuration::ZERO;
            st.queuing_delay = SimDuration::ZERO;
            st.queued_packets = 0;
            st.total_packets = 0;
            st.forced_full = false;
            st.rescue_used = 0;
        }
        self.dram_reads.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_net::mech::BwMode;
    use memnet_net::{ModuleId, TopologyKind};

    fn controller(kind: PolicyKind, mech: Mechanism, n: usize) -> PowerController {
        let topo = Arc::new(Topology::build(TopologyKind::TernaryTree, n));
        PowerController::new(topo, PolicyConfig::new(kind, mech, 0.05), SimDuration::from_ns(30))
    }

    /// Feeds `count` well-spaced small read packets through a link.
    fn feed_sparse_reads(c: &mut PowerController, link: LinkId, count: u64) {
        for i in 0..count {
            let t = SimTime::from_ps(i * 1_000_000); // 1 µs apart
            c.on_packet_arrival(link, t, true);
            let done = t + SimDuration::from_ps(640);
            c.on_packet_departure(link, t, t, done, 1, true);
            c.on_idle_interval(link, SimDuration::from_ps(999_360));
        }
    }

    #[test]
    fn idle_link_is_put_into_low_power_by_unaware_management() {
        let mut c = controller(PolicyKind::NetworkUnaware, Mechanism::Vwl, 4);
        // Give the leaf module DRAM activity so *it* earns AMS (unaware
        // management only spends budget where it is generated).
        for _ in 0..1000 {
            c.on_dram_read(ModuleId(3));
        }
        let leaf = LinkId::of(ModuleId(3), Direction::Request);
        feed_sparse_reads(&mut c, leaf, 5);
        let decisions = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        let leaf_mode = decisions.iter().find(|d| d.link == leaf).unwrap().mode;
        assert!(
            leaf_mode.bw.power_fraction() < 1.0,
            "an almost-idle link with budget must drop below full power, got {leaf_mode:?}"
        );
    }

    #[test]
    fn untouched_links_drop_to_lowest_power_for_free() {
        // With zero traffic every mode has zero predicted overhead, so
        // even a zero budget admits the lowest power mode (FLO <= AMS).
        let mut c = controller(PolicyKind::NetworkUnaware, Mechanism::Vwl, 4);
        let decisions = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        for d in decisions {
            assert_eq!(d.mode.bw.power_fraction(), 2.0 / 17.0, "{d:?}");
        }
    }

    #[test]
    fn zero_budget_with_traffic_keeps_full_power() {
        let mut c = controller(PolicyKind::NetworkUnaware, Mechanism::Vwl, 2);
        // Saturating traffic on the root link (back-to-back 5-flit
        // packets) makes every lower mode predict real overhead, but no
        // AMS was earned elsewhere to pay for it.
        let link = LinkId::of(ModuleId(0), Direction::Request);
        for i in 0..2_000u64 {
            let t = SimTime::from_ps(i * 3_200);
            c.on_packet_arrival(link, t, true);
            c.on_packet_departure(link, t, t, t + SimDuration::from_ps(3_200), 5, true);
        }
        let decisions = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        let mode = decisions.iter().find(|d| d.link == link).unwrap().mode;
        assert!(mode.bw.is_full_bandwidth(), "hot link with tiny budget: {mode:?}");
    }

    #[test]
    fn full_power_policy_never_decides_anything() {
        let mut c = controller(PolicyKind::FullPower, Mechanism::FullPower, 4);
        feed_sparse_reads(&mut c, LinkId(0), 10);
        assert!(c.epoch_end(SimTime::ZERO + SimDuration::from_us(100)).is_empty());
    }

    #[test]
    fn violation_forces_full_power_once_budget_exhausted() {
        let mut c = controller(PolicyKind::NetworkUnaware, Mechanism::Vwl, 2);
        let link = LinkId::of(ModuleId(1), Direction::Response);
        // Tiny budget.
        c.links[link.0].budget = 1_000; // 1 ns
                                        // A read that took 100 ns longer than full power predicts.
        c.on_packet_arrival(link, SimTime::ZERO, true);
        let action = c.on_packet_departure(
            link,
            SimTime::ZERO,
            SimTime::from_ps(100_000),
            SimTime::from_ps(103_200),
            5,
            true,
        );
        assert_eq!(action, ViolationAction::ForceFullPower);
        assert_eq!(c.violations(), 1);
        // Further packets on a forced link do not re-trigger.
        c.on_packet_arrival(link, SimTime::from_ps(200_000), true);
        let again = c.on_packet_departure(
            link,
            SimTime::from_ps(200_000),
            SimTime::from_ps(300_000),
            SimTime::from_ps(303_200),
            5,
            true,
        );
        assert_eq!(again, ViolationAction::None);
    }

    #[test]
    fn aware_rescue_pool_absorbs_violations() {
        let mut c = controller(PolicyKind::NetworkAware, Mechanism::Vwl, 2);
        let link = LinkId::of(ModuleId(1), Direction::Response);
        c.links[link.0].budget = 1_000;
        c.pool = 10_000_000_000; // 10 ms of slack
        c.pool_original = 10_000_000_000;
        let action = c.on_packet_departure(
            link,
            SimTime::ZERO,
            SimTime::from_ps(100_000),
            SimTime::from_ps(103_200),
            5,
            true,
        );
        assert_eq!(action, ViolationAction::None, "the pool should cover it");
        assert!(c.pool < 10_000_000_000);
        assert_eq!(c.violations(), 0);
    }

    #[test]
    fn isp_respects_monotonicity() {
        let mut c = controller(PolicyKind::NetworkAware, Mechanism::Vwl, 13);
        // Earn a lot of AMS via DRAM traffic and idle links.
        for _ in 0..100_000 {
            c.on_dram_read(ModuleId(0));
        }
        for l in c.topology().links().collect::<Vec<_>>() {
            feed_sparse_reads(&mut c, l, 3);
        }
        let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        let topo = c.topology().clone();
        for l in topo.links() {
            for d in topo.downstream_same_type(l) {
                let up = PowerController::power_key(c.selected_mode(l));
                let down = PowerController::power_key(c.selected_mode(d));
                assert!(up + 1e-9 >= down, "upstream {l:?} ({up}) below downstream {d:?} ({down})");
            }
        }
    }

    #[test]
    fn aware_management_reaches_lower_modes_than_unaware_on_cold_links() {
        // A network where only module 0 is hot: aware management should
        // push the cold subtree at least as low as unaware does.
        let mut aware = controller(PolicyKind::NetworkAware, Mechanism::Vwl, 13);
        let mut unaware = controller(PolicyKind::NetworkUnaware, Mechanism::Vwl, 13);
        for c in [&mut aware, &mut unaware] {
            for _ in 0..50_000 {
                c.on_dram_read(ModuleId(0));
            }
            let hot = LinkId::of(ModuleId(0), Direction::Request);
            for i in 0..2_000u64 {
                let t = SimTime::from_ps(i * 50_000);
                c.on_packet_arrival(hot, t, true);
                c.on_packet_departure(hot, t, t, t + SimDuration::from_ps(640), 1, true);
            }
            let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        }
        let cold = LinkId::of(ModuleId(12), Direction::Request);
        let pa = PowerController::power_key(aware.selected_mode(cold));
        let pu = PowerController::power_key(unaware.selected_mode(cold));
        assert!(pa <= pu + 1e-9, "aware {pa} should be <= unaware {pu} on cold links");
    }

    #[test]
    fn roo_only_aware_marks_response_links_overhead_free() {
        let c = controller(PolicyKind::NetworkAware, Mechanism::Roo, 4);
        assert!(c.wake_chaining());
        let resp = LinkId::of(ModuleId(2), Direction::Response);
        let mode = LinkPowerMode { bw: BwMode::FULL_VWL, roo: Some(RooThreshold::T32) };
        assert_eq!(c.flo(resp, mode), 0, "chained response wakeups are hidden");
    }

    #[test]
    fn epoch_counters_reset() {
        let mut c = controller(PolicyKind::NetworkUnaware, Mechanism::Vwl, 2);
        feed_sparse_reads(&mut c, LinkId(0), 5);
        c.on_dram_read(ModuleId(0));
        let _ = c.epoch_end(SimTime::ZERO + SimDuration::from_us(100));
        assert_eq!(c.links[0].total_packets, 0);
        assert_eq!(c.dram_reads[0], 0);
        assert_eq!(c.epochs_completed(), 1);
    }

    #[test]
    fn initial_decisions_are_full_power_for_managed_policies() {
        let mut c = controller(PolicyKind::NetworkAware, Mechanism::VwlRoo, 5);
        let ds = c.initial_decisions();
        assert_eq!(ds.len(), 10);
        for d in ds {
            assert!(d.mode.bw.is_full_bandwidth());
            assert_eq!(d.mode.roo, Some(RooThreshold::T2048));
        }
    }

    #[test]
    fn static_selection_tapers_initial_widths() {
        let mut c = controller(PolicyKind::StaticSelection, Mechanism::Vwl, 13);
        let ds = c.initial_decisions();
        let root =
            ds.iter().find(|d| d.link == LinkId::of(ModuleId(0), Direction::Request)).unwrap();
        let leaf =
            ds.iter().find(|d| d.link == LinkId::of(ModuleId(12), Direction::Request)).unwrap();
        assert!(root.mode.bw.bandwidth_fraction() > leaf.mode.bw.bandwidth_fraction());
    }
}
