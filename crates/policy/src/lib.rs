#![warn(missing_docs)]

//! Memory-network power-management policies — the paper's contribution.
//!
//! Three managed policies over the circuit-level mechanisms of
//! [`memnet_net::mech`], plus the always-on baseline:
//!
//! - [`PolicyKind::FullPower`] — links always on at full bandwidth.
//! - [`PolicyKind::NetworkUnaware`] (§V) — the paper's adaptation of prior
//!   single-module memory power management: each module independently
//!   budgets an *allowable memory slowdown* (AMS) of α % of its full-power
//!   epoch latency (FEL), divides it over its connectivity links, and each
//!   link picks the lowest-power mode whose predicted *future latency
//!   overhead* (FLO) fits, falling back to full power when a violation is
//!   detected.
//! - [`PolicyKind::NetworkAware`] (§VI) — adds Iterative Slowdown
//!   Propagation (ISP): a scatter/gather message-passing pass that
//!   redistributes the network-wide AMS so busier (upstream) links never
//!   run at lower power modes than less busy ones, a rescue pool of
//!   leftover AMS for links that would otherwise bounce to full power,
//!   response-link wakeup chaining that hides ROO wake latency entirely,
//!   and congestion-aware discounting of downstream latency overheads.
//! - [`PolicyKind::StaticSelection`] (§VII-A) — the fat/tapered-tree
//!   static bandwidth baseline.
//!
//! The policies are *passive state machines*: the simulator engine feeds
//! them packet arrival/departure telemetry and idle intervals, and asks for
//! link power-mode decisions at each 100 µs epoch boundary.

pub mod ams;
pub mod controller;
pub mod monitors;
pub mod static_sel;

pub use controller::{LinkDecision, PolicyConfig, PolicyKind, PowerController, ViolationAction};
pub use memnet_net::mech::Mechanism;
pub use monitors::{DelayMonitor, IdleHistogram, WakeupSampler};
pub use static_sel::{static_width_decisions, weighted_width_decisions};
