//! Allowable-memory-slowdown (AMS) accounting — Equation 1 of the paper.
//!
//! A network's AMS for epoch `t+1` is
//!
//! ```text
//! AMS_N(t+1) = α · Σ_m Σ_t FEL(m,t)  −  Σ_m Σ_t (AEL(m,t) − FEL(m,t))
//! ```
//!
//! i.e. the slowdown budget earned so far (α % of the aggregate full-power
//! latency) minus the overhead already spent. Because the equation
//! distributes over modules, network-unaware management lets each module
//! keep its own pair of running sums; network-aware management keeps the
//! sums at the head module.

use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Signed picosecond latency aggregate. Signed because an epoch's actual
/// latency can (rarely) come in under the full-power estimate, and because
/// an overdrawn budget must be remembered as debt.
pub type LatencyPs = i128;

/// Converts a duration to a signed picosecond aggregate.
pub fn ps(d: SimDuration) -> LatencyPs {
    d.as_ps() as LatencyPs
}

/// Running AMS state for one module (or, for network-aware management,
/// the whole network at the head module).
///
/// # Examples
///
/// ```
/// use memnet_policy::ams::AmsAccount;
/// use memnet_simcore::SimDuration;
///
/// let mut acct = AmsAccount::default();
/// // One epoch at full power: 1 ms of aggregate latency, no overhead.
/// acct.record_epoch(SimDuration::from_ms(1), 0);
/// // α = 5 %: fifty microseconds of slowdown budget (in picoseconds).
/// assert_eq!(acct.ams(0.05), 50_000_000);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmsAccount {
    /// Σ_t FEL — aggregate full-power epoch latency so far.
    pub sum_fel: LatencyPs,
    /// Σ_t (AEL − FEL) — aggregate latency overhead spent so far.
    pub sum_overrun: LatencyPs,
}

impl AmsAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        AmsAccount::default()
    }

    /// Records one epoch's full-power latency and overhead.
    pub fn record_epoch(&mut self, fel: SimDuration, overrun: LatencyPs) {
        self.sum_fel += ps(fel);
        self.sum_overrun += overrun;
    }

    /// The AMS available for the next epoch at slowdown factor `alpha`
    /// (e.g. 0.05 for α = 5 %). May be negative if the budget is overdrawn.
    pub fn ams(&self, alpha: f64) -> LatencyPs {
        (alpha * self.sum_fel as f64) as LatencyPs - self.sum_overrun
    }

    /// True if the account is internally consistent: Σ FEL sums actual
    /// epoch durations, so it can never go negative. (Σ overrun *can* be
    /// negative — an epoch may come in under its full-power estimate.)
    /// The audit layer checks this on every account each epoch.
    pub fn is_consistent(&self) -> bool {
        self.sum_fel >= 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accumulates_across_epochs() {
        let mut a = AmsAccount::new();
        a.record_epoch(SimDuration::from_us(100), 0);
        a.record_epoch(SimDuration::from_us(100), 0);
        // 5 % of 200 µs = 10 µs.
        assert_eq!(a.ams(0.05), 10 * 1_000_000);
    }

    #[test]
    fn overhead_spends_budget() {
        let mut a = AmsAccount::new();
        a.record_epoch(SimDuration::from_us(100), 3_000_000); // spent 3 µs
        assert_eq!(a.ams(0.05), 5_000_000 - 3_000_000);
    }

    #[test]
    fn budget_can_go_negative() {
        let mut a = AmsAccount::new();
        a.record_epoch(SimDuration::from_us(100), 50_000_000);
        assert!(a.ams(0.025) < 0);
    }

    #[test]
    fn unspent_budget_carries_over() {
        // A module that under-spends in epoch 1 has more to spend later —
        // the feedback-control property the paper's Equation 1 encodes.
        let mut a = AmsAccount::new();
        a.record_epoch(SimDuration::from_us(100), 0);
        let before = a.ams(0.05);
        a.record_epoch(SimDuration::from_us(100), 1_000_000);
        let after = a.ams(0.05);
        assert_eq!(after - before, 5_000_000 - 1_000_000);
    }

    #[test]
    fn consistency_tracks_fel_sign() {
        let mut a = AmsAccount::new();
        assert!(a.is_consistent());
        a.record_epoch(SimDuration::from_us(100), 50_000_000);
        assert!(a.is_consistent(), "overdrawn budgets are still consistent");
        a.sum_fel = -1;
        assert!(!a.is_consistent());
    }

    #[test]
    fn equation_distributes_over_modules() {
        // Σ_m AMS_m == AMS computed from pooled sums (Equation 1's
        // factored form).
        let epochs = [
            (SimDuration::from_us(90), 1_000_000i128),
            (SimDuration::from_us(110), 2_500_000),
            (SimDuration::from_us(70), 0),
        ];
        let mut per_module: Vec<AmsAccount> = vec![AmsAccount::new(); 3];
        let mut pooled = AmsAccount::new();
        for (i, &(fel, over)) in epochs.iter().enumerate() {
            per_module[i].record_epoch(fel, over);
            pooled.record_epoch(fel, over);
        }
        let sum: LatencyPs = per_module.iter().map(|a| a.ams(0.05)).sum();
        assert_eq!(sum, pooled.ams(0.05));
    }
}
