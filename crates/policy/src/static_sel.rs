//! §VII-A static bandwidth selection: a hybrid fat/tapered tree.
//!
//! Instead of managing link bandwidth dynamically, size every link once so
//! that — with traffic interleaved evenly over all modules — no link is
//! oversubscribed: a link at hop distance `d` gets
//! `1/S(d) · (1 − Σ_{i<d} S(i)/T)` of maximum bandwidth, raised to the
//! nearest available VWL width.

use memnet_net::mech::{BwMode, LinkPowerMode, VwlWidth};
use memnet_net::{LinkId, Topology};

use crate::controller::LinkDecision;

/// Raises a bandwidth fraction to the nearest available VWL width at or
/// above it.
pub fn width_for_fraction(fraction: f64) -> VwlWidth {
    // Widths ascending so we pick the smallest sufficient one.
    for w in [VwlWidth::W1, VwlWidth::W4, VwlWidth::W8, VwlWidth::W16] {
        if w.bandwidth_fraction() + 1e-12 >= fraction {
            return w;
        }
    }
    VwlWidth::W16
}

/// Computes the static fat/tapered width for every unidirectional link of
/// `topology` (both directions of an edge get the edge's width).
pub fn static_width_decisions(topology: &Topology) -> Vec<LinkDecision> {
    let fractions = topology.fat_tapered_fractions();
    topology
        .links()
        .map(|link: LinkId| {
            let fraction = fractions[link.edge_module().0];
            LinkDecision {
                link,
                mode: LinkPowerMode { bw: BwMode::Vwl(width_for_fraction(fraction)), roo: None },
            }
        })
        .collect()
}

/// Extension beyond §VII-A: traffic-*weighted* static width selection.
///
/// The paper's fat/tapered formula assumes traffic interleaves evenly
/// over modules. With the paper's preferred contiguous mapping, traffic
/// is *not* even — hot workload regions concentrate on a few modules. If
/// per-module access weights are known (e.g. from a workload's address
/// CDF), each edge's offered load is the sum of the weights in the
/// subtree below it, and widths can be provisioned against a headroom
/// factor instead of the uniform assumption.
///
/// `weights[m]` is the fraction of accesses destined to module `m`
/// (weights are normalized internally); `headroom` multiplies every
/// edge's offered load before rounding up to a width (≥ 1.0; higher
/// values trade power for queueing slack).
///
/// # Panics
///
/// Panics if `weights.len() != topology.len()` or `headroom < 1.0`.
pub fn weighted_width_decisions(
    topology: &Topology,
    weights: &[f64],
    headroom: f64,
) -> Vec<LinkDecision> {
    assert_eq!(weights.len(), topology.len(), "one weight per module");
    assert!(headroom >= 1.0, "headroom must be at least 1.0");
    let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
    // Subtree load below each edge: module weight plus children subtrees.
    // Parents precede children, so accumulate in reverse index order.
    let n = topology.len();
    let mut subtree = vec![0.0f64; n];
    for m in (0..n).rev() {
        let module = memnet_net::ModuleId(m);
        let mut load = if total > 0.0 { weights[m].max(0.0) / total } else { 0.0 };
        for &c in topology.children(module) {
            load += subtree[c.0];
        }
        subtree[m] = load;
    }
    topology
        .links()
        .map(|link: LinkId| {
            let load = subtree[link.edge_module().0];
            LinkDecision {
                link,
                mode: LinkPowerMode {
                    bw: BwMode::Vwl(width_for_fraction((load * headroom).min(1.0))),
                    roo: None,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_net::TopologyKind;

    #[test]
    fn fraction_rounds_up_to_nearest_width() {
        assert_eq!(width_for_fraction(1.0), VwlWidth::W16);
        assert_eq!(width_for_fraction(0.51), VwlWidth::W16);
        assert_eq!(width_for_fraction(0.5), VwlWidth::W8);
        assert_eq!(width_for_fraction(0.26), VwlWidth::W8);
        assert_eq!(width_for_fraction(0.25), VwlWidth::W4);
        assert_eq!(width_for_fraction(0.0625), VwlWidth::W1);
        assert_eq!(width_for_fraction(0.01), VwlWidth::W1);
    }

    #[test]
    fn decisions_cover_every_link_without_roo() {
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        let ds = static_width_decisions(&t);
        assert_eq!(ds.len(), t.n_links());
        assert!(ds.iter().all(|d| d.mode.roo.is_none()));
    }

    #[test]
    fn root_edge_keeps_full_width_and_leaves_taper() {
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        let ds = static_width_decisions(&t);
        // Edge 0 carries all traffic.
        assert_eq!(ds[0].mode.bw, BwMode::Vwl(VwlWidth::W16));
        // Depth-3 edges (modules 4..13) carry ~7.7 % each: one lane is not
        // enough (6.25 %), so they get four lanes.
        let leaf = &ds[2 * 12];
        assert_eq!(leaf.mode.bw, BwMode::Vwl(VwlWidth::W4));
    }

    #[test]
    fn weighted_widths_follow_subtree_load() {
        let t = Topology::build(TopologyKind::TernaryTree, 4);
        // All traffic goes to module 3 (a child of module 0).
        let weights = [0.0, 0.0, 0.0, 1.0];
        let ds = weighted_width_decisions(&t, &weights, 1.0);
        // Edge 0 and edge 3 carry everything: full width.
        assert_eq!(ds[0].mode.bw, BwMode::Vwl(VwlWidth::W16));
        assert_eq!(ds[6].mode.bw, BwMode::Vwl(VwlWidth::W16));
        // Edges 1 and 2 carry nothing: one lane.
        assert_eq!(ds[2].mode.bw, BwMode::Vwl(VwlWidth::W1));
        assert_eq!(ds[4].mode.bw, BwMode::Vwl(VwlWidth::W1));
    }

    #[test]
    fn weighted_headroom_widens_links() {
        let t = Topology::build(TopologyKind::DaisyChain, 3);
        let weights = [0.74, 0.0, 0.26];
        let tight = weighted_width_decisions(&t, &weights, 1.0);
        let slack = weighted_width_decisions(&t, &weights, 2.0);
        assert_eq!(tight[4].mode.bw, BwMode::Vwl(VwlWidth::W8));
        assert_eq!(slack[4].mode.bw, BwMode::Vwl(VwlWidth::W16));
    }

    #[test]
    fn weighted_with_zero_weights_is_minimal() {
        let t = Topology::build(TopologyKind::Star, 5);
        let ds = weighted_width_decisions(&t, &[0.0; 5], 1.0);
        assert!(ds.iter().all(|d| d.mode.bw == BwMode::Vwl(VwlWidth::W1)));
    }

    #[test]
    #[should_panic(expected = "one weight per module")]
    fn weighted_requires_matching_lengths() {
        let t = Topology::build(TopologyKind::DaisyChain, 3);
        let _ = weighted_width_decisions(&t, &[1.0], 1.0);
    }

    #[test]
    fn daisychain_tapers_monotonically() {
        let t = Topology::build(TopologyKind::DaisyChain, 8);
        let ds = static_width_decisions(&t);
        for pair in (0..8).collect::<Vec<_>>().windows(2) {
            let up = ds[2 * pair[0]].mode.bw.bandwidth_fraction();
            let down = ds[2 * pair[1]].mode.bw.bandwidth_fraction();
            assert!(down <= up + 1e-12);
        }
    }
}
