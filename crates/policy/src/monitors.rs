//! Hardware-counter models: delay monitors, idle-interval histograms and
//! the wakeup-arrival sampler.
//!
//! These model the counters of Ahn et al. [20] (delay monitor/counter
//! pairs that estimate what a link's aggregate latency *would have been*
//! under a different bandwidth mode) and the idle-interval histogram of
//! RAMZzz [21] (which predicts rapid-on/off wakeup overheads).

use std::collections::VecDeque;

use memnet_net::mech::{BwMode, RooThreshold};
use memnet_simcore::{SimDuration, SimTime};

/// A delay monitor: simulates a link's queue as if the link ran at a fixed
/// bandwidth mode, accumulating the aggregate latency read packets would
/// see.
///
/// One monitor per candidate mode per link; the full-power monitor doubles
/// as the link's FEL (full-power epoch latency) estimator.
///
/// # Examples
///
/// ```
/// use memnet_net::mech::BwMode;
/// use memnet_policy::DelayMonitor;
/// use memnet_simcore::SimTime;
///
/// let mut monitor = DelayMonitor::new(BwMode::FULL_VWL);
/// monitor.record(SimTime::ZERO, 5, true);          // 5-flit read: 3.2 ns
/// monitor.record(SimTime::from_ps(1000), 1, true); // queued behind it
/// assert_eq!(monitor.read_latency_sum().as_ps(), 3200 + (3200 - 1000) + 640);
/// ```
#[derive(Debug, Clone)]
pub struct DelayMonitor {
    mode: BwMode,
    /// `mode.flit_time()`, cached: `record` runs once per transmitted
    /// packet per candidate mode and sits on the simulator's hot path.
    flit_time: SimDuration,
    virtual_busy_until: SimTime,
    read_latency_sum: SimDuration,
    read_packets: u64,
    /// Virtual completion times of packets still in the simulated queue,
    /// used to measure queue depth at arrival (for the QF statistic).
    /// Empty and unmaintained for [`DelayMonitor::new_untracked`]
    /// monitors.
    in_flight: VecDeque<SimTime>,
    track_depth: bool,
    queue_depth_at_last_arrival: usize,
}

impl DelayMonitor {
    /// Creates a monitor simulating `mode`.
    pub fn new(mode: BwMode) -> Self {
        DelayMonitor {
            mode,
            flit_time: mode.flit_time(),
            virtual_busy_until: SimTime::ZERO,
            read_latency_sum: SimDuration::ZERO,
            read_packets: 0,
            in_flight: VecDeque::new(),
            track_depth: true,
            queue_depth_at_last_arrival: 0,
        }
    }

    /// Creates a monitor that skips queue-depth tracking. Latency sums are
    /// identical to [`DelayMonitor::new`]; only
    /// [`DelayMonitor::queue_depth_at_last_arrival`] stays zero. Use for
    /// the non-reference monitors whose depth nobody reads — the virtual
    /// queue is the expensive part of `record`.
    pub fn new_untracked(mode: BwMode) -> Self {
        DelayMonitor { track_depth: false, ..DelayMonitor::new(mode) }
    }

    /// The mode being simulated.
    pub fn mode(&self) -> BwMode {
        self.mode
    }

    /// Feeds one packet arrival; returns the packet's virtual departure.
    pub fn record(&mut self, arrival: SimTime, flits: u64, is_read: bool) -> SimTime {
        if self.track_depth {
            while let Some(&front) = self.in_flight.front() {
                if front <= arrival {
                    self.in_flight.pop_front();
                } else {
                    break;
                }
            }
            self.queue_depth_at_last_arrival = self.in_flight.len();
        }
        let start = arrival.max(self.virtual_busy_until);
        let done = start + self.flit_time * flits;
        self.virtual_busy_until = done;
        if self.track_depth {
            self.in_flight.push_back(done);
        }
        if is_read {
            self.read_latency_sum += done - arrival;
            self.read_packets += 1;
        }
        done
    }

    /// Number of older packets the most recent arrival queued behind.
    pub fn queue_depth_at_last_arrival(&self) -> usize {
        self.queue_depth_at_last_arrival
    }

    /// Aggregate latency of read packets under the simulated mode.
    pub fn read_latency_sum(&self) -> SimDuration {
        self.read_latency_sum
    }

    /// Read packets observed this epoch.
    pub fn read_packets(&self) -> u64 {
        self.read_packets
    }

    /// Starts a fresh epoch. The virtual queue carries over (packets in
    /// flight at the boundary are still in flight) but sums reset.
    pub fn reset_epoch(&mut self) {
        self.read_latency_sum = SimDuration::ZERO;
        self.read_packets = 0;
    }
}

/// Idle-interval histogram (adapted from RAMZzz [21]): one bucket per ROO
/// threshold, where bucket `k` counts idle intervals in
/// `[threshold_k, threshold_{k+1})` and the last bucket is open-ended.
///
/// From these counts the policy predicts, for each candidate threshold,
/// how many wakeups the next epoch would suffer and how much off time it
/// would gain.
#[derive(Debug, Clone, Default)]
pub struct IdleHistogram {
    counts: [u64; 4],
    /// Sum of interval durations landing in each bucket.
    duration_sums: [SimDuration; 4],
}

impl IdleHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        IdleHistogram::default()
    }

    /// Records one idle interval.
    pub fn record(&mut self, interval: SimDuration) {
        let thresholds = RooThreshold::ALL;
        // Find the largest threshold <= interval; shorter intervals are
        // irrelevant (no candidate mode would have turned the link off).
        let mut bucket = None;
        for (i, t) in thresholds.iter().enumerate() {
            if interval >= t.threshold() {
                bucket = Some(i);
            }
        }
        if let Some(b) = bucket {
            self.counts[b] += 1;
            self.duration_sums[b] += interval;
        }
    }

    /// Number of wakeups a link with threshold `thr` would have suffered:
    /// every idle interval at least as long as the threshold turns the
    /// link off once (and wakes it once).
    pub fn wakeups(&self, thr: RooThreshold) -> u64 {
        (thr.index()..4).map(|i| self.counts[i]).sum()
    }

    /// Total off time the link would have gained with threshold `thr`:
    /// each qualifying interval contributes `interval − threshold`.
    pub fn off_time(&self, thr: RooThreshold) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for i in thr.index()..4 {
            total += self.duration_sums[i].saturating_sub(thr.threshold() * self.counts[i]);
        }
        total
    }

    /// Clears the histogram for a new epoch.
    pub fn reset_epoch(&mut self) {
        *self = IdleHistogram::default();
    }
}

/// Samples how many read packets arrive during one wakeup-latency window
/// following a sampled packet's arrival — the paper's estimator for the
/// queueing a wakeup induces.
///
/// Every `period`-th arrival opens a window of `wakeup_latency`;
/// subsequent arrivals inside the window are counted.
#[derive(Debug, Clone)]
pub struct WakeupSampler {
    wakeup_latency: SimDuration,
    period: u64,
    arrivals_seen: u64,
    window_end: Option<SimTime>,
    window_count: u64,
    samples: u64,
    total_counted: u64,
}

impl WakeupSampler {
    /// Creates a sampler opening a window every `period` arrivals.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(wakeup_latency: SimDuration, period: u64) -> Self {
        assert!(period > 0, "sampling period must be positive");
        WakeupSampler {
            wakeup_latency,
            period,
            arrivals_seen: 0,
            window_end: None,
            window_count: 0,
            samples: 0,
            total_counted: 0,
        }
    }

    /// Feeds one read-packet arrival.
    pub fn on_arrival(&mut self, now: SimTime) {
        if let Some(end) = self.window_end {
            if now <= end {
                self.window_count += 1;
                return;
            }
            // Window closed: commit the sample.
            self.total_counted += self.window_count;
            self.samples += 1;
            self.window_end = None;
            self.window_count = 0;
        }
        self.arrivals_seen += 1;
        if self.arrivals_seen.is_multiple_of(self.period) {
            self.window_end = Some(now + self.wakeup_latency);
        }
    }

    /// Average read arrivals per wakeup window (0.0 before any sample
    /// completes).
    pub fn average_arrivals(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_counted as f64 / self.samples as f64
        }
    }

    /// Starts a fresh epoch, keeping the long-run average.
    pub fn reset_epoch(&mut self) {
        // The estimate is a slowly varying property; the paper samples
        // periodically, so we keep history across epochs.
        self.window_end = None;
        self.window_count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_net::mech::VwlWidth;

    #[test]
    fn monitor_models_queueing_at_reduced_width() {
        // Quarter width: 5-flit packet takes 5 × 2.56 ns = 12.8 ns.
        let mut m = DelayMonitor::new(BwMode::Vwl(VwlWidth::W4));
        let d1 = m.record(SimTime::ZERO, 5, true);
        assert_eq!(d1.as_ps(), 12_800);
        // Arriving at 1 ns, waits until 12.8 ns then serializes 1 flit.
        let d2 = m.record(SimTime::from_ps(1_000), 1, true);
        assert_eq!(d2.as_ps(), 12_800 + 2_560);
        assert_eq!(m.read_latency_sum().as_ps(), 12_800 + (12_800 - 1_000) + 2_560);
        assert_eq!(m.read_packets(), 2);
    }

    #[test]
    fn monitor_ignores_write_latency_but_occupies_queue() {
        let mut m = DelayMonitor::new(BwMode::FULL_VWL);
        m.record(SimTime::ZERO, 5, false); // write occupies 3.2 ns
        let d = m.record(SimTime::ZERO, 1, true);
        assert_eq!(d.as_ps(), 3_200 + 640);
        // Only the read's latency is accumulated.
        assert_eq!(m.read_latency_sum().as_ps(), 3_840);
        assert_eq!(m.read_packets(), 1);
    }

    #[test]
    fn monitor_queue_depth_counts_older_packets() {
        let mut m = DelayMonitor::new(BwMode::FULL_VWL);
        for _ in 0..4 {
            m.record(SimTime::ZERO, 5, true);
        }
        assert_eq!(m.queue_depth_at_last_arrival(), 3);
        // After the virtual queue drains, depth drops to zero.
        m.record(SimTime::from_ps(1_000_000), 1, true);
        assert_eq!(m.queue_depth_at_last_arrival(), 0);
    }

    #[test]
    fn monitor_epoch_reset_keeps_virtual_queue() {
        let mut m = DelayMonitor::new(BwMode::Vwl(VwlWidth::W1));
        m.record(SimTime::ZERO, 5, true); // busy until 51.2 ns
        m.reset_epoch();
        assert_eq!(m.read_latency_sum(), SimDuration::ZERO);
        let d = m.record(SimTime::from_ps(1_000), 1, true);
        // Still queued behind the carried-over packet.
        assert_eq!(d.as_ps(), 51_200 + 10_240);
    }

    #[test]
    fn histogram_wakeups_count_qualifying_intervals() {
        let mut h = IdleHistogram::new();
        h.record(SimDuration::from_ns(10)); // below every threshold: ignored
        h.record(SimDuration::from_ns(40)); // >= 32
        h.record(SimDuration::from_ns(200)); // >= 128
        h.record(SimDuration::from_ns(600)); // >= 512
        h.record(SimDuration::from_ns(3_000)); // >= 2048
        assert_eq!(h.wakeups(RooThreshold::T32), 4);
        assert_eq!(h.wakeups(RooThreshold::T128), 3);
        assert_eq!(h.wakeups(RooThreshold::T512), 2);
        assert_eq!(h.wakeups(RooThreshold::T2048), 1);
    }

    #[test]
    fn histogram_off_time_subtracts_threshold() {
        let mut h = IdleHistogram::new();
        h.record(SimDuration::from_ns(600));
        h.record(SimDuration::from_ns(3_000));
        // T512: (600-512) + (3000-512) = 88 + 2488 = 2576 ns.
        assert_eq!(h.off_time(RooThreshold::T512), SimDuration::from_ns(2_576));
        // T2048: 3000-2048 = 952 ns.
        assert_eq!(h.off_time(RooThreshold::T2048), SimDuration::from_ns(952));
        h.reset_epoch();
        assert_eq!(h.wakeups(RooThreshold::T32), 0);
    }

    #[test]
    fn sampler_estimates_arrival_burst_density() {
        let mut s = WakeupSampler::new(SimDuration::from_ns(14), 1);
        // Burst of 3 arrivals 5 ns apart: the window opened by the first
        // captures the next two.
        s.on_arrival(SimTime::from_ps(0));
        s.on_arrival(SimTime::from_ps(5_000));
        s.on_arrival(SimTime::from_ps(10_000));
        // Next arrival far away closes the window.
        s.on_arrival(SimTime::from_ps(1_000_000));
        assert!((s.average_arrivals() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sampler_without_samples_reports_zero() {
        let s = WakeupSampler::new(SimDuration::from_ns(14), 64);
        assert_eq!(s.average_arrivals(), 0.0);
    }
}
