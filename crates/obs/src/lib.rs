//! Time-series observability for the memory-network simulator.
//!
//! The paper's central claims are temporal — idle-I/O dominance, epoch-by-
//! epoch AMS budgeting, FLO-driven mode transitions, ISP scatter/gather
//! rounds — but a [`RunReport`](../memnet_core/struct.RunReport.html) only
//! carries end-of-run aggregates. This crate adds the missing time axis
//! without perturbing results or costing anything when switched off:
//!
//! * [`Recorder`] — the engine-facing trait. The default methods are all
//!   no-ops, so the [`NullRecorder`] used when observability is off
//!   compiles down to nothing behind the engine's single `obs_on` branch.
//! * [`TimeSeriesRecorder`] — samples an [`EpochSample`] per controller
//!   epoch (per-link mode + mode residency, AMS budgets, FLO estimates,
//!   rescue pool, ISP rounds, queue depths, per-category energy, retry and
//!   wake counts) into a bounded ring buffer, and optionally streams
//!   schema-versioned JSONL events (mode transitions, wakeups, NAKs, ISP
//!   dispatches) to a trace file with decimation controls.
//! * [`summary`] — parses and validates a trace file and renders per-link
//!   residency tables plus an epoch CSV for plotting.
//!
//! Every reader the recorder touches is pure (residency snapshots, budget
//! getters, FLO estimates), so a traced run is bit-identical to an
//! untraced one — `tests/metamorphic.rs` and `tests/obs_trace.rs` in the
//! workspace root enforce both directions.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};

use memnet_simcore::memnet_warn;
use serde::{json, Deserialize, Serialize};

pub mod summary;

/// Version of the JSONL trace schema and of the [`ObsSection`] layout.
///
/// Bump whenever a line shape, field name, or field meaning changes; the
/// summarizer refuses traces whose header carries a different version.
pub const OBS_SCHEMA_VERSION: u32 = 1;

/// Energy category labels, in the order used by [`EpochSample::energy_j`]
/// (Figure 5 order with retransmission I/O appended — the same order as
/// `EnergyBreakdown::categories`).
pub const ENERGY_CATEGORIES: [&str; 7] =
    ["idle_io", "active_io", "logic_leak", "logic_dyn", "dram_leak", "dram_dyn", "retrans_io"];

/// Observability configuration carried inside `SimConfig`.
///
/// The default (and [`ObsConfig::off`]) disables everything; the engine
/// then installs a [`NullRecorder`] and the only residual cost is one
/// always-false branch per hook site. Like `SimConfigBuilder::faults`,
/// nothing here reads the environment — [`ObsConfig::from_env`] exists for
/// the CLI layer only, so cached results can never be poisoned by an env
/// var the cache key does not see.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Collect per-epoch [`EpochSample`]s into the report's `obs` section.
    pub enabled: bool,
    /// Ring-buffer capacity for retained epoch samples; older samples are
    /// evicted (and counted in [`ObsSection::samples_dropped`]) beyond it.
    pub ring_capacity: usize,
    /// Stream JSONL events and samples to this path (implies sampling).
    pub trace_path: Option<String>,
    /// Keep every Nth event (1 = keep all). Epoch samples are never
    /// decimated — only discrete events are.
    pub trace_every: u64,
    /// Hard cap on events written to the trace file; once reached the
    /// trace is marked truncated and further events are dropped.
    pub trace_max: u64,
}

impl ObsConfig {
    /// Observability fully disabled (the default).
    pub fn off() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 4096,
            trace_path: None,
            trace_every: 1,
            trace_max: 1_000_000,
        }
    }

    /// True when any recording (in-memory sampling or file tracing) is on.
    pub fn is_active(&self) -> bool {
        self.enabled || self.trace_path.is_some()
    }

    /// Builds a config from `MEMNET_TRACE`, `MEMNET_TRACE_EVERY` and
    /// `MEMNET_TRACE_MAX`, warning (and keeping the default) on malformed
    /// values. Call this from the CLI layer only — never from a config
    /// builder — so cache keys stay a function of explicit configuration.
    pub fn from_env() -> Self {
        let mut cfg = ObsConfig::off();
        if let Ok(path) = std::env::var("MEMNET_TRACE") {
            if !path.is_empty() {
                cfg.trace_path = Some(path);
            }
        }
        cfg.trace_every = env_u64("MEMNET_TRACE_EVERY", cfg.trace_every, 1);
        cfg.trace_max = env_u64("MEMNET_TRACE_MAX", cfg.trace_max, 0);
        cfg
    }
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig::off()
    }
}

fn env_u64(key: &str, default: u64, min: u64) -> u64 {
    match std::env::var(key) {
        Ok(raw) => match raw.parse::<u64>() {
            Ok(v) if v >= min => v,
            _ => {
                memnet_warn!("[obs] {key}={raw:?} is not an integer >= {min}; using {default}");
                default
            }
        },
        Err(_) => default,
    }
}

/// Run identity written into the trace header so a trace file is
/// self-describing.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceMeta {
    pub workload: &'static str,
    pub topology: &'static str,
    pub policy: &'static str,
    pub mechanism: &'static str,
    pub seed: u64,
    pub epoch_ps: u64,
    pub eval_ps: u64,
    pub n_links: u32,
    pub n_modules: u32,
}

/// A discrete simulator event worth tracing, stamped in simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsEvent {
    /// Simulated time of the event, in picoseconds.
    pub t_ps: u64,
    pub kind: ObsEventKind,
}

/// The event vocabulary of trace schema version 1.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEventKind {
    /// The controller applied a new bandwidth mode (and optionally a new
    /// ROO threshold) to a link.
    Mode { link: u32, bw: &'static str, roo: Option<&'static str> },
    /// A powered-off link began waking.
    Wake { link: u32 },
    /// A waking link finished its wake transition.
    WakeDone { link: u32 },
    /// A fault stretched a wake transition past its nominal latency.
    WakeTimeout { link: u32 },
    /// An idle link crossed its ROO threshold and powered off.
    TurnOff { link: u32 },
    /// Wake chaining propagated a wake to the next link on the route.
    ChainWake { link: u32 },
    /// The engine forced a link to full power (e.g. route-around traffic).
    ForcedFull { link: u32 },
    /// A CRC failure NAKed a packet; `attempt` is the retry ordinal.
    Nak { link: u32, attempt: u32 },
    /// The controller dispatched an ISP scatter/gather phase of `rounds`
    /// propagation rounds at an epoch boundary.
    Isp { rounds: u32 },
}

impl ObsEventKind {
    /// The `"ev"` tag this kind serializes under.
    pub fn name(&self) -> &'static str {
        match self {
            ObsEventKind::Mode { .. } => "mode",
            ObsEventKind::Wake { .. } => "wake",
            ObsEventKind::WakeDone { .. } => "wake_done",
            ObsEventKind::WakeTimeout { .. } => "wake_timeout",
            ObsEventKind::TurnOff { .. } => "turn_off",
            ObsEventKind::ChainWake { .. } => "chain_wake",
            ObsEventKind::ForcedFull { .. } => "forced_full",
            ObsEventKind::Nak { .. } => "nak",
            ObsEventKind::Isp { .. } => "isp",
        }
    }
}

/// Per-link slice of an [`EpochSample`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSample {
    pub link: u32,
    /// Bandwidth mode label at the end of the epoch (`BwMode::label`).
    pub bw: &'static str,
    /// ROO threshold label, when the mechanism manages one.
    pub roo: Option<&'static str>,
    /// Residency within this epoch, by accounting family, in picoseconds.
    pub off_ps: u64,
    pub waking_ps: u64,
    pub idle_ps: u64,
    pub active_ps: u64,
    pub retrans_ps: u64,
    /// Queue depth observed at the epoch boundary.
    pub queue_depth: u32,
    /// Wake transitions started during this epoch.
    pub wakes: u64,
    /// Retransmissions (NAK retries) during this epoch.
    pub retries: u64,
    /// AMS latency budget governing this epoch, in picoseconds
    /// (saturated into `i64`; budgets are `i128` internally).
    pub budget_ps: i64,
    /// Delay-monitor FLO estimate for the selected mode at epoch close.
    pub flo_ps: i64,
}

/// One epoch of time-series metrics across the whole network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSample {
    /// Zero-based epoch index (a trailing partial epoch gets the next
    /// index with `end_ps` short of a full period).
    pub epoch: u64,
    pub start_ps: u64,
    pub end_ps: u64,
    /// Energy spent inside this epoch per category, joules, in
    /// [`ENERGY_CATEGORIES`] order. Summing a column over all samples
    /// reproduces the aggregate report energy (the pricing model is linear
    /// in residency, so per-epoch deltas telescope).
    pub energy_j: [f64; 7],
    /// AMS rescue pool remaining at epoch close, picoseconds (saturated).
    pub pool_ps: i64,
    /// Cumulative budget violations observed so far.
    pub violations: u64,
    /// ISP propagation rounds dispatched at this epoch's close.
    pub isp_rounds: u32,
    pub links: Vec<LinkSample>,
}

/// The opt-in `obs` section attached to a `RunReport`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsSection {
    /// [`OBS_SCHEMA_VERSION`] at recording time.
    pub schema: u32,
    /// Retained epoch samples, oldest first (ring-bounded).
    pub epochs: Vec<EpochSample>,
    /// Samples evicted from the ring (0 unless the run outgrew it).
    pub samples_dropped: u64,
    /// Discrete events offered to the recorder.
    pub events_seen: u64,
    /// Discrete events actually written to the trace file.
    pub events_written: u64,
    /// True when `trace_max` cut the event stream short.
    pub truncated: bool,
}

/// Saturates an `i128` latency (the policy crate's `LatencyPs`) into the
/// `i64` fields carried by samples.
pub fn saturate_latency(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

/// Engine-facing recording interface.
///
/// Every method defaults to a no-op so `NullRecorder` (and any partial
/// implementation) costs nothing. The engine additionally guards each call
/// site behind a cached `is_active` flag, so the disabled path never even
/// constructs event payloads.
///
/// `Send` is a supertrait so an engine holding a recorder can move to a
/// worker thread (the lockstep multi-seed driver runs replicas on every
/// available core).
pub trait Recorder: Send {
    /// Whether the engine should construct and deliver payloads at all.
    fn is_active(&self) -> bool {
        false
    }
    /// Called once before the first simulated event.
    fn start(&mut self, _meta: &TraceMeta) {}
    /// Called for each discrete event while active.
    fn record_event(&mut self, _event: &ObsEvent) {}
    /// Called once per controller epoch (plus a trailing partial epoch).
    fn record_epoch(&mut self, _sample: EpochSample) {}
    /// Called at finalization; returns the report section, if any.
    fn finish(&mut self) -> Option<ObsSection> {
        None
    }
}

/// The do-nothing recorder installed when observability is off.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {}

#[derive(Serialize)]
struct TraceHeader {
    schema: &'static str,
    version: u32,
    workload: &'static str,
    topology: &'static str,
    policy: &'static str,
    mechanism: &'static str,
    seed: u64,
    epoch_ps: u64,
    eval_ps: u64,
    n_links: u32,
    n_modules: u32,
    every: u64,
    max_events: u64,
}

/// Collects per-epoch samples into a bounded ring and optionally streams
/// JSONL to a trace file.
pub struct TimeSeriesRecorder {
    cfg: ObsConfig,
    epochs: VecDeque<EpochSample>,
    samples_dropped: u64,
    events_seen: u64,
    events_written: u64,
    truncated: bool,
    writer: Option<BufWriter<File>>,
    write_failed: bool,
}

impl TimeSeriesRecorder {
    /// Opens the trace file if one is configured; a failure to open warns
    /// and degrades to in-memory sampling only.
    pub fn new(cfg: ObsConfig) -> Self {
        let writer = cfg.trace_path.as_deref().and_then(|path| match File::create(path) {
            Ok(f) => Some(BufWriter::new(f)),
            Err(e) => {
                memnet_warn!("[obs] cannot create trace file {path:?}: {e}; file tracing disabled");
                None
            }
        });
        TimeSeriesRecorder {
            cfg,
            epochs: VecDeque::new(),
            samples_dropped: 0,
            events_seen: 0,
            events_written: 0,
            truncated: false,
            writer,
            write_failed: false,
        }
    }

    fn write_line(&mut self, line: &str) {
        if let Some(w) = &mut self.writer {
            if writeln!(w, "{line}").is_err() && !self.write_failed {
                self.write_failed = true;
                memnet_warn!("[obs] trace write failed; trace file will be incomplete");
            }
        }
    }

    fn event_line(e: &ObsEvent) -> String {
        let name = e.kind.name();
        let t = e.t_ps;
        match &e.kind {
            ObsEventKind::Mode { link, bw, roo } => {
                let roo = match roo {
                    Some(r) => format!("\"{r}\""),
                    None => "null".to_owned(),
                };
                format!(
                    "{{\"t\":{t},\"ev\":\"{name}\",\"link\":{link},\"bw\":\"{bw}\",\"roo\":{roo}}}"
                )
            }
            ObsEventKind::Wake { link }
            | ObsEventKind::WakeDone { link }
            | ObsEventKind::WakeTimeout { link }
            | ObsEventKind::TurnOff { link }
            | ObsEventKind::ChainWake { link }
            | ObsEventKind::ForcedFull { link } => {
                format!("{{\"t\":{t},\"ev\":\"{name}\",\"link\":{link}}}")
            }
            ObsEventKind::Nak { link, attempt } => {
                format!("{{\"t\":{t},\"ev\":\"{name}\",\"link\":{link},\"attempt\":{attempt}}}")
            }
            ObsEventKind::Isp { rounds } => {
                format!("{{\"t\":{t},\"ev\":\"{name}\",\"rounds\":{rounds}}}")
            }
        }
    }
}

impl Recorder for TimeSeriesRecorder {
    fn is_active(&self) -> bool {
        true
    }

    fn start(&mut self, meta: &TraceMeta) {
        if self.writer.is_some() {
            let header = TraceHeader {
                schema: "memnet-trace",
                version: OBS_SCHEMA_VERSION,
                workload: meta.workload,
                topology: meta.topology,
                policy: meta.policy,
                mechanism: meta.mechanism,
                seed: meta.seed,
                epoch_ps: meta.epoch_ps,
                eval_ps: meta.eval_ps,
                n_links: meta.n_links,
                n_modules: meta.n_modules,
                every: self.cfg.trace_every,
                max_events: self.cfg.trace_max,
            };
            let line = json::to_string(&header);
            self.write_line(&line);
        }
    }

    fn record_event(&mut self, event: &ObsEvent) {
        self.events_seen += 1;
        if self.writer.is_none() {
            return;
        }
        // Decimation: keep the 1st, (every+1)th, ... event seen.
        if !(self.events_seen - 1).is_multiple_of(self.cfg.trace_every) {
            return;
        }
        if self.events_written >= self.cfg.trace_max {
            self.truncated = true;
            return;
        }
        let line = Self::event_line(event);
        self.write_line(&line);
        self.events_written += 1;
    }

    fn record_epoch(&mut self, sample: EpochSample) {
        if self.writer.is_some() {
            let line = format!(
                "{{\"t\":{},\"ev\":\"sample\",\"sample\":{}}}",
                sample.end_ps,
                json::to_string(&sample)
            );
            self.write_line(&line);
        }
        if self.cfg.ring_capacity == 0 {
            self.samples_dropped += 1;
            return;
        }
        while self.epochs.len() >= self.cfg.ring_capacity {
            self.epochs.pop_front();
            self.samples_dropped += 1;
        }
        self.epochs.push_back(sample);
    }

    fn finish(&mut self) -> Option<ObsSection> {
        let section = ObsSection {
            schema: OBS_SCHEMA_VERSION,
            epochs: self.epochs.drain(..).collect(),
            samples_dropped: self.samples_dropped,
            events_seen: self.events_seen,
            events_written: self.events_written,
            truncated: self.truncated,
        };
        if self.writer.is_some() {
            let line = format!(
                "{{\"ev\":\"end\",\"events_seen\":{},\"events_written\":{},\"samples\":{},\"truncated\":{}}}",
                section.events_seen,
                section.events_written,
                section.epochs.len() as u64 + section.samples_dropped,
                section.truncated
            );
            self.write_line(&line);
            if let Some(w) = &mut self.writer {
                if w.flush().is_err() && !self.write_failed {
                    memnet_warn!("[obs] trace flush failed; trace file may be incomplete");
                }
            }
        }
        Some(section)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(epoch: u64) -> EpochSample {
        EpochSample {
            epoch,
            start_ps: epoch * 100,
            end_ps: (epoch + 1) * 100,
            energy_j: [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7],
            pool_ps: 42,
            violations: epoch,
            isp_rounds: 2,
            links: vec![LinkSample {
                link: 0,
                bw: "vwl16",
                roo: Some("t512"),
                off_ps: 10,
                waking_ps: 5,
                idle_ps: 50,
                active_ps: 30,
                retrans_ps: 5,
                queue_depth: 3,
                wakes: 1,
                retries: 0,
                budget_ps: 1_000,
                flo_ps: 250,
            }],
        }
    }

    #[test]
    fn off_config_is_inactive_and_default() {
        assert!(!ObsConfig::off().is_active());
        assert_eq!(ObsConfig::off(), ObsConfig::default());
        let with_trace = ObsConfig { trace_path: Some("x.jsonl".into()), ..ObsConfig::off() };
        assert!(with_trace.is_active());
        let enabled = ObsConfig { enabled: true, ..ObsConfig::off() };
        assert!(enabled.is_active());
    }

    #[test]
    fn null_recorder_is_inert() {
        let mut r = NullRecorder;
        assert!(!r.is_active());
        r.record_epoch(sample(0));
        r.record_event(&ObsEvent { t_ps: 1, kind: ObsEventKind::Wake { link: 0 } });
        assert!(r.finish().is_none());
    }

    #[test]
    fn epoch_sample_round_trips_through_json() {
        let s = sample(3);
        let text = json::to_string(&s);
        let back: EpochSample = json::from_str(&text).expect("round trip");
        assert_eq!(back, s);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let cfg = ObsConfig { enabled: true, ring_capacity: 2, ..ObsConfig::off() };
        let mut r = TimeSeriesRecorder::new(cfg);
        for e in 0..5 {
            r.record_epoch(sample(e));
        }
        let section = r.finish().expect("section");
        assert_eq!(section.samples_dropped, 3);
        let kept: Vec<u64> = section.epochs.iter().map(|s| s.epoch).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let cfg = ObsConfig { enabled: true, ring_capacity: 0, ..ObsConfig::off() };
        let mut r = TimeSeriesRecorder::new(cfg);
        r.record_epoch(sample(0));
        let section = r.finish().expect("section");
        assert!(section.epochs.is_empty());
        assert_eq!(section.samples_dropped, 1);
    }

    #[test]
    fn events_are_counted_even_without_a_writer() {
        let cfg = ObsConfig { enabled: true, ..ObsConfig::off() };
        let mut r = TimeSeriesRecorder::new(cfg);
        for t in 0..7 {
            r.record_event(&ObsEvent { t_ps: t, kind: ObsEventKind::Wake { link: 1 } });
        }
        let section = r.finish().expect("section");
        assert_eq!(section.events_seen, 7);
        assert_eq!(section.events_written, 0);
        assert!(!section.truncated);
    }

    #[test]
    fn saturate_latency_clamps_extremes() {
        assert_eq!(saturate_latency(5), 5);
        assert_eq!(saturate_latency(-5), -5);
        assert_eq!(saturate_latency(i128::MAX), i64::MAX);
        assert_eq!(saturate_latency(i128::MIN), i64::MIN);
    }

    #[test]
    fn event_lines_are_valid_json_with_the_declared_tag() {
        let events = [
            ObsEventKind::Mode { link: 3, bw: "vwl8", roo: Some("t128") },
            ObsEventKind::Mode { link: 3, bw: "dvfs100", roo: None },
            ObsEventKind::Wake { link: 0 },
            ObsEventKind::WakeDone { link: 0 },
            ObsEventKind::WakeTimeout { link: 9 },
            ObsEventKind::TurnOff { link: 2 },
            ObsEventKind::ChainWake { link: 4 },
            ObsEventKind::ForcedFull { link: 5 },
            ObsEventKind::Nak { link: 1, attempt: 2 },
            ObsEventKind::Isp { rounds: 3 },
        ];
        for kind in events {
            let line = TimeSeriesRecorder::event_line(&ObsEvent { t_ps: 17, kind: kind.clone() });
            let v = json::parse(&line).expect("valid json");
            assert_eq!(v.get("ev").unwrap().as_str().unwrap(), kind.name());
            assert_eq!(v.get("t").unwrap().num::<u64>().unwrap(), 17);
        }
    }
}
