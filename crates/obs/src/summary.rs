//! Trace-file validation and summarization (`memnet trace`).
//!
//! A trace is newline-delimited JSON: one header object, then interleaved
//! event and `sample` objects in time order, then one `end` footer. This
//! module re-parses that stream with the workspace's own JSON parser,
//! validates it against [`OBS_SCHEMA_VERSION`](crate::OBS_SCHEMA_VERSION),
//! and renders the two artifacts the experiments workflow wants: a
//! per-link residency table and an epoch CSV for plotting.

use serde::{json, Deserialize};

use crate::{EpochSample, ENERGY_CATEGORIES, OBS_SCHEMA_VERSION};

/// Event tags valid in schema version 1, excluding `sample` and `end`.
pub const EVENT_KINDS: [&str; 9] = [
    "mode",
    "wake",
    "wake_done",
    "wake_timeout",
    "turn_off",
    "chain_wake",
    "forced_full",
    "nak",
    "isp",
];

/// Everything extracted from a validated trace file.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Schema version from the header.
    pub version: u32,
    pub workload: String,
    pub policy: String,
    pub mechanism: String,
    pub n_links: u32,
    /// `(kind, count)` over the written events, in [`EVENT_KINDS`] order,
    /// zero-count kinds included.
    pub events_by_kind: Vec<(&'static str, u64)>,
    /// All epoch samples present in the file, in order.
    pub samples: Vec<EpochSample>,
    /// Footer bookkeeping.
    pub events_seen: u64,
    pub events_written: u64,
    pub truncated: bool,
}

impl TraceSummary {
    /// Count of written events of `kind` (0 for unknown kinds).
    pub fn event_count(&self, kind: &str) -> u64 {
        self.events_by_kind.iter().find(|(k, _)| *k == kind).map_or(0, |(_, n)| *n)
    }
}

fn field<T: Deserialize>(v: &json::Value, key: &str) -> Result<T, String> {
    let inner = v.get(key).map_err(|e| format!("missing {key:?}: {}", e.0))?;
    T::deserialize(inner).map_err(|e| format!("bad {key:?}: {}", e.0))
}

/// Parses and validates a JSONL trace, returning its summary.
///
/// Errors carry the 1-based line number of the offending line. Validation
/// checks: header first with the expected schema name and version, every
/// subsequent line a known event / `sample` / `end` object with the fields
/// that kind requires, timestamps non-decreasing, exactly one footer and
/// nothing after it, and footer counts consistent with the body.
pub fn parse_jsonl(text: &str) -> Result<TraceSummary, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());

    let (n0, header_line) = lines.next().ok_or("empty trace file")?;
    let header = json::parse(header_line).map_err(|e| format!("line {}: {}", n0 + 1, e.0))?;
    let schema: String = field(&header, "schema").map_err(|e| format!("line {}: {e}", n0 + 1))?;
    if schema != "memnet-trace" {
        return Err(format!("line {}: schema is {schema:?}, expected \"memnet-trace\"", n0 + 1));
    }
    let version: u32 = field(&header, "version").map_err(|e| format!("line {}: {e}", n0 + 1))?;
    if version != OBS_SCHEMA_VERSION {
        return Err(format!(
            "line {}: trace schema version {version} unsupported (this build reads {OBS_SCHEMA_VERSION})",
            n0 + 1
        ));
    }
    let workload: String =
        field(&header, "workload").map_err(|e| format!("line {}: {e}", n0 + 1))?;
    let policy: String = field(&header, "policy").map_err(|e| format!("line {}: {e}", n0 + 1))?;
    let mechanism: String =
        field(&header, "mechanism").map_err(|e| format!("line {}: {e}", n0 + 1))?;
    let n_links: u32 = field(&header, "n_links").map_err(|e| format!("line {}: {e}", n0 + 1))?;

    let mut counts = [0u64; EVENT_KINDS.len()];
    let mut samples: Vec<EpochSample> = Vec::new();
    let mut footer: Option<(u64, u64, bool)> = None;
    let mut last_t: u64 = 0;

    for (idx, line) in lines {
        let n = idx + 1;
        if footer.is_some() {
            return Err(format!("line {n}: content after the end footer"));
        }
        let v = json::parse(line).map_err(|e| format!("line {n}: {}", e.0))?;
        let ev: String = field(&v, "ev").map_err(|e| format!("line {n}: {e}"))?;
        match ev.as_str() {
            "end" => {
                let seen: u64 = field(&v, "events_seen").map_err(|e| format!("line {n}: {e}"))?;
                let written: u64 =
                    field(&v, "events_written").map_err(|e| format!("line {n}: {e}"))?;
                let truncated: bool =
                    field(&v, "truncated").map_err(|e| format!("line {n}: {e}"))?;
                footer = Some((seen, written, truncated));
            }
            "sample" => {
                let t: u64 = field(&v, "t").map_err(|e| format!("line {n}: {e}"))?;
                if t < last_t {
                    return Err(format!("line {n}: timestamp {t} goes backwards (last {last_t})"));
                }
                last_t = t;
                let sample: EpochSample =
                    field(&v, "sample").map_err(|e| format!("line {n}: {e}"))?;
                if sample.end_ps != t {
                    return Err(format!(
                        "line {n}: sample end_ps {} disagrees with line timestamp {t}",
                        sample.end_ps
                    ));
                }
                if let Some(prev) = samples.last() {
                    if sample.epoch != prev.epoch + 1 || sample.start_ps != prev.end_ps {
                        return Err(format!(
                            "line {n}: epoch {} [{}, {}) is not contiguous with epoch {} ending at {}",
                            sample.epoch, sample.start_ps, sample.end_ps, prev.epoch, prev.end_ps
                        ));
                    }
                }
                samples.push(sample);
            }
            kind => {
                let slot = EVENT_KINDS
                    .iter()
                    .position(|k| *k == kind)
                    .ok_or_else(|| format!("line {n}: unknown event kind {kind:?}"))?;
                let t: u64 = field(&v, "t").map_err(|e| format!("line {n}: {e}"))?;
                if t < last_t {
                    return Err(format!("line {n}: timestamp {t} goes backwards (last {last_t})"));
                }
                last_t = t;
                if kind == "isp" {
                    let _: u32 = field(&v, "rounds").map_err(|e| format!("line {n}: {e}"))?;
                } else {
                    let link: u32 = field(&v, "link").map_err(|e| format!("line {n}: {e}"))?;
                    if link >= n_links {
                        return Err(format!(
                            "line {n}: link {link} out of range ({n_links} links)"
                        ));
                    }
                }
                if kind == "mode" {
                    let _: String = field(&v, "bw").map_err(|e| format!("line {n}: {e}"))?;
                }
                if kind == "nak" {
                    let _: u32 = field(&v, "attempt").map_err(|e| format!("line {n}: {e}"))?;
                }
                counts[slot] += 1;
            }
        }
    }

    let (events_seen, events_written, truncated) =
        footer.ok_or("trace has no end footer (run truncated?)")?;
    let written_in_body: u64 = counts.iter().sum();
    if written_in_body != events_written {
        return Err(format!(
            "footer claims {events_written} events written but the body has {written_in_body}"
        ));
    }
    if events_written > events_seen {
        return Err(format!(
            "footer claims more events written ({events_written}) than seen ({events_seen})"
        ));
    }

    Ok(TraceSummary {
        version,
        workload,
        policy,
        mechanism,
        n_links,
        events_by_kind: EVENT_KINDS.iter().zip(counts).map(|(k, c)| (*k, c)).collect(),
        samples,
        events_seen,
        events_written,
        truncated,
    })
}

/// Renders a per-link residency table aggregated over `samples`: percent
/// of sampled time per accounting family, plus wake/retry totals and the
/// final mode.
pub fn residency_table(samples: &[EpochSample]) -> String {
    let n_links = samples.iter().map(|s| s.links.len()).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(&format!(
        "{:>5}  {:>8}  {:>6}  {:>6}  {:>6}  {:>6}  {:>7}  {:>6}  {:>7}\n",
        "link", "mode", "off%", "wake%", "idle%", "act%", "retr%", "wakes", "retries"
    ));
    for l in 0..n_links {
        let mut ps = [0u64; 5];
        let (mut wakes, mut retries) = (0u64, 0u64);
        let mut mode = "-";
        for s in samples {
            if let Some(ls) = s.links.get(l) {
                ps[0] += ls.off_ps;
                ps[1] += ls.waking_ps;
                ps[2] += ls.idle_ps;
                ps[3] += ls.active_ps;
                ps[4] += ls.retrans_ps;
                wakes += ls.wakes;
                retries += ls.retries;
                mode = ls.bw;
            }
        }
        let total: u64 = ps.iter().sum();
        let pct = |v: u64| if total == 0 { 0.0 } else { 100.0 * v as f64 / total as f64 };
        out.push_str(&format!(
            "{:>5}  {:>8}  {:>6.2}  {:>6.2}  {:>6.2}  {:>6.2}  {:>7.3}  {:>6}  {:>7}\n",
            l,
            mode,
            pct(ps[0]),
            pct(ps[1]),
            pct(ps[2]),
            pct(ps[3]),
            pct(ps[4]),
            wakes,
            retries
        ));
    }
    out
}

/// Renders the epoch time series as CSV: one row per sample, energy per
/// category plus network-wide queue/wake/retry sums — the plotting input
/// for idle-interval and mode-residency figures.
pub fn epoch_csv(samples: &[EpochSample]) -> String {
    let mut out = String::from("epoch,start_ps,end_ps");
    for cat in ENERGY_CATEGORIES {
        out.push_str(&format!(",{cat}_j"));
    }
    out.push_str(",pool_ps,violations,isp_rounds,queue_depth,wakes,retries\n");
    for s in samples {
        out.push_str(&format!("{},{},{}", s.epoch, s.start_ps, s.end_ps));
        for j in s.energy_j {
            out.push_str(&format!(",{j:.9e}"));
        }
        let queue: u64 = s.links.iter().map(|l| u64::from(l.queue_depth)).sum();
        let wakes: u64 = s.links.iter().map(|l| l.wakes).sum();
        let retries: u64 = s.links.iter().map(|l| l.retries).sum();
        out.push_str(&format!(
            ",{},{},{},{queue},{wakes},{retries}\n",
            s.pool_ps, s.violations, s.isp_rounds
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        LinkSample, ObsConfig, ObsEvent, ObsEventKind, Recorder, TimeSeriesRecorder, TraceMeta,
    };

    fn meta() -> TraceMeta {
        TraceMeta {
            workload: "mixA",
            topology: "ternary",
            policy: "aware",
            mechanism: "vwl+roo",
            seed: 7,
            epoch_ps: 100,
            eval_ps: 300,
            n_links: 2,
            n_modules: 1,
        }
    }

    fn link_sample(link: u32) -> LinkSample {
        LinkSample {
            link,
            bw: "vwl16",
            roo: Some("t512"),
            off_ps: 0,
            waking_ps: 0,
            idle_ps: 60,
            active_ps: 40,
            retrans_ps: 0,
            queue_depth: 1,
            wakes: 0,
            retries: 0,
            budget_ps: 1_000,
            flo_ps: 100,
        }
    }

    fn epoch_sample(epoch: u64) -> EpochSample {
        EpochSample {
            epoch,
            start_ps: epoch * 100,
            end_ps: (epoch + 1) * 100,
            energy_j: [1e-9; 7],
            pool_ps: 0,
            violations: 0,
            isp_rounds: 1,
            links: vec![link_sample(0), link_sample(1)],
        }
    }

    /// Writes a tiny trace through the real recorder, into a temp file.
    fn write_trace(dir: &std::path::Path, every: u64, max: u64) -> String {
        let path = dir.join("trace.jsonl");
        let cfg = ObsConfig {
            enabled: true,
            trace_path: Some(path.to_string_lossy().into_owned()),
            trace_every: every,
            trace_max: max,
            ..ObsConfig::off()
        };
        let mut r = TimeSeriesRecorder::new(cfg);
        r.start(&meta());
        for t in 0..10u64 {
            r.record_event(&ObsEvent { t_ps: t * 10, kind: ObsEventKind::Wake { link: 1 } });
        }
        r.record_epoch(epoch_sample(0));
        r.record_epoch(epoch_sample(1));
        r.finish();
        std::fs::read_to_string(&path).expect("trace written")
    }

    fn tempdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "memnet-obs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn round_trip_trace_parses_and_counts() {
        let dir = tempdir();
        let text = write_trace(&dir, 1, 1_000);
        let s = parse_jsonl(&text).expect("valid trace");
        assert_eq!(s.version, OBS_SCHEMA_VERSION);
        assert_eq!(s.workload, "mixA");
        assert_eq!(s.event_count("wake"), 10);
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.events_seen, 10);
        assert_eq!(s.events_written, 10);
        assert!(!s.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn decimation_and_truncation_are_visible_in_the_trace() {
        let dir = tempdir();
        let text = write_trace(&dir, 3, 1_000);
        let s = parse_jsonl(&text).expect("valid trace");
        // Events 0, 3, 6, 9 survive every=3.
        assert_eq!(s.events_written, 4);
        assert_eq!(s.events_seen, 10);

        let text = write_trace(&dir, 1, 4);
        let s = parse_jsonl(&text).expect("valid trace");
        assert_eq!(s.events_written, 4);
        assert!(s.truncated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_missing_footer_and_bad_versions() {
        let dir = tempdir();
        let text = write_trace(&dir, 1, 1_000);
        let _ = std::fs::remove_dir_all(&dir);

        let without_footer: String =
            text.lines().filter(|l| !l.contains("\"ev\":\"end\"")).collect::<Vec<_>>().join("\n");
        assert!(parse_jsonl(&without_footer).unwrap_err().contains("footer"));

        let bad_version = text.replace("\"version\":1", "\"version\":999");
        assert!(parse_jsonl(&bad_version).unwrap_err().contains("version 999"));

        assert!(parse_jsonl("").is_err());
    }

    #[test]
    fn rejects_unknown_kinds_and_out_of_range_links() {
        let dir = tempdir();
        let text = write_trace(&dir, 1, 1_000);
        let _ = std::fs::remove_dir_all(&dir);

        let unknown = text.replace("\"ev\":\"wake\"", "\"ev\":\"warp\"");
        assert!(parse_jsonl(&unknown).unwrap_err().contains("unknown event kind"));
    }

    #[test]
    fn residency_table_and_csv_cover_all_links_and_epochs() {
        let samples = vec![epoch_sample(0), epoch_sample(1)];
        let table = residency_table(&samples);
        assert!(table.contains("vwl16"));
        assert_eq!(table.lines().count(), 3); // header + 2 links

        let csv = epoch_csv(&samples);
        assert_eq!(csv.lines().count(), 3); // header + 2 epochs
        assert!(csv.starts_with("epoch,start_ps,end_ps,idle_io_j"));
        assert!(csv.contains("retries"));
    }
}
