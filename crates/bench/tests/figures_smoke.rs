//! Smoke tests: every figure regenerator runs end-to-end on a tiny
//! evaluation window and produces the expected series structure.

use memnet_bench::{figures, Matrix, Settings};
use memnet_simcore::SimDuration;

fn tiny() -> Settings {
    Settings { eval_period: SimDuration::from_us(25), threads: 2, seed: 3, ..Settings::default() }
}

#[test]
fn tables_contain_paper_parameters() {
    let t = figures::tables();
    assert!(t.contains("4 GB / 32"));
    assert!(t.contains("11/11/22/11/5/12"));
    assert!(t.contains("mixG"));
}

#[test]
fn fig04_has_one_column_per_workload_and_39_rows() {
    let f = figures::fig04();
    let mut lines = f.lines();
    let header = lines.nth(1).unwrap();
    assert_eq!(header.split('\t').count(), 15); // "GB" + 14 workloads
    assert_eq!(f.lines().count(), 2 + 39); // title + header + 0..=38 GB
                                           // Final row is 100 % everywhere.
    let last = f.lines().last().unwrap();
    for cell in last.split('\t').skip(1) {
        assert_eq!(cell.trim(), "100.0");
    }
}

#[test]
fn fig05_reports_eight_topology_scale_rows() {
    let mut m = Matrix::new();
    let s = tiny();
    let f = figures::fig05(&mut m, &s);
    for topo in ["daisychain", "ternary tree", "star", "DDRx-like"] {
        assert!(f.contains(topo), "missing {topo} row");
    }
    assert!(f.contains("I/O share of total network power"));
    // FP matrix: 14 workloads x 4 topologies x 2 scales.
    assert_eq!(m.len(), 112);
}

#[test]
fn fig06_and_fig09_reuse_the_same_fp_runs() {
    let mut m = Matrix::new();
    let s = tiny();
    let _ = figures::fig06(&mut m, &s);
    let before = m.len();
    let _ = figures::fig09(&mut m, &s);
    assert_eq!(m.len(), before, "fig09 must not re-simulate the FP matrix");
}
