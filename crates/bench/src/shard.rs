//! Deterministic sweep sharding and merge.
//!
//! The figure matrices are embarrassingly parallel: every cell is an
//! independent simulation keyed by its cache fingerprint. This module
//! partitions a sweep into `n` disjoint shards so that independent
//! processes (CI matrix jobs, serve-daemon workers, machines sharing a
//! cache directory) each compute a stable subset, and merges the
//! per-shard result files back into output **byte-identical** to an
//! unsharded run.
//!
//! Three properties make the partition safe to distribute:
//!
//! - **Deterministic**: a cell's shard is the FNV-1a hash of its cache
//!   fingerprint modulo `n` — no enumeration counters, no thread-pool
//!   ordering, no RNG. Any two builds that agree on the fingerprint
//!   format agree on the partition.
//! - **Disjoint and complete**: each fingerprint hashes to exactly one
//!   residue, so the shards cover the matrix exactly once.
//! - **Stable cell ordering**: the sweep plan enumerates figures in
//!   canonical registry order and dedups by first occurrence, so every
//!   shard (and the merge) walks the same cell list regardless of
//!   `MEMNET_THREADS` or which figures share cells.
//!
//! # File format (`memnet-sweep` v1)
//!
//! One JSON object per line:
//!
//! ```json
//! {"schema":"memnet-sweep","v":1,"shard":0,"of":4,"figures":[...],
//!  "eval_ps":...,"seed":...,"obs":false,"cells":112,"set":"<digest>"}
//! {"fp":"v10|...","report":{...}}
//! {"end":true,"cells":28,"requested":28,"memoized":0,"cache_hits":3,"simulated":25}
//! ```
//!
//! The header pins everything that defines the sweep: the figure list,
//! the fingerprint-bearing settings (`eval_ps`, `seed`, `obs`), the
//! total cell count and a digest of the full fingerprint set. [`merge`]
//! refuses files whose headers disagree, whose digest does not match
//! this binary's own enumeration, or whose cells are missing — naming
//! the missing shard and cells. An unsharded run (`0/1`) and a merged
//! file carry a plain `{"end":true,"cells":N}` footer (ensure counters
//! depend on cache warmth, so they would break byte-identity); shard
//! pieces (`of > 1`) append their counters to the footer so the merge
//! can report aggregate totals that sum to the unsharded run's.

use std::collections::HashMap;
use std::fmt;

use serde::json::{self, Value};

use crate::figures;
use crate::matrix::{EnsureStats, Key, Matrix};
use crate::settings::Settings;

/// Schema tag of per-shard (and merged) sweep result files.
pub const SWEEP_SCHEMA: &str = "memnet-sweep";
/// Version of the sweep file format this build reads and writes.
pub const SWEEP_VERSION: u64 = 1;
/// Upper bound on the shard count — far above any useful fan-out, it
/// only guards against typos like `--shard 0/40000`.
pub const MAX_SHARDS: u32 = 4096;

/// One shard of a sweep: `index` out of `of` total shards. The default
/// (and [`Shard::full`]) is `0/1`, the unsharded whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Zero-based shard index, `< of`.
    pub index: u32,
    /// Total shard count, `>= 1`.
    pub of: u32,
}

impl Default for Shard {
    fn default() -> Self {
        Shard::full()
    }
}

impl Shard {
    /// The unsharded whole: shard `0/1`.
    pub fn full() -> Self {
        Shard { index: 0, of: 1 }
    }

    /// Parses `"i/n"` (as passed to `--shard`), validating ranges.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (i, n) = text
            .split_once('/')
            .ok_or_else(|| format!("invalid shard {text:?}: expected I/N, e.g. 0/4"))?;
        let index: u32 =
            i.parse().map_err(|_| format!("invalid shard {text:?}: bad index {i:?}"))?;
        let of: u32 =
            n.parse().map_err(|_| format!("invalid shard {text:?}: bad shard count {n:?}"))?;
        Shard { index, of }.validate().map_err(|e| format!("invalid shard {text:?}: {e}"))
    }

    /// Checks `1 <= of <= MAX_SHARDS` and `index < of`.
    pub fn validate(self) -> Result<Self, String> {
        if self.of == 0 {
            return Err("shard count must be at least 1".into());
        }
        if self.of > MAX_SHARDS {
            return Err(format!("shard count {} exceeds the maximum {MAX_SHARDS}", self.of));
        }
        if self.index >= self.of {
            return Err(format!("index {} out of range 0..{}", self.index, self.of));
        }
        Ok(self)
    }

    /// Whether this shard owns the cell with the given fingerprint.
    pub fn contains(&self, fingerprint: &str) -> bool {
        assign(fingerprint, self.of) == self.index
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.of)
    }
}

/// 64-bit FNV-1a, the same digest discipline the serve manifests use.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shard that owns a cell: FNV-1a of its cache fingerprint mod the
/// shard count. Depends only on the fingerprint text, so the partition
/// is identical across processes, machines and thread counts.
pub fn assign(fingerprint: &str, of: u32) -> u32 {
    if of <= 1 {
        return 0;
    }
    (fnv1a64(fingerprint.as_bytes()) % u64::from(of)) as u32
}

/// The full cell list of a sweep: every figure's keys in canonical
/// registry order, deduplicated by fingerprint (figures share their
/// full-power baselines), each paired with its cache fingerprint.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The figure names this plan enumerates, in the requested order.
    pub figures: Vec<String>,
    /// Digest of the full fingerprint list — shard files must agree on
    /// it before they are allowed to merge.
    pub set_digest: String,
    cells: Vec<(Key, u64, String)>,
}

impl SweepPlan {
    /// Enumerates the plan for the given figures: every figure's keys in
    /// registry order, each under every seed of
    /// [`Settings::seed_list`] (one cell per `(key, seed)`), deduplicated
    /// by fingerprint. Fails (naming the valid figures) if a name is not
    /// in the registry.
    pub fn new(figures: &[String], settings: &Settings) -> Result<SweepPlan, String> {
        if figures.is_empty() {
            return Err("a sweep needs at least one figure".into());
        }
        let seeds = settings.seed_list();
        let mut cells: Vec<(Key, u64, String)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for name in figures {
            let keys = figures::figure_keys(name).ok_or_else(|| {
                format!(
                    "unknown figure {name:?}; matrix-backed figures are: {}",
                    figures::SWEEP_FIGURES.join(", ")
                )
            })?;
            for key in keys {
                for &seed in &seeds {
                    let fp = key.fingerprint_at(settings, seed);
                    if seen.insert(fp.clone()) {
                        cells.push((key.clone(), seed, fp));
                    }
                }
            }
        }
        let joined: Vec<&str> = cells.iter().map(|(_, _, fp)| fp.as_str()).collect();
        let set_digest = format!("{:016x}", fnv1a64(joined.join("\n").as_bytes()));
        Ok(SweepPlan { figures: figures.to_vec(), set_digest, cells })
    }

    /// All `(key, seed, fingerprint)` cells in canonical order.
    pub fn cells(&self) -> &[(Key, u64, String)] {
        &self.cells
    }

    /// Total cell count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the plan is empty (it never is for registry figures).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The `(key, seed)` cells the given shard owns, in canonical order.
    /// Seeds shard independently: two seeds of one key may land on
    /// different shards, because ownership follows the fingerprint.
    pub fn shard_cells(&self, shard: Shard) -> Vec<(Key, u64)> {
        self.cells
            .iter()
            .filter(|(_, _, fp)| shard.contains(fp))
            .map(|(key, seed, _)| (key.clone(), *seed))
            .collect()
    }
}

fn header_line(shard: Shard, plan: &SweepPlan, settings: &Settings) -> String {
    // The extra-seed list only appears when set, so single-seed sweep
    // files stay byte-identical to those of earlier builds.
    let seeds = if settings.seeds.is_empty() {
        String::new()
    } else {
        format!("\"seeds\":{},", json::to_string(&settings.seeds))
    };
    format!(
        "{{\"schema\":\"{SWEEP_SCHEMA}\",\"v\":{SWEEP_VERSION},\"shard\":{},\"of\":{},\
         \"figures\":{},\"eval_ps\":{},\"seed\":{},{seeds}\"obs\":{},\"cells\":{},\"set\":\"{}\"}}\n",
        shard.index,
        shard.of,
        json::to_string(&plan.figures),
        settings.eval_period.as_ps(),
        settings.seed,
        settings.obs,
        plan.len(),
        plan.set_digest,
    )
}

fn footer_line(shard: Shard, cells: usize, stats: EnsureStats) -> String {
    if shard.of == 1 {
        // Unsharded (and merged) output stays free of cache-warmth
        // artefacts so repeat runs are byte-identical.
        format!("{{\"end\":true,\"cells\":{cells}}}\n")
    } else {
        format!(
            "{{\"end\":true,\"cells\":{cells},\"requested\":{},\"memoized\":{},\
             \"cache_hits\":{},\"simulated\":{}}}\n",
            stats.requested, stats.memoized, stats.cache_hits, stats.simulated,
        )
    }
}

/// Runs one shard of the plan — ensuring exactly the cells the shard
/// owns (lockstep-batching any key the shard holds several seeds of) —
/// and renders its `memnet-sweep` result text.
///
/// # Errors
///
/// Fails without simulating anything if a plan cell cannot be simulated
/// by the matrix (a replay or calibrated key); the message carries the
/// offending cell's fingerprint.
pub fn run_shard(
    plan: &SweepPlan,
    shard: Shard,
    settings: &Settings,
    matrix: &mut Matrix,
) -> Result<(String, EnsureStats), String> {
    let shard_settings = Settings { shard, ..settings.clone() };
    let cells = plan.shard_cells(shard);
    let stats = matrix.ensure_cells(&cells, &shard_settings)?;
    let mut out = header_line(shard, plan, settings);
    let mut count = 0usize;
    for (key, seed, fp) in plan.cells() {
        if !shard.contains(fp) {
            continue;
        }
        out.push_str(&format!(
            "{{\"fp\":{},\"report\":{}}}\n",
            json::to_string(fp.as_str()),
            json::to_string(matrix.get_seeded(key, *seed)),
        ));
        count += 1;
    }
    out.push_str(&footer_line(shard, count, stats));
    Ok((out, stats))
}

/// A parsed per-shard sweep result file.
#[derive(Debug, Clone)]
pub struct ShardFile {
    /// Display name (path) used in error messages.
    pub name: String,
    /// Which shard this file covers.
    pub shard: Shard,
    /// Figure list from the header.
    pub figures: Vec<String>,
    /// Evaluation period in picoseconds.
    pub eval_ps: u64,
    /// Sweep seed.
    pub seed: u64,
    /// Extra replica seeds per cell (empty for single-seed sweeps; the
    /// header omits the field entirely then, so older files parse).
    pub seeds: Vec<u64>,
    /// Whether observability was enabled for the sweep.
    pub obs: bool,
    /// Total cells of the *whole* sweep (all shards).
    pub total_cells: usize,
    /// Fingerprint-set digest from the header.
    pub set: String,
    /// `(fingerprint, raw entry line)` in file order. Raw lines are
    /// re-emitted verbatim by [`merge`] so float formatting can never
    /// drift between a sharded and an unsharded run.
    pub entries: Vec<(String, String)>,
    /// Ensure counters from the footer (zero for `0/1` files).
    pub stats: EnsureStats,
}

fn get_num<T: std::str::FromStr>(value: &Value, key: &str, name: &str) -> Result<T, String> {
    value.get(key).and_then(|v| v.num::<T>()).map_err(|e| format!("{name}: bad sweep header: {e}"))
}

/// Parses one `memnet-sweep` file. `name` labels errors (use the path).
pub fn parse_sweep_file(name: &str, text: &str) -> Result<ShardFile, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| format!("{name}: empty sweep file"))?;
    let hv = json::parse(header).map_err(|e| format!("{name}: bad sweep header: {e}"))?;
    let schema = hv
        .get("schema")
        .and_then(|v| v.as_str())
        .map_err(|e| format!("{name}: bad sweep header: {e}"))?;
    if schema != SWEEP_SCHEMA {
        return Err(format!("{name}: not a {SWEEP_SCHEMA} file (schema {schema:?})"));
    }
    let v: u64 = get_num(&hv, "v", name)?;
    if v != SWEEP_VERSION {
        return Err(format!(
            "{name}: unsupported sweep schema v{v} (this build speaks v{SWEEP_VERSION})"
        ));
    }
    let shard = Shard { index: get_num(&hv, "shard", name)?, of: get_num(&hv, "of", name)? }
        .validate()
        .map_err(|e| format!("{name}: {e}"))?;
    let figures: Vec<String> = hv
        .get("figures")
        .and_then(|v| v.as_array()?.iter().map(|f| f.as_str().map(str::to_string)).collect())
        .map_err(|e| format!("{name}: bad sweep header: {e}"))?;
    let obs = match hv.get("obs") {
        Ok(Value::Bool(b)) => *b,
        _ => return Err(format!("{name}: bad sweep header: missing boolean \"obs\"")),
    };
    let seeds: Vec<u64> = match hv.get("seeds") {
        Err(_) => Vec::new(),
        Ok(v) => v
            .as_array()
            .and_then(|items| items.iter().map(|s| s.num::<u64>()).collect())
            .map_err(|e| format!("{name}: bad sweep header: {e}"))?,
    };
    let mut file = ShardFile {
        name: name.to_string(),
        shard,
        figures,
        eval_ps: get_num(&hv, "eval_ps", name)?,
        seed: get_num(&hv, "seed", name)?,
        seeds,
        obs,
        total_cells: get_num(&hv, "cells", name)?,
        set: hv
            .get("set")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("{name}: bad sweep header: {e}"))?
            .to_string(),
        entries: Vec::new(),
        stats: EnsureStats::default(),
    };
    let mut footer: Option<Value> = None;
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        if footer.is_some() {
            return Err(format!("{name}:{lineno}: data after the end-of-file footer"));
        }
        let value = json::parse(line).map_err(|e| format!("{name}:{lineno}: bad line: {e}"))?;
        if value.get("end").is_ok() {
            footer = Some(value);
            continue;
        }
        let fp = value
            .get("fp")
            .and_then(|v| v.as_str())
            .map_err(|e| format!("{name}:{lineno}: bad result line: {e}"))?;
        value.get("report").map_err(|e| format!("{name}:{lineno}: bad result line: {e}"))?;
        file.entries.push((fp.to_string(), line.to_string()));
    }
    let footer =
        footer.ok_or_else(|| format!("{name}: truncated sweep file (no end-of-file footer)"))?;
    let cells: usize = get_num(&footer, "cells", name)?;
    if cells != file.entries.len() {
        return Err(format!(
            "{name}: footer declares {cells} cell(s) but the file holds {}",
            file.entries.len()
        ));
    }
    if file.shard.of > 1 {
        file.stats = EnsureStats {
            requested: get_num(&footer, "requested", name)?,
            memoized: get_num(&footer, "memoized", name)?,
            cache_hits: get_num(&footer, "cache_hits", name)?,
            simulated: get_num(&footer, "simulated", name)?,
        };
    }
    Ok(file)
}

/// A completed merge: the combined sweep text plus aggregate counters.
#[derive(Debug, Clone)]
pub struct Merged {
    /// Merged result text, byte-identical to an unsharded run.
    pub text: String,
    /// How many shards the sweep was split into.
    pub shards: u32,
    /// Total cells.
    pub cells: usize,
    /// Figure list.
    pub figures: Vec<String>,
    /// Fingerprint-set digest.
    pub set: String,
    /// Sum of the shards' ensure counters; `requested` equals the cell
    /// total an unsharded run would report.
    pub stats: EnsureStats,
}

fn header_mismatch(a: &ShardFile, b: &ShardFile, field: &str) -> String {
    format!("{} and {} disagree on {field}; they are not shards of the same sweep", a.name, b.name)
}

/// Merges per-shard sweep files into output byte-identical to an
/// unsharded run. Refuses mismatched headers, a fingerprint set that
/// differs from this binary's own enumeration, duplicate or missing
/// shards, and missing or foreign cells — naming the offender.
pub fn merge(files: &[ShardFile]) -> Result<Merged, String> {
    let first = files.first().ok_or("merge needs at least one shard file")?;
    for other in &files[1..] {
        if other.shard.of != first.shard.of {
            return Err(header_mismatch(first, other, "the shard count"));
        }
        if other.figures != first.figures {
            return Err(header_mismatch(first, other, "the figure list"));
        }
        if other.eval_ps != first.eval_ps {
            return Err(header_mismatch(first, other, "eval_ps"));
        }
        if other.seed != first.seed {
            return Err(header_mismatch(first, other, "the seed"));
        }
        if other.seeds != first.seeds {
            return Err(header_mismatch(first, other, "the extra-seed list"));
        }
        if other.obs != first.obs {
            return Err(header_mismatch(first, other, "the obs setting"));
        }
        if other.total_cells != first.total_cells || other.set != first.set {
            return Err(header_mismatch(first, other, "the fingerprint set"));
        }
    }
    let of = first.shard.of;
    let mut have: Vec<Option<&ShardFile>> = vec![None; of as usize];
    for file in files {
        let slot = &mut have[file.shard.index as usize];
        if let Some(prev) = slot {
            return Err(format!(
                "shard {} appears twice ({} and {})",
                file.shard, prev.name, file.name
            ));
        }
        *slot = Some(file);
    }

    // Re-derive the plan from the header and insist the files describe
    // the exact same cell set this binary enumerates.
    let settings = Settings {
        eval_period: memnet_simcore::SimDuration::from_ps(first.eval_ps),
        seed: first.seed,
        seeds: first.seeds.clone(),
        obs: first.obs,
        ..Settings::default()
    };
    let plan = SweepPlan::new(&first.figures, &settings)?;
    if plan.set_digest != first.set || plan.len() != first.total_cells {
        return Err(format!(
            "fingerprint set mismatch: the shard files declare {} cell(s) with set {}, but this \
             binary enumerates {} cell(s) with set {} for the same figures — were the shards \
             produced by a build with a different cache schema?",
            first.total_cells,
            first.set,
            plan.len(),
            plan.set_digest,
        ));
    }

    if have.iter().any(Option::is_none) {
        let mut msg = String::from("incomplete sweep:");
        for (index, slot) in have.iter().enumerate() {
            if slot.is_some() {
                continue;
            }
            let shard = Shard { index: index as u32, of };
            let owned: Vec<&str> = plan
                .cells()
                .iter()
                .filter(|(_, _, fp)| shard.contains(fp))
                .map(|(_, _, fp)| fp.as_str())
                .collect();
            let sample = owned.first().copied().unwrap_or("-");
            msg.push_str(&format!(
                "\n  missing shard {shard} ({} of {} cells, e.g. {sample:?})",
                owned.len(),
                plan.len(),
            ));
        }
        msg.push_str("\npass every shard's output file to merge");
        return Err(msg);
    }

    // Index each shard's entries and reject cells that do not belong.
    let mut maps: Vec<HashMap<&str, &str>> = vec![HashMap::new(); of as usize];
    let owner: HashMap<&str, u32> =
        plan.cells().iter().map(|(_, _, fp)| (fp.as_str(), assign(fp, of))).collect();
    for file in files {
        for (fp, line) in &file.entries {
            match owner.get(fp.as_str()) {
                None => {
                    return Err(format!("{}: cell {fp:?} is not part of this sweep", file.name));
                }
                Some(&shard_index) if shard_index != file.shard.index => {
                    return Err(format!(
                        "{}: cell {fp:?} belongs to shard {}/{of}, not {}",
                        file.name, shard_index, file.shard
                    ));
                }
                Some(_) => {}
            }
            if maps[file.shard.index as usize].insert(fp.as_str(), line.as_str()).is_some() {
                return Err(format!("{}: cell {fp:?} appears twice", file.name));
            }
        }
    }

    // Walk the canonical plan, re-emitting each shard's lines verbatim.
    let mut text = header_line(Shard::full(), &plan, &settings);
    for (_, _, fp) in plan.cells() {
        let index = assign(fp, of);
        let line = maps[index as usize].get(fp.as_str()).ok_or_else(|| {
            format!(
                "shard {index}/{of} ({}) is missing cell {fp:?}",
                have[index as usize].expect("checked above").name
            )
        })?;
        text.push_str(line);
        text.push('\n');
    }
    text.push_str(&footer_line(Shard::full(), plan.len(), EnsureStats::default()));

    let mut stats = EnsureStats::default();
    for file in files {
        stats.requested += file.stats.requested;
        stats.memoized += file.stats.memoized;
        stats.cache_hits += file.stats.cache_hits;
        stats.simulated += file.stats.simulated;
    }
    Ok(Merged {
        text,
        shards: of,
        cells: plan.len(),
        figures: first.figures.clone(),
        set: first.set.clone(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_figures() -> Vec<String> {
        figures::SWEEP_FIGURES.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shard_parsing_round_trips_and_rejects_nonsense() {
        let s = Shard::parse("2/4").unwrap();
        assert_eq!((s.index, s.of), (2, 4));
        assert_eq!(s.to_string(), "2/4");
        assert_eq!(Shard::parse("0/1").unwrap(), Shard::full());
        for bad in ["", "3", "a/4", "1/b", "4/4", "5/4", "0/0", "0/99999"] {
            assert!(Shard::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn assignment_is_a_pure_function_of_the_fingerprint() {
        let fp = "v9|eval_ps=1000000|seed=7|wl=mixA";
        let first = assign(fp, 5);
        assert!(first < 5);
        for _ in 0..100 {
            assert_eq!(assign(fp, 5), first);
        }
        assert_eq!(assign(fp, 1), 0);
    }

    #[test]
    fn plan_enumerates_once_per_fingerprint_and_digest_is_stable() {
        let settings = Settings::default();
        let plan = SweepPlan::new(&default_figures(), &settings).unwrap();
        let mut seen = std::collections::HashSet::new();
        for (_, _, fp) in plan.cells() {
            assert!(seen.insert(fp.clone()), "duplicate cell {fp}");
        }
        let again = SweepPlan::new(&default_figures(), &settings).unwrap();
        assert_eq!(plan.set_digest, again.set_digest);
        assert_eq!(plan.len(), again.len());
        // Different fingerprint-bearing settings change the set digest.
        let other = Settings { seed: settings.seed + 1, ..Settings::default() };
        let moved = SweepPlan::new(&default_figures(), &other).unwrap();
        assert_ne!(plan.set_digest, moved.set_digest);
    }

    #[test]
    fn plan_rejects_unknown_figures_naming_the_valid_ones() {
        let settings = Settings::default();
        let err = SweepPlan::new(&["fig99".to_string()], &settings).unwrap_err();
        assert!(err.contains("fig99"), "{err}");
        assert!(err.contains("fig05"), "{err}");
        assert!(SweepPlan::new(&[], &settings).is_err());
    }

    #[test]
    fn shard_cells_partition_the_plan() {
        let settings = Settings::default();
        let plan = SweepPlan::new(&default_figures(), &settings).unwrap();
        for of in [1u32, 2, 3, 7] {
            let total: usize =
                (0..of).map(|index| plan.shard_cells(Shard { index, of }).len()).sum();
            assert_eq!(total, plan.len(), "shards {of} do not cover the plan");
        }
    }

    #[test]
    fn extra_seeds_multiply_the_plan_and_shards_still_partition_it() {
        let base = Settings::default();
        let solo = SweepPlan::new(&default_figures(), &base).unwrap();
        let seeded = Settings { seeds: vec![base.seed + 1, base.seed + 2], ..base };
        let plan = SweepPlan::new(&default_figures(), &seeded).unwrap();
        assert_eq!(plan.len(), solo.len() * 3, "each extra seed adds one cell per key");
        assert_ne!(plan.set_digest, solo.set_digest);
        let mut seen = std::collections::HashSet::new();
        for (_, _, fp) in plan.cells() {
            assert!(seen.insert(fp.clone()), "duplicate cell {fp}");
        }
        for of in [1u32, 3] {
            let total: usize =
                (0..of).map(|index| plan.shard_cells(Shard { index, of }).len()).sum();
            assert_eq!(total, plan.len(), "shards {of} do not cover the seeded plan");
        }
        // The base seed appearing again in the extras list dedupes away.
        let dup = Settings { seeds: vec![base.seed], ..Settings::default() };
        let same = SweepPlan::new(&default_figures(), &dup).unwrap();
        assert_eq!(same.len(), solo.len());
    }

    #[test]
    fn merge_requires_at_least_one_file() {
        assert!(merge(&[]).is_err());
    }

    #[test]
    fn run_shard_refuses_replay_cells_naming_the_fingerprint() {
        let settings = Settings::default();
        let base = SweepPlan::new(&default_figures(), &settings).unwrap();
        let (key, seed, _) = base.cells()[0].clone();
        let replay = key.with_replay("deadbeefdeadbeef");
        let fp = replay.fingerprint_at(&settings, seed);
        let plan = SweepPlan {
            figures: base.figures.clone(),
            set_digest: base.set_digest.clone(),
            cells: vec![(replay, seed, fp.clone())],
        };
        let mut matrix = Matrix::new();
        let err = run_shard(&plan, Shard::full(), &settings, &mut matrix).unwrap_err();
        assert!(err.contains("replay keys refuse matrix simulation"), "{err}");
        assert!(err.contains(&fp), "error must carry the offending fingerprint: {err}");
    }
}
