#![warn(missing_docs)]

//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each `fig*` binary prints one figure's data series; the `all` binary
//! runs the full suite sharing one [`Matrix`] of simulation results so
//! common configurations (e.g. the full-power baselines) are simulated
//! once.
//!
//! Simulated evaluation time defaults to 1 ms per run (the paper uses
//! 10 ms); set `MEMNET_EVAL_US` to lengthen or shorten it, and
//! `MEMNET_THREADS` to bound the sweep parallelism.

pub mod figures;
pub mod matrix;
pub mod settings;

pub use matrix::{Key, Matrix};
pub use settings::Settings;
