#![warn(missing_docs)]

//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation.
//!
//! Each `fig*` binary prints one figure's data series; the `all` binary
//! runs the full suite sharing one [`Matrix`] of simulation results so
//! common configurations (e.g. the full-power baselines) are simulated
//! once.
//!
//! Simulated evaluation time defaults to 1 ms per run (the paper uses
//! 10 ms); set `MEMNET_EVAL_US` to lengthen or shorten it, and
//! `MEMNET_THREADS` to bound the sweep parallelism.
//!
//! Results are cached persistently between invocations (see
//! [`mod@cache`]): re-running any binary with a warm cache performs zero
//! simulations. Point `MEMNET_CACHE_DIR` somewhere else to relocate the
//! cache, or set `MEMNET_NO_CACHE=1` to bypass it.
//!
//! Sweeps scale out across processes and machines: `memnet sweep
//! --shard i/n` computes a deterministic, disjoint slice of the figure
//! matrix and `memnet merge` recombines the slices byte-identically
//! (see [`mod@shard`]).

pub mod cache;
pub mod figures;
pub mod matrix;
pub mod settings;
pub mod shard;

pub use cache::{DiskCache, CACHE_SCHEMA_VERSION};
pub use matrix::{EnsureStats, Key, Matrix};
pub use settings::{parse_seed_list, Settings};
pub use shard::{Shard, SweepPlan};
