//! One regenerator per paper table/figure. Every function returns the
//! formatted rows/series the paper reports, running (and memoizing) the
//! simulations it needs.

use memnet_core::{AddressMapping, NetworkScale, PolicyKind};
use memnet_dram::DramParams;
use memnet_net::mech::BwMode;
use memnet_net::TopologyKind;
use memnet_policy::Mechanism;
use memnet_workload::{catalog, AddressCdf};

use crate::matrix::{Key, Matrix};
use crate::settings::Settings;

/// The four topologies in figure order.
pub const TOPOS: [TopologyKind; 4] = TopologyKind::ALL;
/// The two scales in figure order.
pub const SCALES: [NetworkScale; 2] = NetworkScale::ALL;
/// The main-study mechanisms.
pub const MAIN_MECHS: [Mechanism; 3] = [Mechanism::Vwl, Mechanism::Roo, Mechanism::VwlRoo];
/// The two α settings of the main study.
pub const ALPHAS: [f64; 2] = [0.025, 0.05];

fn workloads() -> Vec<&'static str> {
    catalog::names()
}

fn fp_keys() -> Vec<Key> {
    let mut keys = Vec::new();
    for w in workloads() {
        for topo in TOPOS {
            for scale in SCALES {
                keys.push(Key::main(
                    w,
                    topo,
                    scale,
                    PolicyKind::FullPower,
                    Mechanism::FullPower,
                    0.05,
                ));
            }
        }
    }
    keys
}

fn managed_keys(policy: PolicyKind, mechs: &[Mechanism], alphas: &[f64]) -> Vec<Key> {
    let mut keys = Vec::new();
    for w in workloads() {
        for topo in TOPOS {
            for scale in SCALES {
                for &mech in mechs {
                    for &alpha in alphas {
                        keys.push(Key::main(w, topo, scale, policy, mech, alpha));
                    }
                }
            }
        }
    }
    keys
}

/// Every matrix-backed figure/section of the suite, in canonical order.
/// These are the names `memnet sweep --figures` (and the serve sweep
/// manifest) accept; `tables` and `fig04` are closed-form and have no
/// matrix cells to sweep.
pub const SWEEP_FIGURES: [&str; 15] = [
    "fig05",
    "fig06",
    "fig08",
    "fig09",
    "fig11",
    "fig12",
    "fig13",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "sec7a",
    "faults",
    "stress",
    "model_diff",
];

/// The exact key set the named figure ensures, or `None` for names not
/// in [`SWEEP_FIGURES`]. This is the enumeration the sweep partitioner
/// shards, so it must stay in lockstep with what each figure function
/// ensures — the custom figures share their key builders with it, and
/// the fp/managed figures are spelled out here.
pub fn figure_keys(name: &str) -> Option<Vec<Key>> {
    let both = [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware];
    Some(match name {
        "fig05" | "fig06" | "fig08" | "fig09" => fp_keys(),
        "fig11" | "fig12" => {
            let mut keys = fp_keys();
            keys.extend(managed_keys(PolicyKind::NetworkUnaware, &MAIN_MECHS, &ALPHAS));
            keys
        }
        "fig13" => both.iter().flat_map(|&p| managed_keys(p, &[Mechanism::Vwl], &[0.05])).collect(),
        "fig15" => both.iter().flat_map(|&p| managed_keys(p, &MAIN_MECHS, &ALPHAS)).collect(),
        "fig16" => {
            let mut keys = fp_keys();
            for p in both {
                keys.extend(managed_keys(p, &MAIN_MECHS, &[0.05]));
            }
            keys
        }
        "fig17" => {
            let mut keys = fp_keys();
            for p in both {
                keys.extend(managed_keys(p, &MAIN_MECHS, &ALPHAS));
            }
            keys
        }
        "fig18" => {
            let mut keys = fp_keys();
            keys.extend(fig18_keys());
            keys
        }
        "sec7a" => sec7a_keys(),
        "faults" => faults_sweep_keys(),
        "stress" => stress_keys(),
        "model_diff" => model_diff_keys(),
        _ => return None,
    })
}

/// Ensures registry figure keys, which are simulable by construction —
/// no replay or calibration identities ever enter [`figure_keys`] — so
/// the only failure [`Matrix::ensure`] can report here is a bug in the
/// registry itself.
fn ensure(matrix: &mut Matrix, keys: &[Key], settings: &Settings) {
    matrix.ensure(keys, settings).expect("registry figure keys are always simulable");
}

fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.into_iter().collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

fn maxf(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().fold(f64::NEG_INFINITY, f64::max)
}

// ----------------------------------------------------------------------
// Tables I–III
// ----------------------------------------------------------------------

/// Tables I (HMC DRAM parameters), II (processor model) and III (mixed
/// workload composition).
pub fn tables() -> String {
    let p = DramParams::hmc_gen2();
    let mut out = String::new();
    out.push_str("Table I: HMC DRAM array parameters\n");
    out.push_str(&format!(
        "  capacity per HMC / vaults per HMC     {} GB / {}\n",
        p.capacity_bytes >> 30,
        p.vaults
    ));
    out.push_str(&format!(
        "  vault data rate / IO width / buffers  {} Gbps / x{} / {}\n",
        p.vault_data_rate_bps / 1_000_000_000,
        p.vault_io_bits,
        p.vault_buffer_entries
    ));
    out.push_str("  page policy / line address mapping    close / interleaved\n");
    out.push_str(&format!(
        "  tCL/tRCD/tRAS/tRP/tRRD/tWR (ns)       {}/{}/{}/{}/{}/{}\n",
        p.tcl.as_ns(),
        p.trcd.as_ns(),
        p.tras.as_ns(),
        p.trp.as_ns(),
        p.trrd.as_ns(),
        p.twr.as_ns()
    ));
    out.push_str(&format!(
        "  derived: line burst {} ns, nominal read {} ns\n\n",
        p.line_burst_time().as_ns(),
        p.nominal_read_latency().as_ns()
    ));
    out.push_str("Table II: processor model (front-end substitution)\n");
    out.push_str("  16 cores, 3 GHz, 2-issue OOO, 64-entry ROB, 64 B lines\n");
    out.push_str("  modeled as: closed loop, 64 outstanding reads, 128-entry write buffer\n\n");
    out.push_str("Table III: mixed workload composition (invocation order)\n");
    for (name, comp) in catalog::MIX_COMPOSITION {
        out.push_str(&format!("  {name}  {comp}\n"));
    }
    out
}

// ----------------------------------------------------------------------
// Figure 4 — workload CDFs
// ----------------------------------------------------------------------

/// Figure 4: cumulative fraction of memory accesses by the i-th GB of
/// address space, per workload.
pub fn fig04() -> String {
    let mut out =
        String::from("Figure 4: cumulative % of memory accesses by address range (GB)\nGB");
    let specs = catalog::all();
    for w in &specs {
        out.push_str(&format!("\t{}", w.name));
    }
    out.push('\n');
    let cdfs: Vec<AddressCdf> = specs.iter().map(AddressCdf::from_spec).collect();
    for gb in 0..=38u64 {
        out.push_str(&format!("{gb}"));
        for cdf in &cdfs {
            out.push_str(&format!("\t{:5.1}", 100.0 * cdf.fraction_at(gb as f64)));
        }
        out.push('\n');
    }
    out
}

// ----------------------------------------------------------------------
// Figure 5 — full-power breakdown
// ----------------------------------------------------------------------

/// Figure 5: average power breakdown of an HMC in a full-power network,
/// per topology and scale, averaged over all 14 workloads.
pub fn fig05(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    let mut out = String::from(
        "Figure 5: average power per HMC (W), full-power networks\n\
         scale      topology      idleIO activeIO logicLk logicDyn dramLk dramDyn | total\n",
    );
    for scale in SCALES {
        let mut scale_totals = Vec::new();
        for topo in TOPOS {
            let mut cats = [0.0f64; 6];
            let mut n = 0.0;
            for w in workloads() {
                let k =
                    Key::main(w, topo, scale, PolicyKind::FullPower, Mechanism::FullPower, 0.05);
                let c = matrix.get(&k).power.watts_per_hmc_by_category();
                for i in 0..6 {
                    cats[i] += c[i];
                }
                n += 1.0;
            }
            for c in &mut cats {
                *c /= n;
            }
            let total: f64 = cats.iter().sum();
            scale_totals.push(total);
            out.push_str(&format!(
                "{:<10} {:<13} {:6.2} {:8.2} {:7.2} {:8.2} {:6.2} {:7.2} | {:5.2}\n",
                scale.label(),
                topo.label(),
                cats[0],
                cats[1],
                cats[2],
                cats[3],
                cats[4],
                cats[5],
                total
            ));
        }
        out.push_str(&format!(
            "{:<10} {:<13} {:>56} {:5.2}\n",
            scale.label(),
            "avg",
            "|",
            mean(scale_totals)
        ));
    }
    // Headline claims.
    let mut io_fracs = Vec::new();
    for scale in SCALES {
        for topo in TOPOS {
            for w in workloads() {
                let k =
                    Key::main(w, topo, scale, PolicyKind::FullPower, Mechanism::FullPower, 0.05);
                io_fracs.push(matrix.get(&k).power.io_fraction());
            }
        }
    }
    out.push_str(&format!(
        "I/O share of total network power, avg over all runs: {:.0}% (paper: 73%)\n",
        100.0 * mean(io_fracs)
    ));
    out
}

// ----------------------------------------------------------------------
// Figure 6 — modules traversed
// ----------------------------------------------------------------------

/// Figure 6: average number of modules traversed per memory access.
pub fn fig06(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    let mut out = String::from("Figure 6: avg modules traversed per access\nworkload");
    for scale in SCALES {
        for topo in TOPOS {
            out.push_str(&format!("\t{}:{}", scale.label(), topo.label()));
        }
    }
    out.push('\n');
    let mut avgs = vec![Vec::new(); 8];
    for w in workloads() {
        out.push_str(w);
        let mut col = 0;
        for scale in SCALES {
            for topo in TOPOS {
                let k =
                    Key::main(w, topo, scale, PolicyKind::FullPower, Mechanism::FullPower, 0.05);
                let v = matrix.get(&k).avg_modules_traversed;
                avgs[col].push(v);
                col += 1;
                out.push_str(&format!("\t{v:5.2}"));
            }
        }
        out.push('\n');
    }
    out.push_str("avg");
    for col in avgs {
        out.push_str(&format!("\t{:5.2}", mean(col)));
    }
    out.push('\n');
    out
}

// ----------------------------------------------------------------------
// Figure 8 — idle I/O fraction
// ----------------------------------------------------------------------

/// Figure 8: idle I/O power normalized to total network power, per
/// workload, topology and scale (full-power networks).
pub fn fig08(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    let mut out =
        String::from("Figure 8: idle I/O power / total network power (%), full power\nworkload");
    for scale in SCALES {
        for topo in TOPOS {
            out.push_str(&format!("\t{}:{}", scale.label(), topo.label()));
        }
    }
    out.push('\n');
    let mut per_scale: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for w in workloads() {
        out.push_str(w);
        for (si, scale) in SCALES.iter().enumerate() {
            for topo in TOPOS {
                let k =
                    Key::main(w, topo, *scale, PolicyKind::FullPower, Mechanism::FullPower, 0.05);
                let frac = matrix.get(&k).power.idle_io_fraction();
                per_scale[si].push(frac);
                out.push_str(&format!("\t{:5.1}", 100.0 * frac));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "avg idle-I/O share: small {:.0}% (paper: 53%), big {:.0}% (paper: 67%)\n",
        100.0 * mean(per_scale[0].clone()),
        100.0 * mean(per_scale[1].clone())
    ));
    out
}

// ----------------------------------------------------------------------
// Figure 9 — utilizations
// ----------------------------------------------------------------------

/// Figure 9: average channel and link utilization per workload.
pub fn fig09(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    let mut out = String::from(
        "Figure 9: channel and average link utilization (%), full power\n\
         workload\tchan:small\tlink:small\tchan:big\tlink:big\n",
    );
    let mut chans = Vec::new();
    for w in workloads() {
        let mut row = [0.0f64; 4];
        for (si, scale) in SCALES.iter().enumerate() {
            let mut chan = Vec::new();
            let mut link = Vec::new();
            for topo in TOPOS {
                let k =
                    Key::main(w, topo, *scale, PolicyKind::FullPower, Mechanism::FullPower, 0.05);
                let r = matrix.get(&k);
                chan.push(r.channel_utilization);
                link.push(r.link_utilization);
            }
            row[2 * si] = mean(chan);
            row[2 * si + 1] = mean(link);
        }
        chans.push(row[0]);
        out.push_str(&format!(
            "{w}\t{:5.1}\t{:5.1}\t{:5.1}\t{:5.1}\n",
            100.0 * row[0],
            100.0 * row[1],
            100.0 * row[2],
            100.0 * row[3]
        ));
    }
    out.push_str(&format!(
        "avg small-network channel utilization: {:.0}% (paper: 43%)\n",
        100.0 * mean(chans)
    ));
    out
}

// ----------------------------------------------------------------------
// Figure 11 — unaware power
// ----------------------------------------------------------------------

/// Figure 11: per-HMC power under network-unaware management (FP,
/// VWL/ROO/VWL+ROO at α = 2.5 % and 5 %), averaged over workloads.
pub fn fig11(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    ensure(matrix, &managed_keys(PolicyKind::NetworkUnaware, &MAIN_MECHS, &ALPHAS), settings);
    let mut out = String::from(
        "Figure 11: avg power per HMC (W) under network-unaware management\n\
         scale      topology        FP  2.5%VWL  5%VWL  2.5%ROO  5%ROO  2.5%V+R  5%V+R\n",
    );
    for scale in SCALES {
        for topo in TOPOS {
            let fp = mean(workloads().iter().map(|w| {
                let k =
                    Key::main(w, topo, scale, PolicyKind::FullPower, Mechanism::FullPower, 0.05);
                matrix.get(&k).power.watts_per_hmc()
            }));
            let cell = |mech: Mechanism, alpha: f64| {
                mean(workloads().iter().map(|w| {
                    let k = Key::main(w, topo, scale, PolicyKind::NetworkUnaware, mech, alpha);
                    matrix.get(&k).power.watts_per_hmc()
                }))
            };
            out.push_str(&format!(
                "{:<10} {:<13} {:5.2}  {:6.2}  {:5.2}  {:6.2}  {:5.2}  {:6.2}  {:5.2}\n",
                scale.label(),
                topo.label(),
                fp,
                cell(Mechanism::Vwl, 0.025),
                cell(Mechanism::Vwl, 0.05),
                cell(Mechanism::Roo, 0.025),
                cell(Mechanism::Roo, 0.05),
                cell(Mechanism::VwlRoo, 0.025),
                cell(Mechanism::VwlRoo, 0.05),
            ));
        }
    }
    // Headline: overall and I/O power reduction, per scale.
    for scale in SCALES {
        let mut overall = Vec::new();
        let mut io = Vec::new();
        for w in workloads() {
            for topo in TOPOS {
                for mech in MAIN_MECHS {
                    for alpha in ALPHAS {
                        let k = Key::main(w, topo, scale, PolicyKind::NetworkUnaware, mech, alpha);
                        let r = matrix.get(&k);
                        let b = matrix.get(&k.baseline());
                        overall.push(r.power_reduction_vs(b));
                        io.push(r.io_power_reduction_vs(b));
                    }
                }
            }
        }
        out.push_str(&format!(
            "{} networks: avg overall power reduction {:.0}% (paper: {}%), avg I/O power reduction {:.0}% (paper: {}%)\n",
            scale.label(),
            100.0 * mean(overall),
            if scale == NetworkScale::Small { 14 } else { 24 },
            100.0 * mean(io),
            if scale == NetworkScale::Small { 21 } else { 32 },
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Figure 12 — unaware performance
// ----------------------------------------------------------------------

/// Figure 12: average and maximum performance degradation of
/// network-unaware management vs. full power.
pub fn fig12(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    ensure(matrix, &managed_keys(PolicyKind::NetworkUnaware, &MAIN_MECHS, &ALPHAS), settings);
    let mut out = String::from(
        "Figure 12: performance degradation vs full power, network-unaware (%)\n\
         scale      mech      alpha   daisychain  ternary  star  DDRx-like |  avg   max\n",
    );
    for scale in SCALES {
        for mech in MAIN_MECHS {
            for alpha in ALPHAS {
                let mut per_topo = Vec::new();
                let mut all = Vec::new();
                for topo in TOPOS {
                    let degr: Vec<f64> = workloads()
                        .iter()
                        .map(|w| {
                            let k =
                                Key::main(w, topo, scale, PolicyKind::NetworkUnaware, mech, alpha);
                            let d = matrix.get(&k).degradation_vs(matrix.get(&k.baseline()));
                            all.push(d);
                            d
                        })
                        .collect();
                    per_topo.push(mean(degr));
                }
                out.push_str(&format!(
                    "{:<10} {:<9} {:4.1}%   {:10.2} {:8.2} {:5.2} {:9.2} | {:5.2} {:5.2}\n",
                    scale.label(),
                    mech.label(),
                    100.0 * alpha,
                    100.0 * per_topo[0],
                    100.0 * per_topo[1],
                    100.0 * per_topo[2],
                    100.0 * per_topo[3],
                    100.0 * mean(all.clone()),
                    100.0 * maxf(all),
                ));
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// Figure 13 — link hours
// ----------------------------------------------------------------------

/// Figure 13: distribution of link hours across VWL modes by link
/// utilization bucket (big networks, VWL, α = 5 %): unaware vs aware.
pub fn fig13(matrix: &mut Matrix, settings: &Settings) -> String {
    let policies = [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware];
    for p in policies {
        ensure(matrix, &managed_keys(p, &[Mechanism::Vwl], &[0.05]), settings);
    }
    let buckets = [0.01, 0.05, 0.10, 0.20, 1.01];
    let bucket_labels = ["0-1%", "1-5%", "5-10%", "10-20%", "20-100%"];
    let lane_labels = ["16 lanes", "8 lanes", "4 lanes", "1 lane"];
    let mut out = String::from(
        "Figure 13: fraction of total link hours by utilization bucket and VWL mode\n\
         (big networks, VWL links, alpha=5%)\n",
    );
    for policy in policies {
        out.push_str(&format!("--- {} ---\n", policy.label()));
        // cell[bucket][mode] in link-hours.
        let mut cell = [[0.0f64; 4]; 5];
        let mut total_hours = 0.0;
        for w in workloads() {
            for topo in TOPOS {
                let k = Key::main(w, topo, NetworkScale::Big, policy, Mechanism::Vwl, 0.05);
                let r = matrix.get(&k);
                let window = r.power.window.as_secs();
                for link in &r.links {
                    total_hours += window;
                    let b = buckets.iter().position(|&ub| link.utilization < ub).unwrap_or(4);
                    for (lane, slot) in cell[b].iter_mut().enumerate() {
                        // VWL mode indices are 0..4 in BwMode order.
                        let idx = BwMode::from_index(lane).index();
                        *slot += link.mode_time[idx].as_secs();
                    }
                }
            }
        }
        out.push_str("bucket    ");
        for l in lane_labels {
            out.push_str(&format!("{l:>10}"));
        }
        out.push('\n');
        for (b, label) in bucket_labels.iter().enumerate() {
            out.push_str(&format!("{label:<10}"));
            for hours in &cell[b] {
                out.push_str(&format!("{:9.1}%", 100.0 * hours / total_hours));
            }
            out.push('\n');
        }
    }
    out.push_str(
        "expectation: aware shifts low-utilization links into narrow modes and\n\
         high-utilization links back to 16 lanes, relative to unaware\n",
    );
    out
}

// ----------------------------------------------------------------------
// Figure 15 — aware vs unaware power
// ----------------------------------------------------------------------

/// Figure 15: network-wide power reduction of network-aware vs.
/// network-unaware management.
pub fn fig15(matrix: &mut Matrix, settings: &Settings) -> String {
    for p in [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware] {
        ensure(matrix, &managed_keys(p, &MAIN_MECHS, &ALPHAS), settings);
    }
    let mut out = String::from(
        "Figure 15: power reduction of network-aware vs network-unaware (%)\n\
         scale      mech      alpha   daisychain  ternary  star  DDRx-like |  avg\n",
    );
    for scale in SCALES {
        let mut scale_all = Vec::new();
        let mut scale_io = Vec::new();
        for mech in MAIN_MECHS {
            for alpha in ALPHAS {
                let mut per_topo = Vec::new();
                for topo in TOPOS {
                    let red: Vec<f64> = workloads()
                        .iter()
                        .map(|w| {
                            let ka =
                                Key::main(w, topo, scale, PolicyKind::NetworkAware, mech, alpha);
                            let ku =
                                Key::main(w, topo, scale, PolicyKind::NetworkUnaware, mech, alpha);
                            let aware = matrix.get(&ka);
                            let unaware = matrix.get(&ku);
                            scale_io.push(
                                1.0 - aware.power.energy.io_total()
                                    / unaware.power.energy.io_total().max(1e-12),
                            );
                            aware.power_reduction_vs(unaware)
                        })
                        .collect();
                    scale_all.extend(red.iter().copied());
                    per_topo.push(mean(red));
                }
                out.push_str(&format!(
                    "{:<10} {:<9} {:4.1}%   {:10.2} {:8.2} {:5.2} {:9.2} | {:5.2}\n",
                    scale.label(),
                    mech.label(),
                    100.0 * alpha,
                    100.0 * per_topo[0],
                    100.0 * per_topo[1],
                    100.0 * per_topo[2],
                    100.0 * per_topo[3],
                    100.0 * mean(per_topo.clone()),
                ));
            }
        }
        out.push_str(&format!(
            "{} networks: avg overall reduction {:.0}% (paper: {}%), avg I/O reduction {:.0}% (paper: {}%)\n",
            scale.label(),
            100.0 * mean(scale_all),
            if scale == NetworkScale::Small { 11 } else { 19 },
            100.0 * mean(scale_io),
            if scale == NetworkScale::Small { 17 } else { 29 },
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Figure 16 — per-workload power reduction
// ----------------------------------------------------------------------

/// Figure 16: network-wide power reduction vs. full power per workload
/// (big networks, α = 5 %).
pub fn fig16(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    for p in [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware] {
        ensure(matrix, &managed_keys(p, &MAIN_MECHS, &[0.05]), settings);
    }
    let mut out = String::from(
        "Figure 16: power reduction vs full power by workload (big, alpha=5%), avg over topologies (%)\n\
         workload  VWL:unaware ROO:unaware V+R:unaware  VWL:aware ROO:aware V+R:aware\n",
    );
    for w in workloads() {
        let cell = |policy: PolicyKind, mech: Mechanism| {
            mean(TOPOS.iter().map(|&topo| {
                let k = Key::main(w, topo, NetworkScale::Big, policy, mech, 0.05);
                matrix.get(&k).power_reduction_vs(matrix.get(&k.baseline()))
            }))
        };
        out.push_str(&format!(
            "{:<9} {:11.1} {:11.1} {:11.1} {:10.1} {:9.1} {:9.1}\n",
            w,
            100.0 * cell(PolicyKind::NetworkUnaware, Mechanism::Vwl),
            100.0 * cell(PolicyKind::NetworkUnaware, Mechanism::Roo),
            100.0 * cell(PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
            100.0 * cell(PolicyKind::NetworkAware, Mechanism::Vwl),
            100.0 * cell(PolicyKind::NetworkAware, Mechanism::Roo),
            100.0 * cell(PolicyKind::NetworkAware, Mechanism::VwlRoo),
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Figure 17 — aware performance
// ----------------------------------------------------------------------

/// Figure 17: (left) average performance overhead of aware vs. unaware;
/// (right) maximum performance overhead of aware vs. full power.
pub fn fig17(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    for p in [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware] {
        ensure(matrix, &managed_keys(p, &MAIN_MECHS, &ALPHAS), settings);
    }
    let mut out = String::from(
        "Figure 17 (left): avg perf degradation, aware vs unaware (%)\n\
         scale      mech      alpha  |  avg over topologies+workloads\n",
    );
    let mut global_max = f64::NEG_INFINITY;
    for scale in SCALES {
        for mech in MAIN_MECHS {
            for alpha in ALPHAS {
                let mut degr = Vec::new();
                let mut vs_fp = Vec::new();
                for topo in TOPOS {
                    for w in workloads() {
                        let ka = Key::main(w, topo, scale, PolicyKind::NetworkAware, mech, alpha);
                        let ku = Key::main(w, topo, scale, PolicyKind::NetworkUnaware, mech, alpha);
                        let aware = matrix.get(&ka);
                        degr.push(aware.degradation_vs(matrix.get(&ku)));
                        vs_fp.push(aware.degradation_vs(matrix.get(&ka.baseline())));
                    }
                }
                global_max = global_max.max(maxf(vs_fp.clone()));
                out.push_str(&format!(
                    "{:<10} {:<9} {:4.1}%  |  {:5.2}   (max vs FP: {:5.2})\n",
                    scale.label(),
                    mech.label(),
                    100.0 * alpha,
                    100.0 * mean(degr),
                    100.0 * maxf(vs_fp),
                ));
            }
        }
    }
    out.push_str(&format!(
        "Figure 17 (right): maximum overhead vs full power over all comparisons: {:.1}% (paper: 5.9%)\n",
        100.0 * global_max
    ));
    out
}

// ----------------------------------------------------------------------
// Figure 18 — sensitivity (DVFS, 20 ns ROO)
// ----------------------------------------------------------------------

/// The 20 ns-wakeup managed keys of figure 18 (the figure also needs
/// the full-power baselines from `fp_keys`).
fn fig18_keys() -> Vec<Key> {
    let mechs = [Mechanism::Dvfs, Mechanism::Roo, Mechanism::DvfsRoo];
    let mut keys = Vec::new();
    for policy in [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware] {
        for w in workloads() {
            for topo in TOPOS {
                for scale in SCALES {
                    for mech in mechs {
                        let mut k = Key::main(w, topo, scale, policy, mech, 0.05);
                        k.roo_wakeup_ns = 20;
                        keys.push(k);
                    }
                }
            }
        }
    }
    keys
}

/// Figure 18: power reduction and performance overhead vs. full power for
/// DVFS links and 20 ns-wakeup ROO links (α = 5 %).
pub fn fig18(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &fp_keys(), settings);
    let mechs = [Mechanism::Dvfs, Mechanism::Roo, Mechanism::DvfsRoo];
    ensure(matrix, &fig18_keys(), settings);
    let mut out = String::from(
        "Figure 18: sensitivity — DVFS links and 20 ns ROO (alpha=5%)\n\
         scale      mech       policy    power reduction vs FP (%)  perf degradation vs FP (%)\n",
    );
    for scale in SCALES {
        for mech in mechs {
            for policy in [PolicyKind::NetworkUnaware, PolicyKind::NetworkAware] {
                let mut red = Vec::new();
                let mut degr = Vec::new();
                for topo in TOPOS {
                    for w in workloads() {
                        let mut k = Key::main(w, topo, scale, policy, mech, 0.05);
                        k.roo_wakeup_ns = 20;
                        let r = matrix.get(&k);
                        let mut base = k.baseline();
                        base.roo_wakeup_ns = 14; // FP baseline has no ROO anyway
                        let b = matrix.get(&base);
                        red.push(r.power_reduction_vs(b));
                        degr.push(r.degradation_vs(b));
                    }
                }
                out.push_str(&format!(
                    "{:<10} {:<10} {:<9} {:22.1} {:27.2}\n",
                    scale.label(),
                    mech.label(),
                    if policy == PolicyKind::NetworkAware { "aware" } else { "unaware" },
                    100.0 * mean(red),
                    100.0 * mean(degr),
                ));
            }
        }
    }
    out
}

// ----------------------------------------------------------------------
// §VII-A — static selection
// ----------------------------------------------------------------------

/// The key set of §VII-A: static selection, its interleaved and
/// contiguous full-power baselines, and the aware α = 30 % comparison.
fn sec7a_keys() -> Vec<Key> {
    let mut keys = Vec::new();
    for w in workloads() {
        for topo in TOPOS {
            let mut stat = Key::main(
                w,
                topo,
                NetworkScale::Big,
                PolicyKind::StaticSelection,
                Mechanism::Vwl,
                0.05,
            );
            stat.mapping = AddressMapping::PageInterleaved;
            keys.push(stat.clone());
            keys.push(stat.baseline());
            let mut fp_interleaved = stat.baseline();
            fp_interleaved.mapping = AddressMapping::PageInterleaved;
            keys.push(fp_interleaved);
            keys.push(Key::main(
                w,
                topo,
                NetworkScale::Big,
                PolicyKind::NetworkAware,
                Mechanism::Vwl,
                0.30,
            ));
            keys.push(Key::main(
                w,
                topo,
                NetworkScale::Big,
                PolicyKind::FullPower,
                Mechanism::FullPower,
                0.05,
            ));
        }
    }
    keys
}

/// §VII-A: static fat/tapered bandwidth selection (with page-interleaved
/// mapping) vs. network-aware management at α = 30 % (big networks, VWL).
pub fn sec7a(matrix: &mut Matrix, settings: &Settings) -> String {
    ensure(matrix, &sec7a_keys(), settings);
    let mut stat_degr = Vec::new();
    let mut stat_power = Vec::new();
    let mut aware_degr = Vec::new();
    let mut aware_power = Vec::new();
    for w in workloads() {
        for topo in TOPOS {
            let mut stat = Key::main(
                w,
                topo,
                NetworkScale::Big,
                PolicyKind::StaticSelection,
                Mechanism::Vwl,
                0.05,
            );
            stat.mapping = AddressMapping::PageInterleaved;
            let mut fp_int = stat.baseline();
            fp_int.mapping = AddressMapping::PageInterleaved;
            let aware = Key::main(
                w,
                topo,
                NetworkScale::Big,
                PolicyKind::NetworkAware,
                Mechanism::Vwl,
                0.30,
            );
            let fp = aware.baseline();
            let rs = matrix.get(&stat);
            let ra = matrix.get(&aware);
            // Static selection is compared against its own interleaved
            // full-power baseline for performance, and everything against
            // contiguous FP for power.
            stat_degr.push(rs.degradation_vs(matrix.get(&fp_int)));
            aware_degr.push(ra.degradation_vs(matrix.get(&fp)));
            stat_power.push(rs.power.watts());
            aware_power.push(ra.power.watts());
        }
    }
    let mut top_q_stat: Vec<f64> = stat_degr.clone();
    top_q_stat.sort_by(|a, b| b.total_cmp(a));
    let q = (top_q_stat.len() / 4).max(1);
    let top_q_stat_avg = mean(top_q_stat[..q].to_vec());
    let mut top_q_aware: Vec<f64> = aware_degr.clone();
    top_q_aware.sort_by(|a, b| b.total_cmp(a));
    let top_q_aware_avg = mean(top_q_aware[..q].to_vec());
    let power_gain = 1.0 - mean(aware_power) / mean(stat_power).max(1e-12);
    format!(
        "Section VII-A: static fat/tapered selection vs network-aware (alpha=30%), big networks\n\
         static+interleave : avg perf overhead {:5.1}% (paper: 13%), worst {:5.1}% (paper: 43%), top-quartile avg {:5.1}% (paper: 30%)\n\
         aware alpha=30%   : avg perf overhead {:5.1}%, worst {:5.1}% (paper: 25%), top-quartile avg {:5.1}% (paper: 20%)\n\
         aware power vs static selection: {:5.1}% lower (paper: 15%)\n",
        100.0 * mean(stat_degr.clone()),
        100.0 * maxf(stat_degr),
        100.0 * top_q_stat_avg,
        100.0 * mean(aware_degr.clone()),
        100.0 * maxf(aware_degr),
        100.0 * top_q_aware_avg,
        100.0 * power_gain,
    )
}

// ----------------------------------------------------------------------
// Fault sweep — link resilience under power management
// ----------------------------------------------------------------------

/// Per-flit error rates swept by [`faults_sweep`]: a fault-free control,
/// the realistic post-CRC floor the HMC specification targets, a
/// pessimistic rate, and two stress rates high enough that retries are
/// statistically certain inside a 1 ms evaluation window.
pub const FAULT_SWEEP_RATES: [f64; 5] = [0.0, 1e-12, 1e-9, 1e-5, 1e-3];

/// The key set of the fault sweep: both cases × both topologies ×
/// every [`FAULT_SWEEP_RATES`] entry.
fn faults_sweep_keys() -> Vec<Key> {
    use memnet_faults::FaultConfig;
    let topos = [TopologyKind::DaisyChain, TopologyKind::TernaryTree];
    let cases =
        [(PolicyKind::FullPower, Mechanism::FullPower), (PolicyKind::NetworkAware, Mechanism::Roo)];
    let mut keys = Vec::new();
    for &(policy, mech) in &cases {
        for topo in topos {
            for rate in FAULT_SWEEP_RATES {
                let spec = FaultConfig::with_flit_error_rate(rate).spec();
                keys.push(
                    Key::main("mixD", topo, NetworkScale::Small, policy, mech, 0.05)
                        .with_faults(&spec),
                );
            }
        }
    }
    keys
}

/// Fault sweep: power, throughput and retry cost versus per-flit error
/// rate, for unmanaged and ROO-managed links on the chain and tree
/// topologies. The `faults` key dimension keeps every scenario distinct
/// in the persistent cache.
pub fn faults_sweep(matrix: &mut Matrix, settings: &Settings) -> String {
    use memnet_faults::FaultConfig;
    let topos = [TopologyKind::DaisyChain, TopologyKind::TernaryTree];
    let cases = [
        ("unmanaged", PolicyKind::FullPower, Mechanism::FullPower),
        ("aware ROO", PolicyKind::NetworkAware, Mechanism::Roo),
    ];
    let workload = "mixD";
    ensure(matrix, &faults_sweep_keys(), settings);
    let mut out = String::from(
        "Fault sweep: link-level retry cost vs per-flit error rate (mixD, small networks)\n\
         case       topology      error-rate   W/HMC  acc/us  retries  re-flits  retrans(uJ)\n",
    );
    for &(label, policy, mech) in &cases {
        for topo in topos {
            for rate in FAULT_SWEEP_RATES {
                let spec = FaultConfig::with_flit_error_rate(rate).spec();
                let k = Key::main(workload, topo, NetworkScale::Small, policy, mech, 0.05)
                    .with_faults(&spec);
                let r = matrix.get(&k);
                out.push_str(&format!(
                    "{:<10} {:<13} {:>10}  {:6.2}  {:6.1}  {:7}  {:8}  {:11.3}\n",
                    label,
                    topo.label(),
                    if rate == 0.0 { "0".to_string() } else { format!("{rate:.0e}") },
                    r.power.watts_per_hmc(),
                    r.accesses_per_us,
                    r.faults.retries,
                    r.faults.retransmitted_flits,
                    1e6 * r.faults.retransmission_energy,
                ));
            }
        }
    }
    out
}

/// The key set of the adversarial stress suite: every `adv.*` workload
/// against each of the three policy cases.
fn stress_keys() -> Vec<Key> {
    use memnet_workload::stress;
    let cases = [
        (PolicyKind::FullPower, Mechanism::FullPower),
        (PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
        (PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ];
    cases
        .iter()
        .flat_map(|&(policy, mech)| {
            stress::names().into_iter().map(move |w| {
                Key::main(w, TopologyKind::TernaryTree, NetworkScale::Small, policy, mech, 0.05)
            })
        })
        .collect()
}

/// Adversarial stress suite (beyond the paper): every `adv.*` stress
/// workload against the unmanaged baseline and both managed policies
/// running VWL+ROO, the mechanism combination the stress patterns attack
/// (wake chains, rescue-pool drain, epoch-aligned duty flips). Regressions
/// in how a policy survives hostile traffic show up as golden-snapshot
/// diffs here.
pub fn stress(matrix: &mut Matrix, settings: &Settings) -> String {
    use memnet_workload::stress;
    let cases = [
        ("full power", PolicyKind::FullPower, Mechanism::FullPower),
        ("unaware V+R", PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
        ("aware V+R", PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ];
    ensure(matrix, &stress_keys(), settings);
    let mut out = String::from(
        "Adversarial stress suite (ternary tree, small networks, alpha = 5%)\n\
         workload       case          W/HMC  acc/us  read lat(ns)  violations\n",
    );
    for w in stress::names() {
        for &(label, policy, mech) in &cases {
            let k =
                Key::main(w, TopologyKind::TernaryTree, NetworkScale::Small, policy, mech, 0.05);
            let r = matrix.get(&k);
            out.push_str(&format!(
                "{:<14} {:<12} {:6.2}  {:6.1}  {:12.1}  {:10}\n",
                w,
                label,
                r.power.watts_per_hmc(),
                r.accesses_per_us,
                r.mean_read_latency_ns,
                r.violations,
            ));
        }
    }
    out
}

/// The key set of the model differential: each case priced by both
/// energy backends.
fn model_diff_keys() -> Vec<Key> {
    use memnet_power::EnergyBackendKind;
    MODEL_DIFF_CASES
        .iter()
        .flat_map(|&(w, policy, mech)| {
            let k =
                Key::main(w, TopologyKind::TernaryTree, NetworkScale::Small, policy, mech, 0.05);
            [k.with_backend(EnergyBackendKind::Idd), k]
        })
        .collect()
}

const MODEL_DIFF_CASES: [(&str, PolicyKind, Mechanism); 3] = [
    ("mixB", PolicyKind::FullPower, Mechanism::FullPower),
    ("mixD", PolicyKind::NetworkUnaware, Mechanism::Dvfs),
    ("mixD", PolicyKind::NetworkAware, Mechanism::VwlRoo),
];

/// Model-vs-model differential (beyond the paper): the same
/// configurations priced by both energy backends — the analytical
/// peak-split model and the IDD current table — with every mode-table
/// watt, energy category and total diffed against a 5 % threshold. The
/// two models are independently parameterized, so agreement within a few
/// percent here is genuine cross-validation, and a miscalibrated entry
/// on either side shows up as a flagged row (and a golden-snapshot diff).
pub fn model_diff(matrix: &mut Matrix, settings: &Settings) -> String {
    use memnet_core::report_text;
    use memnet_power::{EnergyBackendKind, HmcPowerModel, IddModel};
    const THRESHOLD: f64 = 0.05;
    let cases = MODEL_DIFF_CASES;
    ensure(matrix, &model_diff_keys(), settings);
    let analytical = HmcPowerModel::paper();
    let idd = IddModel::hmc_gen2();
    let mut out = String::from(
        "Model differential: analytical (paper) vs IDD current table, 5% threshold\n\n\
         Mode-table watts per unidirectional link\n",
    );
    let (table, _) = report_text::model_diff_table(
        "analytical",
        "idd",
        &report_text::model_diff_watts_rows(&analytical, &idd),
        THRESHOLD,
    );
    out.push_str(&table);
    for &(w, policy, mech) in &cases {
        let k = Key::main(w, TopologyKind::TernaryTree, NetworkScale::Small, policy, mech, 0.05);
        let ra = matrix.get(&k);
        let rb = matrix.get(&k.with_backend(EnergyBackendKind::Idd));
        out.push_str(&format!(
            "\n{} / {} / {} (ternary tree, small)\n",
            w, ra.policy, ra.mechanism
        ));
        let rows = report_text::model_diff_energy_rows(ra, rb);
        let (table, _) = report_text::model_diff_table("analytical", "idd", &rows, THRESHOLD);
        out.push_str(&table);
    }
    out
}
