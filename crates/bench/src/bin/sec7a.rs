//! Regenerates the paper's sec7a data series.
use memnet_bench::{Matrix, Settings};

fn main() {
    let settings = Settings::from_env();
    let mut matrix = Matrix::new();
    print!("{}", memnet_bench::figures::sec7a(&mut matrix, &settings));
}
