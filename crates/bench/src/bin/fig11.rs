//! Regenerates the paper's fig11 data series.
use memnet_bench::{Matrix, Settings};

fn main() {
    let settings = Settings::from_env();
    let mut matrix = Matrix::new();
    print!("{}", memnet_bench::figures::fig11(&mut matrix, &settings));
}
