//! Regenerates the analytical-vs-IDD model differential report.
use memnet_bench::{Matrix, Settings};

fn main() {
    let settings = Settings::from_env();
    let mut matrix = Matrix::new();
    print!("{}", memnet_bench::figures::model_diff(&mut matrix, &settings));
}
