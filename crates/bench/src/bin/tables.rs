//! Regenerates Tables I, II and III.
fn main() {
    print!("{}", memnet_bench::figures::tables());
}
