//! Regenerates the adversarial stress-suite data series.
use memnet_bench::{Matrix, Settings};

fn main() {
    let settings = Settings::from_env();
    let mut matrix = Matrix::new();
    print!("{}", memnet_bench::figures::stress(&mut matrix, &settings));
}
