//! Ablations of the design choices DESIGN.md calls out: ISP iteration
//! cap, epoch length, response-link wakeup chaining, and the leftover-AMS
//! rescue pool.
//!
//! Usage: `cargo run --release --bin ablations` (honors `MEMNET_EVAL_US`).

use memnet_core::{run_pair, NetworkScale, PolicyKind, SimConfig, SimConfigBuilder};
use memnet_net::TopologyKind;
use memnet_policy::Mechanism;
use memnet_simcore::SimDuration;

fn base() -> SimConfigBuilder {
    let eval_us = std::env::var("MEMNET_EVAL_US").ok().and_then(|v| v.parse().ok()).unwrap_or(600);
    SimConfig::builder()
        .workload("cg.D")
        .topology(TopologyKind::Star)
        .scale(NetworkScale::Big)
        .policy(PolicyKind::NetworkAware)
        .mechanism(Mechanism::VwlRoo)
        .alpha(0.05)
        .eval_period(SimDuration::from_us(eval_us))
}

fn report(label: &str, cfg: SimConfig) {
    let (managed, baseline) = run_pair(cfg);
    println!(
        "{label:<28} power {:6.2} W  saved {:5.1}%  degradation {:5.2}%  violations {:4}",
        managed.power.watts(),
        100.0 * managed.power_reduction_vs(&baseline),
        100.0 * managed.degradation_vs(&baseline),
        managed.violations,
    );
}

fn main() {
    println!("== ablation: ISP iteration cap (paper: 3) ==");
    for iters in [1usize, 2, 3, 5] {
        report(&format!("isp_iterations={iters}"), base().isp_iterations(iters).build().unwrap());
    }

    println!("\n== ablation: epoch length (paper: 100 us) ==");
    for epoch_us in [25u64, 50, 100, 200] {
        report(
            &format!("epoch={epoch_us}us"),
            base().epoch(SimDuration::from_us(epoch_us)).build().unwrap(),
        );
    }

    println!("\n== ablation: response-link wakeup chaining (SVI-B) ==");
    for on in [true, false] {
        report(
            &format!("wake_chaining={on}"),
            base().mechanism(Mechanism::Roo).wake_chaining(on).build().unwrap(),
        );
    }

    println!("\n== ablation: leftover-AMS rescue pool (SVI-A3) ==");
    for on in [true, false] {
        report(&format!("rescue_pool={on}"), base().rescue_pool(on).build().unwrap());
    }
}
