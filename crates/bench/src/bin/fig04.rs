//! Regenerates Figure 4 (workload memory access CDFs).
fn main() {
    print!("{}", memnet_bench::figures::fig04());
}
