//! Runs the full experiment suite — every table and figure — sharing one
//! result matrix so each configuration is simulated exactly once.
use memnet_bench::{figures, Matrix, Settings};

fn main() {
    let settings = Settings::from_env();
    let mut m = Matrix::new();
    let sections: Vec<(&str, String)> = vec![
        ("Tables I-III", figures::tables()),
        ("Figure 4", figures::fig04()),
        ("Figure 5", figures::fig05(&mut m, &settings)),
        ("Figure 6", figures::fig06(&mut m, &settings)),
        ("Figure 8", figures::fig08(&mut m, &settings)),
        ("Figure 9", figures::fig09(&mut m, &settings)),
        ("Figure 11", figures::fig11(&mut m, &settings)),
        ("Figure 12", figures::fig12(&mut m, &settings)),
        ("Figure 13", figures::fig13(&mut m, &settings)),
        ("Figure 15", figures::fig15(&mut m, &settings)),
        ("Figure 16", figures::fig16(&mut m, &settings)),
        ("Figure 17", figures::fig17(&mut m, &settings)),
        ("Figure 18", figures::fig18(&mut m, &settings)),
        ("Section VII-A", figures::sec7a(&mut m, &settings)),
        ("Fault sweep", figures::faults_sweep(&mut m, &settings)),
        ("Stress suite", figures::stress(&mut m, &settings)),
        ("Model differential", figures::model_diff(&mut m, &settings)),
    ];
    for (title, body) in sections {
        println!("==================== {title} ====================");
        println!("{body}");
    }
    memnet_simcore::memnet_log!("[all] total configurations simulated: {}", m.len());
}
