//! Regenerates the paper's fig05 data series.
use memnet_bench::{Matrix, Settings};

fn main() {
    let settings = Settings::from_env();
    let mut matrix = Matrix::new();
    print!("{}", memnet_bench::figures::fig05(&mut matrix, &settings));
}
