//! The experiment matrix: a memoized store of simulation results keyed by
//! configuration, filled by parallel sweeps.

use std::collections::HashMap;

use memnet_core::{AddressMapping, NetworkScale, PolicyKind, RunReport, SimConfig};
use memnet_net::mech::RooParams;
use memnet_net::TopologyKind;
use memnet_obs::ObsConfig;
use memnet_policy::Mechanism;
use memnet_power::EnergyBackendKind;

use crate::cache::{DiskCache, CACHE_SCHEMA_VERSION};
use crate::settings::Settings;

/// A hashable identity for one simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key {
    /// Workload name.
    pub workload: &'static str,
    /// Topology.
    pub topology: TopologyKind,
    /// Network scale.
    pub scale: NetworkScale,
    /// Policy.
    pub policy: PolicyKind,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// α in tenths of a percent (25 = 2.5 %).
    pub alpha_tenths_pct: u32,
    /// ROO wakeup latency in ns (14 or 20).
    pub roo_wakeup_ns: u32,
    /// Address mapping.
    pub mapping: AddressMapping,
    /// Canonical fault-scenario spec ([`FaultConfig::spec`]); empty for
    /// fault-free runs, so pre-existing sweep dimensions are unaffected.
    ///
    /// [`FaultConfig::spec`]: memnet_faults::FaultConfig::spec
    pub faults: String,
    /// Traffic-source identity beyond the workload name: empty for
    /// synthetic/stress generators (whose streams are functions of
    /// workload + seed alone), or `trace:<digest>` for a replayed request
    /// trace. Replay keys exist so fingerprints account for trace content;
    /// they cannot be simulated by the matrix (replay runs are CLI-driven).
    pub source: String,
    /// Calibration provenance of the energy backend: empty when the stock
    /// model prices the run, or `calib:<digest>` of the calibration JSON
    /// when a fitted [`IddModel`] replaces it. Calibrated keys exist so
    /// manifest fingerprints distinguish results priced by different
    /// calibrations; they cannot be simulated by the matrix (the engine
    /// backend is injected by the caller).
    ///
    /// [`IddModel`]: memnet_power::IddModel
    pub calibration: String,
    /// Which energy backend priced the run. In the key (rather than
    /// [`Settings`]) so one matrix can hold both backends' results for
    /// the same configuration side by side — the model differential
    /// figure depends on that.
    pub energy: EnergyBackendKind,
}

impl Key {
    /// A key for the main-study configuration space.
    pub fn main(
        workload: &'static str,
        topology: TopologyKind,
        scale: NetworkScale,
        policy: PolicyKind,
        mechanism: Mechanism,
        alpha: f64,
    ) -> Key {
        Key {
            workload,
            topology,
            scale,
            policy,
            mechanism,
            alpha_tenths_pct: (alpha * 1000.0).round() as u32,
            roo_wakeup_ns: 14,
            mapping: AddressMapping::Contiguous,
            faults: String::new(),
            source: String::new(),
            calibration: String::new(),
            energy: EnergyBackendKind::Analytical,
        }
    }

    /// This key priced by a different energy backend (the model
    /// differential's sweep dimension).
    pub fn with_backend(&self, energy: EnergyBackendKind) -> Key {
        Key { energy, ..self.clone() }
    }

    /// This key with a fault scenario attached (the `faults` sweep
    /// dimension). Pass the canonical spec from
    /// [`memnet_faults::FaultConfig::spec`].
    pub fn with_faults(&self, spec: &str) -> Key {
        Key { faults: spec.to_string(), ..self.clone() }
    }

    /// This key with a replayed-trace identity attached: the trace digest
    /// (from [`RequestTrace::digest_hex`]) distinguishes cached results
    /// driven by different trace contents under the same workload name.
    ///
    /// [`RequestTrace::digest_hex`]: memnet_workload::RequestTrace::digest_hex
    pub fn with_replay(&self, digest_hex: &str) -> Key {
        Key { source: format!("trace:{digest_hex}"), ..self.clone() }
    }

    /// This key priced by a calibrated energy model: the digest of the
    /// calibration JSON distinguishes cached results priced by different
    /// fitted [`IddModel`]s under the same backend kind.
    ///
    /// [`IddModel`]: memnet_power::IddModel
    pub fn with_calibration(&self, digest_hex: &str) -> Key {
        Key { calibration: format!("calib:{digest_hex}"), ..self.clone() }
    }

    /// The full-power baseline key matching this configuration. α and the
    /// ROO wakeup latency are normalized (full-power links have neither),
    /// so every managed variant shares one baseline run.
    pub fn baseline(&self) -> Key {
        Key {
            policy: PolicyKind::FullPower,
            mechanism: Mechanism::FullPower,
            alpha_tenths_pct: 50,
            roo_wakeup_ns: 14,
            ..self.clone()
        }
    }

    /// α as a fraction.
    pub fn alpha(&self) -> f64 {
        f64::from(self.alpha_tenths_pct) / 1000.0
    }

    /// The persistent-cache identity of this configuration under
    /// `settings`: folds in the cache schema version, every run-affecting
    /// settings field (evaluation period, seed and the observability
    /// flag — the thread count and sweep shard cannot change results and
    /// are excluded), and every key field. Equal fingerprints guarantee
    /// byte-identical simulation results. (`MEMNET_AUDIT` is also
    /// excluded: audit checks cannot change results, only the diagnostic
    /// `audit` section of a cached report, which therefore reflects the
    /// level in effect when it was first simulated.)
    pub fn fingerprint(&self, settings: &Settings) -> String {
        self.fingerprint_at(settings, settings.seed)
    }

    /// [`Self::fingerprint`] under an explicit seed. Multi-seed sweeps
    /// cache each replica under the fingerprint a solo run with that
    /// seed would use — the lockstep engine is bit-identical to solo
    /// runs, so the cache never needs to know how a result was driven.
    pub fn fingerprint_at(&self, settings: &Settings, seed: u64) -> String {
        format!(
            "v{}|eval_ps={}|seed={}|wl={}|topo={:?}|scale={:?}|policy={:?}|mech={:?}|alpha={}|roo={}|map={:?}|faults={}|obs={}|src={}|calib={}|energy={}",
            CACHE_SCHEMA_VERSION,
            settings.eval_period.as_ps(),
            seed,
            self.workload,
            self.topology,
            self.scale,
            self.policy,
            self.mechanism,
            self.alpha_tenths_pct,
            self.roo_wakeup_ns,
            self.mapping,
            self.faults,
            settings.obs,
            self.source,
            self.calibration,
            self.energy.label(),
        )
    }

    /// Builds the simulation configuration for this key, or explains why
    /// the matrix cannot simulate it. Replay keys (`src=trace:<digest>`)
    /// refuse matrix simulation because the trace content lives outside
    /// the key — replay runs are CLI-driven; calibrated keys refuse
    /// because the fitted energy backend is injected by the caller. The
    /// error names the offending cell by its cache fingerprint so a
    /// sweep operator can find it in the plan.
    fn try_config(&self, settings: &Settings) -> Result<SimConfig, String> {
        if !self.source.is_empty() {
            return Err(format!(
                "replay keys refuse matrix simulation (trace content is not part of the key; \
                 replay runs are CLI-driven): {}",
                self.fingerprint(settings)
            ));
        }
        if !self.calibration.is_empty() {
            return Err(format!(
                "calibrated keys refuse matrix simulation (the fitted energy backend is injected \
                 by the caller): {}",
                self.fingerprint(settings)
            ));
        }
        let roo = if self.roo_wakeup_ns == 20 { RooParams::slow() } else { RooParams::fast() };
        let faults =
            memnet_faults::FaultConfig::parse(&self.faults).expect("matrix fault specs are valid");
        let mut builder = SimConfig::builder()
            .workload(self.workload)
            .topology(self.topology)
            .scale(self.scale)
            .policy(self.policy)
            .mechanism(self.mechanism)
            .alpha(self.alpha().max(0.001))
            .roo_params(roo)
            .mapping(self.mapping)
            .faults(faults)
            .eval_period(settings.eval_period)
            .seed(settings.seed)
            .energy_backend(self.energy);
        if settings.obs {
            builder = builder.obs(ObsConfig { enabled: true, ..ObsConfig::off() });
        }
        Ok(builder.build().expect("matrix keys are valid configurations"))
    }
}

/// What one [`Matrix::ensure`] call did, for logging and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnsureStats {
    /// Distinct keys requested.
    pub requested: usize,
    /// Served from this process's in-memory matrix.
    pub memoized: usize,
    /// Served from the persistent on-disk cache.
    pub cache_hits: usize,
    /// Actually simulated this call.
    pub simulated: usize,
}

/// Memoized experiment results, backed by the persistent on-disk cache
/// when [`Settings::cache_dir`] is set.
#[derive(Debug, Default)]
pub struct Matrix {
    /// Base-seed results, the view every figure reads via [`Matrix::get`].
    reports: HashMap<Key, RunReport>,
    /// Every ensured `(key, seed)` cell, including the base seed, for
    /// multi-seed consumers ([`Matrix::get_seeded`], sharded sweeps).
    seeded: HashMap<(Key, u64), RunReport>,
    disk: Option<DiskCache>,
}

impl Matrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Matrix::default()
    }

    /// Returns the open disk cache for `settings`, if caching is enabled
    /// and the directory is usable. Reopens when the directory changes.
    fn disk_for(&mut self, settings: &Settings) -> Option<&mut DiskCache> {
        let dir = settings.cache_dir.as_deref()?;
        let stale = self.disk.as_ref().is_none_or(|d| d.dir() != dir);
        if stale {
            match DiskCache::open(dir) {
                Ok(d) => self.disk = Some(d),
                Err(e) => {
                    memnet_simcore::memnet_warn!(
                        "[matrix] cannot open cache dir {}: {e}; caching disabled",
                        dir.display()
                    );
                    self.disk = None;
                    return None;
                }
            }
        }
        self.disk.as_mut()
    }

    /// Ensures every key has a result under every seed in
    /// [`Settings::seed_list`], in order of preference: already in
    /// memory, in the persistent cache, or freshly simulated (in
    /// parallel) — and persists anything fresh for the next process.
    /// Keys needing more than one seed are driven by the lockstep
    /// multi-seed engine (one shared construction per configuration);
    /// stats count `(key, seed)` cells.
    ///
    /// # Errors
    ///
    /// Fails without simulating anything if a key cannot be simulated by
    /// the matrix (a replay or calibrated key); the message carries the
    /// offending cell's cache fingerprint.
    pub fn ensure(&mut self, keys: &[Key], settings: &Settings) -> Result<EnsureStats, String> {
        let seeds = settings.seed_list();
        let cells: Vec<(Key, u64)> =
            keys.iter().flat_map(|k| seeds.iter().map(|&s| (k.clone(), s))).collect();
        self.ensure_cells(&cells, settings)
    }

    /// [`Self::ensure`] over explicit `(key, seed)` cells — the sharded
    /// sweep entry point, where a shard may own only some seeds of a key.
    pub fn ensure_cells(
        &mut self,
        cells: &[(Key, u64)],
        settings: &Settings,
    ) -> Result<EnsureStats, String> {
        // Refuse unsimulable keys up front, before any cell simulates.
        for (key, seed) in cells {
            if !self.seeded.contains_key(&(key.clone(), *seed)) {
                key.try_config(settings)?;
            }
        }
        let missing: Vec<(Key, u64)> = {
            let mut seen = std::collections::HashSet::new();
            cells
                .iter()
                .filter(|c| !self.seeded.contains_key(*c) && seen.insert((*c).clone()))
                .cloned()
                .collect()
        };
        let mut stats = EnsureStats {
            requested: {
                let distinct: std::collections::HashSet<&(Key, u64)> = cells.iter().collect();
                distinct.len()
            },
            ..EnsureStats::default()
        };
        stats.memoized = stats.requested - missing.len();
        if missing.is_empty() {
            return Ok(stats);
        }

        // Second chance: the persistent cache.
        let mut to_simulate: Vec<(Key, u64)> = Vec::with_capacity(missing.len());
        if let Some(disk) = self.disk_for(settings) {
            let mut hits: Vec<((Key, u64), RunReport)> = Vec::new();
            for (k, s) in missing {
                match disk.get(&k.fingerprint_at(settings, s)) {
                    Some(r) => hits.push(((k, s), r.clone())),
                    None => to_simulate.push((k, s)),
                }
            }
            stats.cache_hits = hits.len();
            for ((k, s), r) in hits {
                self.insert(k, s, settings, r);
            }
        } else {
            to_simulate = missing;
        }
        stats.simulated = to_simulate.len();
        memnet_simcore::memnet_log!(
            "[matrix {}] {} cells: {} memoized, {} cache hits, {} simulated ({} threads, {} per run)",
            settings.shard,
            stats.requested,
            stats.memoized,
            stats.cache_hits,
            stats.simulated,
            settings.threads,
            settings.eval_period
        );
        if to_simulate.is_empty() {
            return Ok(stats);
        }

        // Group each key's missing seeds into one job: multi-seed jobs
        // run lockstep, sharing construction across replicas.
        let mut jobs: Vec<(Key, SimConfig, Vec<u64>)> = Vec::new();
        for (k, s) in &to_simulate {
            match jobs.iter_mut().find(|(key, _, _)| key == k) {
                Some((_, _, seeds)) => seeds.push(*s),
                None => jobs.push((k.clone(), k.try_config(settings)?, vec![*s])),
            }
        }
        let reports = memnet_core::sweep_seeds(
            jobs.iter().map(|(_, cfg, seeds)| (cfg.clone(), seeds.clone())).collect(),
            settings.threads,
        );
        let fresh: Vec<(Key, u64, RunReport)> = jobs
            .into_iter()
            .zip(reports)
            .flat_map(|((k, _, seeds), rs)| {
                seeds.into_iter().zip(rs).map(move |(s, r)| (k.clone(), s, r))
            })
            .collect();
        if let Some(disk) = self.disk_for(settings) {
            let entries = fresh.iter().map(|(k, s, r)| (k.fingerprint_at(settings, *s), r.clone()));
            if let Err(e) = disk.store(entries) {
                memnet_simcore::memnet_warn!("[matrix] failed to persist results: {e}");
            }
        }
        for (k, s, r) in fresh {
            self.insert(k, s, settings, r);
        }
        Ok(stats)
    }

    /// Records one ensured cell: always in the seeded map, and in the
    /// base-seed view when the seed is the base seed.
    fn insert(&mut self, key: Key, seed: u64, settings: &Settings, report: RunReport) {
        if seed == settings.seed {
            self.reports.insert(key.clone(), report.clone());
        }
        self.seeded.insert((key, seed), report);
    }

    /// Fetches a previously ensured report (under the base seed).
    ///
    /// # Panics
    ///
    /// Panics if the key was never ensured.
    pub fn get(&self, key: &Key) -> &RunReport {
        self.reports.get(key).unwrap_or_else(|| panic!("configuration not simulated: {key:?}"))
    }

    /// Fetches a previously ensured report under an explicit seed.
    ///
    /// # Panics
    ///
    /// Panics if the `(key, seed)` cell was never ensured.
    pub fn get_seeded(&self, key: &Key, seed: u64) -> &RunReport {
        self.seeded
            .get(&(key.clone(), seed))
            .unwrap_or_else(|| panic!("configuration not simulated under seed {seed}: {key:?}"))
    }

    /// Number of simulated configurations.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if nothing has been simulated yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SimDuration;

    fn tiny_settings() -> Settings {
        Settings {
            eval_period: SimDuration::from_us(20),
            threads: 2,
            seed: 1,
            ..Settings::default()
        }
    }

    fn tiny_key(workload: &'static str) -> Key {
        Key::main(
            workload,
            TopologyKind::DaisyChain,
            NetworkScale::Small,
            PolicyKind::FullPower,
            Mechanism::FullPower,
            0.05,
        )
    }

    #[test]
    fn obs_settings_flow_into_the_simulation() {
        let mut m = Matrix::new();
        let k = tiny_key("mixD");
        let settings = Settings { obs: true, ..tiny_settings() };
        m.ensure(std::slice::from_ref(&k), &settings).unwrap();
        assert!(m.get(&k).obs.is_some(), "obs=true must produce the obs report section");
        let fp = k.fingerprint(&settings);
        assert!(fp.contains("|obs=true|"), "obs belongs in the fingerprint: {fp}");
    }

    #[test]
    fn ensure_is_memoized() {
        let mut m = Matrix::new();
        let k = tiny_key("mixD");
        let stats = m.ensure(&[k.clone(), k.clone()], &tiny_settings()).unwrap();
        assert_eq!(stats, EnsureStats { requested: 1, memoized: 0, cache_hits: 0, simulated: 1 });
        assert_eq!(m.len(), 1);
        let before = m.get(&k).completed_reads;
        let stats = m.ensure(std::slice::from_ref(&k), &tiny_settings()).unwrap();
        assert_eq!(stats, EnsureStats { requested: 1, memoized: 1, cache_hits: 0, simulated: 0 });
        assert_eq!(m.get(&k).completed_reads, before);
    }

    #[test]
    fn warm_cache_simulates_nothing() {
        let dir =
            std::env::temp_dir().join(format!("memnet-matrix-test-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let settings = Settings { cache_dir: Some(dir.clone()), ..tiny_settings() };
        let keys = [tiny_key("mixD"), tiny_key("lu.D")];

        let mut cold = Matrix::new();
        let stats = cold.ensure(&keys, &settings).unwrap();
        assert_eq!(stats, EnsureStats { requested: 2, memoized: 0, cache_hits: 0, simulated: 2 });

        // A brand-new Matrix (fresh process, in effect) must be served
        // entirely from disk: zero simulations.
        let mut warm = Matrix::new();
        let stats = warm.ensure(&keys, &settings).unwrap();
        assert_eq!(stats, EnsureStats { requested: 2, memoized: 0, cache_hits: 2, simulated: 0 });
        // Cached results are identical to the fresh ones.
        for k in &keys {
            let fresh = serde::json::to_string(cold.get(k));
            let cached = serde::json::to_string(warm.get(k));
            assert_eq!(fresh, cached, "cache must reproduce {k:?} byte-for-byte");
        }

        // A different seed invalidates: everything re-simulates.
        let reseeded = Settings { seed: 2, ..settings.clone() };
        let stats = Matrix::new().ensure(&keys, &reseeded).unwrap();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.simulated, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_keys_change_the_fingerprint_and_refuse_to_simulate() {
        let k = tiny_key("mixD");
        let r = k.with_replay("d2995bd26ec2efe1");
        assert_ne!(k.fingerprint(&tiny_settings()), r.fingerprint(&tiny_settings()));
        assert!(r.fingerprint(&tiny_settings()).contains("src=trace:d2995bd26ec2efe1"));
        // Different trace contents → different cache identities.
        assert_ne!(
            r.fingerprint(&tiny_settings()),
            k.with_replay("0000000000000000").fingerprint(&tiny_settings())
        );
        // The sweep path reports a documented error naming the offending
        // cell by fingerprint — never a panic.
        let err = Matrix::new().ensure(std::slice::from_ref(&r), &tiny_settings()).unwrap_err();
        assert!(err.contains("replay keys refuse matrix simulation"), "{err}");
        assert!(err.contains(&r.fingerprint(&tiny_settings())), "{err}");
    }

    #[test]
    fn calibration_keys_change_the_fingerprint_and_refuse_to_simulate() {
        let k = tiny_key("mixD").with_backend(EnergyBackendKind::Idd);
        let c = k.with_calibration("00c0ffee00c0ffee");
        assert_ne!(k.fingerprint(&tiny_settings()), c.fingerprint(&tiny_settings()));
        assert!(c.fingerprint(&tiny_settings()).contains("calib=calib:00c0ffee00c0ffee"));
        assert_ne!(
            c.fingerprint(&tiny_settings()),
            k.with_calibration("deadbeefdeadbeef").fingerprint(&tiny_settings())
        );
        let err = Matrix::new().ensure(std::slice::from_ref(&c), &tiny_settings()).unwrap_err();
        assert!(err.contains("calibrated keys refuse matrix simulation"), "{err}");
        assert!(err.contains(&c.fingerprint(&tiny_settings())), "{err}");
    }

    #[test]
    fn multi_seed_cells_run_lockstep_and_match_solo_sweeps() {
        let settings = Settings { seeds: vec![2, 3], ..tiny_settings() };
        let keys = [tiny_key("mixD"), tiny_key("lu.D")];
        let mut m = Matrix::new();
        let stats = m.ensure(&keys, &settings).unwrap();
        assert_eq!(stats, EnsureStats { requested: 6, memoized: 0, cache_hits: 0, simulated: 6 });

        // Each replica is byte-identical to the same cell swept solo
        // under that seed alone.
        for k in &keys {
            assert_eq!(
                serde::json::to_string(m.get(k)),
                serde::json::to_string(m.get_seeded(k, settings.seed)),
                "the base seed serves both views",
            );
            for seed in [2u64, 3] {
                let mut solo = Matrix::new();
                solo.ensure(
                    std::slice::from_ref(k),
                    &Settings { seed, seeds: Vec::new(), ..settings.clone() },
                )
                .unwrap();
                assert_eq!(
                    serde::json::to_string(m.get_seeded(k, seed)),
                    serde::json::to_string(solo.get(k)),
                    "lockstep replica must equal the solo sweep for seed {seed}",
                );
            }
        }

        // Re-ensuring is fully memoized, per (key, seed) cell.
        let stats = m.ensure(&keys, &settings).unwrap();
        assert_eq!(stats, EnsureStats { requested: 6, memoized: 6, cache_hits: 0, simulated: 0 });
    }

    #[test]
    fn multi_seed_cells_cache_under_solo_fingerprints() {
        let dir =
            std::env::temp_dir().join(format!("memnet-matrix-test-seeds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let settings = Settings { seeds: vec![2], cache_dir: Some(dir.clone()), ..tiny_settings() };
        let k = tiny_key("mixD");
        let stats = Matrix::new().ensure(std::slice::from_ref(&k), &settings).unwrap();
        assert_eq!(stats.simulated, 2);

        // A later solo sweep under the extra seed is served entirely from
        // the cache the lockstep run populated.
        let solo_settings = Settings {
            seed: 2,
            seeds: Vec::new(),
            cache_dir: Some(dir.clone()),
            ..tiny_settings()
        };
        let stats = Matrix::new().ensure(std::slice::from_ref(&k), &solo_settings).unwrap();
        assert_eq!(stats, EnsureStats { requested: 1, memoized: 0, cache_hits: 1, simulated: 0 });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stress_workloads_are_simulable_matrix_keys() {
        let mut m = Matrix::new();
        let k = tiny_key("adv.flip");
        let stats = m.ensure(std::slice::from_ref(&k), &tiny_settings()).unwrap();
        assert_eq!(stats.simulated, 1);
        assert!(m.get(&k).accesses_per_us > 0.0, "stress run produced traffic");
    }

    #[test]
    fn energy_backend_is_part_of_the_cache_identity() {
        let k = tiny_key("mixD");
        let idd = k.with_backend(EnergyBackendKind::Idd);
        assert_ne!(k.fingerprint(&tiny_settings()), idd.fingerprint(&tiny_settings()));
        assert!(idd.fingerprint(&tiny_settings()).ends_with("|energy=idd"));
        let mut m = Matrix::new();
        let stats = m.ensure(&[k.clone(), idd.clone()], &tiny_settings()).unwrap();
        assert_eq!(stats.simulated, 2, "the two backends are distinct configurations");
        // Backends reprice identical activity: every non-energy metric
        // agrees exactly, only the joules differ.
        assert_eq!(m.get(&k).completed_reads, m.get(&idd).completed_reads);
        assert_eq!(m.get(&k).events_processed, m.get(&idd).events_processed);
        assert_ne!(m.get(&k).power.energy.total(), m.get(&idd).power.energy.total());
    }

    #[test]
    fn baseline_key_swaps_policy_only() {
        let k = Key::main(
            "mixB",
            TopologyKind::Star,
            NetworkScale::Big,
            PolicyKind::NetworkAware,
            Mechanism::VwlRoo,
            0.025,
        );
        let b = k.baseline();
        assert_eq!(b.policy, PolicyKind::FullPower);
        assert_eq!(b.mechanism, Mechanism::FullPower);
        assert_eq!(b.workload, "mixB");
        assert_eq!(b.scale, NetworkScale::Big);
        assert!((k.alpha() - 0.025).abs() < 1e-9);
        // Baselines are normalized so every alpha shares one FP run.
        assert_eq!(b.alpha_tenths_pct, 50);
        assert_eq!(b, k.baseline().baseline());
    }
}
