//! The experiment matrix: a memoized store of simulation results keyed by
//! configuration, filled by parallel sweeps.

use std::collections::HashMap;

use memnet_core::{AddressMapping, NetworkScale, PolicyKind, RunReport, SimConfig};
use memnet_net::mech::RooParams;
use memnet_net::TopologyKind;
use memnet_policy::Mechanism;

use crate::settings::Settings;

/// A hashable identity for one simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Key {
    /// Workload name.
    pub workload: &'static str,
    /// Topology.
    pub topology: TopologyKind,
    /// Network scale.
    pub scale: NetworkScale,
    /// Policy.
    pub policy: PolicyKind,
    /// Mechanism.
    pub mechanism: Mechanism,
    /// α in tenths of a percent (25 = 2.5 %).
    pub alpha_tenths_pct: u32,
    /// ROO wakeup latency in ns (14 or 20).
    pub roo_wakeup_ns: u32,
    /// Address mapping.
    pub mapping: AddressMapping,
}

impl Key {
    /// A key for the main-study configuration space.
    pub fn main(
        workload: &'static str,
        topology: TopologyKind,
        scale: NetworkScale,
        policy: PolicyKind,
        mechanism: Mechanism,
        alpha: f64,
    ) -> Key {
        Key {
            workload,
            topology,
            scale,
            policy,
            mechanism,
            alpha_tenths_pct: (alpha * 1000.0).round() as u32,
            roo_wakeup_ns: 14,
            mapping: AddressMapping::Contiguous,
        }
    }

    /// The full-power baseline key matching this configuration. α and the
    /// ROO wakeup latency are normalized (full-power links have neither),
    /// so every managed variant shares one baseline run.
    pub fn baseline(&self) -> Key {
        Key {
            policy: PolicyKind::FullPower,
            mechanism: Mechanism::FullPower,
            alpha_tenths_pct: 50,
            roo_wakeup_ns: 14,
            ..self.clone()
        }
    }

    /// α as a fraction.
    pub fn alpha(&self) -> f64 {
        f64::from(self.alpha_tenths_pct) / 1000.0
    }

    fn to_config(&self, settings: &Settings) -> SimConfig {
        let roo = if self.roo_wakeup_ns == 20 { RooParams::slow() } else { RooParams::fast() };
        SimConfig::builder()
            .workload(self.workload)
            .topology(self.topology)
            .scale(self.scale)
            .policy(self.policy)
            .mechanism(self.mechanism)
            .alpha(self.alpha().max(0.001))
            .roo_params(roo)
            .mapping(self.mapping)
            .eval_period(settings.eval_period)
            .seed(settings.seed)
            .build()
            .expect("matrix keys are valid configurations")
    }
}

/// Memoized experiment results.
#[derive(Debug, Default)]
pub struct Matrix {
    reports: HashMap<Key, RunReport>,
}

impl Matrix {
    /// Creates an empty matrix.
    pub fn new() -> Self {
        Matrix::default()
    }

    /// Ensures every key has been simulated, sweeping the missing ones in
    /// parallel.
    pub fn ensure(&mut self, keys: &[Key], settings: &Settings) {
        let missing: Vec<Key> = {
            let mut seen = std::collections::HashSet::new();
            keys.iter()
                .filter(|k| !self.reports.contains_key(*k) && seen.insert((*k).clone()))
                .cloned()
                .collect()
        };
        if missing.is_empty() {
            return;
        }
        eprintln!(
            "[matrix] simulating {} configurations ({} threads, {} per run)...",
            missing.len(),
            settings.threads,
            settings.eval_period
        );
        let configs = missing.iter().map(|k| k.to_config(settings)).collect();
        let reports = memnet_core::sweep(configs, settings.threads);
        for (k, r) in missing.into_iter().zip(reports) {
            self.reports.insert(k, r);
        }
    }

    /// Fetches a previously ensured report.
    ///
    /// # Panics
    ///
    /// Panics if the key was never ensured.
    pub fn get(&self, key: &Key) -> &RunReport {
        self.reports
            .get(key)
            .unwrap_or_else(|| panic!("configuration not simulated: {key:?}"))
    }

    /// Number of simulated configurations.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if nothing has been simulated yet.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SimDuration;

    fn tiny_settings() -> Settings {
        Settings {
            eval_period: SimDuration::from_us(20),
            threads: 2,
            seed: 1,
        }
    }

    #[test]
    fn ensure_is_memoized() {
        let mut m = Matrix::new();
        let k = Key::main(
            "mixD",
            TopologyKind::DaisyChain,
            NetworkScale::Small,
            PolicyKind::FullPower,
            Mechanism::FullPower,
            0.05,
        );
        m.ensure(&[k.clone(), k.clone()], &tiny_settings());
        assert_eq!(m.len(), 1);
        let before = m.get(&k).completed_reads;
        m.ensure(&[k.clone()], &tiny_settings());
        assert_eq!(m.get(&k).completed_reads, before);
    }

    #[test]
    fn baseline_key_swaps_policy_only() {
        let k = Key::main(
            "mixB",
            TopologyKind::Star,
            NetworkScale::Big,
            PolicyKind::NetworkAware,
            Mechanism::VwlRoo,
            0.025,
        );
        let b = k.baseline();
        assert_eq!(b.policy, PolicyKind::FullPower);
        assert_eq!(b.mechanism, Mechanism::FullPower);
        assert_eq!(b.workload, "mixB");
        assert_eq!(b.scale, NetworkScale::Big);
        assert!((k.alpha() - 0.025).abs() < 1e-9);
        // Baselines are normalized so every alpha shares one FP run.
        assert_eq!(b.alpha_tenths_pct, 50);
        assert_eq!(b, k.baseline().baseline());
    }
}
