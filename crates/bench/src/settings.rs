//! Harness settings from the environment.

use std::path::PathBuf;
use std::str::FromStr;

use memnet_simcore::SimDuration;

use crate::shard::Shard;

/// Default location of the persistent result cache, relative to the
/// working directory.
pub const DEFAULT_CACHE_DIR: &str = "target/memnet-cache";

/// Batch-level experiment settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Simulated evaluation period per run.
    pub eval_period: SimDuration,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Extra replica seeds simulated per matrix cell alongside [`seed`].
    /// Empty (the default) means one run per cell. Cells with more than
    /// one seed are driven by the lockstep multi-seed engine, which
    /// shares per-configuration construction across replicas; each
    /// seed's result keeps its own cache fingerprint, exactly as if it
    /// had been swept alone.
    ///
    /// [`seed`]: Settings::seed
    pub seeds: Vec<u64>,
    /// Where the persistent result cache lives; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// Which sweep shard this process computes. Purely an attribution
    /// tag for the `[matrix]` log line — it never enters fingerprints,
    /// because every shard must share one cache with the unsharded run.
    pub shard: Shard,
    /// Retain per-epoch observability samples in each report. Part of
    /// the cache fingerprint: an `obs` section changes the serialized
    /// report, so observed and unobserved cells are distinct.
    pub obs: bool,
}

/// Reads `name` from the environment, warning to stderr (and falling back
/// to the default) when the value is present but unparsable.
fn env_parse<T: FromStr>(name: &str) -> Option<T> {
    let raw = std::env::var(name).ok()?;
    match raw.parse::<T>() {
        Ok(v) => Some(v),
        Err(_) => {
            memnet_simcore::memnet_warn!(
                "[settings] ignoring unparsable {name}={raw:?}; using default"
            );
            None
        }
    }
}

impl Settings {
    /// Reads settings from the environment, defaulting to a 1 ms
    /// evaluation period, all cores, a fixed seed, and a result cache in
    /// [`DEFAULT_CACHE_DIR`]:
    ///
    /// * `MEMNET_EVAL_US` — simulated microseconds per run.
    /// * `MEMNET_THREADS` — sweep worker threads (`0` is rejected with a
    ///   warning and falls back to all cores).
    /// * `MEMNET_SEED` — base RNG seed.
    /// * `MEMNET_SEEDS` — comma-separated extra replica seeds per cell
    ///   (e.g. `MEMNET_SEEDS=2,3,4`); cells with several seeds run
    ///   lockstep.
    /// * `MEMNET_CACHE_DIR` — cache directory.
    /// * `MEMNET_NO_CACHE` — set to `1`/`true` to disable the cache.
    ///
    /// Malformed values warn to stderr and fall back to the default.
    /// The sweep shard and the observability flag have no environment
    /// knob: they default to `0/1` and off, and are set by the `memnet
    /// sweep --shard/--obs` flags (or the serve sweep manifest).
    pub fn from_env() -> Self {
        let eval_us = env_parse::<u64>("MEMNET_EVAL_US").unwrap_or(1_000);
        let threads = match env_parse::<usize>("MEMNET_THREADS") {
            Some(0) => {
                memnet_simcore::memnet_warn!(
                    "[settings] MEMNET_THREADS=0 is invalid (a sweep needs at least \
                     one worker); using all cores"
                );
                None
            }
            other => other,
        }
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4));
        let seed = env_parse::<u64>("MEMNET_SEED").unwrap_or(0xC0FFEE);
        let seeds = match std::env::var("MEMNET_SEEDS") {
            Err(_) => Vec::new(),
            Ok(raw) => match parse_seed_list(&raw) {
                Ok(list) => list,
                Err(e) => {
                    memnet_simcore::memnet_warn!(
                        "[settings] ignoring unparsable MEMNET_SEEDS={raw:?}: {e}"
                    );
                    Vec::new()
                }
            },
        };
        let no_cache = match std::env::var("MEMNET_NO_CACHE") {
            Err(_) => false,
            Ok(raw) => match raw.to_ascii_lowercase().as_str() {
                "1" | "true" | "yes" => true,
                "0" | "false" | "no" | "" => false,
                _ => {
                    memnet_simcore::memnet_warn!(
                        "[settings] ignoring unparsable MEMNET_NO_CACHE={raw:?}; \
                         caching stays enabled"
                    );
                    false
                }
            },
        };
        let cache_dir = if no_cache {
            None
        } else {
            match std::env::var("MEMNET_CACHE_DIR") {
                Ok(dir) if dir.trim().is_empty() => {
                    memnet_simcore::memnet_warn!(
                        "[settings] ignoring empty MEMNET_CACHE_DIR; \
                         using {DEFAULT_CACHE_DIR:?}"
                    );
                    Some(PathBuf::from(DEFAULT_CACHE_DIR))
                }
                Ok(dir) => Some(PathBuf::from(dir)),
                Err(_) => Some(PathBuf::from(DEFAULT_CACHE_DIR)),
            }
        };
        Settings {
            eval_period: SimDuration::from_us(eval_us.max(1)),
            threads: threads.max(1),
            seed,
            seeds,
            cache_dir,
            shard: Shard::full(),
            obs: false,
        }
    }

    /// Every seed a matrix cell runs under: the base [`seed`] followed by
    /// the [`seeds`] extras, first occurrence wins on duplicates. Never
    /// empty.
    ///
    /// [`seed`]: Settings::seed
    /// [`seeds`]: Settings::seeds
    pub fn seed_list(&self) -> Vec<u64> {
        let mut list = vec![self.seed];
        for &s in &self.seeds {
            if !list.contains(&s) {
                list.push(s);
            }
        }
        list
    }
}

/// Parses a comma-separated seed list (as passed to `--seeds` or
/// `MEMNET_SEEDS`). Empty items are ignored; duplicates are rejected so
/// a typo cannot silently halve a sweep.
pub fn parse_seed_list(text: &str) -> Result<Vec<u64>, String> {
    let mut list = Vec::new();
    for item in text.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        let seed: u64 = item.parse().map_err(|_| format!("bad seed {item:?}"))?;
        if list.contains(&seed) {
            return Err(format!("duplicate seed {seed}"));
        }
        list.push(seed);
    }
    Ok(list)
}

impl Default for Settings {
    /// Defaults for in-process use (tests, library callers): 1 ms window,
    /// four threads, fixed seed, **no** persistent cache. The figure
    /// binaries use [`Settings::from_env`], which enables the cache.
    fn default() -> Self {
        Settings {
            eval_period: SimDuration::from_us(1_000),
            threads: 4,
            seed: 0xC0FFEE,
            seeds: Vec::new(),
            cache_dir: None,
            shard: Shard::full(),
            obs: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = Settings::default();
        assert_eq!(s.eval_period, SimDuration::from_ms(1));
        assert!(s.threads >= 1);
        assert_eq!(s.cache_dir, None);
        assert_eq!(s.shard, Shard::full());
        assert!(!s.obs);
        assert!(s.seeds.is_empty());
        assert_eq!(s.seed_list(), vec![s.seed]);
    }

    #[test]
    fn seed_lists_parse_dedupe_and_reject_typos() {
        assert_eq!(parse_seed_list("2,3,4").unwrap(), vec![2, 3, 4]);
        assert_eq!(parse_seed_list(" 7 , 8 ,").unwrap(), vec![7, 8]);
        assert_eq!(parse_seed_list("").unwrap(), Vec::<u64>::new());
        assert!(parse_seed_list("2,two").is_err());
        assert!(parse_seed_list("2,2").is_err(), "duplicates would silently halve a sweep");

        // The base seed leads and is never duplicated by the extras.
        let s = Settings { seed: 3, seeds: vec![5, 3, 9], ..Settings::default() };
        assert_eq!(s.seed_list(), vec![3, 5, 9]);
    }

    // Environment mutation is process-global, so everything env-related
    // lives in one test.
    #[test]
    fn from_env_parses_overrides_and_survives_garbage() {
        std::env::set_var("MEMNET_EVAL_US", "250");
        std::env::set_var("MEMNET_THREADS", "3");
        std::env::set_var("MEMNET_SEED", "42");
        std::env::set_var("MEMNET_SEEDS", "43,44");
        std::env::set_var("MEMNET_CACHE_DIR", "/tmp/memnet-test-cache");
        std::env::remove_var("MEMNET_NO_CACHE");
        let s = Settings::from_env();
        assert_eq!(s.eval_period, SimDuration::from_us(250));
        assert_eq!(s.threads, 3);
        assert_eq!(s.seed, 42);
        assert_eq!(s.seeds, vec![43, 44]);
        assert_eq!(s.seed_list(), vec![42, 43, 44]);
        assert_eq!(s.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/memnet-test-cache")));

        // MEMNET_THREADS=0 parses but is meaningless: it must warn and
        // fall back to the all-cores default, never produce 0 workers.
        std::env::set_var("MEMNET_THREADS", "0");
        let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        assert_eq!(Settings::from_env().threads, auto);

        // Malformed values warn (to stderr) and fall back to defaults.
        std::env::set_var("MEMNET_EVAL_US", "a lot");
        std::env::set_var("MEMNET_THREADS", "-2");
        std::env::set_var("MEMNET_SEED", "0x12"); // hex not supported
        std::env::set_var("MEMNET_SEEDS", "1,1");
        std::env::set_var("MEMNET_NO_CACHE", "maybe");
        std::env::remove_var("MEMNET_CACHE_DIR");
        let s = Settings::from_env();
        assert_eq!(s.eval_period, SimDuration::from_us(1_000));
        assert_eq!(s.seed, 0xC0FFEE);
        assert!(s.seeds.is_empty(), "duplicate MEMNET_SEEDS warns and falls back");
        assert_eq!(s.cache_dir.as_deref(), Some(std::path::Path::new(DEFAULT_CACHE_DIR)));

        // MEMNET_NO_CACHE=1 disables the cache entirely.
        std::env::set_var("MEMNET_NO_CACHE", "1");
        assert_eq!(Settings::from_env().cache_dir, None);

        for var in [
            "MEMNET_EVAL_US",
            "MEMNET_THREADS",
            "MEMNET_SEED",
            "MEMNET_SEEDS",
            "MEMNET_CACHE_DIR",
            "MEMNET_NO_CACHE",
        ] {
            std::env::remove_var(var);
        }
    }
}
