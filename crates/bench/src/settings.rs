//! Harness settings from the environment.

use memnet_simcore::SimDuration;

/// Batch-level experiment settings.
#[derive(Debug, Clone, Copy)]
pub struct Settings {
    /// Simulated evaluation period per run.
    pub eval_period: SimDuration,
    /// Worker threads for sweeps.
    pub threads: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Settings {
    /// Reads settings from `MEMNET_EVAL_US` / `MEMNET_THREADS` /
    /// `MEMNET_SEED`, defaulting to 1 ms, all cores, and a fixed seed.
    pub fn from_env() -> Self {
        let eval_us = std::env::var("MEMNET_EVAL_US")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(1_000);
        let threads = std::env::var("MEMNET_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
            });
        let seed = std::env::var("MEMNET_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0xC0FFEE);
        Settings {
            eval_period: SimDuration::from_us(eval_us.max(1)),
            threads: threads.max(1),
            seed,
        }
    }
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            eval_period: SimDuration::from_us(1_000),
            threads: 4,
            seed: 0xC0FFEE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let s = Settings::default();
        assert_eq!(s.eval_period, SimDuration::from_ms(1));
        assert!(s.threads >= 1);
    }
}
