//! Persistent, versioned on-disk result cache.
//!
//! Every figure/table/ablation binary simulates through [`crate::Matrix`],
//! which consults this cache before sweeping. Cached results live as
//! JSON-lines files (`*.jsonl`) in the cache directory; each line is one
//! entry:
//!
//! ```json
//! {"v":2,"fp":"v2|eval_ps=...|seed=...|wl=mixD|...","report":{...}}
//! ```
//!
//! `v` is [`CACHE_SCHEMA_VERSION`]; lines with any other version (or that
//! fail to parse) are skipped, so stale caches degrade to misses rather
//! than errors. `fp` is the full configuration fingerprint produced by
//! [`crate::Key::fingerprint`], which folds in the schema version, the
//! run-affecting [`crate::Settings`] fields (evaluation period, seed) and
//! every `Key` field — any change to either invalidates the entry.
//!
//! Writes are atomic and collision-free under concurrent figure binaries:
//! each [`DiskCache::store`] call writes a fresh uniquely named temp file
//! in the cache directory and `rename(2)`s it into place, so readers only
//! ever see complete files and two processes never clobber each other's
//! entries.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use memnet_core::RunReport;
use serde::{json, Deserialize, Serialize};

/// Bump when the serialized [`RunReport`] layout (or the fingerprint
/// format) changes; old cache files are then ignored wholesale.
/// History: 1 = initial layout; 2 = `RunReport` gained the `audit` field;
/// 3 = `RunReport` gained the `faults` section (plus per-link
/// retransmission telemetry) and the fingerprint a `faults=` field;
/// 4 = `RunReport` gained the `events_processed` counter;
/// 5 = `RunReport` gained the optional `obs` time-series section;
/// 6 = the fingerprint gained the `src=` traffic-source field (request-
/// trace digests distinguish replayed results);
/// 7 = the fingerprint gained the `energy=` backend field (analytical
/// and IDD pricings of one configuration are distinct results);
/// 8 = the fingerprint gained the `calib=` calibration-provenance field
/// (results priced by different fitted IDD models are distinct);
/// 9 = the fingerprint gained the `obs=` field (an observed run carries
/// the `obs` report section, so it is a distinct result);
/// 10 = multi-seed sweeps land: cells may be driven by the lockstep
/// multi-seed engine. The per-seed fingerprint format is unchanged —
/// lockstep replicas are bit-identical to solo runs — but the bump
/// draws a clean line so any result produced by a pre-lockstep build
/// re-simulates once under the new engine.
pub const CACHE_SCHEMA_VERSION: u32 = 10;

/// One cache line on disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Entry {
    /// Schema version, [`CACHE_SCHEMA_VERSION`] at write time.
    v: u32,
    /// Configuration fingerprint.
    fp: String,
    /// The cached result.
    report: RunReport,
}

/// An open cache directory with all valid entries loaded.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
    entries: HashMap<String, RunReport>,
}

/// Per-process counter making store filenames unique even when two stores
/// land in the same nanosecond.
static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskCache {
    /// Opens (creating if needed) the cache directory and loads every
    /// current-schema entry from its `*.jsonl` files.
    pub fn open(dir: &Path) -> std::io::Result<DiskCache> {
        fs::create_dir_all(dir)?;
        let mut entries = HashMap::new();
        let mut skipped = 0usize;
        let mut names: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .collect();
        // Deterministic precedence: later files win on fingerprint ties.
        names.sort();
        for path in names {
            let text = match fs::read_to_string(&path) {
                Ok(t) => t,
                Err(_) => {
                    skipped += 1;
                    continue;
                }
            };
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match json::parse(line).and_then(|v| Entry::deserialize(&v)) {
                    Ok(e) if e.v == CACHE_SCHEMA_VERSION => {
                        entries.insert(e.fp, e.report);
                    }
                    _ => skipped += 1,
                }
            }
        }
        if skipped > 0 {
            memnet_simcore::memnet_warn!(
                "[cache] skipped {skipped} stale or unreadable entries in {}",
                dir.display()
            );
        }
        Ok(DiskCache { dir: dir.to_path_buf(), entries })
    }

    /// The directory this cache was opened on.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of loaded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a result by fingerprint.
    pub fn get(&self, fp: &str) -> Option<&RunReport> {
        self.entries.get(fp)
    }

    /// Persists freshly simulated results, returning the file written
    /// (`None` when `fresh` is empty).
    ///
    /// The entries are retained in memory so subsequent `get`s hit even
    /// when the disk write fails — a full or read-only cache directory
    /// must never cost the caller its freshly simulated reports, only
    /// the persistence. On failure the temp file is cleaned up and the
    /// error returned for the caller to log; nothing is lost but the
    /// next process's warm start.
    ///
    /// The write is atomic: a unique temp file in the cache directory is
    /// renamed into place, so concurrent figure binaries can store
    /// simultaneously without corrupting or overwriting one another.
    pub fn store(
        &mut self,
        fresh: impl IntoIterator<Item = (String, RunReport)>,
    ) -> std::io::Result<Option<PathBuf>> {
        let mut body = String::new();
        let mut batch = Vec::new();
        for (fp, report) in fresh {
            let entry = Entry { v: CACHE_SCHEMA_VERSION, fp: fp.clone(), report };
            body.push_str(&json::to_string(&entry));
            body.push('\n');
            batch.push((fp, entry.report));
        }
        if batch.is_empty() {
            return Ok(None);
        }
        let result = self.write_batch(&body);
        // Memory retention is unconditional: the reports exist whether or
        // not the disk accepted them.
        for (fp, report) in batch {
            self.entries.insert(fp, report);
        }
        result.map(Some)
    }

    /// The disk half of [`Self::store`]: writes `body` to a unique temp
    /// file and renames it into place, removing the temp file on any
    /// failure (a partial write on a full disk must not leave `.tmp`
    /// litter for `open` to skip forever after).
    fn write_batch(&self, body: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let unique = format!(
            "{}-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        );
        let tmp = self.dir.join(format!(".store-{unique}.tmp"));
        let dest = self.dir.join(format!("results-{unique}.jsonl"));
        let written = (|| {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &dest)
        })();
        if let Err(e) = written {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Key, Settings};
    use memnet_core::{NetworkScale, PolicyKind, SimConfig};
    use memnet_net::TopologyKind;
    use memnet_policy::Mechanism;
    use memnet_simcore::SimDuration;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "memnet-cache-test-{tag}-{}-{}",
            std::process::id(),
            STORE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_report() -> RunReport {
        SimConfig::builder()
            .workload("mixD")
            .eval_period(SimDuration::from_us(20))
            .seed(7)
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn report_round_trips_byte_identical() {
        let report = tiny_report();
        let once = json::to_string(&report);
        let back = RunReport::deserialize(&json::parse(&once).unwrap()).unwrap();
        // Re-serializing the deserialized report must reproduce the exact
        // bytes: float formatting is shortest-round-trip, so equality here
        // implies bit-identical numeric payloads.
        assert_eq!(json::to_string(&back), once);
        assert_eq!(back.workload, report.workload);
        assert_eq!(back.completed_reads, report.completed_reads);
        assert_eq!(back.power.watts().to_bits(), report.power.watts().to_bits());
    }

    #[test]
    fn store_then_reopen_recovers_entries() {
        let dir = unique_dir("reopen");
        let report = tiny_report();
        let mut cache = DiskCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let written =
            cache.store([("fp-a".to_owned(), report.clone())]).unwrap().expect("one file");
        assert!(written.exists());
        assert_eq!(cache.len(), 1);

        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.len(), 1);
        let cached = reopened.get("fp-a").expect("entry survives reopen");
        assert_eq!(json::to_string(cached), json::to_string(&report));
        assert!(reopened.get("fp-b").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_on_an_unusable_cache_dir_keeps_results_and_leaves_no_litter() {
        let dir = unique_dir("store-fail");
        let mut cache = DiskCache::open(&dir).unwrap();
        // Make the directory unusable after opening — the moral
        // equivalent of a read-only MEMNET_CACHE_DIR or a disk that
        // filled up mid-sweep (a permissions-based probe cannot work
        // here: tests may run as root, which ignores file modes).
        fs::remove_dir_all(&dir).unwrap();
        fs::write(&dir, b"a file where the cache dir should be").unwrap();

        let report = tiny_report();
        let err = cache.store([("fp-a".to_owned(), report.clone())]);
        assert!(err.is_err(), "an unusable cache dir must surface as an error, not a panic");
        // The freshly simulated result survives in memory: persistence
        // failure only costs the next process its warm start.
        let kept = cache.get("fp-a").expect("failed store keeps the result in memory");
        assert_eq!(json::to_string(kept), json::to_string(&report));

        // A later successful store proceeds normally once the path is a
        // directory again, and no temp-file litter was left behind.
        fs::remove_file(&dir).unwrap();
        cache.store([("fp-b".to_owned(), tiny_report())]).unwrap();
        let litter: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(litter.is_empty(), "failed stores must clean up temp files: {litter:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_schema_version_is_skipped() {
        let dir = unique_dir("schema");
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.store([("fp-a".to_owned(), tiny_report())]).unwrap();

        // Rewrite the stored file claiming a future schema version, plus
        // one line of garbage: both must be ignored on reopen.
        let file = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "jsonl"))
            .unwrap();
        let doctored = fs::read_to_string(&file)
            .unwrap()
            .replace(&format!("{{\"v\":{CACHE_SCHEMA_VERSION},"), "{\"v\":999,");
        fs::write(&file, format!("{doctored}not json at all\n")).unwrap();

        let reopened = DiskCache::open(&dir).unwrap();
        assert!(reopened.is_empty(), "future-version entries must not load");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_tracks_settings_and_schema() {
        let k = Key::main(
            "mixD",
            TopologyKind::DaisyChain,
            NetworkScale::Small,
            PolicyKind::NetworkAware,
            Mechanism::VwlRoo,
            0.05,
        );
        let s = Settings {
            eval_period: SimDuration::from_us(20),
            threads: 2,
            seed: 1,
            ..Settings::default()
        };
        let fp = k.fingerprint(&s);
        assert!(fp.starts_with(&format!("v{CACHE_SCHEMA_VERSION}|")));
        assert!(fp.contains("wl=mixD"));

        // A different seed, eval period, obs flag, or key must change the
        // fingerprint; the thread count and shard tag must not (neither
        // can affect results).
        let mut other = s.clone();
        other.seed = 2;
        assert_ne!(k.fingerprint(&other), fp);
        other = s.clone();
        other.eval_period = SimDuration::from_us(21);
        assert_ne!(k.fingerprint(&other), fp);
        other = s.clone();
        other.obs = true;
        assert_ne!(k.fingerprint(&other), fp);
        other = s.clone();
        other.threads = 9;
        other.shard = crate::shard::Shard { index: 1, of: 3 };
        assert_eq!(k.fingerprint(&other), fp);
        let mut k2 = k.clone();
        k2.alpha_tenths_pct += 1;
        assert_ne!(k2.fingerprint(&s), fp);
    }
}
