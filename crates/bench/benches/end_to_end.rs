//! End-to-end simulator throughput: one short run per policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memnet_core::{NetworkScale, PolicyKind, SimConfig};
use memnet_net::TopologyKind;
use memnet_policy::Mechanism;
use memnet_simcore::SimDuration;
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_50us_mixD_star");
    group.sample_size(10);
    for (label, policy, mech) in [
        ("full_power", PolicyKind::FullPower, Mechanism::FullPower),
        ("unaware_vwl_roo", PolicyKind::NetworkUnaware, Mechanism::VwlRoo),
        ("aware_vwl_roo", PolicyKind::NetworkAware, Mechanism::VwlRoo),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| {
                let report = SimConfig::builder()
                    .workload("mixD")
                    .topology(TopologyKind::Star)
                    .scale(NetworkScale::Big)
                    .policy(policy)
                    .mechanism(mech)
                    .eval_period(SimDuration::from_us(50))
                    .build()
                    .expect("valid configuration")
                    .run();
                black_box(report.completed_reads)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);
