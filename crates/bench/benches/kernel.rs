//! Microbenchmarks of the simulation kernel: event queue, RNG, delay
//! monitors.

use criterion::{criterion_group, criterion_main, Criterion};
use memnet_net::mech::BwMode;
use memnet_policy::DelayMonitor;
use memnet_simcore::{EventQueue, SimTime, SplitMix64};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = SplitMix64::new(1);
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1024);
            for i in 0..1_000u64 {
                q.push(SimTime::from_ps(rng.next_below(1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        });
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("splitmix64_exp_1k", |b| {
        let mut rng = SplitMix64::new(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1_000 {
                acc += rng.next_exp(4_000.0);
            }
            black_box(acc)
        });
    });
}

fn bench_delay_monitor(c: &mut Criterion) {
    c.bench_function("delay_monitor_record_1k", |b| {
        b.iter(|| {
            let mut m = DelayMonitor::new(BwMode::FULL_VWL);
            for i in 0..1_000u64 {
                m.record(SimTime::from_ps(i * 3_000), 5, i % 3 != 0);
            }
            black_box(m.read_latency_sum())
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_rng, bench_delay_monitor);
criterion_main!(benches);
