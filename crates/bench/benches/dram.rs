//! DRAM vault timing-model throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use memnet_dram::{DramParams, Vault, VaultOp};
use memnet_simcore::SimTime;
use std::hint::black_box;

fn bench_vault_stream(c: &mut Criterion) {
    let params = DramParams::hmc_gen2();
    c.bench_function("vault_stream_512_ops", |b| {
        b.iter(|| {
            let mut vault = Vault::new(&params, SimTime::ZERO);
            let mut now = SimTime::ZERO;
            let mut issued = 0u64;
            for i in 0..512u64 {
                while !vault.has_space() {
                    now = vault.next_issue_time(now).expect("ops queued");
                    issued += vault.advance(now).len() as u64;
                }
                let bank = (i % params.banks_per_vault as u64) as usize;
                let op = if i % 3 == 0 {
                    VaultOp::write(i, bank, now)
                } else {
                    VaultOp::read(i, bank, now)
                };
                vault.enqueue(op).expect("space was checked");
            }
            while vault.occupancy() > 0 {
                now = vault.next_issue_time(now).expect("ops queued");
                issued += vault.advance(now).len() as u64;
            }
            black_box(issued)
        });
    });
}

criterion_group!(benches, bench_vault_stream);
criterion_main!(benches);
