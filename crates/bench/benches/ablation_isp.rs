//! Ablation bench: cost of the ISP epoch-boundary computation as its
//! iteration cap varies (the paper caps at 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use memnet_net::{LinkId, ModuleId, Topology, TopologyKind};
use memnet_policy::{Mechanism, PolicyConfig, PolicyKind, PowerController};
use memnet_simcore::{SimDuration, SimTime};
use std::hint::black_box;

/// Builds a 34-module controller with one epoch of synthetic telemetry.
fn primed_controller(iterations: usize) -> PowerController {
    let topo = std::sync::Arc::new(Topology::build(TopologyKind::TernaryTree, 34));
    let mut cfg = PolicyConfig::new(PolicyKind::NetworkAware, Mechanism::VwlRoo, 0.05);
    cfg.isp_iterations = iterations;
    let mut c = PowerController::new(topo.clone(), cfg, SimDuration::from_ns(30));
    for m in topo.modules() {
        for _ in 0..(200 / (m.0 + 1)) {
            c.on_dram_read(ModuleId(m.0));
        }
    }
    for l in topo.links() {
        for i in 0..(400 / (l.0 + 1)) as u64 {
            let t = SimTime::from_ps(i * 250_000);
            c.on_packet_arrival(l, t, true);
            c.on_packet_departure(l, t, t, t + SimDuration::from_ps(3_200), 5, true);
            c.on_idle_interval(LinkId(l.0), SimDuration::from_ns(200));
        }
    }
    c
}

fn bench_isp(c: &mut Criterion) {
    let mut group = c.benchmark_group("isp_epoch_end_34_modules");
    for iterations in [1usize, 2, 3, 5] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, &iters| {
                b.iter_batched(
                    || primed_controller(iters),
                    |mut ctrl| {
                        black_box(ctrl.epoch_end(SimTime::from_ps(100_000_000)));
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_isp);
criterion_main!(benches);
