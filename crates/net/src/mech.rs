//! Circuit-level link power-control mechanisms and their mode tables.
//!
//! Three mechanisms from the paper (§IV), each trading power for bandwidth
//! or availability:
//!
//! - **VWL** (variable-width links): 16/8/4/1 active lanes; power scales as
//!   `(l+1)/17` (the I/O clock costs about one lane), bandwidth as `l/16`;
//!   1 µs to change width.
//! - **DVFS**: four voltage/frequency modes giving 100/80/50/14 % bandwidth
//!   for 0/30/65/92 % power reduction; scaling the link clock also slows
//!   the SERDES, adding serialization latency; 3 µs to re-scale (the link
//!   stays connected by scaling one 8-lane bundle at a time).
//! - **ROO** (rapid on/off): turn the link off after an idleness threshold
//!   (32/128/512/2048 ns); off state burns 1 % power; waking costs 14 ns
//!   (20 ns in the sensitivity study).

use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Number of active lanes on a variable-width link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VwlWidth {
    /// All 16 lanes (full power / full bandwidth).
    W16,
    /// 8 lanes.
    W8,
    /// 4 lanes.
    W4,
    /// 1 lane.
    W1,
}

impl VwlWidth {
    /// All widths, highest bandwidth first.
    pub const ALL: [VwlWidth; 4] = [VwlWidth::W16, VwlWidth::W8, VwlWidth::W4, VwlWidth::W1];

    /// Number of active lanes.
    pub const fn lanes(self) -> u32 {
        match self {
            VwlWidth::W16 => 16,
            VwlWidth::W8 => 8,
            VwlWidth::W4 => 4,
            VwlWidth::W1 => 1,
        }
    }

    /// Link power as a fraction of full power: `(l + 1) / 17`, the `+1`
    /// accounting for the I/O clock lane.
    pub fn power_fraction(self) -> f64 {
        f64::from(self.lanes() + 1) / 17.0
    }

    /// Bandwidth as a fraction of full bandwidth.
    pub fn bandwidth_fraction(self) -> f64 {
        f64::from(self.lanes()) / 16.0
    }
}

/// A DVFS operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DvfsLevel {
    /// 100 % bandwidth, full power.
    P100,
    /// 80 % bandwidth, 30 % power reduction.
    P80,
    /// 50 % bandwidth, 65 % power reduction.
    P50,
    /// 14 % bandwidth (one 8-lane bundle at Vmin), 92 % power reduction.
    P14,
}

impl DvfsLevel {
    /// All levels, highest bandwidth first.
    pub const ALL: [DvfsLevel; 4] =
        [DvfsLevel::P100, DvfsLevel::P80, DvfsLevel::P50, DvfsLevel::P14];

    /// Bandwidth as a fraction of full bandwidth.
    pub fn bandwidth_fraction(self) -> f64 {
        match self {
            DvfsLevel::P100 => 1.0,
            DvfsLevel::P80 => 0.80,
            DvfsLevel::P50 => 0.50,
            DvfsLevel::P14 => 0.14,
        }
    }

    /// Link power as a fraction of full power.
    pub fn power_fraction(self) -> f64 {
        match self {
            DvfsLevel::P100 => 1.0,
            DvfsLevel::P80 => 0.70,
            DvfsLevel::P50 => 0.35,
            DvfsLevel::P14 => 0.08,
        }
    }
}

/// The bandwidth-scaling half of a link power mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BwMode {
    /// Variable-width operation.
    Vwl(VwlWidth),
    /// DVFS operation.
    Dvfs(DvfsLevel),
}

/// Number of distinct [`BwMode`] values (used to size accounting tables).
pub const N_BW_MODES: usize = 8;

/// Nominal SERDES latency of a full-rate link.
pub const BASE_SERDES_LATENCY: SimDuration = SimDuration::from_ps(3_200);
/// Serialization time of one 16 B flit on a full-rate 16-lane link.
pub const BASE_FLIT_TIME: SimDuration = SimDuration::from_ps(640);

impl BwMode {
    /// Full-bandwidth VWL mode (the full-power mode of VWL/ROO links).
    pub const FULL_VWL: BwMode = BwMode::Vwl(VwlWidth::W16);
    /// Full-bandwidth DVFS mode.
    pub const FULL_DVFS: BwMode = BwMode::Dvfs(DvfsLevel::P100);

    /// Every bandwidth mode, in [`BwMode::index`] order.
    pub const ALL: [BwMode; N_BW_MODES] = [
        BwMode::Vwl(VwlWidth::W16),
        BwMode::Vwl(VwlWidth::W8),
        BwMode::Vwl(VwlWidth::W4),
        BwMode::Vwl(VwlWidth::W1),
        BwMode::Dvfs(DvfsLevel::P100),
        BwMode::Dvfs(DvfsLevel::P80),
        BwMode::Dvfs(DvfsLevel::P50),
        BwMode::Dvfs(DvfsLevel::P14),
    ];

    /// A stable dense index in `0..N_BW_MODES` for accounting tables.
    pub fn index(self) -> usize {
        match self {
            BwMode::Vwl(VwlWidth::W16) => 0,
            BwMode::Vwl(VwlWidth::W8) => 1,
            BwMode::Vwl(VwlWidth::W4) => 2,
            BwMode::Vwl(VwlWidth::W1) => 3,
            BwMode::Dvfs(DvfsLevel::P100) => 4,
            BwMode::Dvfs(DvfsLevel::P80) => 5,
            BwMode::Dvfs(DvfsLevel::P50) => 6,
            BwMode::Dvfs(DvfsLevel::P14) => 7,
        }
    }

    /// Inverse of [`BwMode::index`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= N_BW_MODES`.
    pub fn from_index(i: usize) -> BwMode {
        match i {
            0 => BwMode::Vwl(VwlWidth::W16),
            1 => BwMode::Vwl(VwlWidth::W8),
            2 => BwMode::Vwl(VwlWidth::W4),
            3 => BwMode::Vwl(VwlWidth::W1),
            4 => BwMode::Dvfs(DvfsLevel::P100),
            5 => BwMode::Dvfs(DvfsLevel::P80),
            6 => BwMode::Dvfs(DvfsLevel::P50),
            7 => BwMode::Dvfs(DvfsLevel::P14),
            _ => panic!("bw mode index {i} out of range"),
        }
    }

    /// Bandwidth as a fraction of full bandwidth.
    pub fn bandwidth_fraction(self) -> f64 {
        match self {
            BwMode::Vwl(w) => w.bandwidth_fraction(),
            BwMode::Dvfs(l) => l.bandwidth_fraction(),
        }
    }

    /// On-state link power as a fraction of full power.
    pub fn power_fraction(self) -> f64 {
        match self {
            BwMode::Vwl(w) => w.power_fraction(),
            BwMode::Dvfs(l) => l.power_fraction(),
        }
    }

    /// Time to serialize one flit in this mode.
    ///
    /// Served from a table computed once per process: this is called per
    /// packet per delay monitor, and the float division showed up in the
    /// event-loop profile. The table holds exactly the values the direct
    /// computation produces.
    pub fn flit_time(self) -> SimDuration {
        static TABLE: std::sync::LazyLock<[SimDuration; N_BW_MODES]> =
            std::sync::LazyLock::new(|| {
                std::array::from_fn(|i| {
                    let m = BwMode::from_index(i);
                    BASE_FLIT_TIME.mul_f64(1.0 / m.bandwidth_fraction())
                })
            });
        TABLE[self.index()]
    }

    /// SERDES latency in this mode. VWL keeps the I/O clock at full rate so
    /// the SERDES pipeline depth is unchanged; DVFS slows the clock and the
    /// SERDES latency stretches proportionally.
    pub fn serdes_latency(self) -> SimDuration {
        static TABLE: std::sync::LazyLock<[SimDuration; N_BW_MODES]> =
            std::sync::LazyLock::new(|| {
                std::array::from_fn(|i| match BwMode::from_index(i) {
                    BwMode::Vwl(_) => BASE_SERDES_LATENCY,
                    BwMode::Dvfs(l) => BASE_SERDES_LATENCY.mul_f64(1.0 / l.bandwidth_fraction()),
                })
            });
        TABLE[self.index()]
    }

    /// Extra SERDES latency relative to full rate (zero for VWL modes).
    pub fn serdes_overhead(self) -> SimDuration {
        self.serdes_latency().saturating_sub(BASE_SERDES_LATENCY)
    }

    /// Latency to reconfigure a link into/out of this family of modes:
    /// 1 µs to change VWL width, 3 µs total for a DVFS transition (halve
    /// width, re-scale each 8-lane bundle, restore width).
    pub fn transition_latency(self) -> SimDuration {
        match self {
            BwMode::Vwl(_) => SimDuration::from_us(1),
            BwMode::Dvfs(_) => SimDuration::from_us(3),
        }
    }

    /// True if this is a full-bandwidth mode.
    pub fn is_full_bandwidth(self) -> bool {
        matches!(self, BwMode::Vwl(VwlWidth::W16) | BwMode::Dvfs(DvfsLevel::P100))
    }

    /// A short stable label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            BwMode::Vwl(VwlWidth::W16) => "vwl16",
            BwMode::Vwl(VwlWidth::W8) => "vwl8",
            BwMode::Vwl(VwlWidth::W4) => "vwl4",
            BwMode::Vwl(VwlWidth::W1) => "vwl1",
            BwMode::Dvfs(DvfsLevel::P100) => "dvfs100",
            BwMode::Dvfs(DvfsLevel::P80) => "dvfs80",
            BwMode::Dvfs(DvfsLevel::P50) => "dvfs50",
            BwMode::Dvfs(DvfsLevel::P14) => "dvfs14",
        }
    }
}

/// ROO idleness thresholds: the link turns off after this much idle time.
///
/// The 2048 ns threshold is the "full power" ROO mode — an ROO link always
/// turns off eventually.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RooThreshold {
    /// Turn off after 32 ns idle (most aggressive).
    T32,
    /// Turn off after 128 ns idle.
    T128,
    /// Turn off after 512 ns idle.
    T512,
    /// Turn off after 2048 ns idle (the ROO "full power" mode).
    T2048,
}

impl RooThreshold {
    /// All thresholds, most aggressive first.
    pub const ALL: [RooThreshold; 4] =
        [RooThreshold::T32, RooThreshold::T128, RooThreshold::T512, RooThreshold::T2048];

    /// The idleness threshold duration.
    pub fn threshold(self) -> SimDuration {
        match self {
            RooThreshold::T32 => SimDuration::from_ns(32),
            RooThreshold::T128 => SimDuration::from_ns(128),
            RooThreshold::T512 => SimDuration::from_ns(512),
            RooThreshold::T2048 => SimDuration::from_ns(2048),
        }
    }

    /// A dense index in `0..4`, most aggressive first.
    pub fn index(self) -> usize {
        match self {
            RooThreshold::T32 => 0,
            RooThreshold::T128 => 1,
            RooThreshold::T512 => 2,
            RooThreshold::T2048 => 3,
        }
    }

    /// A short stable label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            RooThreshold::T32 => "t32",
            RooThreshold::T128 => "t128",
            RooThreshold::T512 => "t512",
            RooThreshold::T2048 => "t2048",
        }
    }
}

/// Physical ROO parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooParams {
    /// Time from wake initiation until the link can transmit.
    pub wakeup_latency: SimDuration,
    /// Off-state power as a fraction of full link power.
    pub off_power_fraction: f64,
}

impl RooParams {
    /// The paper's primary configuration: 14 ns wakeup, 1 % off power.
    pub fn fast() -> Self {
        RooParams { wakeup_latency: SimDuration::from_ns(14), off_power_fraction: 0.01 }
    }

    /// The sensitivity-study configuration: 20 ns wakeup, 1 % off power.
    pub fn slow() -> Self {
        RooParams { wakeup_latency: SimDuration::from_ns(20), off_power_fraction: 0.01 }
    }
}

impl Default for RooParams {
    fn default() -> Self {
        RooParams::fast()
    }
}

/// A complete link power mode: a bandwidth mode plus an optional ROO
/// idleness threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LinkPowerMode {
    /// Bandwidth-scaling component.
    pub bw: BwMode,
    /// ROO component; `None` means the link never turns off.
    pub roo: Option<RooThreshold>,
}

impl LinkPowerMode {
    /// Full-power mode for non-ROO mechanisms.
    pub const fn full_vwl() -> Self {
        LinkPowerMode { bw: BwMode::FULL_VWL, roo: None }
    }
}

/// Which power-control mechanism a network's links are built with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mechanism {
    /// No power control: links always on at full bandwidth.
    FullPower,
    /// Variable-width links.
    Vwl,
    /// Rapid on/off links.
    Roo,
    /// Variable width combined with rapid on/off.
    VwlRoo,
    /// DVFS links.
    Dvfs,
    /// DVFS combined with rapid on/off.
    DvfsRoo,
}

impl Mechanism {
    /// The mechanisms evaluated in the main study (Figures 11–17).
    pub const MAIN: [Mechanism; 3] = [Mechanism::Vwl, Mechanism::Roo, Mechanism::VwlRoo];
    /// The mechanisms in the sensitivity study (Figure 18).
    pub const SENSITIVITY: [Mechanism; 3] = [Mechanism::Dvfs, Mechanism::Roo, Mechanism::DvfsRoo];

    /// Candidate bandwidth modes, highest power first.
    pub fn bw_modes(self) -> &'static [BwMode] {
        const VWL: [BwMode; 4] = [
            BwMode::Vwl(VwlWidth::W16),
            BwMode::Vwl(VwlWidth::W8),
            BwMode::Vwl(VwlWidth::W4),
            BwMode::Vwl(VwlWidth::W1),
        ];
        const DVFS: [BwMode; 4] = [
            BwMode::Dvfs(DvfsLevel::P100),
            BwMode::Dvfs(DvfsLevel::P80),
            BwMode::Dvfs(DvfsLevel::P50),
            BwMode::Dvfs(DvfsLevel::P14),
        ];
        const FULL_ONLY_VWL: [BwMode; 1] = [BwMode::Vwl(VwlWidth::W16)];
        match self {
            Mechanism::FullPower | Mechanism::Roo => &FULL_ONLY_VWL,
            Mechanism::Vwl | Mechanism::VwlRoo => &VWL,
            Mechanism::Dvfs | Mechanism::DvfsRoo => &DVFS,
        }
    }

    /// Candidate ROO thresholds, or `None` for mechanisms whose links never
    /// turn off.
    pub fn roo_thresholds(self) -> Option<&'static [RooThreshold]> {
        match self {
            Mechanism::FullPower | Mechanism::Vwl | Mechanism::Dvfs => None,
            Mechanism::Roo | Mechanism::VwlRoo | Mechanism::DvfsRoo => Some(&RooThreshold::ALL),
        }
    }

    /// True if links can turn off under this mechanism.
    pub fn uses_roo(self) -> bool {
        self.roo_thresholds().is_some()
    }

    /// True if links can scale bandwidth under this mechanism.
    pub fn uses_bw_scaling(self) -> bool {
        self.bw_modes().len() > 1
    }

    /// The highest-power mode of this mechanism (the state links start in).
    pub fn full_mode(self) -> LinkPowerMode {
        LinkPowerMode {
            bw: self.bw_modes()[0],
            roo: self.uses_roo().then_some(RooThreshold::T2048),
        }
    }

    /// Every candidate mode (the cross product of bandwidth modes and ROO
    /// thresholds where applicable).
    pub fn candidate_modes(self) -> Vec<LinkPowerMode> {
        let mut out = Vec::new();
        match self.roo_thresholds() {
            None => {
                for &bw in self.bw_modes() {
                    out.push(LinkPowerMode { bw, roo: None });
                }
            }
            Some(thresholds) => {
                for &bw in self.bw_modes() {
                    for &thr in thresholds {
                        out.push(LinkPowerMode { bw, roo: Some(thr) });
                    }
                }
            }
        }
        out
    }

    /// True if `mode` is a legal operating point for this mechanism:
    /// its bandwidth mode is one of [`Mechanism::bw_modes`] and its ROO
    /// threshold presence matches [`Mechanism::uses_roo`]. Equivalent to
    /// membership in [`Mechanism::candidate_modes`] but allocation-free;
    /// the audit layer uses it to validate every mode transition.
    pub fn allows(self, mode: LinkPowerMode) -> bool {
        self.bw_modes().contains(&mode.bw)
            && match self.roo_thresholds() {
                None => mode.roo.is_none(),
                Some(thresholds) => mode.roo.is_some_and(|t| thresholds.contains(&t)),
            }
    }

    /// Report label ("FP", "VWL", "ROO", ...).
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::FullPower => "FP",
            Mechanism::Vwl => "VWL",
            Mechanism::Roo => "ROO",
            Mechanism::VwlRoo => "VWL+ROO",
            Mechanism::Dvfs => "DVFS",
            Mechanism::DvfsRoo => "DVFS+ROO",
        }
    }

    /// Parses the CLI/manifest spellings (`fp`, `vwl`, `roo`, `vwl+roo`,
    /// `dvfs`, `dvfs+roo`).
    pub fn parse(s: &str) -> Option<Mechanism> {
        match s {
            "fp" => Some(Mechanism::FullPower),
            "vwl" => Some(Mechanism::Vwl),
            "roo" => Some(Mechanism::Roo),
            "vwl+roo" => Some(Mechanism::VwlRoo),
            "dvfs" => Some(Mechanism::Dvfs),
            "dvfs+roo" => Some(Mechanism::DvfsRoo),
            _ => None,
        }
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vwl_power_fractions_match_formula() {
        assert!((VwlWidth::W16.power_fraction() - 1.0).abs() < 1e-12);
        assert!((VwlWidth::W8.power_fraction() - 9.0 / 17.0).abs() < 1e-12);
        assert!((VwlWidth::W4.power_fraction() - 5.0 / 17.0).abs() < 1e-12);
        assert!((VwlWidth::W1.power_fraction() - 2.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn dvfs_modes_step_power_down_by_similar_amounts() {
        // The paper picks modes so each step cuts ~30 % of full link power.
        let p: Vec<f64> = DvfsLevel::ALL.iter().map(|l| l.power_fraction()).collect();
        assert_eq!(p, vec![1.0, 0.70, 0.35, 0.08]);
        for w in p.windows(2) {
            let step = w[0] - w[1];
            assert!((0.25..=0.35).contains(&step), "step {step} not ~30 %");
        }
    }

    #[test]
    fn allows_matches_candidate_mode_membership() {
        let all_mechs = [
            Mechanism::FullPower,
            Mechanism::Vwl,
            Mechanism::Roo,
            Mechanism::VwlRoo,
            Mechanism::Dvfs,
            Mechanism::DvfsRoo,
        ];
        for mech in all_mechs {
            let candidates = mech.candidate_modes();
            assert!(mech.allows(mech.full_mode()), "{mech:?} must allow its full mode");
            for other in all_mechs {
                for mode in other.candidate_modes() {
                    assert_eq!(
                        mech.allows(mode),
                        candidates.contains(&mode),
                        "{mech:?}.allows({mode:?}) disagrees with candidate_modes"
                    );
                }
            }
        }
    }

    #[test]
    fn flit_times_scale_inversely_with_bandwidth() {
        assert_eq!(BwMode::FULL_VWL.flit_time().as_ps(), 640);
        assert_eq!(BwMode::Vwl(VwlWidth::W8).flit_time().as_ps(), 1_280);
        assert_eq!(BwMode::Vwl(VwlWidth::W4).flit_time().as_ps(), 2_560);
        assert_eq!(BwMode::Vwl(VwlWidth::W1).flit_time().as_ps(), 10_240);
        assert_eq!(BwMode::Dvfs(DvfsLevel::P80).flit_time().as_ps(), 800);
        assert_eq!(BwMode::Dvfs(DvfsLevel::P50).flit_time().as_ps(), 1_280);
        assert_eq!(BwMode::Dvfs(DvfsLevel::P14).flit_time().as_ps(), 4_571);
    }

    #[test]
    fn serdes_overhead_only_for_dvfs() {
        assert!(BwMode::Vwl(VwlWidth::W1).serdes_overhead().is_zero());
        assert_eq!(BwMode::Dvfs(DvfsLevel::P50).serdes_latency().as_ps(), 6_400);
        assert_eq!(BwMode::Dvfs(DvfsLevel::P50).serdes_overhead().as_ps(), 3_200);
        assert!(BwMode::Dvfs(DvfsLevel::P100).serdes_overhead().is_zero());
    }

    #[test]
    fn mode_indices_round_trip() {
        for i in 0..N_BW_MODES {
            assert_eq!(BwMode::from_index(i).index(), i);
        }
    }

    #[test]
    fn roo_thresholds_ascend() {
        let t: Vec<u64> = RooThreshold::ALL.iter().map(|r| r.threshold().as_ps()).collect();
        assert_eq!(t, vec![32_000, 128_000, 512_000, 2_048_000]);
    }

    #[test]
    fn mechanism_mode_spaces() {
        assert_eq!(Mechanism::FullPower.candidate_modes().len(), 1);
        assert_eq!(Mechanism::Vwl.candidate_modes().len(), 4);
        assert_eq!(Mechanism::Roo.candidate_modes().len(), 4);
        assert_eq!(Mechanism::VwlRoo.candidate_modes().len(), 16);
        assert_eq!(Mechanism::Dvfs.candidate_modes().len(), 4);
        assert_eq!(Mechanism::DvfsRoo.candidate_modes().len(), 16);
    }

    #[test]
    fn full_modes_are_full_bandwidth() {
        for mech in [
            Mechanism::FullPower,
            Mechanism::Vwl,
            Mechanism::Roo,
            Mechanism::VwlRoo,
            Mechanism::Dvfs,
            Mechanism::DvfsRoo,
        ] {
            let full = mech.full_mode();
            assert!(full.bw.is_full_bandwidth());
            assert_eq!(full.roo.is_some(), mech.uses_roo());
            if mech.uses_roo() {
                // The ROO full-power mode still turns off after 2048 ns.
                assert_eq!(full.roo, Some(RooThreshold::T2048));
            }
        }
    }

    #[test]
    fn transition_latencies() {
        assert_eq!(BwMode::Vwl(VwlWidth::W4).transition_latency(), SimDuration::from_us(1));
        assert_eq!(BwMode::Dvfs(DvfsLevel::P50).transition_latency(), SimDuration::from_us(3));
    }
}
