//! Packets and flits.
//!
//! The network uses a packet-based protocol over 16 B flits (the minimum
//! traffic flow unit). Assuming 64 B cache lines, a read request is a single
//! flit, while write requests and read responses carry a line and occupy
//! five flits (header + 4 data flits).

use memnet_simcore::SimTime;
use serde::{Deserialize, Serialize};

use crate::topology::ModuleId;

/// Flit size in bytes.
pub const FLIT_BYTES: u64 = 16;
/// Memory access granularity in bytes.
pub const LINE_BYTES: u64 = 64;

/// The kind of a network packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A read request traveling toward memory (1 flit).
    ReadRequest,
    /// A write request carrying a 64 B line toward memory (5 flits).
    WriteRequest,
    /// A read response carrying a 64 B line back to the processor (5 flits).
    ReadResponse,
}

impl PacketKind {
    /// Number of flits this packet kind occupies on a link.
    pub const fn flits(self) -> u64 {
        match self {
            PacketKind::ReadRequest => 1,
            PacketKind::WriteRequest | PacketKind::ReadResponse => 1 + LINE_BYTES / FLIT_BYTES,
        }
    }

    /// Whether this packet belongs to a read transaction (read requests and
    /// read responses). The management policies track latency for read
    /// packets only, as writes are off the critical path.
    pub const fn is_read(self) -> bool {
        matches!(self, PacketKind::ReadRequest | PacketKind::ReadResponse)
    }

    /// Whether the packet travels on request links (away from the
    /// processor) as opposed to response links.
    pub const fn is_downstream(self) -> bool {
        matches!(self, PacketKind::ReadRequest | PacketKind::WriteRequest)
    }
}

/// A packet in flight through the memory network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Unique transaction identifier (shared by a read request and its
    /// response).
    pub id: u64,
    /// What the packet is.
    pub kind: PacketKind,
    /// The memory module holding the addressed line.
    pub dest: ModuleId,
    /// Global line address (line index within the whole physical space).
    pub line_addr: u64,
    /// When the transaction was created at the processor.
    pub created: SimTime,
}

impl Packet {
    /// Number of flits this packet occupies.
    pub fn flits(&self) -> u64 {
        self.kind.flits()
    }

    /// Builds the response packet for this read request.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a [`PacketKind::ReadRequest`].
    pub fn to_response(&self) -> Packet {
        assert_eq!(self.kind, PacketKind::ReadRequest, "only read requests have responses");
        Packet { kind: PacketKind::ReadResponse, ..*self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_counts_match_paper() {
        assert_eq!(PacketKind::ReadRequest.flits(), 1);
        assert_eq!(PacketKind::WriteRequest.flits(), 5);
        assert_eq!(PacketKind::ReadResponse.flits(), 5);
    }

    #[test]
    fn read_classification() {
        assert!(PacketKind::ReadRequest.is_read());
        assert!(PacketKind::ReadResponse.is_read());
        assert!(!PacketKind::WriteRequest.is_read());
    }

    #[test]
    fn direction_classification() {
        assert!(PacketKind::ReadRequest.is_downstream());
        assert!(PacketKind::WriteRequest.is_downstream());
        assert!(!PacketKind::ReadResponse.is_downstream());
    }

    #[test]
    fn response_preserves_identity() {
        let req = Packet {
            id: 7,
            kind: PacketKind::ReadRequest,
            dest: ModuleId(3),
            line_addr: 1234,
            created: SimTime::from_ps(55),
        };
        let resp = req.to_response();
        assert_eq!(resp.id, 7);
        assert_eq!(resp.kind, PacketKind::ReadResponse);
        assert_eq!(resp.dest, ModuleId(3));
        assert_eq!(resp.created, req.created);
    }

    #[test]
    #[should_panic(expected = "only read requests")]
    fn response_of_write_panics() {
        let w = Packet {
            id: 1,
            kind: PacketKind::WriteRequest,
            dest: ModuleId(0),
            line_addr: 0,
            created: SimTime::ZERO,
        };
        let _ = w.to_response();
    }
}
