//! Runtime model of one unidirectional link and its controller.
//!
//! A link controller holds a bounded queue (128 entries, reads prioritized
//! over writes), serializes packets flit by flit at the current bandwidth
//! mode, and runs the ROO on/off state machine. The link is *passive*: the
//! simulation engine drives it (enqueue, start/finish transmission, wake,
//! turn off, mode changes) and schedules its own events from the returned
//! times. Every state change is recorded in a time-in-state table the power
//! model later converts to energy.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use memnet_simcore::stats::TimeInState;
use memnet_simcore::{SimDuration, SimTime};

use crate::mech::{BwMode, RooParams, RooThreshold, N_BW_MODES};
use crate::packet::Packet;
use crate::topology::LinkId;

/// Buffer entries per link controller (paper §III-B).
pub const LINK_BUFFER_ENTRIES: usize = 128;

/// Number of accounting states: off, waking, then (idle, active) per
/// bandwidth mode, then retransmitting per bandwidth mode (appended last so
/// the fault-free layout is a prefix and existing indices are unchanged).
pub const N_ACCOUNTING_STATES: usize = 2 + 3 * N_BW_MODES;

/// Accounting state index for the off state.
pub const STATE_OFF: usize = 0;
/// Accounting state index for the waking state.
pub const STATE_WAKING: usize = 1;

/// Accounting state index for on-idle in bandwidth mode `m`.
pub fn state_on_idle(m: BwMode) -> usize {
    2 + 2 * m.index()
}

/// Accounting state index for on-active (transmitting) in mode `m`.
pub fn state_on_active(m: BwMode) -> usize {
    3 + 2 * m.index()
}

/// Accounting state index for retransmitting (link-retry replay of a
/// CRC-corrupted packet) in mode `m`. The wire does the same work as
/// on-active; the separate index lets the power model book it as
/// retransmission I/O.
pub fn state_retrans(m: BwMode) -> usize {
    2 + 2 * N_BW_MODES + m.index()
}

/// Error returned when a link controller's buffer is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkFull;

impl fmt::Display for LinkFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("link controller buffer is full")
    }
}

impl Error for LinkFull {}

/// The operational state of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LinkState {
    /// Powered off (1 % power); must wake before transmitting.
    Off,
    /// Waking; can transmit at `until`.
    Waking { until: SimTime },
    /// On, not transmitting.
    OnIdle { since: SimTime },
    /// Transmitting; busy until `until`.
    OnBusy { until: SimTime },
    /// Replaying a CRC-corrupted packet from the retry buffer; busy until
    /// `until`. Same wire activity as [`LinkState::OnBusy`], accounted
    /// separately so retry overhead is visible as retransmission I/O energy.
    Retransmitting { until: SimTime },
}

/// One unidirectional link with its controller.
///
/// # Examples
///
/// ```
/// use memnet_net::link::LinkSim;
/// use memnet_net::{BwMode, LinkId, ModuleId, Packet, PacketKind};
/// use memnet_simcore::SimTime;
///
/// let mut link = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
/// let pkt = Packet {
///     id: 1,
///     kind: PacketKind::ReadRequest,
///     dest: ModuleId(0),
///     line_addr: 0,
///     created: SimTime::ZERO,
/// };
/// link.enqueue(pkt, SimTime::ZERO)?;
/// let (sent, arrival, done) = link.start_transmission(SimTime::ZERO).expect("idle link starts");
/// assert_eq!(sent.id, 1);
/// assert_eq!(arrival, SimTime::ZERO);
/// assert_eq!(done.as_ps(), 640); // one flit at full width
/// # Ok::<(), memnet_net::LinkFull>(())
/// ```
#[derive(Debug, Clone)]
pub struct LinkSim {
    id: LinkId,
    bw_mode: BwMode,
    /// `bw_mode.flit_time()`, cached: consulted once per transmission, and
    /// the mode-table lookup is measurable on the event hot path.
    flit_time: SimDuration,
    /// `bw_mode.serdes_latency()`, cached alongside [`Self::flit_time`].
    serdes_latency: SimDuration,
    pending_bw: Option<(BwMode, SimTime)>,
    roo_threshold: Option<RooThreshold>,
    roo_params: RooParams,
    state: LinkState,

    reads: VecDeque<(Packet, SimTime)>,
    writes: VecDeque<(Packet, SimTime)>,
    buffer_entries: usize,

    residency: TimeInState,
    last_activity_end: SimTime,
    packets_enqueued: u64,
    flits_sent: u64,
    packets_sent: u64,
    read_packets_sent: u64,
    wake_count: u64,
    off_transitions: u64,
    retransmissions: u64,
    retrans_flits: u64,
}

impl LinkSim {
    /// Creates a link that is on and idle at `start` in mode `bw_mode`,
    /// with no ROO threshold (never turns off) and default ROO physics.
    pub fn new(id: LinkId, bw_mode: BwMode, start: SimTime) -> Self {
        LinkSim {
            id,
            bw_mode,
            flit_time: bw_mode.flit_time(),
            serdes_latency: bw_mode.serdes_latency(),
            pending_bw: None,
            roo_threshold: None,
            roo_params: RooParams::default(),
            state: LinkState::OnIdle { since: start },
            // Preallocate a plausible working set so steady-state enqueues
            // never grow the rings mid-simulation.
            reads: VecDeque::with_capacity(32),
            writes: VecDeque::with_capacity(32),
            buffer_entries: LINK_BUFFER_ENTRIES,
            residency: TimeInState::new(N_ACCOUNTING_STATES, state_on_idle(bw_mode), start),
            last_activity_end: start,
            packets_enqueued: 0,
            flits_sent: 0,
            packets_sent: 0,
            read_packets_sent: 0,
            wake_count: 0,
            off_transitions: 0,
            retransmissions: 0,
            retrans_flits: 0,
        }
    }

    /// Sets the ROO physical parameters (wakeup latency, off power).
    pub fn set_roo_params(&mut self, params: RooParams) {
        self.roo_params = params;
    }

    /// The ROO physical parameters.
    pub fn roo_params(&self) -> RooParams {
        self.roo_params
    }

    /// This link's identifier.
    pub fn id(&self) -> LinkId {
        self.id
    }

    /// Current bandwidth mode.
    pub fn bw_mode(&self) -> BwMode {
        self.bw_mode
    }

    /// Current ROO idleness threshold (`None`: the link never turns off).
    pub fn roo_threshold(&self) -> Option<RooThreshold> {
        self.roo_threshold
    }

    /// Sets the ROO idleness threshold.
    pub fn set_roo_threshold(&mut self, thr: Option<RooThreshold>) {
        self.roo_threshold = thr;
    }

    /// Number of queued packets.
    pub fn queue_len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// True if a packet can be enqueued.
    pub fn can_accept(&self) -> bool {
        self.queue_len() < self.buffer_entries
    }

    /// True if the link is on and idle (ready to start a transmission).
    pub fn is_idle_on(&self) -> bool {
        matches!(self.state, LinkState::OnIdle { .. })
    }

    /// True if the link is off.
    pub fn is_off(&self) -> bool {
        matches!(self.state, LinkState::Off)
    }

    /// True if the link is waking.
    pub fn is_waking(&self) -> bool {
        matches!(self.state, LinkState::Waking { .. })
    }

    /// True if the link is transmitting (first attempt or retry replay).
    pub fn is_busy(&self) -> bool {
        matches!(self.state, LinkState::OnBusy { .. } | LinkState::Retransmitting { .. })
    }

    /// True if the link is replaying a packet from the retry buffer.
    pub fn is_retransmitting(&self) -> bool {
        matches!(self.state, LinkState::Retransmitting { .. })
    }

    /// When the link last finished a transmission (or simulation start).
    pub fn last_activity_end(&self) -> SimTime {
        self.last_activity_end
    }

    /// If on-idle, the instant idleness began.
    pub fn idle_since(&self) -> Option<SimTime> {
        match self.state {
            LinkState::OnIdle { since } => Some(since),
            _ => None,
        }
    }

    /// Adds a packet to the controller queue, recording its arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`LinkFull`] if the 128-entry buffer is at capacity.
    pub fn enqueue(&mut self, pkt: Packet, now: SimTime) -> Result<(), LinkFull> {
        if !self.can_accept() {
            return Err(LinkFull);
        }
        self.enqueue_unchecked(pkt, now);
        Ok(())
    }

    /// Adds a packet even when the buffer is nominally full. The engine
    /// uses this for in-flight deliveries that already passed the
    /// sender-side capacity check; overflow is bounded by the processor's
    /// outstanding-request windows.
    pub fn enqueue_unchecked(&mut self, pkt: Packet, now: SimTime) {
        self.packets_enqueued += 1;
        if pkt.kind.is_read() {
            self.reads.push_back((pkt, now));
        } else {
            self.writes.push_back((pkt, now));
        }
    }

    /// The next packet that would transmit (reads first), without removing it.
    pub fn peek_next(&self) -> Option<&Packet> {
        self.reads.front().or_else(|| self.writes.front()).map(|(p, _)| p)
    }

    /// Starts transmitting the highest-priority queued packet.
    ///
    /// Returns the packet, its queue-arrival time, and the time its last
    /// flit leaves the transmitter, or `None` if the link is not on-idle
    /// or has nothing to send. The receiver sees the packet one SERDES
    /// latency after that.
    pub fn start_transmission(&mut self, now: SimTime) -> Option<(Packet, SimTime, SimTime)> {
        if !self.is_idle_on() {
            return None;
        }
        let (pkt, arrival) = self.reads.pop_front().or_else(|| self.writes.pop_front())?;
        let done = now + self.flit_time * pkt.flits();
        self.set_state(now, LinkState::OnBusy { until: done });
        self.flits_sent += pkt.flits();
        self.packets_sent += 1;
        if pkt.kind.is_read() {
            self.read_packets_sent += 1;
        }
        Some((pkt, arrival, done))
    }

    /// Marks the in-flight transmission (or retry replay) finished (engine
    /// calls this at the time returned by [`start_transmission`] or
    /// [`start_retransmission`]).
    ///
    /// # Panics
    ///
    /// Panics if the link is not transmitting.
    ///
    /// [`start_transmission`]: LinkSim::start_transmission
    /// [`start_retransmission`]: LinkSim::start_retransmission
    pub fn finish_transmission(&mut self, now: SimTime) {
        assert!(
            matches!(self.state, LinkState::OnBusy { .. } | LinkState::Retransmitting { .. }),
            "finish_transmission on a link that is not transmitting"
        );
        self.last_activity_end = now;
        self.set_state(now, LinkState::OnIdle { since: now });
    }

    /// Replays the in-flight packet from the retry buffer after a NAK.
    ///
    /// The engine keeps the corrupted packet in flight (the retry buffer
    /// holds it until a clean CRC), waits one NAK turnaround with the link
    /// idle-on, then calls this; the wire re-serializes all `flits` at the
    /// current mode. Returns when the replay's last flit leaves.
    ///
    /// # Panics
    ///
    /// Panics if the link is not on-idle.
    pub fn start_retransmission(&mut self, now: SimTime, flits: u64) -> SimTime {
        assert!(self.is_idle_on(), "retransmission requires an on-idle link");
        let done = now + self.flit_time * flits;
        self.retransmissions += 1;
        self.retrans_flits += flits;
        self.set_state(now, LinkState::Retransmitting { until: done });
        done
    }

    /// Receiver CRC-check + NAK turnaround: the time between a corrupted
    /// transmission finishing and its replay starting. The receiver detects
    /// the bad CRC one SERDES latency after the last flit lands and the NAK
    /// flows back over the (always-on) reverse control channel.
    pub fn retry_turnaround(&self) -> SimDuration {
        self.serdes_latency * 2 + self.flit_time
    }

    /// SERDES latency a packet experiences after its last flit leaves.
    pub fn serdes_latency(&self) -> SimDuration {
        self.serdes_latency
    }

    /// Extra SERDES latency relative to full rate (zero for VWL modes).
    pub fn serdes_overhead(&self) -> SimDuration {
        self.serdes_latency.saturating_sub(crate::mech::BASE_SERDES_LATENCY)
    }

    /// Turns the link off.
    ///
    /// # Panics
    ///
    /// Panics if the link is not on-idle.
    pub fn turn_off(&mut self, now: SimTime) {
        assert!(self.is_idle_on(), "only an on-idle link can turn off");
        self.off_transitions += 1;
        self.set_state(now, LinkState::Off);
    }

    /// Begins waking an off link; returns when the wake completes.
    ///
    /// # Panics
    ///
    /// Panics if the link is not off.
    pub fn start_wake(&mut self, now: SimTime) -> SimTime {
        assert!(self.is_off(), "only an off link can start waking");
        let until = now + self.roo_params.wakeup_latency;
        self.wake_count += 1;
        self.set_state(now, LinkState::Waking { until });
        until
    }

    /// Completes a wake (engine calls this at the time returned by
    /// [`start_wake`]).
    ///
    /// # Panics
    ///
    /// Panics if the link is not waking.
    ///
    /// [`start_wake`]: LinkSim::start_wake
    pub fn finish_wake(&mut self, now: SimTime) {
        assert!(self.is_waking(), "finish_wake on a link that is not waking");
        self.set_state(now, LinkState::OnIdle { since: now });
    }

    /// Requests a bandwidth-mode change; returns the time the new mode
    /// takes effect (after the mechanism's reconfiguration latency), or
    /// `None` if the link is already in — or already transitioning to —
    /// that mode. The link keeps operating in the old mode until then.
    pub fn request_bw_mode(&mut self, mode: BwMode, now: SimTime) -> Option<SimTime> {
        if self.bw_mode == mode && self.pending_bw.is_none() {
            return None;
        }
        if let Some((pending, at)) = self.pending_bw {
            if pending == mode {
                return Some(at);
            }
        }
        let at = now + mode.transition_latency();
        self.pending_bw = Some((mode, at));
        Some(at)
    }

    /// Applies a pending bandwidth mode whose transition has completed.
    /// Does nothing if no transition is due at `now`.
    pub fn apply_pending_bw(&mut self, now: SimTime) {
        if let Some((mode, at)) = self.pending_bw {
            if now >= at {
                self.pending_bw = None;
                self.bw_mode = mode;
                self.flit_time = mode.flit_time();
                self.serdes_latency = mode.serdes_latency();
                // Refresh the accounting state index under the new mode.
                let state = self.state;
                self.set_state(now, state);
            }
        }
    }

    /// Cancels any not-yet-applied mode change (used when a violation
    /// forces the link back to full power).
    pub fn cancel_pending_bw(&mut self) {
        self.pending_bw = None;
    }

    fn accounting_state(&self, state: LinkState) -> usize {
        match state {
            LinkState::Off => STATE_OFF,
            LinkState::Waking { .. } => STATE_WAKING,
            LinkState::OnIdle { .. } => state_on_idle(self.bw_mode),
            LinkState::OnBusy { .. } => state_on_active(self.bw_mode),
            LinkState::Retransmitting { .. } => state_retrans(self.bw_mode),
        }
    }

    fn set_state(&mut self, now: SimTime, state: LinkState) {
        self.state = state;
        self.residency.transition(now, self.accounting_state(state));
    }

    /// Time spent in every accounting state through `now`
    /// (see [`STATE_OFF`], [`STATE_WAKING`], [`state_on_idle`],
    /// [`state_on_active`]).
    pub fn residency_snapshot(&self, now: SimTime) -> Vec<SimDuration> {
        self.residency.snapshot(now)
    }

    /// Total time spent transmitting through `now` (including retry
    /// replays: the wire is equally occupied either way).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        (0..N_BW_MODES)
            .map(|i| {
                let m = BwMode::from_index(i);
                self.residency.time_in(state_on_active(m), now)
                    + self.residency.time_in(state_retrans(m), now)
            })
            .sum()
    }

    /// Packets ever accepted into the controller queue (the audit layer
    /// checks `packets_enqueued == packets_sent + queue_len`).
    pub fn packets_enqueued(&self) -> u64 {
        self.packets_enqueued
    }

    /// Flits transmitted so far.
    pub fn flits_sent(&self) -> u64 {
        self.flits_sent
    }

    /// Packets transmitted so far.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Read packets transmitted so far.
    pub fn read_packets_sent(&self) -> u64 {
        self.read_packets_sent
    }

    /// Number of wakeups performed.
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// Number of on→off transitions.
    pub fn off_transitions(&self) -> u64 {
        self.off_transitions
    }

    /// Number of retry replays performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Flits re-serialized by retry replays (not counted in
    /// [`flits_sent`], which tracks unique payload flits).
    ///
    /// [`flits_sent`]: LinkSim::flits_sent
    pub fn retrans_flits(&self) -> u64 {
        self.retrans_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;
    use crate::topology::ModuleId;

    fn pkt(id: u64, kind: PacketKind) -> Packet {
        Packet { id, kind, dest: ModuleId(0), line_addr: 0, created: SimTime::ZERO }
    }

    #[test]
    fn serializes_flits_at_mode_rate() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.enqueue(pkt(1, PacketKind::ReadResponse), SimTime::ZERO).unwrap();
        let (_, _, done) = l.start_transmission(SimTime::ZERO).unwrap();
        assert_eq!(done.as_ps(), 5 * 640);
        assert!(l.is_busy());
        l.finish_transmission(done);
        assert!(l.is_idle_on());
        assert_eq!(l.last_activity_end(), done);
    }

    #[test]
    fn reads_bypass_queued_writes() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.enqueue(pkt(1, PacketKind::WriteRequest), SimTime::ZERO).unwrap();
        l.enqueue(pkt(2, PacketKind::ReadRequest), SimTime::ZERO).unwrap();
        let (first, _, _) = l.start_transmission(SimTime::ZERO).unwrap();
        assert_eq!(first.id, 2, "the read must jump the write");
    }

    #[test]
    fn enqueue_counter_balances_sent_plus_queued() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.enqueue(pkt(1, PacketKind::ReadRequest), SimTime::ZERO).unwrap();
        l.enqueue(pkt(2, PacketKind::WriteRequest), SimTime::ZERO).unwrap();
        l.enqueue_unchecked(pkt(3, PacketKind::ReadResponse), SimTime::ZERO);
        assert_eq!(l.packets_enqueued(), 3);
        let (_, _, done) = l.start_transmission(SimTime::ZERO).unwrap();
        l.finish_transmission(done);
        assert_eq!(l.packets_enqueued(), l.packets_sent() + l.queue_len() as u64);
    }

    #[test]
    fn buffer_fills_at_capacity() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        for i in 0..LINK_BUFFER_ENTRIES as u64 {
            l.enqueue(pkt(i, PacketKind::ReadRequest), SimTime::ZERO).unwrap();
        }
        assert!(!l.can_accept());
        assert_eq!(l.enqueue(pkt(999, PacketKind::ReadRequest), SimTime::ZERO), Err(LinkFull));
    }

    #[test]
    fn roo_cycle_accumulates_off_time() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.set_roo_threshold(Some(RooThreshold::T32));
        l.turn_off(SimTime::from_ps(1_000));
        let wake_done = l.start_wake(SimTime::from_ps(51_000));
        assert_eq!(wake_done.as_ps(), 51_000 + 14_000);
        l.finish_wake(wake_done);
        let snap = l.residency_snapshot(wake_done);
        assert_eq!(snap[STATE_OFF], SimDuration::from_ps(50_000));
        assert_eq!(snap[STATE_WAKING], SimDuration::from_ns(14));
        assert_eq!(l.wake_count(), 1);
        assert_eq!(l.off_transitions(), 1);
    }

    #[test]
    fn mode_change_takes_transition_latency() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        let at = l
            .request_bw_mode(BwMode::Vwl(crate::mech::VwlWidth::W4), SimTime::ZERO)
            .expect("change scheduled");
        assert_eq!(at, SimTime::ZERO + SimDuration::from_us(1));
        // Still in the old mode until the transition completes.
        assert_eq!(l.bw_mode(), BwMode::FULL_VWL);
        l.apply_pending_bw(SimTime::from_ps(10)); // too early: no-op
        assert_eq!(l.bw_mode(), BwMode::FULL_VWL);
        l.apply_pending_bw(at);
        assert_eq!(l.bw_mode(), BwMode::Vwl(crate::mech::VwlWidth::W4));
    }

    #[test]
    fn requesting_current_mode_is_noop() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        assert_eq!(l.request_bw_mode(BwMode::FULL_VWL, SimTime::ZERO), None);
    }

    #[test]
    fn residency_splits_idle_and_active() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.enqueue(pkt(1, PacketKind::ReadRequest), SimTime::ZERO).unwrap();
        let (_, _, done) = l.start_transmission(SimTime::from_ps(1_000)).unwrap();
        l.finish_transmission(done);
        let now = SimTime::from_ps(10_000);
        let snap = l.residency_snapshot(now);
        assert_eq!(snap[state_on_active(BwMode::FULL_VWL)], SimDuration::from_ps(640));
        assert_eq!(snap[state_on_idle(BwMode::FULL_VWL)], SimDuration::from_ps(10_000 - 640));
        assert_eq!(l.busy_time(now), SimDuration::from_ps(640));
    }

    #[test]
    fn retransmission_is_accounted_separately_from_first_attempt() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.enqueue(pkt(1, PacketKind::ReadResponse), SimTime::ZERO).unwrap();
        let (sent, _, done) = l.start_transmission(SimTime::ZERO).unwrap();
        l.finish_transmission(done); // corrupted: engine holds the packet
        let retry_at = done + l.retry_turnaround();
        let redone = l.start_retransmission(retry_at, sent.flits());
        assert!(l.is_retransmitting() && l.is_busy());
        assert_eq!(redone - retry_at, BwMode::FULL_VWL.flit_time() * 5);
        l.finish_transmission(redone);
        assert!(l.is_idle_on());
        // Counters: one unique packet, one replay of its five flits.
        assert_eq!(l.packets_sent(), 1);
        assert_eq!(l.flits_sent(), 5);
        assert_eq!(l.retransmissions(), 1);
        assert_eq!(l.retrans_flits(), 5);
        // Residency: first attempt in the active state, replay in the
        // retransmission state, both counted as wire-busy time.
        let snap = l.residency_snapshot(redone);
        assert_eq!(snap[state_on_active(BwMode::FULL_VWL)], SimDuration::from_ps(5 * 640));
        assert_eq!(snap[state_retrans(BwMode::FULL_VWL)], SimDuration::from_ps(5 * 640));
        assert_eq!(l.busy_time(redone), SimDuration::from_ps(2 * 5 * 640));
    }

    #[test]
    #[should_panic(expected = "retransmission requires an on-idle link")]
    fn retransmitting_an_off_link_panics() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.turn_off(SimTime::ZERO);
        l.start_retransmission(SimTime::ZERO, 5);
    }

    #[test]
    fn cannot_transmit_while_off() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.turn_off(SimTime::ZERO);
        l.enqueue(pkt(1, PacketKind::ReadRequest), SimTime::ZERO).unwrap();
        assert!(l.start_transmission(SimTime::ZERO).is_none());
    }

    #[test]
    #[should_panic(expected = "only an off link")]
    fn waking_an_on_link_panics() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.start_wake(SimTime::ZERO);
    }

    #[test]
    fn slow_roo_params_change_wake_latency() {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.set_roo_params(RooParams::slow());
        l.turn_off(SimTime::ZERO);
        let done = l.start_wake(SimTime::ZERO);
        assert_eq!(done.as_ps(), 20_000);
    }
}
