#![warn(missing_docs)]

//! The memory-network fabric: packets, topologies, routing, and the
//! point-to-point link model with its power modes.
//!
//! A memory network connects a processor to HMC-style memory modules via a
//! tree of *full links*; each full link is a pair of unidirectional links —
//! a **request link** carrying traffic away from the processor and a
//! **response link** carrying traffic back. This crate provides:
//!
//! - [`packet`] — read-request (1 flit), write-request and read-response
//!   (5 flits) packets over 16 B flits;
//! - [`topology`] — the four minimally-connected topologies the paper
//!   studies (daisy chain, ternary tree, star, DDRx-like), plus the static
//!   fat/tapered bandwidth assignment of §VII-A;
//! - [`mech`] — circuit-level link power modes: variable-width (VWL),
//!   DVFS, and rapid-on/off (ROO) with their power/bandwidth/latency tables;
//! - [`link`] — the runtime unidirectional-link state machine: bounded
//!   read-priority queue, serialization, mode transitions, on/off state and
//!   time-in-state accounting for the power model.

pub mod link;
pub mod mech;
pub mod packet;
pub mod topology;

pub use link::{LinkFull, LinkSim};
pub use mech::{BwMode, DvfsLevel, LinkPowerMode, Mechanism, RooThreshold, VwlWidth};
pub use packet::{Packet, PacketKind, FLIT_BYTES, LINE_BYTES};
pub use topology::{
    Direction, HmcRadix, LinkId, ModuleId, NodeRef, RouteAround, Topology, TopologyKind,
};
