//! Minimally-connected memory-network topologies and routing.
//!
//! All topologies the paper studies are *minimally connected*: every
//! available link attaches a new module, so the network is a tree rooted at
//! the processor — acyclic, deadlock-free, and with exactly one full link
//! per module (its *connectivity link*, connecting it upstream). Edge `i`
//! is therefore identified with module `i`, and each edge carries two
//! unidirectional links: a request link (downstream, away from the
//! processor) and a response link (upstream).
//!
//! Module numbering matters: the simulator maps the *i*-th contiguous chunk
//! of physical address space to HMC *i*, so numbering determines which
//! modules are hot for a given workload footprint (paper Figure 3/4).

use serde::{Deserialize, Serialize};

/// Index of a memory module (HMC) within a network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ModuleId(pub usize);

/// A node in the network: the processor or a memory module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRef {
    /// The host processor (tree root).
    Processor,
    /// A memory module.
    Module(ModuleId),
}

/// HMC link radix class.
///
/// The HMC standard supports high-radix cubes with four full links and
/// low-radix cubes with two full links; high-radix cubes burn twice the
/// peak power.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HmcRadix {
    /// Four full links, 13.4 W peak.
    High,
    /// Two full links, half the peak power.
    Low,
}

impl HmcRadix {
    /// Number of full links this cube can terminate.
    pub const fn full_links(self) -> usize {
        match self {
            HmcRadix::High => 4,
            HmcRadix::Low => 2,
        }
    }
}

/// Direction of a unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Away from the processor (carries read/write requests).
    Request,
    /// Toward the processor (carries read responses).
    Response,
}

impl Direction {
    /// Both directions, request first.
    pub const BOTH: [Direction; 2] = [Direction::Request, Direction::Response];
}

/// Identifier of one unidirectional link.
///
/// Edge `m` (the connectivity link of module `m`) owns links
/// `LinkId(2m)` (request) and `LinkId(2m + 1)` (response).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl LinkId {
    /// The module whose connectivity edge this link belongs to.
    pub const fn edge_module(self) -> ModuleId {
        ModuleId(self.0 / 2)
    }

    /// Which direction this link carries.
    pub const fn direction(self) -> Direction {
        if self.0.is_multiple_of(2) {
            Direction::Request
        } else {
            Direction::Response
        }
    }

    /// The link for `(module, direction)`.
    pub const fn of(module: ModuleId, dir: Direction) -> LinkId {
        match dir {
            Direction::Request => LinkId(module.0 * 2),
            Direction::Response => LinkId(module.0 * 2 + 1),
        }
    }
}

/// The network shapes studied in the paper (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// A linear chain of low-radix cubes (minimum module area).
    DaisyChain,
    /// A ternary tree of high-radix cubes (minimum hop distance).
    TernaryTree,
    /// High-radix hubs, each fanning out two interleaved low-radix chains;
    /// hubs chain toward the processor ("rings" of equidistant modules).
    Star,
    /// Rows of three packages (one high-radix center per row 0, low-radix
    /// columns below), mirroring how DDRx DIMMs add ranks.
    DdrxLike,
}

impl TopologyKind {
    /// All four paper topologies, in the order figures report them.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::DaisyChain,
        TopologyKind::TernaryTree,
        TopologyKind::Star,
        TopologyKind::DdrxLike,
    ];

    /// Short label used in reports ("daisychain", "ternary tree", ...).
    pub fn label(self) -> &'static str {
        match self {
            TopologyKind::DaisyChain => "daisychain",
            TopologyKind::TernaryTree => "ternary tree",
            TopologyKind::Star => "star",
            TopologyKind::DdrxLike => "DDRx-like",
        }
    }

    /// Parses the CLI/manifest spellings (`daisychain|chain`,
    /// `ternary|tree`, `star`, `ddrx|ddrx-like`).
    pub fn parse(s: &str) -> Option<TopologyKind> {
        match s {
            "daisychain" | "chain" => Some(TopologyKind::DaisyChain),
            "ternary" | "tree" => Some(TopologyKind::TernaryTree),
            "star" => Some(TopologyKind::Star),
            "ddrx" | "ddrx-like" => Some(TopologyKind::DdrxLike),
            _ => None,
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A concrete memory-network instance: a tree of modules rooted at the
/// processor.
///
/// # Examples
///
/// ```
/// use memnet_net::{ModuleId, Topology, TopologyKind};
///
/// let t = Topology::build(TopologyKind::TernaryTree, 5);
/// assert_eq!(t.len(), 5);
/// assert_eq!(t.depth(ModuleId(0)), 1);     // root module
/// assert_eq!(t.depth(ModuleId(4)), 3);     // grandchild
/// assert_eq!(t.route(ModuleId(4)), vec![ModuleId(0), ModuleId(1), ModuleId(4)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    kind: TopologyKind,
    radix: Vec<HmcRadix>,
    parent: Vec<NodeRef>,
    children: Vec<Vec<ModuleId>>,
    depth: Vec<u32>,
}

impl Topology {
    /// Builds a `kind` topology with `n` modules.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn build(kind: TopologyKind, n: usize) -> Topology {
        assert!(n > 0, "a network needs at least one module");
        let (radix, parent) = match kind {
            TopologyKind::DaisyChain => Self::daisy_chain(n),
            TopologyKind::TernaryTree => Self::ternary_tree(n),
            TopologyKind::Star => Self::star(n),
            TopologyKind::DdrxLike => Self::ddrx_like(n),
        };
        let mut children = vec![Vec::new(); n];
        for (m, &p) in parent.iter().enumerate() {
            if let NodeRef::Module(pm) = p {
                children[pm.0].push(ModuleId(m));
            }
        }
        let mut depth = vec![0u32; n];
        for m in 0..n {
            depth[m] = match parent[m] {
                NodeRef::Processor => 1,
                // Builders only ever parent a module to a lower-numbered
                // module, so depths resolve in one forward pass.
                NodeRef::Module(pm) => {
                    debug_assert!(pm.0 < m, "parent must precede child");
                    depth[pm.0] + 1
                }
            };
        }
        let topo = Topology { kind, radix, parent, children, depth };
        debug_assert!(topo.validate().is_ok(), "builder produced invalid topology");
        topo
    }

    fn daisy_chain(n: usize) -> (Vec<HmcRadix>, Vec<NodeRef>) {
        let radix = vec![HmcRadix::Low; n];
        let parent = (0..n)
            .map(|m| if m == 0 { NodeRef::Processor } else { NodeRef::Module(ModuleId(m - 1)) })
            .collect();
        (radix, parent)
    }

    fn ternary_tree(n: usize) -> (Vec<HmcRadix>, Vec<NodeRef>) {
        let radix = vec![HmcRadix::High; n];
        let parent =
            (0..n)
                .map(|m| {
                    if m == 0 {
                        NodeRef::Processor
                    } else {
                        NodeRef::Module(ModuleId((m - 1) / 3))
                    }
                })
                .collect();
        (radix, parent)
    }

    /// Star: groups of nine. Module `9g` is a high-radix hub (upstream to
    /// the previous hub or the processor); modules `9g+1 .. 9g+8` are
    /// low-radix satellites arranged as two chains fanning out of the hub,
    /// numbered alternately so equidistant modules ("rings") get adjacent
    /// numbers — for small sizes this matches the ternary tree's hop
    /// distances while using fewer high-radix cubes.
    fn star(n: usize) -> (Vec<HmcRadix>, Vec<NodeRef>) {
        let mut radix = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        for m in 0..n {
            let group = m / 9;
            let pos = m % 9;
            if pos == 0 {
                radix.push(HmcRadix::High);
                parent.push(if group == 0 {
                    NodeRef::Processor
                } else {
                    NodeRef::Module(ModuleId(9 * (group - 1)))
                });
            } else {
                radix.push(HmcRadix::Low);
                // pos 1,2 attach to the hub; pos k>2 attaches to pos k-2
                // (the previous module of its chain).
                let up = if pos <= 2 { 9 * group } else { m - 2 };
                parent.push(NodeRef::Module(ModuleId(up)));
            }
        }
        (radix, parent)
    }

    /// DDRx-like: rows of three packages. Row `r` holds modules `3r`
    /// (center), `3r+1` (left) and `3r+2` (right). The row-0 center is a
    /// high-radix cube linking the processor, both row-0 sides and the next
    /// row's center; every other module chains vertically down its column
    /// with low-radix cubes.
    fn ddrx_like(n: usize) -> (Vec<HmcRadix>, Vec<NodeRef>) {
        let mut radix = Vec::with_capacity(n);
        let mut parent = Vec::with_capacity(n);
        for m in 0..n {
            let row = m / 3;
            let col = m % 3;
            let up = match (row, col) {
                (0, 0) => NodeRef::Processor,
                (0, _) => NodeRef::Module(ModuleId(0)),
                (_, _) => NodeRef::Module(ModuleId(3 * (row - 1) + col)),
            };
            parent.push(up);
            radix.push(if m == 0 { HmcRadix::High } else { HmcRadix::Low });
        }
        (radix, parent)
    }

    /// Which topology shape this is.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of modules.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the network has no modules (never produced by [`build`]).
    ///
    /// [`build`]: Topology::build
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of unidirectional links (two per module edge).
    pub fn n_links(&self) -> usize {
        self.len() * 2
    }

    /// The upstream neighbor of `m`.
    pub fn parent(&self, m: ModuleId) -> NodeRef {
        self.parent[m.0]
    }

    /// Downstream neighbors of `m`.
    pub fn children(&self, m: ModuleId) -> &[ModuleId] {
        &self.children[m.0]
    }

    /// Radix class of `m`.
    pub fn radix(&self, m: ModuleId) -> HmcRadix {
        self.radix[m.0]
    }

    /// Hop distance from the processor to `m` (directly-attached = 1).
    pub fn depth(&self, m: ModuleId) -> u32 {
        self.depth[m.0]
    }

    /// Iterates over all module ids.
    pub fn modules(&self) -> impl Iterator<Item = ModuleId> + '_ {
        (0..self.len()).map(ModuleId)
    }

    /// Iterates over all unidirectional link ids.
    pub fn links(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.n_links()).map(LinkId)
    }

    /// The modules traversed by an access to `dest`, processor-side first
    /// (i.e. root → ... → dest). The edge of each listed module is crossed.
    pub fn route(&self, dest: ModuleId) -> Vec<ModuleId> {
        let mut path = Vec::with_capacity(self.depth(dest) as usize);
        let mut cur = dest;
        loop {
            path.push(cur);
            match self.parent(cur) {
                NodeRef::Processor => break,
                NodeRef::Module(p) => cur = p,
            }
        }
        path.reverse();
        path
    }

    /// The immediate downstream links of `link`'s transmitter-side node
    /// that carry the same direction of traffic.
    ///
    /// For a request link into module `m`, these are the request links into
    /// `m`'s children. For a response link out of module `m`, they are the
    /// response links out of `m`'s children (their receivers all live on
    /// module `m`).
    pub fn downstream_same_type(&self, link: LinkId) -> Vec<LinkId> {
        let m = link.edge_module();
        self.children(m).iter().map(|&c| LinkId::of(c, link.direction())).collect()
    }

    /// The immediate upstream link of the same type, or `None` if `link`'s
    /// edge attaches directly to the processor.
    pub fn upstream_same_type(&self, link: LinkId) -> Option<LinkId> {
        match self.parent(link.edge_module()) {
            NodeRef::Processor => None,
            NodeRef::Module(p) => Some(LinkId::of(p, link.direction())),
        }
    }

    /// Number of full links terminated by module `m` (its upstream edge
    /// plus one per child).
    pub fn links_used(&self, m: ModuleId) -> usize {
        1 + self.children(m).len()
    }

    /// Modules at each hop distance: `histogram()[d]` counts modules with
    /// depth `d` (index 0 is always zero).
    pub fn depth_histogram(&self) -> Vec<usize> {
        let max = self.depth.iter().copied().max().unwrap_or(0) as usize;
        let mut h = vec![0usize; max + 1];
        for &d in &self.depth {
            h[d as usize] += 1;
        }
        h
    }

    /// Mean hop distance over all modules.
    pub fn mean_depth(&self) -> f64 {
        self.depth.iter().map(|&d| f64::from(d)).sum::<f64>() / self.len() as f64
    }

    /// The §VII-A static fat/tapered-tree bandwidth fraction for every
    /// edge: an edge at hop distance `d` gets
    /// `1/S(d) · (1 − Σ_{i<d} S(i)/T)` of maximum bandwidth, where `S(d)`
    /// counts edges at distance `d` and `T` is the total edge count.
    pub fn fat_tapered_fractions(&self) -> Vec<f64> {
        let hist = self.depth_histogram();
        let total = self.len() as f64;
        let mut cumulative_below = vec![0.0; hist.len()];
        let mut acc = 0.0;
        for d in 1..hist.len() {
            cumulative_below[d] = acc;
            acc += hist[d] as f64;
        }
        self.modules()
            .map(|m| {
                let d = self.depth(m) as usize;
                let s_d = hist[d] as f64;
                ((1.0 - cumulative_below[d] / total) / s_d).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Checks structural invariants: parents precede children, the tree is
    /// connected and acyclic, and no module terminates more full links than
    /// its radix allows.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        for m in self.modules() {
            if let NodeRef::Module(p) = self.parent(m) {
                if p.0 >= self.len() {
                    return Err(format!("module {} has out-of-range parent {}", m.0, p.0));
                }
                if p.0 >= m.0 {
                    return Err(format!(
                        "module {} has non-preceding parent {} (cycle risk)",
                        m.0, p.0
                    ));
                }
            }
            let used = self.links_used(m);
            let cap = self.radix(m).full_links();
            if used > cap {
                return Err(format!(
                    "module {} uses {used} full links but its radix allows {cap}",
                    m.0
                ));
            }
        }
        let attached = self.modules().filter(|&m| self.parent(m) == NodeRef::Processor).count();
        if attached == 0 {
            return Err("no module attaches to the processor".into());
        }
        Ok(())
    }

    /// Computes the effective topology after the connectivity edges of
    /// `failed_edges` are hard-failed.
    ///
    /// The paper's topologies are minimally-connected trees, so path
    /// redundancy comes from *spare ports*: a module whose radix allows
    /// more full links than it terminates can adopt an orphaned module over
    /// an unused port (a tree or star degrades into extra chain hops). Each
    /// orphaned subtree root re-attaches, deterministically, to the
    /// shallowest (then lowest-numbered) reachable module with a spare
    /// port — excluding its old parent, whose port (like the orphan's old
    /// upstream port) is burned by the failure and stays counted against
    /// the radix budget. A daisy chain of saturated low-radix cubes has no
    /// spare ports, so everything downstream of the cut reports
    /// unreachable.
    ///
    /// Re-attachment can give a module a higher-numbered parent, so the
    /// returned topology intentionally relaxes [`validate`]'s
    /// parent-precedes-child numbering; it stays acyclic because adopters
    /// are always reachable (their processor path cannot traverse the
    /// orphan's subtree). Unreachable modules keep their stale parent/depth
    /// coordinates but are detached from every children list.
    ///
    /// [`validate`]: Topology::validate
    pub fn route_around(&self, failed_edges: &[ModuleId]) -> RouteAround {
        let n = self.len();
        let mut severed = vec![false; n];
        for &m in failed_edges {
            if m.0 < n {
                severed[m.0] = true;
            }
        }
        let mut parent = self.parent.clone();
        // Ports burned by the failure (the orphan's old upstream port and
        // the matching port on its old parent) on top of live terminations.
        let mut burned = vec![0usize; n];
        let mut rerouted = Vec::new();

        loop {
            let (reach, depth, _) = Self::flood(&parent, &severed, &self.depth);
            let mut used = vec![1usize; n]; // every module's upstream port, live or dead
            for p in parent.iter().take(n) {
                if let NodeRef::Module(p) = p {
                    used[p.0] += 1;
                }
            }
            let adopted = (0..n).filter(|&m| severed[m]).find_map(|m| {
                // The orphan needs a spare port of its own for the new
                // upstream link (its old one is burned).
                if used[m] + burned[m] >= self.radix[m].full_links() {
                    return None;
                }
                let old_parent = parent[m];
                (0..n)
                    .filter(|&c| {
                        reach[c]
                            && NodeRef::Module(ModuleId(c)) != old_parent
                            && used[c] + burned[c] < self.radix[c].full_links()
                    })
                    .min_by_key(|&c| (depth[c], c))
                    .map(|c| (m, c, old_parent))
            });
            match adopted {
                Some((m, c, old_parent)) => {
                    if let NodeRef::Module(p) = old_parent {
                        burned[p.0] += 1;
                    }
                    burned[m] += 1;
                    parent[m] = NodeRef::Module(ModuleId(c));
                    severed[m] = false;
                    rerouted.push(ModuleId(m));
                }
                None => break,
            }
        }

        let (reach, depth, children) = Self::flood(&parent, &severed, &self.depth);
        let unreachable: Vec<ModuleId> = (0..n).filter(|&m| !reach[m]).map(ModuleId).collect();
        let topology =
            Topology { kind: self.kind, radix: self.radix.clone(), parent, children, depth };
        RouteAround { topology, rerouted, unreachable }
    }

    /// Breadth-first reachability over a parent array with severed edges:
    /// returns per-module reachability, depth (stale `old_depth` kept for
    /// unreachable modules) and children lists (severed modules appear in
    /// none).
    fn flood(
        parent: &[NodeRef],
        severed: &[bool],
        old_depth: &[u32],
    ) -> (Vec<bool>, Vec<u32>, Vec<Vec<ModuleId>>) {
        let n = parent.len();
        let mut children = vec![Vec::new(); n];
        let mut frontier = std::collections::VecDeque::new();
        let mut reach = vec![false; n];
        let mut depth = old_depth.to_vec();
        for (m, &p) in parent.iter().enumerate() {
            if severed[m] {
                continue;
            }
            match p {
                NodeRef::Processor => {
                    reach[m] = true;
                    depth[m] = 1;
                    frontier.push_back(m);
                }
                NodeRef::Module(pm) => children[pm.0].push(ModuleId(m)),
            }
        }
        while let Some(m) = frontier.pop_front() {
            for &c in &children[m] {
                reach[c.0] = true;
                depth[c.0] = depth[m] + 1;
                frontier.push_back(c.0);
            }
        }
        // Detach anything unreachable (severed subtrees) from children
        // lists so chain-wake and turn-off gating never consult dead edges.
        for kids in &mut children {
            kids.retain(|c| reach[c.0]);
        }
        (reach, depth, children)
    }
}

/// The effective topology and bookkeeping produced by
/// [`Topology::route_around`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteAround {
    /// The surviving topology: re-attached modules have new parents and
    /// depths; unreachable modules are detached from every children list.
    pub topology: Topology,
    /// Modules whose severed edge was replaced over a spare port, in
    /// adoption order.
    pub rerouted: Vec<ModuleId>,
    /// Modules left with no path to the processor, ascending.
    pub unreachable: Vec<ModuleId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_id_round_trips() {
        let l = LinkId::of(ModuleId(5), Direction::Response);
        assert_eq!(l, LinkId(11));
        assert_eq!(l.edge_module(), ModuleId(5));
        assert_eq!(l.direction(), Direction::Response);
        assert_eq!(LinkId(10).direction(), Direction::Request);
    }

    #[test]
    fn daisy_chain_is_linear() {
        let t = Topology::build(TopologyKind::DaisyChain, 5);
        assert_eq!(t.parent(ModuleId(0)), NodeRef::Processor);
        for m in 1..5 {
            assert_eq!(t.parent(ModuleId(m)), NodeRef::Module(ModuleId(m - 1)));
            assert_eq!(t.depth(ModuleId(m)), m as u32 + 1);
        }
        assert!(t.modules().all(|m| t.radix(m) == HmcRadix::Low));
        t.validate().unwrap();
    }

    #[test]
    fn ternary_tree_minimizes_depth() {
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        assert_eq!(t.children(ModuleId(0)).len(), 3);
        assert_eq!(t.depth(ModuleId(0)), 1);
        assert_eq!(t.depth(ModuleId(3)), 2);
        assert_eq!(t.depth(ModuleId(4)), 3);
        assert_eq!(t.depth(ModuleId(12)), 3);
        assert!(t.modules().all(|m| t.radix(m) == HmcRadix::High));
        t.validate().unwrap();
    }

    #[test]
    fn star_small_matches_ternary_hop_profile() {
        // Five modules: hub at depth 1, ring of chain heads at depth 2,
        // next ring at depth 3 — within one hop of the ternary tree.
        let t = Topology::build(TopologyKind::Star, 5);
        assert_eq!(t.depth(ModuleId(0)), 1);
        assert_eq!(t.depth(ModuleId(1)), 2);
        assert_eq!(t.depth(ModuleId(2)), 2);
        assert_eq!(t.depth(ModuleId(3)), 3);
        assert_eq!(t.depth(ModuleId(4)), 3);
        assert_eq!(t.radix(ModuleId(0)), HmcRadix::High);
        assert_eq!(t.radix(ModuleId(1)), HmcRadix::Low);
        t.validate().unwrap();
    }

    #[test]
    fn star_hubs_chain_between_groups() {
        let t = Topology::build(TopologyKind::Star, 19);
        assert_eq!(t.parent(ModuleId(9)), NodeRef::Module(ModuleId(0)));
        assert_eq!(t.parent(ModuleId(18)), NodeRef::Module(ModuleId(9)));
        assert_eq!(t.radix(ModuleId(9)), HmcRadix::High);
        t.validate().unwrap();
    }

    #[test]
    fn ddrx_like_rows_of_three() {
        let t = Topology::build(TopologyKind::DdrxLike, 9);
        assert_eq!(t.parent(ModuleId(0)), NodeRef::Processor);
        assert_eq!(t.parent(ModuleId(1)), NodeRef::Module(ModuleId(0)));
        assert_eq!(t.parent(ModuleId(2)), NodeRef::Module(ModuleId(0)));
        assert_eq!(t.parent(ModuleId(3)), NodeRef::Module(ModuleId(0)));
        assert_eq!(t.parent(ModuleId(4)), NodeRef::Module(ModuleId(1)));
        assert_eq!(t.parent(ModuleId(5)), NodeRef::Module(ModuleId(2)));
        assert_eq!(t.parent(ModuleId(6)), NodeRef::Module(ModuleId(3)));
        assert_eq!(t.radix(ModuleId(0)), HmcRadix::High);
        assert_eq!(t.links_used(ModuleId(0)), 4);
        t.validate().unwrap();
    }

    #[test]
    fn routes_walk_from_root_to_destination() {
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        assert_eq!(t.route(ModuleId(0)), vec![ModuleId(0)]);
        let r = t.route(ModuleId(12));
        assert_eq!(r.first(), Some(&ModuleId(0)));
        assert_eq!(r.last(), Some(&ModuleId(12)));
        assert_eq!(r.len() as u32, t.depth(ModuleId(12)));
        // Consecutive entries are parent/child pairs.
        for w in r.windows(2) {
            assert_eq!(t.parent(w[1]), NodeRef::Module(w[0]));
        }
    }

    #[test]
    fn neighbor_links_are_consistent() {
        let t = Topology::build(TopologyKind::TernaryTree, 7);
        let req0 = LinkId::of(ModuleId(0), Direction::Request);
        let down = t.downstream_same_type(req0);
        assert_eq!(
            down,
            vec![
                LinkId::of(ModuleId(1), Direction::Request),
                LinkId::of(ModuleId(2), Direction::Request),
                LinkId::of(ModuleId(3), Direction::Request),
            ]
        );
        assert_eq!(t.upstream_same_type(req0), None);
        let resp4 = LinkId::of(ModuleId(4), Direction::Response);
        assert_eq!(t.upstream_same_type(resp4), Some(LinkId::of(ModuleId(1), Direction::Response)));
    }

    #[test]
    fn fat_tapered_fractions_taper_downstream() {
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        let f = t.fat_tapered_fractions();
        // The root edge carries all traffic: full bandwidth.
        assert!((f[0] - 1.0).abs() < 1e-12);
        // Deeper edges get no more bandwidth than shallower ones.
        for m in t.modules() {
            if let NodeRef::Module(p) = t.parent(m) {
                assert!(f[m.0] <= f[p.0] + 1e-12);
            }
        }
    }

    #[test]
    fn route_around_without_failures_is_identity() {
        for kind in TopologyKind::ALL {
            let t = Topology::build(kind, 9);
            let ra = t.route_around(&[]);
            assert_eq!(ra.topology, t);
            assert!(ra.rerouted.is_empty() && ra.unreachable.is_empty());
        }
    }

    #[test]
    fn route_around_chain_has_no_spares_and_reports_unreachable() {
        // Every low-radix cube in a chain terminates both its ports, so a
        // cut strands the whole downstream segment.
        let t = Topology::build(TopologyKind::DaisyChain, 5);
        let ra = t.route_around(&[ModuleId(2)]);
        assert!(ra.rerouted.is_empty());
        assert_eq!(ra.unreachable, vec![ModuleId(2), ModuleId(3), ModuleId(4)]);
        // The surviving prefix is untouched, and the dead edge is detached
        // from its old parent's children list.
        assert_eq!(ra.topology.route(ModuleId(1)), vec![ModuleId(0), ModuleId(1)]);
        assert!(ra.topology.children(ModuleId(1)).is_empty());
    }

    #[test]
    fn route_around_tree_reattaches_over_a_leaf_spare_port() {
        // Ternary tree: internal nodes are saturated, but every leaf is a
        // high-radix cube with three spare ports. Cutting module 4's edge
        // re-attaches it under leaf 5 — an extra chain hop, as the paper's
        // minimally-connected trees degrade.
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        let ra = t.route_around(&[ModuleId(4)]);
        assert_eq!(ra.rerouted, vec![ModuleId(4)]);
        assert!(ra.unreachable.is_empty());
        let t2 = &ra.topology;
        assert_eq!(t2.parent(ModuleId(4)), NodeRef::Module(ModuleId(5)));
        assert_eq!(t2.depth(ModuleId(4)), 4);
        assert_eq!(t2.route(ModuleId(4)), vec![ModuleId(0), ModuleId(1), ModuleId(5), ModuleId(4)]);
        // The burned port stays burned: module 1 now lists only 5 and 6.
        assert_eq!(t2.children(ModuleId(1)), &[ModuleId(5), ModuleId(6)]);
        assert_eq!(t2.children(ModuleId(5)), &[ModuleId(4)]);
    }

    #[test]
    fn route_around_star_uses_the_hub_spare_port() {
        // Star of 5: the hub terminates processor + two chain heads = 3 of
        // its 4 ports, so a failed satellite edge lands on the hub.
        let t = Topology::build(TopologyKind::Star, 5);
        let ra = t.route_around(&[ModuleId(3)]);
        assert_eq!(ra.rerouted, vec![ModuleId(3)]);
        assert!(ra.unreachable.is_empty());
        assert_eq!(ra.topology.parent(ModuleId(3)), NodeRef::Module(ModuleId(0)));
        assert_eq!(ra.topology.depth(ModuleId(3)), 2, "one hop closer than before");
    }

    #[test]
    fn route_around_saturated_internal_node_strands_its_subtree() {
        // An internal ternary node terminates upstream + three children =
        // all four ports, so it has no spare port left to accept a
        // replacement upstream link: cutting its edge strands the subtree
        // even though leaves elsewhere have ports free.
        let t = Topology::build(TopologyKind::TernaryTree, 13);
        let ra = t.route_around(&[ModuleId(1)]);
        assert!(ra.rerouted.is_empty());
        assert_eq!(ra.unreachable, vec![ModuleId(1), ModuleId(4), ModuleId(5), ModuleId(6)]);
        // Survivors are untouched and the dead subtree is fully detached.
        assert_eq!(ra.topology.children(ModuleId(0)), &[ModuleId(2), ModuleId(3)]);
        assert_eq!(ra.topology.depth(ModuleId(7)), 3);
    }

    #[test]
    fn depth_histogram_sums_to_len() {
        for kind in TopologyKind::ALL {
            for n in [1, 2, 5, 9, 17, 34] {
                let t = Topology::build(kind, n);
                assert_eq!(t.depth_histogram().iter().sum::<usize>(), n);
                assert_eq!(t.depth_histogram()[0], 0);
            }
        }
    }
}
