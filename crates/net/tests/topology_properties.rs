//! Property tests over all topology builders and sizes.

use memnet_net::{Direction, HmcRadix, LinkId, ModuleId, NodeRef, Topology, TopologyKind};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::DaisyChain),
        Just(TopologyKind::TernaryTree),
        Just(TopologyKind::Star),
        Just(TopologyKind::DdrxLike),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn every_topology_validates(kind in kind_strategy(), n in 1usize..120) {
        let t = Topology::build(kind, n);
        prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
        prop_assert_eq!(t.len(), n);
        prop_assert_eq!(t.n_links(), 2 * n);
    }

    #[test]
    fn routes_are_simple_root_to_dest_paths(kind in kind_strategy(), n in 1usize..80) {
        let t = Topology::build(kind, n);
        for m in t.modules() {
            let route = t.route(m);
            prop_assert_eq!(*route.last().unwrap(), m);
            prop_assert_eq!(route.len() as u32, t.depth(m));
            prop_assert_eq!(t.parent(route[0]), NodeRef::Processor);
            for w in route.windows(2) {
                prop_assert_eq!(t.parent(w[1]), NodeRef::Module(w[0]));
            }
            // Simple path: no repeats.
            let mut seen = route.clone();
            seen.sort();
            seen.dedup();
            prop_assert_eq!(seen.len(), route.len());
        }
    }

    #[test]
    fn radix_capacity_never_exceeded(kind in kind_strategy(), n in 1usize..120) {
        let t = Topology::build(kind, n);
        for m in t.modules() {
            prop_assert!(t.links_used(m) <= t.radix(m).full_links());
        }
    }

    #[test]
    fn upstream_downstream_links_are_inverse(kind in kind_strategy(), n in 1usize..60) {
        let t = Topology::build(kind, n);
        for l in t.links() {
            for d in t.downstream_same_type(l) {
                prop_assert_eq!(t.upstream_same_type(d), Some(l));
                prop_assert_eq!(d.direction(), l.direction());
            }
        }
    }

    #[test]
    fn traffic_attenuates_along_fat_tapered_fractions(kind in kind_strategy(), n in 2usize..80) {
        let t = Topology::build(kind, n);
        let f = t.fat_tapered_fractions();
        for m in t.modules() {
            prop_assert!(f[m.0] > 0.0 && f[m.0] <= 1.0);
            if let NodeRef::Module(p) = t.parent(m) {
                prop_assert!(f[m.0] <= f[p.0] + 1e-9, "deeper edge got more bandwidth");
            }
        }
    }

    #[test]
    fn daisychain_is_all_low_radix_and_tree_all_high(n in 1usize..60) {
        let chain = Topology::build(TopologyKind::DaisyChain, n);
        prop_assert!(chain.modules().all(|m| chain.radix(m) == HmcRadix::Low));
        let tree = Topology::build(TopologyKind::TernaryTree, n);
        prop_assert!(tree.modules().all(|m| tree.radix(m) == HmcRadix::High));
    }

    #[test]
    fn mixed_topologies_contain_both_radices_when_big_enough(n in 4usize..80) {
        for kind in [TopologyKind::Star, TopologyKind::DdrxLike] {
            let t = Topology::build(kind, n);
            prop_assert!(t.modules().any(|m| t.radix(m) == HmcRadix::High));
            prop_assert!(t.modules().any(|m| t.radix(m) == HmcRadix::Low));
        }
    }

    #[test]
    fn link_ids_cover_both_directions(n in 1usize..40) {
        let t = Topology::build(TopologyKind::TernaryTree, n);
        let links: Vec<LinkId> = t.links().collect();
        prop_assert_eq!(links.len(), 2 * n);
        for m in t.modules() {
            prop_assert!(links.contains(&LinkId::of(m, Direction::Request)));
            prop_assert!(links.contains(&LinkId::of(m, Direction::Response)));
        }
    }

    #[test]
    fn mean_depth_orders_tree_below_chain(n in 5usize..100) {
        let chain = Topology::build(TopologyKind::DaisyChain, n);
        let tree = Topology::build(TopologyKind::TernaryTree, n);
        prop_assert!(tree.mean_depth() <= chain.mean_depth());
    }

    #[test]
    fn module_zero_is_always_at_depth_one(kind in kind_strategy(), n in 1usize..100) {
        let t = Topology::build(kind, n);
        prop_assert_eq!(t.depth(ModuleId(0)), 1);
    }
}
