//! Link state-machine behavior across mode changes, ROO cycles and
//! accounting.

use memnet_net::link::{state_on_active, state_on_idle, LinkSim, STATE_OFF};
use memnet_net::mech::{BwMode, DvfsLevel, RooThreshold, VwlWidth};
use memnet_net::{LinkId, ModuleId, Packet, PacketKind};
use memnet_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn pkt(id: u64, kind: PacketKind) -> Packet {
    Packet { id, kind, dest: ModuleId(0), line_addr: 0, created: SimTime::ZERO }
}

#[test]
fn residency_always_partitions_elapsed_time() {
    let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
    l.set_roo_threshold(Some(RooThreshold::T32));
    // Busy burst.
    l.enqueue(pkt(1, PacketKind::ReadResponse), SimTime::ZERO).unwrap();
    let (_, _, done) = l.start_transmission(SimTime::from_ps(500)).unwrap();
    l.finish_transmission(done);
    // Mode change mid-idle.
    let apply = l.request_bw_mode(BwMode::Vwl(VwlWidth::W8), done).unwrap();
    l.apply_pending_bw(apply);
    // ROO cycle.
    let off_at = apply + SimDuration::from_ns(100);
    l.turn_off(off_at);
    let wake_done = l.start_wake(off_at + SimDuration::from_us(2));
    l.finish_wake(wake_done);
    let end = wake_done + SimDuration::from_ns(50);
    let total: SimDuration = l.residency_snapshot(end).into_iter().sum();
    assert_eq!(total, end - SimTime::ZERO, "accounting must cover every picosecond");
}

#[test]
fn transmission_slows_after_narrowing() {
    let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
    let apply = l.request_bw_mode(BwMode::Vwl(VwlWidth::W1), SimTime::ZERO).unwrap();
    l.apply_pending_bw(apply);
    l.enqueue(pkt(1, PacketKind::ReadResponse), apply).unwrap();
    let (_, _, done) = l.start_transmission(apply).unwrap();
    assert_eq!(done - apply, SimDuration::from_ps(5 * 10_240));
}

#[test]
fn dvfs_transition_is_slower_than_vwl() {
    let mut vwl = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
    let mut dvfs = LinkSim::new(LinkId(1), BwMode::FULL_DVFS, SimTime::ZERO);
    let t_vwl = vwl.request_bw_mode(BwMode::Vwl(VwlWidth::W8), SimTime::ZERO).unwrap();
    let t_dvfs = dvfs.request_bw_mode(BwMode::Dvfs(DvfsLevel::P50), SimTime::ZERO).unwrap();
    assert_eq!(t_vwl.as_ps(), 1_000_000);
    assert_eq!(t_dvfs.as_ps(), 3_000_000);
    // DVFS also stretches the SERDES pipeline once applied.
    dvfs.apply_pending_bw(t_dvfs);
    assert_eq!(dvfs.serdes_latency(), SimDuration::from_ps(6_400));
    vwl.apply_pending_bw(t_vwl);
    assert_eq!(vwl.serdes_latency(), SimDuration::from_ps(3_200));
}

#[test]
fn superseding_mode_requests_keep_the_last_one() {
    let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
    let _ = l.request_bw_mode(BwMode::Vwl(VwlWidth::W4), SimTime::ZERO).unwrap();
    let t2 = l.request_bw_mode(BwMode::Vwl(VwlWidth::W8), SimTime::from_ps(100)).unwrap();
    // The first transition's completion time passes: only the second
    // request may apply, at its own time.
    l.apply_pending_bw(SimTime::from_ps(1_000_000));
    assert_eq!(l.bw_mode(), BwMode::FULL_VWL, "superseded change must not land");
    l.apply_pending_bw(t2);
    assert_eq!(l.bw_mode(), BwMode::Vwl(VwlWidth::W8));
}

#[test]
fn cancel_pending_reverts_to_current_mode() {
    let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
    let t = l.request_bw_mode(BwMode::Vwl(VwlWidth::W1), SimTime::ZERO).unwrap();
    l.cancel_pending_bw();
    l.apply_pending_bw(t);
    assert_eq!(l.bw_mode(), BwMode::FULL_VWL);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_operation_sequences_keep_accounting_consistent(
        ops in prop::collection::vec((0u8..5, 1u64..5_000), 1..60)
    ) {
        let mut l = LinkSim::new(LinkId(0), BwMode::FULL_VWL, SimTime::ZERO);
        l.set_roo_threshold(Some(RooThreshold::T128));
        let mut now = SimTime::ZERO;
        let mut sent = 0u64;
        for (op, dt) in ops {
            now += SimDuration::from_ps(dt * 1_000);
            match op {
                0 => {
                    let _ = l.enqueue(pkt(sent, PacketKind::ReadRequest), now);
                }
                1 => {
                    if let Some((_, arrival, done)) = l.start_transmission(now) {
                        prop_assert!(arrival <= now);
                        prop_assert!(done > now);
                        l.finish_transmission(done);
                        now = done;
                        sent += 1;
                    }
                }
                2 => {
                    if l.is_idle_on() {
                        l.turn_off(now);
                    }
                }
                3 => {
                    if l.is_off() {
                        let wake = l.start_wake(now);
                        l.finish_wake(wake);
                        now = wake;
                    }
                }
                _ => {
                    let mode = BwMode::from_index((dt % 4) as usize);
                    if let Some(at) = l.request_bw_mode(mode, now) {
                        l.apply_pending_bw(at);
                        now = at.max(now);
                    }
                }
            }
        }
        let end = now + SimDuration::from_ns(10);
        let snap = l.residency_snapshot(end);
        let total: SimDuration = snap.iter().copied().sum();
        prop_assert_eq!(total, end - SimTime::ZERO);
        // Busy time equals the active-state residencies.
        let active: SimDuration = (0..8).map(|i| snap[state_on_active(BwMode::from_index(i))]).sum();
        prop_assert_eq!(l.busy_time(end), active);
        // Flit accounting matches packets sent (1 flit each).
        prop_assert_eq!(l.flits_sent(), sent);
        // Sanity on state exclusivity: we cannot be both off and idle.
        prop_assert!(!(l.is_off() && l.is_idle_on()));
        let _ = (snap[STATE_OFF], state_on_idle(BwMode::FULL_VWL));
    }
}
