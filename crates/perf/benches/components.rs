//! Criterion wrappers around the shared perf kernels: one bench per hot
//! component, plus the end-to-end small run. `cargo bench -p memnet-perf`
//! prints interactive numbers; the `perf` binary runs the same kernels to
//! produce the gated `BENCH_<sha>.json` report.

use criterion::{criterion_group, criterion_main, Criterion};
use memnet_perf::kernels;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("components/event_queue_churn_50k", |b| {
        b.iter(|| black_box(kernels::event_queue_churn(50_000, 11)));
    });
}

fn bench_link_pricing(c: &mut Criterion) {
    c.bench_function("components/link_pricing_20k", |b| {
        b.iter(|| black_box(kernels::link_pricing(20_000)));
    });
}

fn bench_fault_draws(c: &mut Criterion) {
    c.bench_function("components/fault_draws_100k", |b| {
        b.iter(|| black_box(kernels::fault_draws(100_000, 42)));
    });
}

fn bench_policy_epochs(c: &mut Criterion) {
    c.bench_function("components/policy_epochs_200", |b| {
        b.iter(|| black_box(kernels::policy_epochs(200)));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    c.bench_function("components/end_to_end_50us", |b| {
        b.iter(|| black_box(kernels::end_to_end(50, 7).events_processed));
    });
}

fn bench_multi_seed(c: &mut Criterion) {
    let seeds = kernels::multi_seed_seeds();
    c.bench_function("components/multi_seed_solo_50us", |b| {
        b.iter(|| {
            black_box(
                kernels::end_to_end_multi_seed_solo(50, &seeds)
                    .iter()
                    .map(|r| r.events_processed)
                    .sum::<u64>(),
            )
        });
    });
    c.bench_function("components/multi_seed_lockstep_50us", |b| {
        b.iter(|| {
            black_box(
                kernels::end_to_end_multi_seed_lockstep(50, &seeds)
                    .iter()
                    .map(|r| r.events_processed)
                    .sum::<u64>(),
            )
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_link_pricing,
    bench_fault_draws,
    bench_policy_epochs,
    bench_end_to_end,
    bench_multi_seed
);
criterion_main!(benches);
