//! Deterministic benchmark kernels shared by the `components` criterion
//! bench and the `perf` report binary.
//!
//! Each kernel returns a checksum-ish value so optimizers cannot delete
//! the work, and takes its scale as a parameter so `--quick` runs and
//! full runs exercise identical code.

use std::sync::Arc;

use memnet_core::{PolicyKind, RunReport, SimConfig};
use memnet_faults::{FaultConfig, FaultModel};
use memnet_net::mech::N_BW_MODES;
use memnet_net::{LinkId, Topology};
use memnet_policy::{Mechanism, PowerController};
use memnet_power::HmcPowerModel;
use memnet_simcore::{EventQueue, SimDuration, SimTime, SplitMix64};

/// Pushes and pops `n` randomly timed events through the two-tier event
/// queue, the simulator's innermost data structure.
pub fn event_queue_churn(n: u64, seed: u64) -> u64 {
    let mut rng = SplitMix64::new(seed);
    let mut q = EventQueue::with_capacity(1024);
    let mut sum = 0u64;
    // Sliding window: keep ~64 events pending, matching the simulator's
    // observed queue depth, rather than enqueueing all n at once.
    for i in 0..n {
        q.push(SimTime::from_ps(rng.next_below(1_000_000)), i);
        if i >= 64 {
            if let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
        }
    }
    while let Some((_, v)) = q.pop() {
        sum = sum.wrapping_add(v);
    }
    sum
}

/// Prices one link residency snapshot `n` times through the HMC power
/// model (the per-link inner loop of report finalization).
pub fn link_pricing(n: u64) -> f64 {
    let model = HmcPowerModel::paper();
    let snapshot: Vec<SimDuration> =
        (0..2 + 3 * N_BW_MODES).map(|i| SimDuration::from_ns((i as u64 + 1) * 10)).collect();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += std::hint::black_box(model.link_energy(&snapshot)).io_total();
    }
    acc
}

/// Draws `n` transmission CRC outcomes from a fault model with a
/// realistic flit error rate, returning the corruption count.
pub fn fault_draws(n: u64, seed: u64) -> u64 {
    let cfg = FaultConfig { flit_error_rate: 1e-3, ..FaultConfig::none() };
    let mut fm = FaultModel::new(&cfg, 16, seed);
    let mut corrupted = 0u64;
    for i in 0..n {
        corrupted += u64::from(fm.transmission_corrupted((i % 16) as usize, 5));
    }
    corrupted
}

/// Runs `epochs` controller epochs under the network-aware policy: each
/// epoch feeds a burst of packet departures into the delay monitors, then
/// triggers the AMS/ISP decision step. Returns total decisions made.
pub fn policy_epochs(epochs: u64) -> usize {
    let cfg = base_config(100, 1);
    let topo = Arc::new(Topology::build(cfg.topology, cfg.n_hmcs()));
    let n_links = topo.n_links();
    let mut pc = PowerController::new(
        Arc::clone(&topo),
        cfg.policy_config(),
        cfg.dram.nominal_read_latency(),
    );
    let mut decisions = 0usize;
    let mut now = SimTime::ZERO;
    let flit = SimDuration::from_ps(640);
    for _ in 0..epochs {
        for p in 0..64u64 {
            let link = LinkId((p % n_links as u64) as usize);
            let arrival = now + flit * (p * 7);
            let start = arrival + flit;
            let departure = start + flit * 5;
            pc.on_packet_arrival(link, arrival, p.is_multiple_of(2));
            pc.on_packet_departure(link, arrival, start, departure, 5, p.is_multiple_of(2));
        }
        now += SimDuration::from_us(100);
        decisions += pc.epoch_end(now).len();
    }
    decisions
}

/// Runs a small end-to-end simulation under the paper's network-aware
/// VWL+ROO configuration and returns the full report (the caller derives
/// events/sec from `events_processed`).
pub fn end_to_end(eval_us: u64, seed: u64) -> RunReport {
    base_config(eval_us, seed).run()
}

/// [`end_to_end`] with the observability recorder explicitly on or off.
/// The off variant is the suite's control for the on variant: both run
/// identical configurations, so the events/sec delta between them is the
/// cost of per-epoch time-series sampling (`--obs-gate` enforces a bound
/// on it).
pub fn end_to_end_obs(eval_us: u64, seed: u64, enabled: bool) -> RunReport {
    let mut cfg = base_config(eval_us, seed);
    cfg.obs.enabled = enabled;
    cfg.obs.ring_capacity = 64;
    cfg.run()
}

/// The replica count of the multi-seed bench pair: the lockstep target
/// in the docs (≥ 1.5× aggregate events/sec on multi-core hosts) is
/// quoted at this K.
pub const MULTI_SEED_K: usize = 8;

/// Seeds of the multi-seed bench pair: K distinct replicas of the
/// end-to-end configuration.
pub fn multi_seed_seeds() -> Vec<u64> {
    (0..MULTI_SEED_K as u64).map(|i| 7 + i).collect()
}

/// The solo half of the multi-seed pair: runs the end-to-end
/// configuration once per seed, sequentially — K independent engines,
/// K passes over seed-independent setup.
pub fn end_to_end_multi_seed_solo(eval_us: u64, seeds: &[u64]) -> Vec<RunReport> {
    seeds.iter().map(|&s| end_to_end(eval_us, s)).collect()
}

/// The lockstep half of the pair: the same K replicas advanced by
/// [`memnet_core::Engine::run_many`], sharing seed-independent setup
/// (and threads, where the host has them). Reports are bit-identical to
/// the solo half's — the lockstep metamorphic suite proves it — so the
/// pair measures pure engine overhead, not different work.
pub fn end_to_end_multi_seed_lockstep(eval_us: u64, seeds: &[u64]) -> Vec<RunReport> {
    memnet_core::Engine::run_many(&base_config(eval_us, seeds[0]), seeds)
}

fn base_config(eval_us: u64, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::builder()
        .workload("mixD")
        .eval_period(SimDuration::from_us(eval_us))
        .seed(seed)
        .build()
        .expect("static config is valid");
    cfg.policy = PolicyKind::NetworkAware;
    cfg.mechanism = Mechanism::VwlRoo;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_are_deterministic() {
        assert_eq!(event_queue_churn(10_000, 11), event_queue_churn(10_000, 11));
        assert_eq!(fault_draws(50_000, 42), fault_draws(50_000, 42));
        let a = end_to_end(30, 7);
        let b = end_to_end(30, 7);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.completed_reads, b.completed_reads);
        assert!(a.events_processed > 0);
    }

    #[test]
    fn obs_recorder_does_not_perturb_the_simulation() {
        let off = end_to_end_obs(120, 7, false);
        let on = end_to_end_obs(120, 7, true);
        assert_eq!(off.events_processed, on.events_processed);
        assert_eq!(off.completed_reads, on.completed_reads);
        assert_eq!(off.power.watts().to_bits(), on.power.watts().to_bits());
        assert!(off.obs.is_none());
        assert!(on.obs.as_ref().is_some_and(|o| !o.epochs.is_empty()));
    }

    #[test]
    fn multi_seed_pair_does_identical_work() {
        let seeds = multi_seed_seeds();
        let solo = end_to_end_multi_seed_solo(30, &seeds);
        let lockstep = end_to_end_multi_seed_lockstep(30, &seeds);
        assert_eq!(solo.len(), MULTI_SEED_K);
        assert_eq!(lockstep.len(), MULTI_SEED_K);
        for (a, b) in solo.iter().zip(&lockstep) {
            assert_eq!(a.events_processed, b.events_processed);
            assert_eq!(a.completed_reads, b.completed_reads);
        }
    }

    #[test]
    fn policy_epochs_produce_decisions() {
        assert!(policy_epochs(3) > 0);
    }

    #[test]
    fn fault_draws_hit_a_plausible_rate() {
        // 5 flits × 1e-3 per flit ≈ 0.5 % of packets corrupted.
        let corrupted = fault_draws(200_000, 42);
        assert!(corrupted > 200 && corrupted < 4_000, "corrupted = {corrupted}");
    }
}
