//! The `perf` command line: runs the benchmark suite and emits a
//! schema-versioned `BENCH_<git-sha>.json` report; optionally gates
//! against a baseline.
//!
//! ```text
//! perf [--quick] [--out FILE] [--check BASELINE] [--bless FILE]
//!      [--tolerance PCT] [--obs-gate PCT] [--lockstep-gate RATIO]
//! ```
//!
//! * `--quick` — smaller op counts (~1 s); what CI runs.
//! * `--out FILE` — report destination (default `BENCH_<sha>.json`).
//! * `--check FILE` — compare against a baseline report; exit 1 when any
//!   gated bench's events/sec fell more than the tolerance.
//! * `--bless FILE` — also write the fresh report to FILE (the re-bless
//!   flow for an intentional perf change).
//! * `--tolerance P` — gate threshold in percent (default 20).
//! * `--obs-gate P` — exit 1 when the observability recorder costs more
//!   than P percent events/sec (`end_to_end_obs_on` vs `_off`).
//! * `--lockstep-gate R` — exit 1 when the multi-seed lockstep bench's
//!   aggregate events/sec is less than R times the solo bench's. On a
//!   host without ≥ 2 cores the requirement relaxes to the serial
//!   no-regression floor (see [`crate::LOCKSTEP_SERIAL_FLOOR`]) — serial
//!   interleaving cannot speed replicas up, only avoid slowing them.

use std::process::ExitCode;

use memnet_simcore::{memnet_log, memnet_warn};

use crate::{find_regressions, run_suite, BenchReport};

struct Args {
    quick: bool,
    out: Option<String>,
    check: Option<String>,
    bless: Option<String>,
    tolerance: f64,
    obs_gate: Option<f64>,
    lockstep_gate: Option<f64>,
}

fn usage() -> &'static str {
    "usage: perf [--quick] [--out FILE] [--check BASELINE] [--bless FILE] \
     [--tolerance PCT] [--obs-gate PCT] [--lockstep-gate RATIO]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        quick: false,
        out: None,
        check: None,
        bless: None,
        tolerance: 20.0,
        obs_gate: None,
        lockstep_gate: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = Some(value("--out")?),
            "--check" => args.check = Some(value("--check")?),
            "--bless" => args.bless = Some(value("--bless")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|_| "--tolerance wants a number (percent)".to_owned())?;
            }
            "--obs-gate" => {
                args.obs_gate = Some(
                    value("--obs-gate")?
                        .parse()
                        .map_err(|_| "--obs-gate wants a number (percent)".to_owned())?,
                );
            }
            "--lockstep-gate" => {
                args.lockstep_gate = Some(
                    value("--lockstep-gate")?
                        .parse()
                        .map_err(|_| "--lockstep-gate wants a ratio (e.g. 1.5)".to_owned())?,
                );
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

/// Entry point of the workspace-root `perf` binary
/// (`cargo run --release --bin perf`).
pub fn run() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            memnet_warn!("[perf] {msg}");
            return ExitCode::from(2);
        }
    };

    memnet_log!("[perf] running suite ({} mode)...", if args.quick { "quick" } else { "full" });
    let report = run_suite(args.quick);
    for b in &report.benches {
        let eps = b.events_per_sec.map(|e| format!(", {:.0} events/s", e)).unwrap_or_default();
        memnet_log!(
            "[perf]   {:<24} {:>10} ops  {:>9.1} ms  {:>9.1} ns/op{eps}",
            b.name,
            b.iters,
            b.wall_ms,
            b.per_iter_ns
        );
    }
    let rss = report
        .peak_rss_kb
        .map(|kb| format!("{kb} KiB"))
        .unwrap_or_else(|| "unavailable".to_owned());
    memnet_log!("[perf] peak RSS {rss}, git {}", report.git_sha);

    let out = args.out.clone().unwrap_or_else(|| report.filename());
    if let Err(e) = std::fs::write(&out, report.to_json() + "\n") {
        memnet_warn!("[perf] cannot write {out}: {e}");
        return ExitCode::from(2);
    }
    memnet_log!("[perf] wrote {out}");

    if let Some(path) = &args.bless {
        if let Err(e) = std::fs::write(path, report.to_json() + "\n") {
            memnet_warn!("[perf] cannot write baseline {path}: {e}");
            return ExitCode::from(2);
        }
        memnet_log!("[perf] blessed baseline {path}");
    }

    if let Some(path) = &args.check {
        let baseline = match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| BenchReport::from_json(&text).map_err(|e| format!("{e:?}")))
        {
            Ok(b) => b,
            Err(e) => {
                memnet_warn!("[perf] cannot load baseline {path}: {e}");
                return ExitCode::from(2);
            }
        };
        match find_regressions(&baseline, &report, args.tolerance / 100.0) {
            Err(e) => {
                memnet_warn!("[perf] {e}");
                return ExitCode::from(2);
            }
            Ok(regs) if regs.is_empty() => {
                memnet_log!(
                    "[perf] gate passed: no bench regressed more than {:.0}% vs {path}",
                    args.tolerance
                );
            }
            Ok(regs) => {
                for r in &regs {
                    memnet_warn!(
                        "[perf] REGRESSION {}: {:.0} events/s vs baseline {:.0} ({:.1}% slower)",
                        r.name,
                        r.current,
                        r.baseline,
                        r.slowdown() * 100.0
                    );
                }
                memnet_warn!(
                    "[perf] gate failed; if this slowdown is intentional, re-bless with \
                     `cargo run --release --bin perf -- --quick --bless {path}`"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(gate_pct) = args.obs_gate {
        let eps = |name: &str| {
            report.benches.iter().find(|b| b.name == name).and_then(|b| b.events_per_sec)
        };
        match (eps("end_to_end_obs_off"), eps("end_to_end_obs_on")) {
            (Some(off), Some(on)) if off > 0.0 => {
                let overhead_pct = (1.0 - on / off) * 100.0;
                if overhead_pct > gate_pct {
                    memnet_warn!(
                        "[perf] obs gate failed: recorder costs {overhead_pct:.2}% events/s \
                         ({on:.0} on vs {off:.0} off), limit {gate_pct}%"
                    );
                    return ExitCode::FAILURE;
                }
                memnet_log!(
                    "[perf] obs gate passed: recorder costs {overhead_pct:.2}% events/s \
                     (limit {gate_pct}%)"
                );
            }
            _ => {
                memnet_warn!("[perf] obs gate needs the end_to_end_obs_off/_on bench pair");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(target) = args.lockstep_gate {
        let parallel = std::thread::available_parallelism().map(|n| n.get() >= 2).unwrap_or(false);
        match crate::lockstep_gate(&report, target, parallel) {
            Err(e) => {
                memnet_warn!("[perf] {e}");
                return ExitCode::from(2);
            }
            Ok(gate) if gate.pass => {
                memnet_log!(
                    "[perf] lockstep gate passed: {:.2}x aggregate events/s vs solo \
                     (floor {:.2}x, {})",
                    gate.ratio,
                    gate.required,
                    if gate.parallel { "multi-core target" } else { "serial host floor" }
                );
            }
            Ok(gate) => {
                memnet_warn!(
                    "[perf] lockstep gate failed: {:.2}x aggregate events/s vs solo, \
                     floor {:.2}x ({})",
                    gate.ratio,
                    gate.required,
                    if gate.parallel { "multi-core target" } else { "serial host floor" }
                );
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
