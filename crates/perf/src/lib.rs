//! Performance microbenchmarks and the perf-regression gate.
//!
//! This crate owns three things:
//!
//! 1. **Benchmark kernels** ([`kernels`]): small, deterministic workloads
//!    exercising one hot component each — the event queue, link-energy
//!    pricing, fault-model draws, a policy epoch (AMS/ISP step) and an
//!    end-to-end simulation. The `components` criterion bench and the
//!    `perf` binary both run these, so interactive `cargo bench` numbers
//!    and CI gate numbers measure the same code.
//! 2. **The report format** ([`BenchReport`]): a schema-versioned JSON
//!    document (`BENCH_<git-sha>.json`) with wall time and derived
//!    throughput per bench, peak RSS, and (behind the `perf-alloc`
//!    feature) allocation counts.
//! 3. **The regression gate** ([`find_regressions`]): compares a fresh
//!    report against a checked-in baseline and flags any bench whose
//!    simulator events/sec fell by more than the tolerance (CI uses 20 %).
//!
//! The gate intentionally keys on *events/sec of the end-to-end bench*,
//! not on microbenchmark wall times: sub-microsecond component timings are
//! too noisy on shared CI runners to gate at 20 %, while a real hot-path
//! regression always shows up in end-to-end event throughput.

use std::time::Instant;

use serde::{json, Deserialize, Serialize};

pub mod cli;
pub mod kernels;

/// Bump when the [`BenchReport`] layout changes; the gate refuses to
/// compare reports across schema versions (re-bless instead).
///
/// History: v2 added the multi-seed lockstep bench pair and the
/// per-replica throughput fields (`replicas`,
/// `events_per_sec_per_replica`).
pub const BENCH_SCHEMA_VERSION: u32 = 2;

#[cfg(feature = "perf-alloc")]
mod counting_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Total allocation calls (alloc + realloc) since process start.
    pub static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// System allocator wrapper counting allocation calls.
    pub struct CountingAllocator;

    // SAFETY: delegates every operation to `System`; the counter is a
    // relaxed atomic with no allocation of its own.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

/// Allocation calls so far, when built with `--features perf-alloc`;
/// `None` otherwise.
pub fn allocations() -> Option<u64> {
    #[cfg(feature = "perf-alloc")]
    {
        Some(counting_alloc::ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed))
    }
    #[cfg(not(feature = "perf-alloc"))]
    {
        None
    }
}

/// One benchmark's measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchResult {
    /// Stable bench name (the gate matches baselines by this).
    pub name: String,
    /// Inner operations performed (events, draws, pricings, …).
    pub iters: u64,
    /// Total wall time in milliseconds.
    pub wall_ms: f64,
    /// Wall time per inner operation in nanoseconds.
    pub per_iter_ns: f64,
    /// Inner operations per second (1e9 / `per_iter_ns`).
    pub ops_per_sec: f64,
    /// Simulator events per second; set only by end-to-end benches, and
    /// the only metric the regression gate keys on. For multi-replica
    /// benches this is the *aggregate* over all replicas.
    pub events_per_sec: Option<f64>,
    /// Replica count of a multi-seed bench (`None` for single runs).
    pub replicas: Option<u64>,
    /// `events_per_sec / replicas` — per-replica throughput, the number
    /// to compare against a single-run bench's events/sec.
    pub events_per_sec_per_replica: Option<f64>,
    /// Allocation calls during the measurement (`perf-alloc` builds only).
    pub allocations: Option<u64>,
}

/// A full benchmark run, serialized as `BENCH_<git-sha>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenchReport {
    /// [`BENCH_SCHEMA_VERSION`] at write time.
    pub schema_version: u32,
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a checkout.
    pub git_sha: String,
    /// Whether the suite ran in `--quick` mode (smaller op counts).
    pub quick: bool,
    /// Peak resident set size in KiB (`VmHWM`), or `null` where procfs
    /// does not expose it (non-Linux hosts, restricted containers). A
    /// missing measurement must read as missing, not as an impossible
    /// 0 KiB peak.
    pub peak_rss_kb: Option<u64>,
    /// Per-bench measurements, in suite order.
    pub benches: Vec<BenchResult>,
}

impl BenchReport {
    /// The canonical output filename for this report.
    pub fn filename(&self) -> String {
        format!("BENCH_{}.json", self.git_sha)
    }

    /// Serializes the report to JSON text.
    pub fn to_json(&self) -> String {
        json::to_string(self)
    }

    /// Parses a report from JSON text.
    pub fn from_json(text: &str) -> Result<BenchReport, serde::de::Error> {
        json::from_str(text)
    }
}

/// One gate failure: a bench whose events/sec fell below tolerance.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The bench that regressed (or disappeared).
    pub name: String,
    /// Baseline events/sec.
    pub baseline: f64,
    /// Current events/sec (0.0 when the bench vanished from the suite).
    pub current: f64,
}

impl Regression {
    /// Fractional slowdown, e.g. 0.25 for a 25 % drop.
    pub fn slowdown(&self) -> f64 {
        if self.baseline <= 0.0 {
            0.0
        } else {
            1.0 - self.current / self.baseline
        }
    }
}

/// Compares `current` against `baseline`, returning every gated bench
/// whose events/sec dropped by more than `tolerance` (0.20 = 20 %).
///
/// Only benches reporting [`BenchResult::events_per_sec`] participate; a
/// gated baseline bench missing from `current` counts as a regression
/// (silently dropping the end-to-end bench must not pass the gate).
///
/// # Errors
///
/// Returns an error when the schema versions differ — numbers across
/// schema changes are not comparable; re-bless the baseline instead.
pub fn find_regressions(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance: f64,
) -> Result<Vec<Regression>, String> {
    if baseline.schema_version != current.schema_version {
        return Err(format!(
            "schema mismatch: baseline v{}, current v{} — re-bless the baseline",
            baseline.schema_version, current.schema_version
        ));
    }
    let mut out = Vec::new();
    for base in &baseline.benches {
        let Some(base_eps) = base.events_per_sec else { continue };
        let cur_eps = current
            .benches
            .iter()
            .find(|b| b.name == base.name)
            .and_then(|b| b.events_per_sec)
            .unwrap_or(0.0);
        if cur_eps < base_eps * (1.0 - tolerance) {
            out.push(Regression { name: base.name.clone(), baseline: base_eps, current: cur_eps });
        }
    }
    Ok(out)
}

/// Aggregate events/sec floor the lockstep half must hold against the
/// solo half on a host without usable parallelism: replicas interleave
/// serially there, so the honest expectation is parity (shared setup
/// minus batching overhead), not speedup.
pub const LOCKSTEP_SERIAL_FLOOR: f64 = 0.9;

/// The lockstep speedup gate's verdict.
#[derive(Debug, Clone)]
pub struct LockstepGate {
    /// Measured aggregate events/sec ratio, lockstep over solo.
    pub ratio: f64,
    /// The floor the ratio was held to.
    pub required: f64,
    /// Whether the multi-core target applied (vs the serial floor).
    pub parallel: bool,
    /// `ratio >= required`.
    pub pass: bool,
}

/// Gates the multi-seed lockstep speedup: the aggregate events/sec of
/// `end_to_end_multi_seed_lockstep` over `_solo` must reach `target`
/// (e.g. 1.5) when `parallel` — the host can actually run replicas on
/// separate cores — or [`LOCKSTEP_SERIAL_FLOOR`] otherwise. Callers pass
/// `parallel` explicitly (the CLI detects it via
/// `std::thread::available_parallelism`) so the policy stays testable.
///
/// # Errors
///
/// Fails when either half of the bench pair is missing from the report.
pub fn lockstep_gate(
    report: &BenchReport,
    target: f64,
    parallel: bool,
) -> Result<LockstepGate, String> {
    let eps = |name: &str| {
        report
            .benches
            .iter()
            .find(|b| b.name == name)
            .and_then(|b| b.events_per_sec)
            .ok_or_else(|| format!("lockstep gate needs the {name} bench"))
    };
    let solo = eps("end_to_end_multi_seed_solo")?;
    let lockstep = eps("end_to_end_multi_seed_lockstep")?;
    if solo <= 0.0 {
        return Err("lockstep gate: solo bench reported no throughput".into());
    }
    let ratio = lockstep / solo;
    let required = if parallel { target } else { LOCKSTEP_SERIAL_FLOOR };
    Ok(LockstepGate { ratio, required, parallel, pass: ratio >= required })
}

/// `git rev-parse --short HEAD`, or `"unknown"` when git or the checkout
/// is unavailable (e.g. a source tarball).
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Peak resident set size in KiB from `/proc/self/status` (`VmHWM`), or
/// `None` where procfs is unavailable or does not carry the field. Warns
/// once per process on the first failed read so reports silently carrying
/// `null` still leave a trail in the log.
pub fn peak_rss_kb() -> Option<u64> {
    static WARNED: std::sync::Once = std::sync::Once::new();
    let parsed = std::fs::read_to_string("/proc/self/status").ok().and_then(|status| {
        status
            .lines()
            .find_map(|l| l.strip_prefix("VmHWM:"))
            .and_then(|rest| rest.split_whitespace().next())
            .and_then(|kb| kb.parse().ok())
    });
    if parsed.is_none() {
        WARNED.call_once(|| {
            memnet_simcore::memnet_warn!(
                "[perf] peak RSS unavailable (/proc/self/status has no readable VmHWM); reporting null"
            );
        });
    }
    parsed
}

/// Times `ops` inner operations of `f`, attributing allocation deltas
/// when the counting allocator is compiled in.
fn timed<R>(name: &str, ops: u64, mut f: impl FnMut() -> R) -> BenchResult {
    let alloc_before = allocations();
    let start = Instant::now();
    std::hint::black_box(f());
    let wall = start.elapsed();
    let wall_s = wall.as_secs_f64().max(1e-12);
    BenchResult {
        name: name.to_owned(),
        iters: ops,
        wall_ms: wall_s * 1e3,
        per_iter_ns: wall_s * 1e9 / ops as f64,
        ops_per_sec: ops as f64 / wall_s,
        events_per_sec: None,
        replicas: None,
        events_per_sec_per_replica: None,
        allocations: alloc_before.and_then(|b| allocations().map(|a| a - b)),
    }
}

/// Times an end-to-end simulation bench: runs `f` `repeats` times, keeps
/// the fastest run (damping one-off costs and scheduler noise) and
/// derives events/sec from the report's `events_processed`.
fn end_to_end_bench(
    name: &str,
    repeats: u32,
    mut f: impl FnMut() -> memnet_core::RunReport,
) -> BenchResult {
    let mut best: Option<BenchResult> = None;
    for _ in 0..repeats.max(1) {
        let mut events = 0u64;
        let mut result = timed(name, 1, || {
            let report = f();
            events = report.events_processed;
            report.completed_reads
        });
        result.iters = events;
        result.per_iter_ns = result.wall_ms * 1e6 / events.max(1) as f64;
        result.ops_per_sec = events as f64 / (result.wall_ms / 1e3);
        result.events_per_sec = Some(result.ops_per_sec);
        if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best = Some(result);
        }
    }
    best.expect("at least one repeat")
}

/// Times a multi-replica end-to-end bench: like [`end_to_end_bench`],
/// but `f` yields one report per replica, events are the aggregate over
/// all replicas, and the per-replica throughput fields are filled in.
fn end_to_end_many_bench(
    name: &str,
    repeats: u32,
    mut f: impl FnMut() -> Vec<memnet_core::RunReport>,
) -> BenchResult {
    let mut best: Option<BenchResult> = None;
    for _ in 0..repeats.max(1) {
        let mut events = 0u64;
        let mut replicas = 0u64;
        let mut result = timed(name, 1, || {
            let reports = f();
            replicas = reports.len() as u64;
            events = reports.iter().map(|r| r.events_processed).sum();
            reports.iter().map(|r| r.completed_reads).sum::<u64>()
        });
        result.iters = events;
        result.per_iter_ns = result.wall_ms * 1e6 / events.max(1) as f64;
        result.ops_per_sec = events as f64 / (result.wall_ms / 1e3);
        result.events_per_sec = Some(result.ops_per_sec);
        result.replicas = Some(replicas);
        result.events_per_sec_per_replica = Some(result.ops_per_sec / replicas.max(1) as f64);
        if best.as_ref().is_none_or(|b| result.wall_ms < b.wall_ms) {
            best = Some(result);
        }
    }
    best.expect("at least one repeat")
}

/// Runs the full suite and assembles the report. `quick` shrinks the op
/// counts for CI (~1 s total) without changing the bench set.
pub fn run_suite(quick: bool) -> BenchReport {
    let scale = if quick { 1 } else { 10 };
    let mut benches = Vec::new();

    let n = 50_000 * scale;
    benches.push(timed("event_queue_push_pop", n, || kernels::event_queue_churn(n, 11)));

    let n = 20_000 * scale;
    benches.push(timed("link_energy_pricing", n, || kernels::link_pricing(n)));

    let n = 100_000 * scale;
    benches.push(timed("fault_model_draw", n, || kernels::fault_draws(n, 42)));

    let n = 200 * scale;
    benches.push(timed("policy_epoch_ams_isp", n, || kernels::policy_epochs(n)));

    let eval_us = if quick { 50 } else { 400 };
    benches.push(end_to_end_bench("end_to_end_small", 1, || kernels::end_to_end(eval_us, 7)));

    // Observability overhead pair: the same end-to-end run with the
    // recorder off and on, long enough (>= 200 us) to cross several epoch
    // boundaries so the per-epoch sampler is actually on the measured
    // path. Best-of-N damps scheduler noise; `--obs-gate` compares the
    // two events/sec figures.
    let obs_eval_us = if quick { 200 } else { 400 };
    benches.push(end_to_end_bench("end_to_end_obs_off", 3, || {
        kernels::end_to_end_obs(obs_eval_us, 7, false)
    }));
    benches.push(end_to_end_bench("end_to_end_obs_on", 3, || {
        kernels::end_to_end_obs(obs_eval_us, 7, true)
    }));

    // Multi-seed lockstep pair: K replicas run solo (K engines, one per
    // seed) vs through Engine::run_many (shared setup; thread-parallel
    // replicas where the host has cores). Both halves do bit-identical
    // work, so their aggregate events/sec ratio is the lockstep engine's
    // speedup — `--lockstep-gate` enforces a floor on it.
    let seeds = kernels::multi_seed_seeds();
    let ms_eval_us = if quick { 100 } else { 300 };
    benches.push(end_to_end_many_bench("end_to_end_multi_seed_solo", 2, || {
        kernels::end_to_end_multi_seed_solo(ms_eval_us, &seeds)
    }));
    benches.push(end_to_end_many_bench("end_to_end_multi_seed_lockstep", 2, || {
        kernels::end_to_end_multi_seed_lockstep(ms_eval_us, &seeds)
    }));

    BenchReport {
        schema_version: BENCH_SCHEMA_VERSION,
        git_sha: git_sha(),
        quick,
        peak_rss_kb: peak_rss_kb(),
        benches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(eps: f64) -> BenchReport {
        BenchReport {
            schema_version: BENCH_SCHEMA_VERSION,
            git_sha: "deadbee".to_owned(),
            quick: true,
            peak_rss_kb: Some(1),
            benches: vec![BenchResult {
                name: "end_to_end_small".to_owned(),
                iters: 100,
                wall_ms: 1.0,
                per_iter_ns: 10.0,
                ops_per_sec: eps,
                events_per_sec: Some(eps),
                replicas: None,
                events_per_sec_per_replica: None,
                allocations: None,
            }],
        }
    }

    fn with_pair(solo_eps: f64, lockstep_eps: f64) -> BenchReport {
        let mut report = fake_report(1e6);
        for (name, eps) in [
            ("end_to_end_multi_seed_solo", solo_eps),
            ("end_to_end_multi_seed_lockstep", lockstep_eps),
        ] {
            let mut b = report.benches[0].clone();
            b.name = name.to_owned();
            b.ops_per_sec = eps;
            b.events_per_sec = Some(eps);
            b.replicas = Some(8);
            b.events_per_sec_per_replica = Some(eps / 8.0);
            report.benches.push(b);
        }
        report
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = fake_report(1e6);
        let back = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.schema_version, report.schema_version);
        assert_eq!(back.git_sha, report.git_sha);
        assert_eq!(back.benches.len(), 1);
        assert_eq!(back.benches[0].events_per_sec, Some(1e6));
        assert_eq!(back.filename(), "BENCH_deadbee.json");
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = fake_report(1e6);
        // 10 % down: inside a 20 % gate.
        assert!(find_regressions(&base, &fake_report(0.9e6), 0.20).unwrap().is_empty());
        // 25 % down: outside.
        let regs = find_regressions(&base, &fake_report(0.75e6), 0.20).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].name, "end_to_end_small");
        assert!((regs[0].slowdown() - 0.25).abs() < 1e-9);
        // Faster is never a regression.
        assert!(find_regressions(&base, &fake_report(2e6), 0.20).unwrap().is_empty());
    }

    #[test]
    fn lockstep_gate_scales_its_floor_to_host_parallelism() {
        // 1.8x speedup: passes the 1.5x multi-core target.
        let fast = with_pair(1e6, 1.8e6);
        let g = lockstep_gate(&fast, 1.5, true).unwrap();
        assert!(g.pass && g.parallel);
        assert!((g.ratio - 1.8).abs() < 1e-9);
        // 1.1x: fails the multi-core target but clears the serial floor,
        // which is what a single-core host is honestly capable of.
        let modest = with_pair(1e6, 1.1e6);
        assert!(!lockstep_gate(&modest, 1.5, true).unwrap().pass);
        let serial = lockstep_gate(&modest, 1.5, false).unwrap();
        assert!(serial.pass && !serial.parallel);
        assert!((serial.required - LOCKSTEP_SERIAL_FLOOR).abs() < 1e-9);
        // An actual lockstep slowdown fails everywhere.
        assert!(!lockstep_gate(&with_pair(1e6, 0.5e6), 1.5, false).unwrap().pass);
        // A report missing the pair cannot pass silently.
        assert!(lockstep_gate(&fake_report(1e6), 1.5, true).is_err());
    }

    #[test]
    fn gate_flags_missing_bench_and_schema_mismatch() {
        let base = fake_report(1e6);
        let mut empty = fake_report(1e6);
        empty.benches.clear();
        let regs = find_regressions(&base, &empty, 0.20).unwrap();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].current, 0.0);

        let mut newer = fake_report(1e6);
        newer.schema_version += 1;
        assert!(find_regressions(&base, &newer, 0.20).is_err());
    }
}
