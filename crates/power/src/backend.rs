//! Pluggable energy backends: the paper's analytical model and an
//! IDD-style current-based model behind one [`EnergyBackend`] trait.
//!
//! The simulator meters *activity* (link time-in-state residencies, DRAM
//! accesses, routed flits); a backend prices that activity into joules.
//! Two independent pricings of identical activity are what make
//! cross-model validation possible: both must satisfy the same
//! double-entry conservation audits, and `memnet diff-models` flags
//! wherever their answers diverge beyond a threshold.

use memnet_net::link::{state_on_active, state_on_idle, state_retrans, STATE_OFF, STATE_WAKING};
use memnet_net::mech::{BwMode, N_BW_MODES};
use memnet_net::HmcRadix;
use memnet_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::energy::EnergyBreakdown;
use crate::model::HmcPowerModel;

/// Per-module activity counters for one accounting window, as metered by
/// the engine. Reads and writes are split so current-based backends can
/// price a write premium (IDD4W > IDD4R); the analytical backend sums
/// them back into one access count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModuleActivity {
    /// 64 B DRAM read accesses completed in the window.
    pub dram_reads: u64,
    /// 64 B DRAM write accesses completed in the window.
    pub dram_writes: u64,
    /// Flits routed through the module's logic die in the window.
    pub flits_routed: u64,
}

impl ModuleActivity {
    /// Total DRAM accesses (reads + writes).
    pub fn dram_accesses(&self) -> u64 {
        self.dram_reads + self.dram_writes
    }
}

/// An energy model: prices metered activity into [`EnergyBreakdown`]
/// joules.
///
/// Implementations must be pure functions of their parameters — the same
/// residency snapshot and activity counters must always price to the
/// same joules, or runs stop being reproducible and the double-entry
/// audit diffs stop meaning anything.
pub trait EnergyBackend: Send + Sync + std::fmt::Debug {
    /// Short stable identifier (`"analytical"`, `"idd"`), used in reports.
    fn name(&self) -> &'static str;

    /// Power of one unidirectional link running in `mode` (idle or
    /// active — the paper's links burn the same either way), watts.
    fn link_mode_watts(&self, mode: BwMode) -> f64;

    /// Residual power of one unidirectional link in the off state, watts.
    fn link_off_watts(&self) -> f64;

    /// Power of one unidirectional link while waking (full power, no
    /// data), watts.
    fn link_waking_watts(&self) -> f64;

    /// Converts one link's time-in-state residency snapshot into I/O
    /// energy. Index layout follows [`memnet_net::link`]: off, waking,
    /// then (idle, active) per bandwidth mode, then retransmitting per
    /// bandwidth mode. Waking is booked as idle I/O; retransmission is
    /// priced at the mode's active power in its own category.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the accounting layout.
    fn link_energy(&self, residency: &[SimDuration]) -> EnergyBreakdown {
        assert_eq!(residency.len(), 2 + 3 * N_BW_MODES, "unexpected residency snapshot length");
        let mut e = EnergyBreakdown::default();
        e.idle_io += self.link_off_watts() * residency[STATE_OFF].as_secs();
        e.idle_io += self.link_waking_watts() * residency[STATE_WAKING].as_secs();
        for i in 0..N_BW_MODES {
            let mode = BwMode::from_index(i);
            let p = self.link_mode_watts(mode);
            e.idle_io += p * residency[state_on_idle(mode)].as_secs();
            e.active_io += p * residency[state_on_active(mode)].as_secs();
            e.retrans_io += p * residency[state_retrans(mode)].as_secs();
        }
        e
    }

    /// Converts one module's background window and activity counters into
    /// non-I/O energy over `[start, end)`.
    fn module_energy(
        &self,
        radix: HmcRadix,
        start: SimTime,
        end: SimTime,
        activity: &ModuleActivity,
    ) -> EnergyBreakdown;
}

impl EnergyBackend for HmcPowerModel {
    fn name(&self) -> &'static str {
        "analytical"
    }

    fn link_mode_watts(&self, mode: BwMode) -> f64 {
        self.io_watts_per_unilink() * mode.power_fraction()
    }

    fn link_off_watts(&self) -> f64 {
        self.io_watts_per_unilink() * self.link_off_fraction
    }

    fn link_waking_watts(&self) -> f64 {
        self.io_watts_per_unilink()
    }

    // Delegate to the inherent method: pre-trait callers and the trait
    // object must price bit-identically.
    fn link_energy(&self, residency: &[SimDuration]) -> EnergyBreakdown {
        HmcPowerModel::link_energy(self, residency)
    }

    fn module_energy(
        &self,
        radix: HmcRadix,
        start: SimTime,
        end: SimTime,
        activity: &ModuleActivity,
    ) -> EnergyBreakdown {
        HmcPowerModel::module_energy(
            self,
            radix,
            start,
            end,
            activity.dram_accesses(),
            activity.flits_routed,
        )
    }
}

/// IDD-style current-based energy model: joules from rail voltages,
/// datasheet-style currents, and per-event charge, instead of the
/// analytical model's peak-power splits.
///
/// Naming follows JEDEC DRAM datasheets. Burst and activation currents
/// are *increments above standby* (IDD4R − IDD3N etc.), so background
/// and dynamic energy never double-count; with the model not tracking
/// per-bank state, background current is the precharge-standby IDD2N and
/// the IDD3N delta folds into the per-access terms.
///
/// Pricing:
///
/// - link in mode m: `vddq · io_on_current · power_fraction(m)` watts
///   (off/waking use `io_off_current`/`io_wake_current` at full width);
/// - DRAM background: `vdd · idd2n` watts per high-radix stack;
/// - one access: `vdd · idd0 · t_activate + vdd · idd4r · t_burst`
///   joules, plus `vdd · (idd4w − idd4r) · t_burst` write premium;
/// - logic: `vlogic · ilogic_idle` watts background,
///   `vlogic · q_flit` joules per routed flit.
///
/// Low-radix stacks scale background currents by 0.5, mirroring the
/// analytical model's proportional-peak assumption.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IddModel {
    /// DRAM core rail voltage, volts.
    pub vdd: f64,
    /// Link I/O rail voltage, volts.
    pub vddq: f64,
    /// Logic-die rail voltage, volts.
    pub vlogic: f64,
    /// Precharge-standby current per high-radix stack (IDD2N), amps.
    pub idd2n: f64,
    /// Activate/precharge current increment per access (IDD0 − IDD3N),
    /// amps, flowing for `t_activate`.
    pub idd0: f64,
    /// Read-burst current increment (IDD4R − IDD3N), amps, flowing for
    /// `t_burst`.
    pub idd4r: f64,
    /// Write-burst current increment (IDD4W − IDD3N), amps, flowing for
    /// `t_burst`.
    pub idd4w: f64,
    /// Row activate/precharge window per access, seconds.
    pub t_activate: f64,
    /// Data-burst window per 64 B access, seconds.
    pub t_burst: f64,
    /// Logic-die background current per high-radix stack, amps.
    pub ilogic_idle: f64,
    /// Switched charge per flit routed through the logic die, coulombs.
    pub q_flit: f64,
    /// Full-width on-state current of one unidirectional link, amps.
    pub io_on_current: f64,
    /// Off-state residual current of one unidirectional link, amps.
    pub io_off_current: f64,
    /// Waking current of one unidirectional link, amps.
    pub io_wake_current: f64,
}

impl IddModel {
    /// Independent HMC gen2-flavored current table. The values are chosen
    /// from the same datasheet regime as the analytical model but derived
    /// through currents, so the two backends land within a few percent of
    /// each other — close enough that `memnet diff-models` passes at its
    /// default 5 % threshold, far enough that a miscalibrated entry is
    /// visible.
    pub fn hmc_gen2() -> Self {
        IddModel {
            vdd: 1.2,
            vddq: 1.2,
            vlogic: 0.9,
            // 1.2 V × 0.47 A = 0.564 W background vs analytical 0.5762 W.
            idd2n: 0.47,
            // Per access: 1.2 V × (0.070 + 0.068) A × 8 ns = 1.3248 nJ vs
            // analytical 1.296 nJ.
            idd0: 0.070,
            idd4r: 0.068,
            // Writes burn ~3 % more than reads; the analytical model
            // cannot express this asymmetry at all.
            idd4w: 0.072,
            t_activate: 8.0e-9,
            t_burst: 8.0e-9,
            // 0.9 V × 0.84 A = 0.756 W vs analytical 0.737 W.
            ilogic_idle: 0.84,
            // 0.9 V × 0.101 nC = 0.0909 nJ/flit vs analytical 0.0884 nJ.
            q_flit: 0.101e-9,
            // 1.2 V × 0.475 A = 0.570 W/unilink vs analytical 0.58625 W.
            io_on_current: 0.475,
            // 1.2 V × 5 mA = 6.0 mW off-state vs analytical 5.8625 mW.
            io_off_current: 0.005,
            io_wake_current: 0.475,
        }
    }

    /// Derives an IDD table that reprices the given analytical model
    /// **bit-identically** — the metamorphic anchor proving the two
    /// pricing pipelines implement the same arithmetic.
    ///
    /// Exactness argument: every conversion constant is a power of two
    /// (0.5 V rails, 2⁻²⁷ s windows), so each derived current is an
    /// exact binary scaling of an analytical watts/joules figure, and
    /// multiplying it back by the rail voltage and window reproduces the
    /// original value exactly (multiplication by a power of two is exact
    /// in IEEE 754 barring over/underflow, far from reach here). The
    /// per-access energy splits into two exact halves (activate + burst)
    /// whose sum restores it, and `idd4w == idd4r` makes the write
    /// premium exactly zero.
    pub fn from_analytical(m: &HmcPowerModel) -> Self {
        const V: f64 = 0.5; // exact power-of-two rail voltage
        const T: f64 = 7.450580596923828e-9; // 2⁻²⁷ s ≈ 7.45 ns
        let e_acc = m.dram_dyn_energy_per_access();
        IddModel {
            vdd: V,
            vddq: V,
            vlogic: V,
            idd2n: m.dram_idle_watts(HmcRadix::High) * 2.0,
            // Split the per-access energy into exact halves across the
            // activate and burst windows: v·i·t = e/2 each.
            idd0: (e_acc * 0.5) / V / T,
            idd4r: (e_acc * 0.5) / V / T,
            idd4w: (e_acc * 0.5) / V / T,
            t_activate: T,
            t_burst: T,
            ilogic_idle: m.logic_idle_watts(HmcRadix::High) * 2.0,
            q_flit: m.logic_dyn_energy_per_flit() * 2.0,
            io_on_current: m.io_watts_per_unilink() * 2.0,
            io_off_current: (m.io_watts_per_unilink() * m.link_off_fraction) * 2.0,
            io_wake_current: m.io_watts_per_unilink() * 2.0,
        }
    }

    /// Background-current scale for a radix class (low radix = half the
    /// stack, matching the analytical model's proportional-peak split).
    fn radix_scale(radix: HmcRadix) -> f64 {
        match radix {
            HmcRadix::High => 1.0,
            HmcRadix::Low => 0.5,
        }
    }

    /// DRAM background power for a radix class, watts.
    pub fn dram_background_watts(&self, radix: HmcRadix) -> f64 {
        self.vdd * self.idd2n * Self::radix_scale(radix)
    }

    /// Logic background power for a radix class, watts.
    pub fn logic_background_watts(&self, radix: HmcRadix) -> f64 {
        self.vlogic * self.ilogic_idle * Self::radix_scale(radix)
    }

    /// Energy of one read access (activate + read burst), joules.
    pub fn read_access_energy(&self) -> f64 {
        self.vdd * self.idd0 * self.t_activate + self.vdd * self.idd4r * self.t_burst
    }

    /// Extra energy of a write access over a read access, joules.
    pub fn write_premium_energy(&self) -> f64 {
        self.vdd * (self.idd4w - self.idd4r) * self.t_burst
    }
}

impl EnergyBackend for IddModel {
    fn name(&self) -> &'static str {
        "idd"
    }

    fn link_mode_watts(&self, mode: BwMode) -> f64 {
        self.vddq * self.io_on_current * mode.power_fraction()
    }

    fn link_off_watts(&self) -> f64 {
        self.vddq * self.io_off_current
    }

    fn link_waking_watts(&self) -> f64 {
        self.vddq * self.io_wake_current
    }

    fn module_energy(
        &self,
        radix: HmcRadix,
        start: SimTime,
        end: SimTime,
        activity: &ModuleActivity,
    ) -> EnergyBreakdown {
        let window = (end - start).as_secs();
        // Base-plus-premium form: pricing reads and writes separately
        // (`e_r·reads + e_w·writes`) would round differently from the
        // analytical single multiply, breaking the from_analytical
        // bit-identity anchor. `x + 0.0 == x` keeps it exact when the
        // premium is zero.
        EnergyBreakdown {
            idle_io: 0.0,
            active_io: 0.0,
            logic_leak: self.logic_background_watts(radix) * window,
            logic_dyn: self.vlogic * self.q_flit * activity.flits_routed as f64,
            dram_leak: self.dram_background_watts(radix) * window,
            dram_dyn: self.read_access_energy() * activity.dram_accesses() as f64
                + self.write_premium_energy() * activity.dram_writes as f64,
            retrans_io: 0.0,
        }
    }
}

/// Which energy backend a run prices with. Selectable per run via
/// `--energy-backend` / `MEMNET_ENERGY_BACKEND` and recorded in the
/// bench cache key.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnergyBackendKind {
    /// The paper's analytical peak-split model ([`HmcPowerModel::paper`]).
    #[default]
    Analytical,
    /// The current-based table ([`IddModel::hmc_gen2`]).
    Idd,
}

impl EnergyBackendKind {
    /// Every selectable backend, in display order.
    pub const ALL: [EnergyBackendKind; 2] = [EnergyBackendKind::Analytical, EnergyBackendKind::Idd];

    /// Stable lowercase identifier (cache keys, CLI, reports).
    pub fn label(self) -> &'static str {
        match self {
            EnergyBackendKind::Analytical => "analytical",
            EnergyBackendKind::Idd => "idd",
        }
    }

    /// Parses a backend name (case-insensitive).
    pub fn parse(s: &str) -> Option<EnergyBackendKind> {
        match s.to_ascii_lowercase().as_str() {
            "analytical" => Some(EnergyBackendKind::Analytical),
            "idd" => Some(EnergyBackendKind::Idd),
            _ => None,
        }
    }

    /// Reads `MEMNET_ENERGY_BACKEND`, warning and defaulting to
    /// [`EnergyBackendKind::Analytical`] on an unrecognized value. Only
    /// the CLI layer calls this — builders never read the environment, so
    /// cached bench results can't be poisoned by ambient configuration.
    pub fn from_env() -> EnergyBackendKind {
        match std::env::var("MEMNET_ENERGY_BACKEND") {
            Err(_) => EnergyBackendKind::default(),
            Ok(v) => EnergyBackendKind::parse(&v).unwrap_or_else(|| {
                memnet_simcore::memnet_warn!(
                    "[power] MEMNET_ENERGY_BACKEND={v:?} not recognized \
                     (want analytical|idd); using analytical"
                );
                EnergyBackendKind::default()
            }),
        }
    }

    /// Instantiates the canonical backend of this kind.
    pub fn build(self) -> Box<dyn EnergyBackend> {
        match self {
            EnergyBackendKind::Analytical => Box::new(HmcPowerModel::paper()),
            EnergyBackendKind::Idd => Box::new(IddModel::hmc_gen2()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_net::link::N_ACCOUNTING_STATES;

    fn bits(e: &EnergyBreakdown) -> [u64; 7] {
        e.categories().map(f64::to_bits)
    }

    #[test]
    fn analytical_trait_object_prices_like_the_inherent_methods() {
        let m = HmcPowerModel::paper();
        let dynm: &dyn EnergyBackend = &m;
        let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
        for (i, s) in snap.iter_mut().enumerate() {
            *s = SimDuration::from_ns(1 + 37 * i as u64);
        }
        assert_eq!(bits(&dynm.link_energy(&snap)), bits(&HmcPowerModel::link_energy(&m, &snap)));
        let act = ModuleActivity { dram_reads: 300, dram_writes: 200, flits_routed: 777 };
        let end = SimTime::ZERO + SimDuration::from_us(90);
        assert_eq!(
            bits(&dynm.module_energy(HmcRadix::Low, SimTime::ZERO, end, &act)),
            bits(&HmcPowerModel::module_energy(&m, HmcRadix::Low, SimTime::ZERO, end, 500, 777)),
        );
    }

    #[test]
    fn derived_idd_table_matches_analytical_bit_for_bit() {
        let m = HmcPowerModel::paper();
        let idd = IddModel::from_analytical(&m);
        let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
        for (i, s) in snap.iter_mut().enumerate() {
            *s = SimDuration::from_ns(13 + 101 * i as u64);
        }
        assert_eq!(
            bits(&EnergyBackend::link_energy(&idd, &snap)),
            bits(&HmcPowerModel::link_energy(&m, &snap)),
        );
        for radix in [HmcRadix::High, HmcRadix::Low] {
            let act = ModuleActivity { dram_reads: 12345, dram_writes: 678, flits_routed: 99999 };
            let end = SimTime::ZERO + SimDuration::from_us(123);
            assert_eq!(
                bits(&idd.module_energy(radix, SimTime::ZERO, end, &act)),
                bits(&HmcPowerModel::module_energy(&m, radix, SimTime::ZERO, end, 13023, 99999)),
            );
        }
    }

    #[test]
    fn hmc_gen2_lands_within_five_percent_of_analytical() {
        let a = HmcPowerModel::paper();
        let b = IddModel::hmc_gen2();
        let rel = |x: f64, y: f64| (y - x).abs() / x;
        assert!(rel(a.io_watts_per_unilink(), b.vddq * b.io_on_current) < 0.05);
        assert!(rel(EnergyBackend::link_off_watts(&a), EnergyBackend::link_off_watts(&b)) < 0.05);
        assert!(
            rel(a.dram_idle_watts(HmcRadix::High), b.dram_background_watts(HmcRadix::High)) < 0.05
        );
        assert!(
            rel(a.logic_idle_watts(HmcRadix::High), b.logic_background_watts(HmcRadix::High))
                < 0.05
        );
        assert!(rel(a.dram_dyn_energy_per_access(), b.read_access_energy()) < 0.05);
        assert!(rel(a.logic_dyn_energy_per_flit(), b.vlogic * b.q_flit) < 0.05);
    }

    #[test]
    fn write_premium_prices_writes_above_reads() {
        let b = IddModel::hmc_gen2();
        let end = SimTime::ZERO + SimDuration::from_us(1);
        let reads = ModuleActivity { dram_reads: 1000, dram_writes: 0, flits_routed: 0 };
        let writes = ModuleActivity { dram_reads: 0, dram_writes: 1000, flits_routed: 0 };
        let er = b.module_energy(HmcRadix::High, SimTime::ZERO, end, &reads);
        let ew = b.module_energy(HmcRadix::High, SimTime::ZERO, end, &writes);
        assert!(ew.dram_dyn > er.dram_dyn, "IDD4W > IDD4R must make writes dearer");
        let premium = 1000.0 * b.write_premium_energy();
        assert!((ew.dram_dyn - er.dram_dyn - premium).abs() < 1e-15);
    }

    #[test]
    fn kind_parses_labels_and_round_trips() {
        for kind in EnergyBackendKind::ALL {
            assert_eq!(EnergyBackendKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.build().name(), kind.label());
        }
        assert_eq!(EnergyBackendKind::parse("IDD"), Some(EnergyBackendKind::Idd));
        assert_eq!(EnergyBackendKind::parse("spice"), None);
        assert_eq!(EnergyBackendKind::default(), EnergyBackendKind::Analytical);
    }

    #[test]
    fn idd_model_serializes_round_trip() {
        let b = IddModel::hmc_gen2();
        let json = serde::json::to_string(&b);
        let back: IddModel = serde::json::from_str(&json).expect("IddModel JSON round-trips");
        assert_eq!(back, b);
    }
}
