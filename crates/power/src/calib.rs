//! Measurement-driven calibration of the IDD link mode table.
//!
//! Input is a CSV of bench power measurements, one row per sample:
//!
//! ```csv
//! # timestamp_s,mode,watts
//! 0.000,off,0.0061
//! 0.010,vwl16,0.581
//! 0.020,dvfs50,0.207
//! ```
//!
//! `mode` is a link accounting state: `off`, `waking`, or a bandwidth
//! mode label (`vwl16|vwl8|vwl4|vwl1|dvfs100|dvfs80|dvfs50|dvfs14`).
//! Timestamps must be non-decreasing (a shuffled log usually means the
//! samples were mislabeled too), watts finite and non-negative.
//!
//! [`fit`] least-squares-adjusts the three link current parameters of an
//! [`IddModel`] so its mode table reproduces the measured watts: all
//! on-mode rows constrain `io_on_current` (each mode's power is the full
//! current scaled by its known power fraction, so one shared current is
//! fit across every mode), off rows constrain `io_off_current`, waking
//! rows `io_wake_current`. Each group has a closed-form solution
//! `I = Σ cᵢwᵢ / Σ cᵢ²` with `cᵢ = vddq · power_fraction(modeᵢ)`; for
//! noiseless data the fit recovers the generating current exactly up to
//! floating-point rounding (the round-trip test holds 1e-9 relative).

use memnet_net::mech::BwMode;

use crate::backend::IddModel;

/// What a measurement row constrains: a link accounting state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalibTarget {
    /// Off-state residual power.
    Off,
    /// Wake-transition power.
    Waking,
    /// On-state power in a bandwidth mode (idle or active — identical in
    /// this model).
    Mode(BwMode),
}

impl CalibTarget {
    /// Parses a mode label (`off`, `waking`, or a [`BwMode::label`]).
    pub fn parse(s: &str) -> Option<CalibTarget> {
        match s {
            "off" => Some(CalibTarget::Off),
            "waking" => Some(CalibTarget::Waking),
            _ => BwMode::ALL.into_iter().find(|m| m.label() == s).map(CalibTarget::Mode),
        }
    }

    /// The label [`CalibTarget::parse`] accepts for this target.
    pub fn label(self) -> &'static str {
        match self {
            CalibTarget::Off => "off",
            CalibTarget::Waking => "waking",
            CalibTarget::Mode(m) => m.label(),
        }
    }
}

/// One parsed measurement row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Sample timestamp, seconds (non-decreasing across the file).
    pub timestamp_s: f64,
    /// Which link state the sample observed.
    pub target: CalibTarget,
    /// Measured link power, watts.
    pub watts: f64,
}

/// Parses a measurement CSV. `#`-comments and blank lines are skipped; a
/// literal `timestamp_s,mode,watts` header is allowed. Returns a
/// human-readable error naming the first offending line; never panics.
pub fn parse_csv(text: &str) -> Result<Vec<Measurement>, String> {
    let mut rows = Vec::new();
    let mut last_t = f64::NEG_INFINITY;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "timestamp_s,mode,watts" {
            continue;
        }
        let n = idx + 1;
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(format!(
                "line {n}: expected 3 fields `timestamp_s,mode,watts`, got {}",
                fields.len()
            ));
        }
        let t: f64 =
            fields[0].parse().map_err(|_| format!("line {n}: bad timestamp {:?}", fields[0]))?;
        if !t.is_finite() {
            return Err(format!("line {n}: timestamp {t} is not finite"));
        }
        if t < last_t {
            return Err(format!(
                "line {n}: timestamp {t} goes backwards (previous was {last_t}); \
                 measurement logs must be time-ordered"
            ));
        }
        last_t = t;
        let target = CalibTarget::parse(fields[1]).ok_or_else(|| {
            format!(
                "line {n}: unknown mode {:?} (want off|waking|{})",
                fields[1],
                BwMode::ALL.map(|m| m.label()).join("|")
            )
        })?;
        let watts: f64 =
            fields[2].parse().map_err(|_| format!("line {n}: bad watts {:?}", fields[2]))?;
        if !watts.is_finite() || watts < 0.0 {
            return Err(format!("line {n}: watts {watts} must be finite and non-negative"));
        }
        rows.push(Measurement { timestamp_s: t, target, watts });
    }
    if rows.is_empty() {
        return Err("no measurement rows (empty file?)".to_string());
    }
    Ok(rows)
}

/// Summary of one [`fit`]: row counts per current group and the residual
/// of the calibrated model over all rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitReport {
    /// On-mode rows (constraining `io_on_current`).
    pub on_rows: usize,
    /// Off rows (constraining `io_off_current`).
    pub off_rows: usize,
    /// Waking rows (constraining `io_wake_current`).
    pub wake_rows: usize,
    /// Root-mean-square watts residual of the calibrated model.
    pub rms_watts: f64,
}

impl FitReport {
    /// Total rows used by the fit.
    pub fn rows(&self) -> usize {
        self.on_rows + self.off_rows + self.wake_rows
    }
}

/// Least-squares-fits the link currents of `base` to the measurements,
/// returning the calibrated model and a fit summary. Groups with no rows
/// keep the base model's current untouched.
pub fn fit(base: &IddModel, rows: &[Measurement]) -> Result<(IddModel, FitReport), String> {
    if rows.is_empty() {
        return Err("cannot fit a calibration to zero measurements".to_string());
    }
    // Each group solves min_I Σ (c_i·I − w_i)² => I = Σ c_i·w_i / Σ c_i².
    let mut num = [0.0f64; 3]; // on, off, waking
    let mut den = [0.0f64; 3];
    let mut counts = [0usize; 3];
    for row in rows {
        let (slot, c) = match row.target {
            CalibTarget::Mode(m) => (0, base.vddq * m.power_fraction()),
            CalibTarget::Off => (1, base.vddq),
            CalibTarget::Waking => (2, base.vddq),
        };
        num[slot] += c * row.watts;
        den[slot] += c * c;
        counts[slot] += 1;
    }
    let mut fitted = base.clone();
    if den[0] > 0.0 {
        fitted.io_on_current = num[0] / den[0];
    }
    if den[1] > 0.0 {
        fitted.io_off_current = num[1] / den[1];
    }
    if den[2] > 0.0 {
        fitted.io_wake_current = num[2] / den[2];
    }
    let sq_err: f64 = rows
        .iter()
        .map(|row| {
            let modeled = match row.target {
                CalibTarget::Mode(m) => fitted.vddq * fitted.io_on_current * m.power_fraction(),
                CalibTarget::Off => fitted.vddq * fitted.io_off_current,
                CalibTarget::Waking => fitted.vddq * fitted.io_wake_current,
            };
            (modeled - row.watts).powi(2)
        })
        .sum();
    let report = FitReport {
        on_rows: counts[0],
        off_rows: counts[1],
        wake_rows: counts[2],
        rms_watts: (sq_err / rows.len() as f64).sqrt(),
    };
    Ok((fitted, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_header_and_rows() {
        let rows = parse_csv(
            "# a comment\n\
             timestamp_s,mode,watts\n\
             \n\
             0.0, off, 0.006\n\
             0.5,vwl8,0.30\n\
             0.5,waking,0.57\n",
        )
        .expect("valid CSV parses");
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].target, CalibTarget::Off);
        assert_eq!(rows[1].target.label(), "vwl8");
        assert_eq!(rows[2].target, CalibTarget::Waking);
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        assert!(parse_csv("").unwrap_err().contains("no measurement rows"));
        assert!(parse_csv("# only comments\n").unwrap_err().contains("no measurement rows"));
        assert!(parse_csv("0.0,off\n").unwrap_err().contains("line 1"));
        assert!(parse_csv("soup,off,0.1\n").unwrap_err().contains("bad timestamp"));
        assert!(parse_csv("0.0,warp9,0.1\n").unwrap_err().contains("unknown mode"));
        assert!(parse_csv("0.0,off,nope\n").unwrap_err().contains("bad watts"));
        assert!(parse_csv("0.0,off,-1.0\n").unwrap_err().contains("non-negative"));
        assert!(parse_csv("0.0,off,inf\n").unwrap_err().contains("finite"));
        let err = parse_csv("1.0,off,0.1\n0.5,off,0.1\n").unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn noiseless_fit_recovers_the_generating_currents() {
        let truth = IddModel { io_on_current: 0.51, io_off_current: 0.004, ..IddModel::hmc_gen2() };
        let mut csv = String::from("timestamp_s,mode,watts\n");
        let mut t = 0.0;
        for m in BwMode::ALL {
            csv.push_str(&format!(
                "{t},{},{}\n",
                m.label(),
                truth.vddq * truth.io_on_current * m.power_fraction()
            ));
            t += 0.1;
        }
        csv.push_str(&format!("{t},off,{}\n", truth.vddq * truth.io_off_current));
        let rows = parse_csv(&csv).unwrap();
        let (fitted, report) = fit(&IddModel::hmc_gen2(), &rows).unwrap();
        assert!((fitted.io_on_current - truth.io_on_current).abs() / truth.io_on_current < 1e-9);
        assert!((fitted.io_off_current - truth.io_off_current).abs() / truth.io_off_current < 1e-9);
        // No waking rows: the base value survives untouched.
        assert_eq!(fitted.io_wake_current, IddModel::hmc_gen2().io_wake_current);
        assert_eq!(report.on_rows, 8);
        assert_eq!(report.off_rows, 1);
        assert_eq!(report.wake_rows, 0);
        assert!(report.rms_watts < 1e-12, "noiseless residual: {}", report.rms_watts);
    }
}
