//! The HMC power model: peak splits, idle fractions, and the conversion
//! from simulation activity to joules.

use memnet_dram::DramParams;
use memnet_net::link::{state_on_active, state_on_idle, state_retrans, STATE_OFF, STATE_WAKING};
use memnet_net::mech::{BwMode, N_BW_MODES};
use memnet_net::HmcRadix;
use memnet_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::energy::EnergyBreakdown;

/// The paper's HMC power model.
///
/// # Examples
///
/// ```
/// use memnet_net::HmcRadix;
/// use memnet_power::HmcPowerModel;
///
/// let m = HmcPowerModel::paper();
/// assert_eq!(m.peak_watts(HmcRadix::High), 13.4);
/// // Both radix classes share the same per-unidirectional-link power.
/// assert!((m.io_watts_per_unilink() - 0.586).abs() < 0.001);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HmcPowerModel {
    /// Peak power of a high-radix (four full link) HMC, watts.
    pub high_radix_peak_watts: f64,
    /// Fraction of peak power attributed to the DRAM dies.
    pub dram_fraction: f64,
    /// Fraction of peak power attributed to the logic part of the logic die.
    pub logic_fraction: f64,
    /// Fraction of peak power attributed to the I/O links.
    pub io_fraction: f64,
    /// Idle DRAM power as a fraction of DRAM peak power.
    pub dram_idle_fraction: f64,
    /// Idle logic power as a fraction of logic peak power.
    pub logic_idle_fraction: f64,
    /// Off-state link power as a fraction of full link power (ROO).
    pub link_off_fraction: f64,
    /// DRAM parameters (used to derive per-access dynamic energy).
    pub dram: DramParams,
}

impl HmcPowerModel {
    /// The configuration the paper uses: 13.4 W peak split 43/22/35, DRAM
    /// idling at 10 % and logic at 25 % of their peaks, 1 % off-state links.
    pub fn paper() -> Self {
        HmcPowerModel {
            high_radix_peak_watts: 13.4,
            dram_fraction: 0.43,
            logic_fraction: 0.22,
            io_fraction: 0.35,
            dram_idle_fraction: 0.10,
            logic_idle_fraction: 0.25,
            link_off_fraction: 0.01,
            dram: DramParams::hmc_gen2(),
        }
    }

    /// Peak power of an HMC of the given radix class (low radix = half, as
    /// peak power is proportional to bandwidth).
    pub fn peak_watts(&self, radix: HmcRadix) -> f64 {
        match radix {
            HmcRadix::High => self.high_radix_peak_watts,
            HmcRadix::Low => self.high_radix_peak_watts / 2.0,
        }
    }

    /// DRAM peak power for a radix class.
    pub fn dram_peak_watts(&self, radix: HmcRadix) -> f64 {
        self.peak_watts(radix) * self.dram_fraction
    }

    /// DRAM idle (leakage/refresh) power for a radix class.
    pub fn dram_idle_watts(&self, radix: HmcRadix) -> f64 {
        self.dram_peak_watts(radix) * self.dram_idle_fraction
    }

    /// Logic peak power for a radix class.
    pub fn logic_peak_watts(&self, radix: HmcRadix) -> f64 {
        self.peak_watts(radix) * self.logic_fraction
    }

    /// Logic idle (leakage) power for a radix class.
    pub fn logic_idle_watts(&self, radix: HmcRadix) -> f64 {
        self.logic_peak_watts(radix) * self.logic_idle_fraction
    }

    /// I/O peak power for a radix class (all its unidirectional links on
    /// at full width).
    pub fn io_peak_watts(&self, radix: HmcRadix) -> f64 {
        self.peak_watts(radix) * self.io_fraction
    }

    /// Full power of one unidirectional link.
    ///
    /// High radix: 13.4 W × 35 % over 8 unidirectional links; low radix:
    /// 6.7 W × 35 % over 4 — both 0.586 W, so this is radix-independent.
    pub fn io_watts_per_unilink(&self) -> f64 {
        self.io_peak_watts(HmcRadix::High) / (HmcRadix::High.full_links() as f64 * 2.0)
    }

    /// DRAM dynamic energy for one 64 B access, joules.
    ///
    /// Derived so that DRAM burns exactly its peak power at the stack's
    /// internal peak bandwidth (32 vaults × 8 GB/s = 256 GB/s):
    /// `(peak − idle) / peak access rate` ≈ 1.3 nJ per line. The ratio is
    /// radix-independent because a low-radix cube has both half the power
    /// and (in the model's proportional-peak assumption) half the
    /// bandwidth.
    pub fn dram_dyn_energy_per_access(&self) -> f64 {
        let dynamic_watts = self.dram_peak_watts(HmcRadix::High) * (1.0 - self.dram_idle_fraction);
        let accesses_per_sec = self.dram.hmc_peak_bandwidth() / self.dram.line_bytes as f64;
        dynamic_watts / accesses_per_sec
    }

    /// Logic dynamic energy for routing one flit through a module, joules.
    ///
    /// Derived so that the logic die burns its peak at the router's
    /// internal crossbar throughput, which is provisioned at twice the
    /// aggregate link bandwidth (a standard 2× speedup over the eight
    /// unidirectional link ports) — ≈ 0.09 nJ per flit-hop.
    pub fn logic_dyn_energy_per_flit(&self) -> f64 {
        let dynamic_watts =
            self.logic_peak_watts(HmcRadix::High) * (1.0 - self.logic_idle_fraction);
        let flit_rate =
            2.0 * HmcRadix::High.full_links() as f64 * 2.0 * self.unilink_bandwidth_bytes()
                / memnet_net::FLIT_BYTES as f64;
        dynamic_watts / flit_rate
    }

    /// Data bandwidth of one unidirectional link at full width: 16 lanes ×
    /// 12.5 Gbps = 25 GB/s.
    pub fn unilink_bandwidth_bytes(&self) -> f64 {
        16.0 * 12.5e9 / 8.0
    }

    /// Converts one link's time-in-state residency snapshot into I/O energy.
    ///
    /// Index layout follows [`memnet_net::link`]: off, waking, then
    /// (idle, active) per bandwidth mode, then retransmitting per bandwidth
    /// mode. Waking time is charged at full link power and booked as *idle*
    /// I/O (it transmits no data); retransmission time is charged at the
    /// mode's active power but booked in the separate `retrans_io` category
    /// so link-retry overhead stays visible in reports and auditable
    /// double-entry.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length does not match the accounting layout.
    pub fn link_energy(&self, residency: &[SimDuration]) -> EnergyBreakdown {
        assert_eq!(residency.len(), 2 + 3 * N_BW_MODES, "unexpected residency snapshot length");
        let p_full = self.io_watts_per_unilink();
        let mut e = EnergyBreakdown::default();
        e.idle_io += p_full * self.link_off_fraction * residency[STATE_OFF].as_secs();
        e.idle_io += p_full * residency[STATE_WAKING].as_secs();
        for i in 0..N_BW_MODES {
            let mode = BwMode::from_index(i);
            let p = p_full * mode.power_fraction();
            e.idle_io += p * residency[state_on_idle(mode)].as_secs();
            e.active_io += p * residency[state_on_active(mode)].as_secs();
            e.retrans_io += p * residency[state_retrans(mode)].as_secs();
        }
        e
    }

    /// Converts one module's background + activity counters into non-I/O
    /// energy over the window `[start, end)`.
    pub fn module_energy(
        &self,
        radix: HmcRadix,
        start: SimTime,
        end: SimTime,
        dram_accesses: u64,
        flits_routed: u64,
    ) -> EnergyBreakdown {
        let window = (end - start).as_secs();
        EnergyBreakdown {
            idle_io: 0.0,
            active_io: 0.0,
            logic_leak: self.logic_idle_watts(radix) * window,
            logic_dyn: self.logic_dyn_energy_per_flit() * flits_routed as f64,
            dram_leak: self.dram_idle_watts(radix) * window,
            dram_dyn: self.dram_dyn_energy_per_access() * dram_accesses as f64,
            retrans_io: 0.0,
        }
    }
}

impl Default for HmcPowerModel {
    fn default() -> Self {
        HmcPowerModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_net::link::N_ACCOUNTING_STATES;

    #[test]
    fn paper_splits_are_consistent() {
        let m = HmcPowerModel::paper();
        assert!((m.dram_fraction + m.logic_fraction + m.io_fraction - 1.0).abs() < 1e-12);
        assert!((m.peak_watts(HmcRadix::Low) - 6.7).abs() < 1e-12);
        assert!((m.dram_peak_watts(HmcRadix::High) - 5.762).abs() < 1e-9);
        assert!((m.logic_idle_watts(HmcRadix::High) - 0.737).abs() < 1e-3);
        assert!((m.dram_idle_watts(HmcRadix::High) - 0.5762).abs() < 1e-9);
    }

    #[test]
    fn per_link_power_is_radix_independent() {
        let m = HmcPowerModel::paper();
        let high = m.io_peak_watts(HmcRadix::High) / 8.0;
        let low = m.io_peak_watts(HmcRadix::Low) / 4.0;
        assert!((high - low).abs() < 1e-12);
        assert!((m.io_watts_per_unilink() - high).abs() < 1e-12);
    }

    #[test]
    fn idle_link_for_one_second_burns_full_link_power() {
        let m = HmcPowerModel::paper();
        let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
        snap[state_on_idle(BwMode::FULL_VWL)] = SimDuration::from_ms(1000);
        let e = m.link_energy(&snap);
        assert!((e.idle_io - m.io_watts_per_unilink()).abs() < 1e-9);
        assert_eq!(e.active_io, 0.0);
    }

    #[test]
    fn off_link_burns_one_percent() {
        let m = HmcPowerModel::paper();
        let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
        snap[STATE_OFF] = SimDuration::from_ms(1000);
        let e = m.link_energy(&snap);
        assert!((e.idle_io - 0.01 * m.io_watts_per_unilink()).abs() < 1e-9);
    }

    #[test]
    fn narrow_link_burns_fraction() {
        use memnet_net::mech::VwlWidth;
        let m = HmcPowerModel::paper();
        let mode = BwMode::Vwl(VwlWidth::W4);
        let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
        snap[state_on_active(mode)] = SimDuration::from_ms(1000);
        let e = m.link_energy(&snap);
        assert!((e.active_io - m.io_watts_per_unilink() * 5.0 / 17.0).abs() < 1e-9);
        assert_eq!(e.idle_io, 0.0);
    }

    #[test]
    fn retransmission_time_is_priced_at_active_power_in_its_own_category() {
        use memnet_net::mech::VwlWidth;
        let m = HmcPowerModel::paper();
        let mode = BwMode::Vwl(VwlWidth::W8);
        let mut snap = vec![SimDuration::ZERO; N_ACCOUNTING_STATES];
        snap[state_on_active(mode)] = SimDuration::from_ms(1000);
        snap[state_retrans(mode)] = SimDuration::from_ms(1000);
        let e = m.link_energy(&snap);
        // Same wire, same width, same power — only the ledger differs.
        assert!((e.retrans_io - e.active_io).abs() < 1e-12);
        assert!(e.retrans_io > 0.0);
        assert_eq!(e.idle_io, 0.0);
    }

    #[test]
    fn dynamic_energies_are_physical() {
        let m = HmcPowerModel::paper();
        // ~1.3 nJ per 64 B DRAM access (peak DRAM power at 256 GB/s stack
        // bandwidth), ~0.09 nJ per routed flit.
        let per_access = m.dram_dyn_energy_per_access();
        assert!((1.0e-9..1.6e-9).contains(&per_access), "{per_access}");
        let per_flit = m.logic_dyn_energy_per_flit();
        assert!((0.05e-9..0.15e-9).contains(&per_flit), "{per_flit}");
    }

    #[test]
    fn module_energy_scales_with_window_and_activity() {
        let m = HmcPowerModel::paper();
        let e = m.module_energy(
            HmcRadix::Low,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_ms(10),
            1000,
            5000,
        );
        assert!((e.dram_leak - m.dram_idle_watts(HmcRadix::Low) * 0.01).abs() < 1e-12);
        assert!((e.logic_leak - m.logic_idle_watts(HmcRadix::Low) * 0.01).abs() < 1e-12);
        assert!((e.dram_dyn - 1000.0 * m.dram_dyn_energy_per_access()).abs() < 1e-15);
        assert!((e.logic_dyn - 5000.0 * m.logic_dyn_energy_per_flit()).abs() < 1e-15);
        assert_eq!(e.io_total(), 0.0);
    }
}
