#![warn(missing_docs)]

//! The HMC memory-network power model and energy accounting.
//!
//! Following the paper's model (from Pugsley et al. [12]):
//!
//! - a high-radix HMC (four full links) peaks at **13.4 W**, split
//!   **43 % DRAM / 22 % logic / 35 % I/O**;
//! - a low-radix HMC (two full links) peaks at half that, with the same
//!   relative split (peak power is proportional to bandwidth);
//! - when idle, DRAM burns 10 % of its peak, logic 25 % of its peak, and
//!   I/O burns *the same as when active* — high-speed links keep
//!   transmitting to stay synchronized — which is exactly why idle I/O
//!   dominates memory-network power;
//! - both radix classes come out to the same **0.586 W per unidirectional
//!   link**, and the same dynamic energy per DRAM access and per routed
//!   flit, so energy accounting is uniform across mixed-radix networks.
//!
//! [`EnergyBreakdown`] accumulates joules in the six categories of the
//! paper's Figure 5 (idle I/O, active I/O, logic leakage, logic dynamic,
//! DRAM leakage, DRAM dynamic); [`HmcPowerModel`] converts link
//! time-in-state residencies and module activity counts into those joules.
//!
//! Pricing is pluggable: the [`EnergyBackend`] trait abstracts the
//! conversion from metered activity to joules, with two implementations —
//! the paper's analytical model ([`HmcPowerModel`]) and an IDD-style
//! current-based table ([`IddModel`]) — selectable per run via
//! [`EnergyBackendKind`]. The [`calib`] module fits IDD link currents to
//! a measurement CSV.

pub mod backend;
pub mod calib;
pub mod energy;
pub mod model;

pub use backend::{EnergyBackend, EnergyBackendKind, IddModel, ModuleActivity};
pub use energy::EnergyBreakdown;
pub use model::HmcPowerModel;
