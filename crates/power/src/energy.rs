//! Energy breakdown in the six categories of the paper's Figure 5, plus
//! a seventh double-entry category for link-retry retransmission I/O.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Joules consumed, split the way the paper reports power (Figure 5).
///
/// # Examples
///
/// ```
/// use memnet_power::EnergyBreakdown;
/// use memnet_simcore::SimDuration;
///
/// let mut e = EnergyBreakdown::default();
/// e.idle_io += 1.0;
/// e.dram_leak += 0.5;
/// assert_eq!(e.total(), 1.5);
/// // 1.5 J over 1 ms across 3 HMCs = 500 W/HMC (toy numbers).
/// assert_eq!(e.watts_per_hmc(SimDuration::from_ms(1), 3), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// I/O energy while links were on but not transmitting (plus off-state
    /// residual and wakeup power).
    pub idle_io: f64,
    /// I/O energy while links were transmitting flits.
    pub active_io: f64,
    /// Logic-die leakage (idle) energy.
    pub logic_leak: f64,
    /// Logic-die dynamic energy (routing, SERDES switching).
    pub logic_dyn: f64,
    /// DRAM leakage (idle/refresh) energy.
    pub dram_leak: f64,
    /// DRAM dynamic energy (array accesses).
    pub dram_dyn: f64,
    /// I/O energy spent retransmitting CRC-corrupted flits (link-level
    /// retry). Zero in fault-free runs; audited double-entry against link
    /// retransmission residency.
    pub retrans_io: f64,
}

impl EnergyBreakdown {
    /// Total joules across all categories.
    pub fn total(&self) -> f64 {
        self.idle_io
            + self.active_io
            + self.logic_leak
            + self.logic_dyn
            + self.dram_leak
            + self.dram_dyn
            + self.retrans_io
    }

    /// Total I/O joules (idle + active + retransmission).
    pub fn io_total(&self) -> f64 {
        self.idle_io + self.active_io + self.retrans_io
    }

    /// The categories in [`EnergyBreakdown::CATEGORY_LABELS`] order: the
    /// paper's six, then retransmission I/O (appended last so Figure 5
    /// consumers indexing `0..6` are unaffected).
    pub fn categories(&self) -> [f64; 7] {
        [
            self.idle_io,
            self.active_io,
            self.logic_leak,
            self.logic_dyn,
            self.dram_leak,
            self.dram_dyn,
            self.retrans_io,
        ]
    }

    /// True if every category is finite and non-negative — energy is a
    /// physical quantity, so anything else is an accounting bug. The
    /// audit layer checks this on every finished run.
    pub fn is_physical(&self) -> bool {
        self.categories().iter().all(|&j| j.is_finite() && j >= 0.0)
    }

    /// Idle-I/O energy as a fraction of total energy (0 when empty).
    pub fn idle_io_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.idle_io / total
        }
    }

    /// I/O energy as a fraction of total energy (0 when empty).
    pub fn io_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            self.io_total() / total
        }
    }

    /// Average power over `window`, in watts.
    pub fn watts(&self, window: SimDuration) -> f64 {
        let secs = window.as_secs();
        if secs == 0.0 {
            0.0
        } else {
            self.total() / secs
        }
    }

    /// Average power per module over `window`, in watts.
    pub fn watts_per_hmc(&self, window: SimDuration, n_hmcs: usize) -> f64 {
        if n_hmcs == 0 {
            0.0
        } else {
            self.watts(window) / n_hmcs as f64
        }
    }

    /// Per-category average watts over `window`, in Figure 5 order with
    /// retransmission I/O appended:
    /// `[idle I/O, active I/O, logic leak, logic dyn, DRAM leak, DRAM dyn, retrans I/O]`.
    pub fn watts_by_category(&self, window: SimDuration) -> [f64; 7] {
        let secs = window.as_secs();
        if secs == 0.0 {
            return [0.0; 7];
        }
        self.categories().map(|j| j / secs)
    }

    /// Category labels matching [`EnergyBreakdown::watts_by_category`].
    pub const CATEGORY_LABELS: [&'static str; 7] = [
        "Idle I/O",
        "Active I/O",
        "Logic Leakage",
        "Logic Dynamic",
        "DRAM Leakage",
        "DRAM Dynamic",
        "Retrans I/O",
    ];
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;
    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            idle_io: self.idle_io + rhs.idle_io,
            active_io: self.active_io + rhs.active_io,
            logic_leak: self.logic_leak + rhs.logic_leak,
            logic_dyn: self.logic_dyn + rhs.logic_dyn,
            dram_leak: self.dram_leak + rhs.dram_leak,
            dram_dyn: self.dram_dyn + rhs.dram_dyn,
            retrans_io: self.retrans_io + rhs.retrans_io,
        }
    }
}

impl AddAssign for EnergyBreakdown {
    fn add_assign(&mut self, rhs: EnergyBreakdown) {
        *self = *self + rhs;
    }
}

impl Sum for EnergyBreakdown {
    fn sum<I: Iterator<Item = EnergyBreakdown>>(iter: I) -> EnergyBreakdown {
        iter.fold(EnergyBreakdown::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EnergyBreakdown {
        EnergyBreakdown {
            idle_io: 6.0,
            active_io: 1.0,
            logic_leak: 1.0,
            logic_dyn: 0.5,
            dram_leak: 1.0,
            dram_dyn: 0.5,
            retrans_io: 0.0,
        }
    }

    #[test]
    fn totals_and_fractions() {
        let e = sample();
        assert_eq!(e.total(), 10.0);
        assert_eq!(e.io_total(), 7.0);
        assert!((e.idle_io_fraction() - 0.6).abs() < 1e-12);
        assert!((e.io_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_has_zero_fractions() {
        let e = EnergyBreakdown::default();
        assert_eq!(e.idle_io_fraction(), 0.0);
        assert_eq!(e.io_fraction(), 0.0);
        assert_eq!(e.watts(SimDuration::from_ms(1)), 0.0);
        assert_eq!(e.watts(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn zero_duration_window_yields_zeros_not_inf_or_nan() {
        // Regression guard: a run (or epoch) of zero length must report
        // zero watts, never J/0 = inf, and an all-zero breakdown over a
        // zero window must not produce 0/0 = NaN.
        let e = sample();
        assert_eq!(e.watts(SimDuration::ZERO), 0.0);
        assert_eq!(e.watts_per_hmc(SimDuration::ZERO, 5), 0.0);
        assert_eq!(e.watts_by_category(SimDuration::ZERO), [0.0; 7]);
        let empty = EnergyBreakdown::default();
        assert_eq!(empty.watts(SimDuration::ZERO), 0.0);
        assert_eq!(empty.watts_per_hmc(SimDuration::ZERO, 0), 0.0);
        for w in empty.watts_by_category(SimDuration::ZERO) {
            assert!(w == 0.0 && !w.is_nan());
        }
    }

    #[test]
    fn watts_conversion() {
        let e = sample();
        // 10 J over 10 ms = 1000 W; over 5 HMCs = 200 W each.
        assert!((e.watts(SimDuration::from_ms(10)) - 1000.0).abs() < 1e-9);
        assert!((e.watts_per_hmc(SimDuration::from_ms(10), 5) - 200.0).abs() < 1e-9);
        let cats = e.watts_by_category(SimDuration::from_ms(10));
        assert!((cats.iter().sum::<f64>() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn physicality_check() {
        assert!(sample().is_physical());
        assert!(EnergyBreakdown::default().is_physical());
        let negative = EnergyBreakdown { active_io: -1.0, ..sample() };
        assert!(!negative.is_physical());
        let nan = EnergyBreakdown { dram_dyn: f64::NAN, ..sample() };
        assert!(!nan.is_physical());
        let inf = EnergyBreakdown { logic_leak: f64::INFINITY, ..sample() };
        assert!(!inf.is_physical());
    }

    #[test]
    fn retransmission_energy_counts_as_io() {
        let e = EnergyBreakdown { retrans_io: 2.0, ..sample() };
        assert_eq!(e.total(), 12.0);
        assert_eq!(e.io_total(), 9.0);
        assert_eq!(e.categories()[6], 2.0);
        assert_eq!(EnergyBreakdown::CATEGORY_LABELS.len(), e.categories().len());
        let negative = EnergyBreakdown { retrans_io: -1.0, ..sample() };
        assert!(!negative.is_physical());
    }

    #[test]
    fn addition_and_sum() {
        let total: EnergyBreakdown = vec![sample(), sample()].into_iter().sum();
        assert_eq!(total.total(), 20.0);
        let mut acc = sample();
        acc += sample();
        assert_eq!(acc, total);
    }
}
