//! Derive macros for the in-tree serde stand-in.
//!
//! Implemented directly on `proc_macro` token trees (the build environment
//! has no crates.io access, so `syn`/`quote` are unavailable). Supports the
//! type shapes memnet defines: non-generic named-field structs, tuple
//! structs, and enums whose variants are units or tuples.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

/// Derives `serde::Deserialize` (JSON reader).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<(String, usize)>), // (variant name, tuple arity; 0 = unit)
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse(input) {
        Ok((name, shape)) => generate(&name, &shape, mode).parse().unwrap(),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn parse(input: TokenStream) -> Result<(String, Shape), String> {
    let trees: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&trees, &mut i);
    let kw = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_owned()),
    };
    i += 1;
    let name = match trees.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".to_owned()),
    };
    i += 1;
    if matches!(&trees.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("cannot derive for generic type `{name}`"));
    }
    match (kw.as_str(), trees.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::NamedStruct(parse_named_fields(g.stream())?)))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Ok((name, Shape::TupleStruct(count_top_level_fields(g.stream()))))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok((name, Shape::Enum(parse_variants(g.stream())?)))
        }
        _ => Err(format!("unsupported definition for `{name}`")),
    }
}

/// Advances past any `#[...]` attributes (incl. doc comments) and a
/// `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(trees: &[TokenTree], i: &mut usize) {
    loop {
        match trees.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(trees.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a field/variant list on commas that sit outside nested groups
/// and outside `<...>` generic arguments.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tree in stream {
        if let TokenTree::Punct(p) = &tree {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().unwrap().push(tree);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn count_top_level_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        match part.get(i) {
            Some(TokenTree::Ident(id)) => fields.push(id.to_string()),
            other => return Err(format!("expected field name, got {other:?}")),
        }
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    for part in split_top_level(stream) {
        let mut i = 0;
        skip_attrs_and_vis(&part, &mut i);
        let name = match part.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let arity = match part.get(i) {
            None => 0,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                count_top_level_fields(g.stream())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!("struct variant `{name}` is not supported"));
            }
            other => return Err(format!("unexpected token after `{name}`: {other:?}")),
        };
        variants.push((name, arity));
    }
    Ok(variants)
}

fn generate(name: &str, shape: &Shape, mode: Mode) -> String {
    match mode {
        Mode::Serialize => gen_serialize(name, shape),
        Mode::Deserialize => gen_deserialize(name, shape),
    }
}

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut b = String::from("s.begin_object();\n");
            for f in fields {
                b.push_str(&format!(
                    "s.key({f:?}); ::serde::Serialize::serialize(&self.{f}, s);\n"
                ));
            }
            b.push_str("s.end_object();");
            b
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0, s);".to_owned(),
        Shape::TupleStruct(n) => {
            let mut b = String::from("s.begin_array();\n");
            for idx in 0..*n {
                b.push_str(&format!(
                    "s.element(); ::serde::Serialize::serialize(&self.{idx}, s);\n"
                ));
            }
            b.push_str("s.end_array();");
            b
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for (v, arity) in variants {
                match arity {
                    0 => arms.push_str(&format!("{name}::{v} => s.write_quoted({v:?}),\n")),
                    1 => arms.push_str(&format!(
                        "{name}::{v}(a0) => {{ s.begin_object(); s.key({v:?}); \
                         ::serde::Serialize::serialize(a0, s); s.end_object(); }}\n"
                    )),
                    n => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("a{k}")).collect();
                        let mut inner = String::from("s.begin_array(); ");
                        for b in &binds {
                            inner.push_str(&format!(
                                "s.element(); ::serde::Serialize::serialize({b}, s); "
                            ));
                        }
                        inner.push_str("s.end_array();");
                        arms.push_str(&format!(
                            "{name}::{v}({}) => {{ s.begin_object(); s.key({v:?}); \
                             {inner} s.end_object(); }}\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, s: &mut ::serde::ser::Serializer) {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                inits.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize(v.get({f:?})?)?,\n"
                ));
            }
            format!("::core::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct(1) => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_array()?;\n\
                 if items.len() != {n} {{\n\
                     return ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"expected {n} fields for {name}, got {{}}\", items.len())));\n\
                 }}\n\
                 ::core::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let units: Vec<&(String, usize)> = variants.iter().filter(|(_, a)| *a == 0).collect();
            let tuples: Vec<&(String, usize)> = variants.iter().filter(|(_, a)| *a > 0).collect();
            let mut arms = String::new();
            if !units.is_empty() {
                let mut unit_arms = String::new();
                for (v, _) in &units {
                    unit_arms
                        .push_str(&format!("{v:?} => ::core::result::Result::Ok({name}::{v}),\n"));
                }
                arms.push_str(&format!(
                    "::serde::json::Value::Str(tag) => match tag.as_str() {{\n\
                     {unit_arms}\
                     other => ::core::result::Result::Err(::serde::de::Error::msg(\
                         format!(\"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n"
                ));
            }
            if !tuples.is_empty() {
                let mut tup_arms = String::new();
                for (v, arity) in &tuples {
                    if *arity == 1 {
                        tup_arms.push_str(&format!(
                            "{v:?} => ::core::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::deserialize(payload)?)),\n"
                        ));
                    } else {
                        let inits: Vec<String> = (0..*arity)
                            .map(|k| format!("::serde::Deserialize::deserialize(&items[{k}])?"))
                            .collect();
                        tup_arms.push_str(&format!(
                            "{v:?} => {{\n\
                                 let items = payload.as_array()?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::core::result::Result::Err(\
                                         ::serde::de::Error::msg(format!(\
                                         \"expected {arity} fields for {name}::{v}, got {{}}\",\
                                          items.len())));\n\
                                 }}\n\
                                 ::core::result::Result::Ok({name}::{v}({}))\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
                arms.push_str(&format!(
                    "::serde::json::Value::Obj(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, payload) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                         {tup_arms}\
                         other => ::core::result::Result::Err(::serde::de::Error::msg(\
                             format!(\"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }},\n"
                ));
            }
            format!(
                "match v {{\n{arms}\
                 other => ::core::result::Result::Err(::serde::de::Error::msg(\
                     format!(\"invalid {name} value: {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::json::Value) \
                 -> ::core::result::Result<Self, ::serde::de::Error> {{\n{body}\n}}\n\
         }}"
    )
}
