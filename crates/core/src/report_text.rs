//! Plain-text rendering of run reports: aligned tables and unicode bar
//! charts for terminals, used by the examples and experiment binaries.

use crate::metrics::RunReport;
use memnet_net::mech::BwMode;
use memnet_power::{EnergyBackend, EnergyBreakdown};

/// Renders a horizontal bar of `width` cells filled proportionally to
/// `value / max` with eighth-block resolution.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    const BLOCKS: [char; 9] = [' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];
    if max <= 0.0 || value <= 0.0 {
        return " ".repeat(width);
    }
    let cells = (value / max).clamp(0.0, 1.0) * width as f64;
    let full = cells.floor() as usize;
    let rem = ((cells - full as f64) * 8.0).round() as usize;
    let mut s = "█".repeat(full.min(width));
    if full < width {
        s.push(BLOCKS[rem.min(8)]);
        s.push_str(&" ".repeat(width - full - 1));
    }
    s
}

/// Renders the Figure 5-style per-category power breakdown of one run as
/// labelled bars.
pub fn power_breakdown(report: &RunReport) -> String {
    let cats = report.power.watts_per_hmc_by_category();
    let max = cats.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    let mut out = format!(
        "{} / {} / {} — {:.2} W per HMC ({} modules)\n",
        report.workload,
        report.topology.label(),
        report.policy,
        report.power.watts_per_hmc(),
        report.power.n_hmcs
    );
    for (label, value) in EnergyBreakdown::CATEGORY_LABELS.iter().zip(cats) {
        out.push_str(&format!("  {label:<14} {:5.2} W  |{}|\n", value, bar(value, max, 30)));
    }
    out
}

/// Renders the fault/resilience section of a report: retry counts,
/// retransmission energy, wake timeouts and route-around outcomes.
/// Callers typically print it only for runs with an active fault
/// scenario (every field is zero otherwise).
pub fn fault_section(report: &RunReport) -> String {
    let f = &report.faults;
    format!(
        "  faults: {} retries, {} flits replayed, {:.3} uJ retrans I/O, {} wake timeouts\n\
         \x20         {} rerouted module(s), {} unreachable, {} aborted access(es)\n",
        f.retries,
        f.retransmitted_flits,
        1e6 * f.retransmission_energy,
        f.wake_timeouts,
        f.rerouted_modules,
        f.unreachable_modules,
        f.aborted_accesses,
    )
}

/// Renders the observability section of a report: per-epoch sample
/// bookkeeping plus a network-wide residency summary aggregated over the
/// retained samples. Callers print it only when the run carried an `obs`
/// section (`--obs` / `--trace`); returns an empty string otherwise.
pub fn obs_section(report: &RunReport) -> String {
    let Some(obs) = &report.obs else {
        return String::new();
    };
    let mut out = format!(
        "  obs: {} epoch sample(s) retained ({} dropped), {} event(s) seen, {} written{}\n",
        obs.epochs.len(),
        obs.samples_dropped,
        obs.events_seen,
        obs.events_written,
        if obs.truncated { ", trace truncated" } else { "" },
    );
    if !obs.epochs.is_empty() {
        let mut ps = [0u64; 5];
        let (mut wakes, mut retries) = (0u64, 0u64);
        for s in &obs.epochs {
            for l in &s.links {
                ps[0] += l.off_ps;
                ps[1] += l.waking_ps;
                ps[2] += l.idle_ps;
                ps[3] += l.active_ps;
                ps[4] += l.retrans_ps;
                wakes += l.wakes;
                retries += l.retries;
            }
        }
        let total: u64 = ps.iter().sum();
        let pct = |v: u64| if total == 0 { 0.0 } else { 100.0 * v as f64 / total as f64 };
        out.push_str(&format!(
            "       link residency: off {:.1}%  waking {:.1}%  idle {:.1}%  active {:.1}%  retrans {:.2}%  ({} wakes, {} retries)\n",
            pct(ps[0]),
            pct(ps[1]),
            pct(ps[2]),
            pct(ps[3]),
            pct(ps[4]),
            wakes,
            retries,
        ));
    }
    out
}

/// One compared quantity in a model-vs-model differential: the same
/// physical number priced by a reference backend and a candidate backend.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDiffRow {
    /// What is being compared (e.g. `link watts (vwl16)`).
    pub label: String,
    /// The reference backend's answer.
    pub reference: f64,
    /// The candidate backend's answer.
    pub candidate: f64,
}

impl ModelDiffRow {
    /// Absolute relative divergence of the candidate from the reference.
    /// Two exact zeros agree (0.0); a nonzero candidate against a zero
    /// reference diverges infinitely.
    pub fn divergence(&self) -> f64 {
        if self.reference == 0.0 {
            if self.candidate == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ((self.candidate - self.reference) / self.reference).abs()
        }
    }
}

/// Builds the static mode-table rows of a model differential: each link
/// accounting state's watts as priced by both backends. These compare the
/// models themselves, independent of any run.
pub fn model_diff_watts_rows(
    reference: &dyn EnergyBackend,
    candidate: &dyn EnergyBackend,
) -> Vec<ModelDiffRow> {
    let mut rows = vec![
        ModelDiffRow {
            label: "link watts (off)".to_string(),
            reference: reference.link_off_watts(),
            candidate: candidate.link_off_watts(),
        },
        ModelDiffRow {
            label: "link watts (waking)".to_string(),
            reference: reference.link_waking_watts(),
            candidate: candidate.link_waking_watts(),
        },
    ];
    for mode in BwMode::ALL {
        rows.push(ModelDiffRow {
            label: format!("link watts ({})", mode.label()),
            reference: reference.link_mode_watts(mode),
            candidate: candidate.link_mode_watts(mode),
        });
    }
    rows
}

/// Builds the per-run rows of a model differential: each energy category
/// plus the total, from two reports of the *same configuration* priced by
/// different backends. The runs must come from identical configurations
/// (only the backend differing) or the comparison is meaningless —
/// backends cannot change simulation behavior, so identical configs meter
/// identical activity.
pub fn model_diff_energy_rows(reference: &RunReport, candidate: &RunReport) -> Vec<ModelDiffRow> {
    let ra = reference.power.energy.categories();
    let rb = candidate.power.energy.categories();
    let mut rows: Vec<ModelDiffRow> = EnergyBreakdown::CATEGORY_LABELS
        .iter()
        .zip(ra.iter().zip(rb.iter()))
        .map(|(label, (&a, &b))| ModelDiffRow {
            label: format!("energy ({label})"),
            reference: a,
            candidate: b,
        })
        .collect();
    rows.push(ModelDiffRow {
        label: "energy (total)".to_string(),
        reference: reference.power.energy.total(),
        candidate: candidate.power.energy.total(),
    });
    rows
}

/// Renders a model differential as an aligned table, flagging every row
/// whose divergence exceeds `threshold` (a fraction, e.g. 0.05 for 5 %).
/// Returns the text and the number of flagged rows.
pub fn model_diff_table(
    reference_name: &str,
    candidate_name: &str,
    rows: &[ModelDiffRow],
    threshold: f64,
) -> (String, usize) {
    let mut out = format!(
        "  {:<26} {:>14} {:>14} {:>9}\n",
        "quantity", reference_name, candidate_name, "diff"
    );
    let mut flagged = 0;
    for row in rows {
        let diverges = row.divergence() > threshold;
        if diverges {
            flagged += 1;
        }
        let signed_pct = if row.reference == 0.0 && row.candidate == 0.0 {
            0.0
        } else if row.reference == 0.0 {
            f64::INFINITY
        } else {
            100.0 * (row.candidate - row.reference) / row.reference
        };
        out.push_str(&format!(
            "  {:<26} {:>14.6e} {:>14.6e} {:>8.2}%{}\n",
            row.label,
            row.reference,
            row.candidate,
            signed_pct,
            if diverges { "  <-- DIVERGES" } else { "" },
        ));
    }
    out.push_str(&format!(
        "  {} of {} quantities diverge beyond the ±{:.1}% threshold\n",
        flagged,
        rows.len(),
        100.0 * threshold,
    ));
    (out, flagged)
}

/// Renders a one-line summary suitable for sweep tables.
pub fn summary_line(report: &RunReport) -> String {
    format!(
        "{:<7} {:<13} {:<6} {:<16} {:<8} {:>6.2} W/HMC  idleIO {:>4.1}%  chan {:>4.1}%  lat {:>7.1} ns  {:>8.1} acc/us",
        report.workload,
        report.topology.label(),
        report.scale,
        report.policy,
        report.mechanism,
        report.power.watts_per_hmc(),
        100.0 * report.power.idle_io_fraction(),
        100.0 * report.channel_utilization,
        report.mean_read_latency_ns,
        report.accesses_per_us,
    )
}

/// Renders a comparison of several runs against the first (the baseline).
pub fn comparison_table(reports: &[RunReport]) -> String {
    let Some(base) = reports.first() else {
        return String::from("(no runs)\n");
    };
    let mut out = format!(
        "{:<32} {:>9} {:>12} {:>12} {:>10}\n",
        "configuration", "watts", "power saved", "perf loss", "violations"
    );
    for r in reports {
        out.push_str(&format!(
            "{:<32} {:>9.2} {:>11.1}% {:>11.2}% {:>10}\n",
            format!("{} {}", r.policy, r.mechanism),
            r.power.watts(),
            100.0 * r.power_reduction_vs(base),
            100.0 * r.degradation_vs(base),
            r.violations,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use memnet_simcore::SimDuration;

    fn tiny_report() -> RunReport {
        SimConfig::builder()
            .workload("mixD")
            .eval_period(SimDuration::from_us(30))
            .build()
            .unwrap()
            .run()
    }

    #[test]
    fn bar_extremes() {
        assert_eq!(bar(0.0, 10.0, 4), "    ");
        assert_eq!(bar(10.0, 10.0, 4), "████");
        assert_eq!(bar(5.0, 10.0, 4), "██  ");
        // Degenerate max never panics.
        assert_eq!(bar(1.0, 0.0, 4), "    ");
    }

    #[test]
    fn bar_has_requested_display_width() {
        for v in [0.0, 0.124, 3.4, 9.99, 10.0] {
            let s = bar(v, 10.0, 12);
            assert_eq!(s.chars().count(), 12, "width for value {v}");
        }
    }

    #[test]
    fn breakdown_lists_all_six_categories() {
        let text = power_breakdown(&tiny_report());
        for label in EnergyBreakdown::CATEGORY_LABELS {
            assert!(text.contains(label), "missing {label}");
        }
    }

    #[test]
    fn comparison_table_baselines_first_row() {
        let a = tiny_report();
        let b = tiny_report();
        let t = comparison_table(&[a, b]);
        assert!(t.contains("power saved"));
        // The baseline row shows 0.0 % savings against itself.
        assert!(t.contains(" 0.0%"));
        assert_eq!(comparison_table(&[]), "(no runs)\n");
    }

    #[test]
    fn fault_section_lists_every_counter() {
        let mut r = tiny_report();
        r.faults.retries = 7;
        r.faults.retransmitted_flits = 35;
        r.faults.retransmission_energy = 2.5e-6;
        r.faults.unreachable_modules = 2;
        let text = fault_section(&r);
        assert!(text.contains("7 retries"));
        assert!(text.contains("35 flits replayed"));
        assert!(text.contains("2.500 uJ"));
        assert!(text.contains("2 unreachable"));
    }

    #[test]
    fn model_diff_rows_cover_every_state_and_category() {
        use memnet_power::{HmcPowerModel, IddModel};
        let a = HmcPowerModel::paper();
        let b = IddModel::hmc_gen2();
        let watts = model_diff_watts_rows(&a, &b);
        assert_eq!(watts.len(), 2 + memnet_net::mech::N_BW_MODES);
        let r = tiny_report();
        let energy = model_diff_energy_rows(&r, &r);
        assert_eq!(energy.len(), EnergyBreakdown::CATEGORY_LABELS.len() + 1);
        // Identical reports never diverge from themselves.
        assert!(energy.iter().all(|row| row.divergence() == 0.0));
    }

    #[test]
    fn divergence_guards_zero_references() {
        let both_zero = ModelDiffRow { label: "z".into(), reference: 0.0, candidate: 0.0 };
        assert_eq!(both_zero.divergence(), 0.0);
        let from_zero = ModelDiffRow { label: "z".into(), reference: 0.0, candidate: 1.0 };
        assert_eq!(from_zero.divergence(), f64::INFINITY);
        let ten_pct = ModelDiffRow { label: "t".into(), reference: 2.0, candidate: 1.8 };
        assert!((ten_pct.divergence() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn model_diff_table_flags_and_counts() {
        let rows = vec![
            ModelDiffRow { label: "fine".into(), reference: 1.0, candidate: 1.02 },
            ModelDiffRow { label: "broken".into(), reference: 1.0, candidate: 1.5 },
        ];
        let (text, flagged) = model_diff_table("analytical", "idd", &rows, 0.05);
        assert_eq!(flagged, 1);
        assert!(text.contains("<-- DIVERGES"));
        assert!(text.contains("1 of 2 quantities diverge"));
        let (clean, none) = model_diff_table("analytical", "idd", &rows, 0.60);
        assert_eq!(none, 0);
        assert!(!clean.contains("DIVERGES"));
    }

    #[test]
    fn summary_line_is_single_line() {
        let line = summary_line(&tiny_report());
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("W/HMC"));
    }
}
