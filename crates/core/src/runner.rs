//! Experiment execution helpers: baseline pairing and parallel sweeps.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

use memnet_policy::{Mechanism, PolicyKind};

use crate::config::SimConfig;
use crate::metrics::RunReport;

/// Runs `cfg` and its full-power baseline (same workload / topology /
/// scale / seed, links always on), returning `(managed, baseline)`.
///
/// Every power-reduction and performance-degradation number in the paper
/// is relative to this baseline.
pub fn run_pair(cfg: SimConfig) -> (RunReport, RunReport) {
    let mut base = cfg.clone();
    base.policy = PolicyKind::FullPower;
    base.mechanism = Mechanism::FullPower;
    let managed = cfg.run();
    let baseline = base.run();
    (managed, baseline)
}

/// Runs a batch of configurations across `threads` worker threads,
/// returning reports in input order.
///
/// # Panics
///
/// Panics if `threads` is zero, or if a worker panics — in which case the
/// panic message names the configuration whose run failed rather than
/// surfacing as an opaque poisoned-lock error in the caller.
pub fn sweep(configs: Vec<SimConfig>, threads: usize) -> Vec<RunReport> {
    let jobs = configs
        .into_iter()
        .map(|c| {
            let seed = c.seed;
            (c, vec![seed])
        })
        .collect();
    sweep_seeds(jobs, threads)
        .into_iter()
        .map(|mut reports| reports.pop().expect("one seed per job"))
        .collect()
}

/// Runs a batch of `(configuration, seed list)` jobs across `threads`
/// worker threads, returning each job's reports (one per seed, in seed
/// order) in input order.
///
/// A job with one seed runs solo. A job with several seeds runs them as
/// lockstep replicas through [`Engine::run_many_limited`] — one shared
/// construction, the serial interleaved driver — so its reports are
/// byte-identical to solo runs while the batch stays within this sweep's
/// worker pool (the replicas never spawn nested threads).
///
/// [`Engine::run_many_limited`]: crate::Engine::run_many_limited
///
/// # Panics
///
/// Panics if `threads` is zero, or if a worker panics — in which case the
/// panic message names the configuration whose run failed rather than
/// surfacing as an opaque poisoned-lock error in the caller.
pub fn sweep_seeds(jobs: Vec<(SimConfig, Vec<u64>)>, threads: usize) -> Vec<Vec<RunReport>> {
    assert!(threads > 0, "need at least one thread");
    let n = jobs.len();
    let jobs: Vec<(usize, SimConfig, Vec<u64>)> =
        jobs.into_iter().enumerate().map(|(i, (c, s))| (i, c, s)).collect();
    let queue = Mutex::new(jobs);
    // One slot per job: the reports, or the panic message of a failed run.
    type Slot = Option<Result<Vec<RunReport>, String>>;
    let results: Mutex<Vec<Slot>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                // A panicking worker poisons the mutexes; recover the guard
                // so other workers keep draining the queue and the panic is
                // attributed below instead of dying on "queue lock".
                let job = queue.lock().unwrap_or_else(|p| p.into_inner()).pop();
                let Some((idx, cfg, seeds)) = job else { break };
                // Copy the identifying fields out so the description is
                // only formatted on the panic path, not once per job.
                let (workload, topology, policy, mechanism) =
                    (cfg.workload.name, cfg.topology, cfg.policy, cfg.mechanism);
                let outcome = catch_unwind(AssertUnwindSafe(|| match seeds.as_slice() {
                    [] => Vec::new(),
                    [seed] => {
                        let mut solo = cfg;
                        solo.seed = *seed;
                        vec![solo.run()]
                    }
                    many => crate::Engine::run_many_limited(
                        &cfg,
                        many,
                        crate::limits::RunLimits::none(),
                    )
                    .into_iter()
                    .map(|r| r.report)
                    .collect(),
                }))
                .map_err(|cause| {
                    let msg = cause
                        .downcast_ref::<String>()
                        .map(String::as_str)
                        .or_else(|| cause.downcast_ref::<&str>().copied())
                        .unwrap_or("non-string panic payload");
                    format!(
                        "workload {workload:?}, topology {topology:?}, policy {policy:?}, \
                         mechanism {mechanism:?}: {msg}"
                    )
                });
                results.lock().unwrap_or_else(|p| p.into_inner())[idx] = Some(outcome);
            });
        }
    });
    let slots = results.into_inner().unwrap_or_else(|p| p.into_inner());
    let failures: Vec<String> = slots
        .iter()
        .filter_map(|s| match s {
            Some(Err(msg)) => Some(msg.clone()),
            _ => None,
        })
        .collect();
    assert!(
        failures.is_empty(),
        "sweep: {} of {n} runs panicked:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    slots.into_iter().map(|r| r.expect("every job ran").expect("failures checked above")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SimDuration;

    fn quick(workload: &str) -> SimConfig {
        SimConfig::builder()
            .workload(workload)
            .eval_period(SimDuration::from_us(30))
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_preserves_input_order() {
        let reports = sweep(vec![quick("mixD"), quick("lu.D"), quick("mixB")], 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].workload, "mixD");
        assert_eq!(reports[1].workload, "lu.D");
        assert_eq!(reports[2].workload, "mixB");
    }

    #[test]
    fn run_pair_returns_matching_baseline() {
        let mut cfg = quick("mixD");
        cfg.policy = PolicyKind::NetworkUnaware;
        cfg.mechanism = Mechanism::Vwl;
        let (managed, baseline) = run_pair(cfg);
        assert_eq!(managed.workload, baseline.workload);
        assert_eq!(baseline.policy, "full power");
        assert_eq!(managed.policy, "network-unaware");
    }
}
