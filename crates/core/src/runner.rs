//! Experiment execution helpers: baseline pairing and parallel sweeps.

use std::sync::Mutex;

use memnet_policy::{Mechanism, PolicyKind};

use crate::config::SimConfig;
use crate::metrics::RunReport;

/// Runs `cfg` and its full-power baseline (same workload / topology /
/// scale / seed, links always on), returning `(managed, baseline)`.
///
/// Every power-reduction and performance-degradation number in the paper
/// is relative to this baseline.
pub fn run_pair(cfg: SimConfig) -> (RunReport, RunReport) {
    let mut base = cfg.clone();
    base.policy = PolicyKind::FullPower;
    base.mechanism = Mechanism::FullPower;
    let managed = cfg.run();
    let baseline = base.run();
    (managed, baseline)
}

/// Runs a batch of configurations across `threads` worker threads,
/// returning reports in input order.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker panics.
pub fn sweep(configs: Vec<SimConfig>, threads: usize) -> Vec<RunReport> {
    assert!(threads > 0, "need at least one thread");
    let n = configs.len();
    let jobs: Vec<(usize, SimConfig)> = configs.into_iter().enumerate().collect();
    let queue = Mutex::new(jobs);
    let results: Mutex<Vec<Option<RunReport>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue lock").pop();
                let Some((idx, cfg)) = job else { break };
                let report = cfg.run();
                results.lock().expect("results lock")[idx] = Some(report);
            });
        }
    });
    results
        .into_inner()
        .expect("workers finished")
        .into_iter()
        .map(|r| r.expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SimDuration;

    fn quick(workload: &str) -> SimConfig {
        SimConfig::builder()
            .workload(workload)
            .eval_period(SimDuration::from_us(30))
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_preserves_input_order() {
        let reports = sweep(vec![quick("mixD"), quick("lu.D"), quick("mixB")], 3);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].workload, "mixD");
        assert_eq!(reports[1].workload, "lu.D");
        assert_eq!(reports[2].workload, "mixB");
    }

    #[test]
    fn run_pair_returns_matching_baseline() {
        let mut cfg = quick("mixD");
        cfg.policy = PolicyKind::NetworkUnaware;
        cfg.mechanism = Mechanism::Vwl;
        let (managed, baseline) = run_pair(cfg);
        assert_eq!(managed.workload, baseline.workload);
        assert_eq!(baseline.policy, "full power");
        assert_eq!(managed.policy, "network-unaware");
    }
}
