//! Multi-channel simulation — the paper's stated future work.
//!
//! The paper evaluates a single HMC channel, arguing that channels are
//! physically independent and traffic is interleaved across them. This
//! module implements exactly that composition: `k` independent channels,
//! each a full memory network running 1/k-th of the workload's traffic
//! (the workload's request rate divides across channels, footprint and
//! CDF unchanged — adjacent memory is interleaved across channels, so
//! every channel sees the same spatial distribution), with per-channel
//! RNG streams forked from the base seed.
//!
//! # Examples
//!
//! ```no_run
//! use memnet_core::multichannel::run_channels;
//! use memnet_core::SimConfig;
//!
//! let cfg = SimConfig::builder().workload("mixB").build()?;
//! let combined = run_channels(cfg, 4, 1);
//! println!("4-channel power: {:.1} W", combined.total_watts);
//! # Ok::<(), memnet_core::ConfigError>(())
//! ```

use serde::Serialize;

use crate::config::SimConfig;
use crate::metrics::RunReport;
use crate::runner::sweep;

/// Aggregate of `k` independent channel simulations.
#[derive(Debug, Clone, Serialize)]
pub struct MultiChannelReport {
    /// Per-channel reports, channel 0 first.
    pub channels: Vec<RunReport>,
    /// Sum of network power over channels, watts.
    pub total_watts: f64,
    /// Sum of throughput over channels, accesses per microsecond.
    pub total_accesses_per_us: f64,
    /// Mean read latency over channels, nanoseconds.
    pub mean_read_latency_ns: f64,
    /// Idle-I/O fraction of the combined energy.
    pub idle_io_fraction: f64,
}

/// Runs `channels` independent copies of `cfg`, each carrying `1/k` of
/// the workload's traffic, and aggregates.
///
/// # Panics
///
/// Panics if `channels` is zero.
pub fn run_channels(cfg: SimConfig, channels: usize, threads: usize) -> MultiChannelReport {
    assert!(channels > 0, "need at least one channel");
    let mut configs = Vec::with_capacity(channels);
    for ch in 0..channels {
        let mut c = cfg.clone();
        // Interleaving across k channels divides each channel's request
        // rate by k: stretch the target channel utilization accordingly.
        c.workload.channel_utilization =
            (cfg.workload.channel_utilization / channels as f64).max(0.001);
        c.seed = cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(ch as u64 + 1));
        configs.push(c);
    }
    let reports = sweep(configs, threads);
    let total_watts = reports.iter().map(|r| r.power.watts()).sum();
    let total_accesses_per_us = reports.iter().map(|r| r.accesses_per_us).sum();
    let mean_read_latency_ns =
        reports.iter().map(|r| r.mean_read_latency_ns).sum::<f64>() / channels as f64;
    let combined_energy: memnet_power::EnergyBreakdown =
        reports.iter().map(|r| r.power.energy).sum();
    MultiChannelReport {
        total_watts,
        total_accesses_per_us,
        mean_read_latency_ns,
        idle_io_fraction: combined_energy.idle_io_fraction(),
        channels: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SimDuration;

    fn tiny() -> SimConfig {
        SimConfig::builder().workload("mixD").eval_period(SimDuration::from_us(40)).build().unwrap()
    }

    #[test]
    fn channels_aggregate_additively() {
        let r = run_channels(tiny(), 2, 1);
        assert_eq!(r.channels.len(), 2);
        let sum: f64 = r.channels.iter().map(|c| c.power.watts()).sum();
        assert!((r.total_watts - sum).abs() < 1e-9);
    }

    #[test]
    fn per_channel_utilization_divides() {
        let one = run_channels(tiny(), 1, 1);
        let four = run_channels(tiny(), 4, 1);
        let avg4: f64 = four.channels.iter().map(|c| c.channel_utilization).sum::<f64>() / 4.0;
        assert!(
            avg4 < one.channels[0].channel_utilization * 0.6,
            "4-way channels must each be far less utilized: {avg4} vs {}",
            one.channels[0].channel_utilization
        );
    }

    #[test]
    fn channels_use_distinct_seeds() {
        let r = run_channels(tiny(), 2, 1);
        assert_ne!(
            r.channels[0].completed_reads, r.channels[1].completed_reads,
            "distinct seeds should desynchronize the channels"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        run_channels(tiny(), 0, 1);
    }
}
