//! Multi-channel simulation — the paper's stated future work.
//!
//! The paper evaluates a single HMC channel, arguing that channels are
//! physically independent and traffic is interleaved across them. This
//! module implements exactly that composition: `k` independent channels,
//! each a full memory network running 1/k-th of the workload's traffic
//! (the workload's request rate divides across channels, footprint and
//! CDF unchanged — adjacent memory is interleaved across channels, so
//! every channel sees the same spatial distribution), with per-channel
//! RNG streams forked from the base seed.
//!
//! # Examples
//!
//! ```no_run
//! use memnet_core::multichannel::run_channels;
//! use memnet_core::SimConfig;
//!
//! let cfg = SimConfig::builder().workload("mixB").build()?;
//! let combined = run_channels(cfg, 4, 1);
//! println!("4-channel power: {:.1} W", combined.total_watts);
//! # Ok::<(), memnet_core::ConfigError>(())
//! ```

use memnet_simcore::SplitMix64;
use serde::Serialize;

use crate::config::SimConfig;
use crate::metrics::RunReport;
use crate::runner::sweep;

/// Stream salt separating channel seed derivation from every other
/// consumer of the base seed (fault streams use their own salt; the
/// frontend consumes the per-channel seed directly).
pub const CHANNEL_STREAM_SALT: u64 = 0xC4A2_11E1;

/// Derives channel `ch`'s run seed from the sweep's base seed.
///
/// The seeds are drawn through SplitMix64's output mixer rather than by
/// offsetting the raw state. The previous derivation,
/// `base + GOLDEN_GAMMA * (ch + 1)`, placed every channel on the *same*
/// state orbit — SplitMix64 advances its state by exactly `GOLDEN_GAMMA`
/// per draw, so channel `k + 1`'s generator replayed channel `k`'s output
/// stream shifted by one draw, silently correlating "independent"
/// channels. Mixed draws land on unrelated orbits, and the double fork
/// keeps them disjoint from the per-link fault streams
/// ([`memnet_faults::FAULT_STREAM_SALT`]) forked from each channel seed.
pub fn channel_seed(base: u64, ch: usize) -> u64 {
    SplitMix64::new(base).fork(CHANNEL_STREAM_SALT).fork(ch as u64 + 1).next_u64()
}

/// Aggregate of `k` independent channel simulations.
#[derive(Debug, Clone, Serialize)]
pub struct MultiChannelReport {
    /// Per-channel reports, channel 0 first.
    pub channels: Vec<RunReport>,
    /// Sum of network power over channels, watts.
    pub total_watts: f64,
    /// Sum of throughput over channels, accesses per microsecond.
    pub total_accesses_per_us: f64,
    /// Mean read latency over channels, nanoseconds.
    pub mean_read_latency_ns: f64,
    /// Idle-I/O fraction of the combined energy.
    pub idle_io_fraction: f64,
}

/// Runs `channels` independent copies of `cfg`, each carrying `1/k` of
/// the workload's traffic, and aggregates.
///
/// # Panics
///
/// Panics if `channels` is zero.
pub fn run_channels(cfg: SimConfig, channels: usize, threads: usize) -> MultiChannelReport {
    assert!(channels > 0, "need at least one channel");
    let mut configs = Vec::with_capacity(channels);
    for ch in 0..channels {
        let mut c = cfg.clone();
        // Interleaving across k channels divides each channel's request
        // rate by k: stretch the target channel utilization accordingly.
        c.workload.channel_utilization =
            (cfg.workload.channel_utilization / channels as f64).max(0.001);
        c.seed = channel_seed(cfg.seed, ch);
        configs.push(c);
    }
    let reports = sweep(configs, threads);
    let total_watts = reports.iter().map(|r| r.power.watts()).sum();
    let total_accesses_per_us = reports.iter().map(|r| r.accesses_per_us).sum();
    let mean_read_latency_ns =
        reports.iter().map(|r| r.mean_read_latency_ns).sum::<f64>() / channels as f64;
    let combined_energy: memnet_power::EnergyBreakdown =
        reports.iter().map(|r| r.power.energy).sum();
    MultiChannelReport {
        total_watts,
        total_accesses_per_us,
        mean_read_latency_ns,
        idle_io_fraction: combined_energy.idle_io_fraction(),
        channels: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SimDuration;

    fn tiny() -> SimConfig {
        SimConfig::builder().workload("mixD").eval_period(SimDuration::from_us(40)).build().unwrap()
    }

    #[test]
    fn channels_aggregate_additively() {
        let r = run_channels(tiny(), 2, 1);
        assert_eq!(r.channels.len(), 2);
        let sum: f64 = r.channels.iter().map(|c| c.power.watts()).sum();
        assert!((r.total_watts - sum).abs() < 1e-9);
    }

    #[test]
    fn per_channel_utilization_divides() {
        let one = run_channels(tiny(), 1, 1);
        let four = run_channels(tiny(), 4, 1);
        let avg4: f64 = four.channels.iter().map(|c| c.channel_utilization).sum::<f64>() / 4.0;
        assert!(
            avg4 < one.channels[0].channel_utilization * 0.6,
            "4-way channels must each be far less utilized: {avg4} vs {}",
            one.channels[0].channel_utilization
        );
    }

    #[test]
    fn channels_use_distinct_seeds() {
        let r = run_channels(tiny(), 2, 1);
        assert_ne!(
            r.channels[0].completed_reads, r.channels[1].completed_reads,
            "distinct seeds should desynchronize the channels"
        );
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        run_channels(tiny(), 0, 1);
    }

    /// First `n` outputs of a fresh generator seeded with `seed`.
    fn outputs(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn channel_streams_are_not_shifted_copies_of_each_other() {
        // Regression: the old derivation (base + GAMMA * (ch + 1)) put all
        // channels on one state orbit, so channel k + 1's output stream
        // was channel k's shifted by one draw. Check no channel's window
        // of outputs appears anywhere in a longer window of any other's.
        for base in [0u64, 1, 0xC0FFEE, u64::MAX] {
            let streams: Vec<Vec<u64>> =
                (0..6).map(|ch| outputs(channel_seed(base, ch), 64)).collect();
            for (a, sa) in streams.iter().enumerate() {
                for (b, sb) in streams.iter().enumerate() {
                    if a == b {
                        continue;
                    }
                    for offset in 0..48 {
                        assert_ne!(
                            &sa[..16],
                            &sb[offset..offset + 16],
                            "base {base:#x}: channel {a} replays channel {b} shifted by {offset}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn channel_seeds_never_collide_with_fault_streams() {
        // Every RNG stream a multi-channel faulty run touches must be
        // pairwise distinct: the frontend stream of each channel (seeded
        // with the channel seed directly) and every per-link fault stream
        // (forked from the channel seed through FAULT_STREAM_SALT, as
        // FaultModel::new does). Streams are private state, so identity is
        // checked through a 4-output prefix — identical prefixes of a
        // mixed generator mean an identical stream for all practical
        // purposes, while 300-odd independent streams collide with
        // probability ~2^-248.
        use std::collections::HashSet;
        let mut prefixes: HashSet<[u64; 4]> = HashSet::new();
        let mut n = 0;
        for base in [0u64, 7, 0xC0FFEE] {
            for ch in 0..4 {
                let seed = channel_seed(base, ch);
                let mut frontend = SplitMix64::new(seed);
                let prefix = std::array::from_fn(|_| frontend.next_u64());
                assert!(
                    prefixes.insert(prefix),
                    "frontend stream duplicated (base {base:#x} ch {ch})"
                );
                n += 1;
                let root = SplitMix64::new(seed).fork(memnet_faults::FAULT_STREAM_SALT);
                for link in 0..16u64 {
                    let mut fault = root.fork(link);
                    let prefix = std::array::from_fn(|_| fault.next_u64());
                    assert!(
                        prefixes.insert(prefix),
                        "fault stream duplicated (base {base:#x} ch {ch} link {link})"
                    );
                    n += 1;
                }
            }
        }
        assert_eq!(prefixes.len(), n);
    }

    #[test]
    fn stream_salt_registry_is_pairwise_distinct() {
        // The workspace's named stream salts, pinned to their published
        // values so an edit to any one of them is a conscious act (it
        // invalidates every cached result), next to the raw 0/1/2 stream
        // ids the synthetic RequestGenerator forks straight off the run
        // seed. Every entry must be pairwise distinct: `fork` is
        // `state ^ salt * GAMMA`, so two consumers forking the same salt
        // off one parent share a stream — and `fork(0)` is the identity
        // fork (XOR with zero), i.e. the parent stream itself. That is
        // why no *named* salt may be 0, 1 or 2: the raw ids are taken.
        let registry: [(&str, u64); 6] = [
            ("CHANNEL_STREAM_SALT", CHANNEL_STREAM_SALT),
            ("FAULT_STREAM_SALT", memnet_faults::FAULT_STREAM_SALT),
            ("STRESS_STREAM_SALT", memnet_workload::STRESS_STREAM_SALT),
            ("raw addr stream", 0),
            ("raw time stream", 1),
            ("raw kind stream", 2),
        ];
        assert_eq!(CHANNEL_STREAM_SALT, 0xC4A2_11E1);
        assert_eq!(memnet_faults::FAULT_STREAM_SALT, 0xFA01_7CC5);
        assert_eq!(memnet_workload::STRESS_STREAM_SALT, 0x57E5_50A7);
        for (i, (a_name, a)) in registry.iter().enumerate() {
            for (b_name, b) in &registry[i + 1..] {
                assert_ne!(a, b, "{a_name} and {b_name} share salt {a:#x}");
            }
        }
    }

    #[test]
    fn replica_seeds_cannot_collide_derived_streams() {
        // Lockstep replicas adopt their seeds verbatim (Engine::run_many
        // never derives them), so stream safety across a multi-seed cell
        // reduces to: for any small set of user-chosen seeds — adjacent
        // integers being the worst realistic case — every stream any
        // replica derives is pairwise distinct, across replicas and
        // across stream families. Covers the synthetic generator's raw
        // 0/1/2 forks, the stress generator's salted forks, channel
        // seeds, and per-link fault streams. Identity is a 4-output
        // prefix, as in channel_seeds_never_collide_with_fault_streams.
        //
        // Regression guarded here: the stress generator used to fork raw
        // 0/1/2 like the synthetic one, so a stress replica and a
        // synthetic replica with equal seeds drew identical randomness.
        use std::collections::HashSet;
        let prefix4 = |rng: &SplitMix64| -> [u64; 4] {
            let mut rng = rng.clone();
            std::array::from_fn(|_| rng.next_u64())
        };
        let mut seen: HashSet<[u64; 4]> = HashSet::new();
        let mut n = 0usize;
        let check = |name: &str, seed: u64, rng: &SplitMix64, seen: &mut HashSet<[u64; 4]>| {
            assert!(seen.insert(prefix4(rng)), "{name} stream duplicated under seed {seed}");
        };
        for seed in 40u64..48 {
            let root = SplitMix64::new(seed);
            let stress = root.fork(memnet_workload::STRESS_STREAM_SALT);
            for stream in 0..3 {
                check("synthetic", seed, &root.fork(stream), &mut seen);
                check("stress", seed, &stress.fork(stream), &mut seen);
                n += 2;
            }
            for ch in 0..2 {
                let ch_seed = channel_seed(seed, ch);
                check("channel frontend", seed, &SplitMix64::new(ch_seed), &mut seen);
                n += 1;
                let faults = SplitMix64::new(ch_seed).fork(memnet_faults::FAULT_STREAM_SALT);
                for link in 0..4 {
                    check("fault", seed, &faults.fork(link), &mut seen);
                    n += 1;
                }
            }
        }
        assert_eq!(seen.len(), n);
    }
}
