//! The processor front-end: a closed-loop memory request injector.
//!
//! Models the memory-level parallelism of the paper's 16-core processor
//! (Table II) without simulating cores: up to `max_outstanding_reads`
//! reads may be in flight (the aggregate ROB-induced window) and writes
//! drain through a bounded write buffer. Request *gaps* come from the
//! workload generator but are applied relative to the previous injection,
//! modeling an execution whose forward progress depends on its memory
//! accesses — so sustained memory slowdown translates into proportionally
//! less work completed, the paper's performance metric.

use memnet_simcore::stats::OnlineStats;
use memnet_simcore::{SimDuration, SimTime};
use memnet_workload::{MemoryRequest, RequestGenerator, StressGenerator, TraceCursor};

/// Where the front-end's request stream comes from.
///
/// All three sources share the [`MemoryRequest`] path, so everything
/// downstream of injection — routing, power management, reports, audits,
/// caching — is identical regardless of the source. A closed enum (not a
/// trait object) keeps `Frontend` `Debug + Clone`, which the engine and
/// the sweep runner rely on.
#[derive(Debug, Clone)]
pub enum TrafficSource {
    /// The calibrated two-state catalog generator.
    Synthetic(RequestGenerator),
    /// An adversarial stress generator (see [`memnet_workload::stress`]).
    Stress(StressGenerator),
    /// Replay of a recorded request trace; finite — the source reports
    /// exhaustion when the trace runs out.
    Replay(TraceCursor),
}

impl TrafficSource {
    /// Produces the next request in schedule order, or `None` once a
    /// finite source (trace replay) is exhausted. Generator-backed
    /// sources never return `None`.
    pub fn next_request(&mut self) -> Option<MemoryRequest> {
        match self {
            TrafficSource::Synthetic(g) => Some(g.next_request()),
            TrafficSource::Stress(g) => Some(g.next_request()),
            TrafficSource::Replay(c) => c.next_request(),
        }
    }
}

/// What the front-end wants to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectStep {
    /// Inject this request now.
    Inject(MemoryRequest),
    /// Nothing is ready before this time; re-poll then.
    WaitUntil(SimTime),
    /// The read window is full; re-poll when a read completes.
    ReadWindowFull,
    /// The write buffer is full; re-poll when a write retires.
    WriteBufferFull,
    /// A finite source (trace replay) has no further requests; the
    /// injector stays idle for the rest of the run.
    Exhausted,
}

/// Closed-loop request injector.
#[derive(Debug, Clone)]
pub struct Frontend {
    source: TrafficSource,
    exhausted: bool,
    max_reads: usize,
    max_writes: usize,
    outstanding_reads: usize,
    outstanding_writes: usize,
    /// Next request, with its schedule-relative gap already resolved.
    pending: Option<(MemoryRequest, SimTime)>,
    prev_schedule: SimTime,
    last_inject: SimTime,
    injected_reads: u64,
    injected_writes: u64,
    completed_reads: u64,
    retired_writes: u64,
    aborted_reads: u64,
    aborted_writes: u64,
    read_latency: OnlineStats,
}

impl Frontend {
    /// Creates a front-end drawing from `source` with the given windows.
    pub fn new(source: TrafficSource, max_reads: usize, max_writes: usize) -> Self {
        Frontend {
            source,
            exhausted: false,
            max_reads,
            max_writes,
            outstanding_reads: 0,
            outstanding_writes: 0,
            pending: None,
            prev_schedule: SimTime::ZERO,
            last_inject: SimTime::ZERO,
            injected_reads: 0,
            injected_writes: 0,
            completed_reads: 0,
            retired_writes: 0,
            aborted_reads: 0,
            aborted_writes: 0,
            read_latency: OnlineStats::new(),
        }
    }

    fn refill(&mut self) {
        if self.pending.is_none() && !self.exhausted {
            let Some(req) = self.source.next_request() else {
                self.exhausted = true;
                return;
            };
            let gap = req.ready_at.saturating_since(self.prev_schedule);
            self.prev_schedule = req.ready_at;
            // Gaps are relative to the previous injection: memory stalls
            // push the whole future schedule back (no catch-up bursts).
            let ready = self.last_inject + gap;
            self.pending = Some((req, ready));
        }
    }

    /// Polls the injector at `now`.
    pub fn step(&mut self, now: SimTime) -> InjectStep {
        self.refill();
        let Some((req, ready)) = self.pending else {
            return InjectStep::Exhausted;
        };
        if ready > now {
            return InjectStep::WaitUntil(ready);
        }
        if req.is_read {
            if self.outstanding_reads >= self.max_reads {
                return InjectStep::ReadWindowFull;
            }
            self.outstanding_reads += 1;
            self.injected_reads += 1;
        } else {
            if self.outstanding_writes >= self.max_writes {
                return InjectStep::WriteBufferFull;
            }
            self.outstanding_writes += 1;
            self.injected_writes += 1;
        }
        self.last_inject = now;
        self.pending = None;
        InjectStep::Inject(req)
    }

    /// Records a read response arriving at the processor.
    ///
    /// # Panics
    ///
    /// Panics if no read is outstanding.
    pub fn complete_read(&mut self, latency: SimDuration) {
        assert!(self.outstanding_reads > 0, "read completion without outstanding read");
        self.outstanding_reads -= 1;
        self.completed_reads += 1;
        self.read_latency.record(latency.as_ns());
    }

    /// Records a write being absorbed by a memory module.
    ///
    /// # Panics
    ///
    /// Panics if no write is outstanding.
    pub fn retire_write(&mut self) {
        assert!(self.outstanding_writes > 0, "write retire without outstanding write");
        self.outstanding_writes -= 1;
        self.retired_writes += 1;
    }

    /// Records a read aborted by the memory system (its destination is
    /// unreachable after a hard link failure): the window slot is released
    /// but no latency is recorded and the access never completes.
    ///
    /// # Panics
    ///
    /// Panics if no read is outstanding.
    pub fn abort_read(&mut self) {
        assert!(self.outstanding_reads > 0, "read abort without outstanding read");
        self.outstanding_reads -= 1;
        self.aborted_reads += 1;
    }

    /// Records a write aborted by the memory system (unreachable
    /// destination); the buffer slot is released without retiring.
    ///
    /// # Panics
    ///
    /// Panics if no write is outstanding.
    pub fn abort_write(&mut self) {
        assert!(self.outstanding_writes > 0, "write abort without outstanding write");
        self.outstanding_writes -= 1;
        self.aborted_writes += 1;
    }

    /// Reads currently in flight.
    pub fn outstanding_reads(&self) -> usize {
        self.outstanding_reads
    }

    /// Writes currently buffered.
    pub fn outstanding_writes(&self) -> usize {
        self.outstanding_writes
    }

    /// Reads injected so far.
    pub fn injected_reads(&self) -> u64 {
        self.injected_reads
    }

    /// Writes injected so far.
    pub fn injected_writes(&self) -> u64 {
        self.injected_writes
    }

    /// Reads completed so far.
    pub fn completed_reads(&self) -> u64 {
        self.completed_reads
    }

    /// Writes retired so far.
    pub fn retired_writes(&self) -> u64 {
        self.retired_writes
    }

    /// Reads aborted (unreachable destination) so far.
    pub fn aborted_reads(&self) -> u64 {
        self.aborted_reads
    }

    /// Writes aborted (unreachable destination) so far.
    pub fn aborted_writes(&self) -> u64 {
        self.aborted_writes
    }

    /// Read latency statistics (nanoseconds).
    pub fn read_latency(&self) -> &OnlineStats {
        &self.read_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memnet_simcore::SplitMix64;
    use memnet_workload::{catalog, RequestTrace};
    use std::sync::Arc;

    fn frontend() -> Frontend {
        let gen = RequestGenerator::new(catalog::by_name("mixB").unwrap(), SplitMix64::new(1));
        Frontend::new(TrafficSource::Synthetic(gen), 4, 8)
    }

    #[test]
    fn injects_when_ready_and_window_open() {
        let mut f = frontend();
        // Walk time forward until the first injection.
        let mut now = SimTime::ZERO;
        let req = loop {
            match f.step(now) {
                InjectStep::Inject(r) => break r,
                InjectStep::WaitUntil(t) => now = t,
                other => panic!("unexpected {other:?}"),
            }
        };
        let _ = req;
        assert_eq!(f.injected_reads() + f.injected_writes(), 1);
    }

    #[test]
    fn read_window_blocks_and_releases() {
        let mut f = frontend();
        let mut now = SimTime::ZERO;
        let mut injected = 0;
        // Inject until the read window jams (writes keep flowing).
        let mut guard = 0;
        loop {
            guard += 1;
            assert!(guard < 10_000, "never blocked");
            match f.step(now) {
                InjectStep::Inject(_) => injected += 1,
                InjectStep::WaitUntil(t) => now = t,
                InjectStep::ReadWindowFull => break,
                InjectStep::WriteBufferFull => break,
                InjectStep::Exhausted => panic!("synthetic sources never exhaust"),
            }
        }
        assert!(injected >= 4);
        let before = f.outstanding_reads();
        if before == 4 {
            f.complete_read(SimDuration::from_ns(100));
            assert_eq!(f.outstanding_reads(), 3);
        }
    }

    #[test]
    fn stalls_push_the_schedule_back() {
        let mut f = frontend();
        let mut now = SimTime::ZERO;
        // First injection at its natural ready time.
        let t1 = loop {
            match f.step(now) {
                InjectStep::Inject(_) => break now,
                InjectStep::WaitUntil(t) => now = t,
                other => panic!("unexpected {other:?}"),
            }
        };
        // Pretend the processor stalled 1 ms before polling again: the
        // next request's ready time is measured from the late injection.
        let late = t1 + SimDuration::from_ms(1);
        match f.step(late) {
            // Either it injects right away (gap elapsed) ...
            InjectStep::Inject(_) => {}
            // ... or it asks to wait until *after* the stall, never before.
            InjectStep::WaitUntil(t) => assert!(t > late),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn latency_stats_accumulate() {
        let mut f = frontend();
        let mut now = SimTime::ZERO;
        loop {
            match f.step(now) {
                InjectStep::Inject(r) => {
                    if r.is_read {
                        break;
                    }
                    f.retire_write();
                }
                InjectStep::WaitUntil(t) => now = t,
                other => panic!("unexpected {other:?}"),
            }
        }
        f.complete_read(SimDuration::from_ns(80));
        assert_eq!(f.completed_reads(), 1);
        assert_eq!(f.read_latency().mean(), 80.0);
    }

    #[test]
    fn aborts_release_the_window_without_completing() {
        let mut f = frontend();
        let mut now = SimTime::ZERO;
        loop {
            match f.step(now) {
                InjectStep::Inject(r) => {
                    if r.is_read {
                        break;
                    }
                    f.retire_write();
                }
                InjectStep::WaitUntil(t) => now = t,
                other => panic!("unexpected {other:?}"),
            }
        }
        f.abort_read();
        assert_eq!(f.outstanding_reads(), 0);
        assert_eq!(f.aborted_reads(), 1);
        assert_eq!(f.completed_reads(), 0, "aborted reads never complete");
        assert_eq!(f.read_latency().count(), 0, "no latency recorded");
    }

    #[test]
    #[should_panic(expected = "read completion without outstanding read")]
    fn spurious_completion_panics() {
        let mut f = frontend();
        f.complete_read(SimDuration::from_ns(1));
    }

    #[test]
    fn replay_source_exhausts_cleanly() {
        // Two requests recorded; after both inject, the front-end reports
        // Exhausted forever instead of asking for more traffic.
        let reqs = vec![
            MemoryRequest { ready_at: SimTime::from_ps(100), line_addr: 1, is_read: true },
            MemoryRequest { ready_at: SimTime::from_ps(300), line_addr: 2, is_read: false },
        ];
        let trace = Arc::new(RequestTrace::new("mixB".to_owned(), 1, reqs));
        let mut f = Frontend::new(TrafficSource::Replay(TraceCursor::new(trace)), 4, 8);
        let mut now = SimTime::ZERO;
        let mut injected = 0;
        loop {
            match f.step(now) {
                InjectStep::Inject(_) => injected += 1,
                InjectStep::WaitUntil(t) => now = t,
                InjectStep::Exhausted => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(injected, 2);
        assert_eq!(f.step(now + SimDuration::from_us(1)), InjectStep::Exhausted);
    }
}
