//! Cooperative run limits for the engine loop.
//!
//! A [`RunLimits`] bundles everything that can stop a simulation before
//! its configured evaluation period ends: a wall-clock deadline, an event
//! budget, a simulated-time cap, and an external cancellation flag. The
//! engine polls the cheap integer budget on every event and the expensive
//! checks (wall clock, atomic cancel flag, progress callback) once every
//! 4096 events, so an unlimited run pays only two integer compares per
//! event over the old loop.
//!
//! Stopping early is always clean: the engine finalizes at the last
//! processed event time, so the report window matches the simulated span
//! and the conservation audits still balance. A run truncated by
//! `max_sim_time` is byte-identical to a run configured with that shorter
//! evaluation period outright (the metamorphic test in `engine.rs` holds
//! this).

use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

use memnet_simcore::{SimDuration, SimTime};

use crate::metrics::RunReport;

/// Everything that can end a run before its evaluation period does.
///
/// All limits default to "off"; [`RunLimits::none`] is the unlimited run.
#[derive(Default)]
pub struct RunLimits {
    /// Host wall-clock budget for the run loop.
    pub wall_time: Option<Duration>,
    /// Maximum number of simulation events to process.
    pub max_events: Option<u64>,
    /// Cap on simulated time (truncates the evaluation period if shorter).
    pub max_sim_time: Option<SimDuration>,
    /// External cancellation flag; the engine stops soon after it is set.
    pub cancel: Option<Arc<AtomicBool>>,
    /// Emit a [`RunProgress`] roughly every this many events (0 = never).
    pub progress_every: u64,
    /// Progress sink, called from the run loop thread.
    pub progress: Option<Box<dyn FnMut(RunProgress) + Send>>,
}

impl RunLimits {
    /// No limits: the run completes its full evaluation period.
    pub fn none() -> RunLimits {
        RunLimits::default()
    }
}

/// Why a limited run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The evaluation period finished normally.
    Completed,
    /// The wall-clock budget ran out.
    WallTime,
    /// The event budget ran out.
    MaxEvents,
    /// The simulated-time cap truncated the evaluation period.
    MaxSimTime,
    /// The external cancel flag was set.
    Cancelled,
}

impl StopReason {
    /// Stable label for reports and event streams.
    pub fn label(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::WallTime => "wall-time",
            StopReason::MaxEvents => "max-events",
            StopReason::MaxSimTime => "max-sim-time",
            StopReason::Cancelled => "cancelled",
        }
    }

    /// True for the limit-style stops (not completion, not cancellation).
    pub fn is_limit(self) -> bool {
        matches!(self, StopReason::WallTime | StopReason::MaxEvents | StopReason::MaxSimTime)
    }

    /// The exit-contract bucket: `completed`, `limit_exceeded` or
    /// `cancelled` — the values manifest `expected_exit` assertions name.
    pub fn exit_kind(self) -> &'static str {
        match self {
            StopReason::Completed => "completed",
            StopReason::Cancelled => "cancelled",
            _ => "limit_exceeded",
        }
    }
}

/// A progress sample from inside the run loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Events processed so far.
    pub events: u64,
    /// Current simulated time.
    pub now: SimTime,
}

/// The outcome of [`crate::Engine::run_limited`]: the finalized report
/// plus why the loop stopped.
pub struct LimitedRun {
    /// The finalized report (window ends at the stop time).
    pub report: RunReport,
    /// Why the run stopped.
    pub stop: StopReason,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_reason_contract() {
        assert_eq!(StopReason::Completed.label(), "completed");
        assert_eq!(StopReason::WallTime.label(), "wall-time");
        assert_eq!(StopReason::MaxEvents.label(), "max-events");
        assert_eq!(StopReason::MaxSimTime.label(), "max-sim-time");
        assert_eq!(StopReason::Cancelled.label(), "cancelled");
        assert!(StopReason::WallTime.is_limit());
        assert!(StopReason::MaxEvents.is_limit());
        assert!(StopReason::MaxSimTime.is_limit());
        assert!(!StopReason::Completed.is_limit());
        assert!(!StopReason::Cancelled.is_limit());
        assert_eq!(StopReason::Completed.exit_kind(), "completed");
        assert_eq!(StopReason::MaxEvents.exit_kind(), "limit_exceeded");
        assert_eq!(StopReason::Cancelled.exit_kind(), "cancelled");
    }

    #[test]
    fn default_limits_are_off() {
        let l = RunLimits::none();
        assert!(l.wall_time.is_none());
        assert!(l.max_events.is_none());
        assert!(l.max_sim_time.is_none());
        assert!(l.cancel.is_none());
        assert_eq!(l.progress_every, 0);
        assert!(l.progress.is_none());
    }
}
