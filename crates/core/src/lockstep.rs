//! Lockstep multi-seed execution: advance K replicas of one
//! [`SimConfig`] through a single driver pass.
//!
//! The paper's figures average many seeds per configuration, so the
//! dominant cost of a sweep cell is K near-identical runs that differ
//! only in RNG draws. [`Engine::run_many`] builds the seed-independent
//! engine state once — topology, fault rerouting, reachability, the
//! flattened route tables — and shares it across replicas behind `Arc`s.
//! Replicas then execute on every available core (striped over worker
//! threads), or through a serial interleaved driver on single-core hosts
//! and whenever [`RunLimits`] demand coordinated stopping.
//!
//! # Bit-identity
//!
//! Each replica owns its event queue, packet slab, vault state and RNG
//! streams, and every event flows through the same
//! [`Engine::dispatch`](crate::engine::Engine) path as a solo run, so a
//! replica's event order — and therefore every byte of its
//! [`RunReport`] — is identical to `Engine::run` with that seed. The
//! metamorphic tests in this module hold that across the
//! policy×mechanism×faults×obs grid.
//!
//! # Limits
//!
//! [`Engine::run_many_limited`] applies `max_events` and `max_sim_time`
//! **per replica** (each replica stops at exactly the event a solo
//! limited run would), while `wall_time` and `cancel` are global: when
//! either fires, every still-running replica finalizes at its current
//! time. Progress callbacks see aggregate event counts across replicas.

use memnet_simcore::SimTime;

use crate::config::SimConfig;
use crate::engine::{Engine, EngineParts};
use crate::limits::{LimitedRun, RunLimits, RunProgress, StopReason};
use crate::metrics::RunReport;

/// Events each replica processes per driver turn. Large enough that the
/// round-robin bookkeeping vanishes from profiles, small enough that
/// replicas stay clustered in simulated time and the shared route /
/// flit-time tables are reused while still resident.
const LOCKSTEP_BATCH: u64 = 4096;

/// One replica's slot in the driver: the engine while it runs, the
/// finished run once it stops. (`finalize` consumes the engine.)
struct Slot {
    engine: Option<Engine>,
    truncated: bool,
    done: Option<LimitedRun>,
}

impl Engine {
    /// Runs one replica of `cfg` per seed and returns the reports in seed
    /// order. Each report is bit-identical to
    /// `Engine::new({cfg with that seed}).run()`.
    ///
    /// Seed-independent construction (topology, fault rerouting,
    /// reachability, route tables) happens once and is shared across
    /// replicas. When the host exposes more than one core, replicas run
    /// on worker threads — each replica is an isolated engine, so
    /// parallelism cannot influence a single report byte; on one core the
    /// serial interleaved driver is used instead.
    pub fn run_many(cfg: &SimConfig, seeds: &[u64]) -> Vec<RunReport> {
        let par = std::thread::available_parallelism().map_or(1, |n| n.get()).min(seeds.len());
        if par > 1 {
            return run_many_parallel(cfg, seeds, par);
        }
        Engine::run_many_limited(cfg, seeds, RunLimits::none())
            .into_iter()
            .map(|r| r.report)
            .collect()
    }

    /// [`Engine::run_many`] under [`RunLimits`]: `max_events` and
    /// `max_sim_time` bound **each replica** exactly as
    /// [`Engine::run_limited`] would, `wall_time`/`cancel` stop all
    /// replicas together, and progress fires on aggregate event counts.
    pub fn run_many_limited(
        cfg: &SimConfig,
        seeds: &[u64],
        mut limits: RunLimits,
    ) -> Vec<LimitedRun> {
        // Seed-independent construction, shared across replicas.
        let parts = EngineParts::build(cfg);
        let mut slots: Vec<Slot> = seeds
            .iter()
            .map(|&seed| {
                let mut c = cfg.clone();
                c.seed = seed;
                let mut engine = Engine::from_parts(c, parts.clone());
                let truncated = match limits.max_sim_time {
                    Some(cap) => engine.truncate_end(SimTime::ZERO + cap),
                    None => false,
                };
                engine.begin();
                Slot { engine: Some(engine), truncated, done: None }
            })
            .collect();

        let event_budget = limits.max_events.unwrap_or(u64::MAX);
        let deadline = limits.wall_time.map(|d| std::time::Instant::now() + d);
        let mut next_progress =
            if limits.progress_every > 0 { limits.progress_every } else { u64::MAX };
        let mut total: u64 = 0;
        let mut active = slots.len();

        'drive: while active > 0 {
            for slot in &mut slots {
                let Some(engine) = slot.engine.as_mut() else { continue };
                // Cap the batch so per-replica event budgets stay exact:
                // a replica never processes past its budget, matching the
                // event-by-event check in `run_limited`.
                let step = LOCKSTEP_BATCH.min(event_budget - engine.events_processed());
                let n = engine.step_batch(step);
                total += n;
                if n == step && engine.events_processed() >= event_budget {
                    finish(slot, StopReason::MaxEvents, &mut active);
                } else if n < step {
                    // Queue drained (or everything left lies past `end`).
                    let engine = slot.engine.as_mut().expect("replica still running");
                    engine.complete();
                    let stop =
                        if slot.truncated { StopReason::MaxSimTime } else { StopReason::Completed };
                    finish(slot, stop, &mut active);
                }
            }
            // Global stops, polled once per round-robin sweep (at most
            // K × LOCKSTEP_BATCH events between polls).
            if let Some(flag) = &limits.cancel {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    stop_all(&mut slots, StopReason::Cancelled, &mut active);
                    break 'drive;
                }
            }
            if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                stop_all(&mut slots, StopReason::WallTime, &mut active);
                break 'drive;
            }
            if total >= next_progress {
                if let Some(cb) = &mut limits.progress {
                    let now = slots
                        .iter()
                        .filter_map(|s| s.engine.as_ref().map(Engine::now))
                        .max()
                        .unwrap_or(SimTime::ZERO);
                    cb(RunProgress { events: total, now });
                }
                next_progress = next_progress.saturating_add(limits.progress_every);
            }
        }

        slots.into_iter().map(|s| s.done.expect("every replica finished")).collect()
    }
}

/// Fans the replicas out over `par` worker threads (striped assignment,
/// so early seeds don't all land on one worker) and reassembles reports
/// in seed order. Each worker runs its replicas to completion through
/// the same engine code path as a solo run.
fn run_many_parallel(cfg: &SimConfig, seeds: &[u64], par: usize) -> Vec<RunReport> {
    let parts = EngineParts::build(cfg);
    let mut out: Vec<Option<RunReport>> = Vec::new();
    out.resize_with(seeds.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..par)
            .map(|t| {
                let parts = parts.clone();
                scope.spawn(move || {
                    seeds
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(par)
                        .map(|(i, &seed)| {
                            let mut c = cfg.clone();
                            c.seed = seed;
                            (i, Engine::from_parts(c, parts.clone()).run())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            for (i, report) in h.join().expect("replica worker panicked") {
                out[i] = Some(report);
            }
        }
    });
    out.into_iter().map(|r| r.expect("every seed produced a report")).collect()
}

/// Finalizes one replica with `stop`, ending its accounting window at
/// the last processed event for early stops.
fn finish(slot: &mut Slot, stop: StopReason, active: &mut usize) {
    let mut engine = slot.engine.take().expect("replica still running");
    if stop != StopReason::Completed && stop != StopReason::MaxSimTime {
        engine.mark_stopped();
    }
    slot.done = Some(LimitedRun { report: engine.finalize(), stop });
    *active -= 1;
}

/// Stops every still-running replica (wall-clock deadline or cancel).
fn stop_all(slots: &mut [Slot], stop: StopReason, active: &mut usize) {
    for slot in slots.iter_mut() {
        if slot.engine.is_some() {
            finish(slot, stop, active);
        }
    }
}

#[cfg(test)]
mod tests {
    use memnet_faults::FaultConfig;
    use memnet_obs::ObsConfig;
    use memnet_policy::{Mechanism, PolicyKind};
    use memnet_simcore::{AuditLevel, SimDuration};

    use super::*;

    const SEEDS: [u64; 3] = [11, 12, 13];

    fn grid_cfg(
        policy: PolicyKind,
        mechanism: Mechanism,
        faults: &str,
        obs: bool,
        audit: AuditLevel,
    ) -> SimConfig {
        let mut builder = SimConfig::builder()
            .workload("mixD")
            .policy(policy)
            .mechanism(mechanism)
            .eval_period(SimDuration::from_us(20))
            .audit(audit)
            .seed(0);
        if !faults.is_empty() {
            builder = builder.faults(FaultConfig::parse(faults).expect("valid fault spec"));
        }
        if obs {
            builder = builder.obs(ObsConfig { enabled: true, ..ObsConfig::off() });
        }
        builder.build().expect("valid configuration")
    }

    fn solo_reports(cfg: &SimConfig, seeds: &[u64]) -> Vec<RunReport> {
        seeds
            .iter()
            .map(|&seed| {
                let mut c = cfg.clone();
                c.seed = seed;
                Engine::new(c).run()
            })
            .collect()
    }

    fn assert_byte_identical(cfg: &SimConfig, label: &str) {
        let solo = solo_reports(cfg, &SEEDS);
        let many = Engine::run_many(cfg, &SEEDS);
        for (i, (s, m)) in solo.iter().zip(&many).enumerate() {
            assert_eq!(
                serde::json::to_string(s),
                serde::json::to_string(m),
                "{label}: replica for seed {} must be byte-identical to its solo run",
                SEEDS[i],
            );
        }
    }

    /// The tentpole guarantee: `run_many` reports are byte-identical JSON
    /// to the corresponding solo runs across the policy × mechanism ×
    /// faults × obs grid.
    #[test]
    fn run_many_is_byte_identical_across_policy_mechanism_grid() {
        let grid = [
            (PolicyKind::FullPower, Mechanism::FullPower),
            (PolicyKind::NetworkUnaware, Mechanism::Vwl),
            (PolicyKind::NetworkAware, Mechanism::VwlRoo),
            (PolicyKind::NetworkAware, Mechanism::DvfsRoo),
            (PolicyKind::StaticSelection, Mechanism::Vwl),
        ];
        for (policy, mechanism) in grid {
            let cfg = grid_cfg(policy, mechanism, "", false, AuditLevel::Cheap);
            assert_byte_identical(&cfg, &format!("{policy:?}/{mechanism:?}"));
        }
    }

    #[test]
    fn run_many_is_byte_identical_under_faults_and_obs() {
        let cases = [
            ("ber=1e-9", false),
            ("ber=1e-9,degrade=2:4", false),
            ("fail=1", false),
            ("", true),
            ("ber=1e-9", true),
        ];
        for (faults, obs) in cases {
            let cfg = grid_cfg(
                PolicyKind::NetworkAware,
                Mechanism::VwlRoo,
                faults,
                obs,
                AuditLevel::Full,
            );
            assert_byte_identical(&cfg, &format!("faults={faults:?} obs={obs}"));
        }
    }

    /// The serial interleaved driver must agree with the threaded path
    /// (and therefore with solo runs) — exercised through
    /// `run_many_limited`, which always uses the interleaved driver.
    #[test]
    fn interleaved_driver_is_byte_identical_and_completes() {
        let cfg = grid_cfg(
            PolicyKind::NetworkAware,
            Mechanism::VwlRoo,
            "ber=1e-9",
            true,
            AuditLevel::Full,
        );
        let solo = solo_reports(&cfg, &SEEDS);
        let many = Engine::run_many_limited(&cfg, &SEEDS, RunLimits::none());
        for (s, m) in solo.iter().zip(&many) {
            assert_eq!(m.stop, StopReason::Completed);
            assert_eq!(serde::json::to_string(s), serde::json::to_string(&m.report),);
        }
    }

    /// `max_events` bounds each replica exactly, matching solo
    /// `run_limited` event for event.
    #[test]
    fn event_budget_applies_per_replica_and_exactly() {
        let cfg =
            grid_cfg(PolicyKind::NetworkAware, Mechanism::VwlRoo, "", false, AuditLevel::Full);
        let limits = RunLimits { max_events: Some(500), ..RunLimits::none() };
        let many = Engine::run_many_limited(&cfg, &SEEDS, limits);
        for (i, run) in many.iter().enumerate() {
            assert_eq!(run.stop, StopReason::MaxEvents);
            assert_eq!(run.report.events_processed, 500, "budget is exact per replica");
            let mut c = cfg.clone();
            c.seed = SEEDS[i];
            let solo = Engine::new(c)
                .run_limited(RunLimits { max_events: Some(500), ..RunLimits::none() });
            assert_eq!(
                serde::json::to_string(&run.report),
                serde::json::to_string(&solo.report),
                "budget-capped replica equals the budget-capped solo run",
            );
        }
    }

    /// A sim-time cap truncates every replica to the same window a
    /// directly configured shorter run would use.
    #[test]
    fn sim_time_cap_applies_per_replica() {
        let cfg =
            grid_cfg(PolicyKind::NetworkAware, Mechanism::VwlRoo, "", false, AuditLevel::Full);
        let limits = RunLimits { max_sim_time: Some(SimDuration::from_us(5)), ..RunLimits::none() };
        let many = Engine::run_many_limited(&cfg, &SEEDS, limits);
        let direct_cfg = {
            let mut c = cfg.clone();
            c.eval_period = SimDuration::from_us(5);
            c
        };
        let direct = solo_reports(&direct_cfg, &SEEDS);
        for (run, d) in many.iter().zip(&direct) {
            assert_eq!(run.stop, StopReason::MaxSimTime);
            assert_eq!(serde::json::to_string(&run.report), serde::json::to_string(d),);
        }
    }

    /// A pre-set cancel flag stops every replica after its first batch.
    #[test]
    fn cancel_stops_all_replicas() {
        let cfg =
            grid_cfg(PolicyKind::NetworkAware, Mechanism::VwlRoo, "", false, AuditLevel::Cheap);
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(true));
        let many = Engine::run_many_limited(
            &cfg,
            &SEEDS,
            RunLimits { cancel: Some(flag), ..RunLimits::none() },
        );
        for run in &many {
            assert_eq!(run.stop, StopReason::Cancelled);
            assert!(run.report.audit.violations.is_empty());
        }
    }

    /// Progress callbacks observe aggregate event counts across replicas.
    #[test]
    fn progress_reports_aggregate_events() {
        let cfg =
            grid_cfg(PolicyKind::FullPower, Mechanism::FullPower, "", false, AuditLevel::Cheap);
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = seen.clone();
        let limits = RunLimits {
            progress_every: 10_000,
            progress: Some(Box::new(move |p| sink.lock().expect("progress sink").push(p.events))),
            ..RunLimits::none()
        };
        let many = Engine::run_many_limited(&cfg, &SEEDS, limits);
        let total: u64 = many.iter().map(|r| r.report.events_processed).sum();
        let seen = seen.lock().expect("progress sink");
        assert!(!seen.is_empty(), "progress fires for multi-replica runs");
        assert!(seen.iter().all(|&e| e <= total));
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "aggregate counts are monotonic");
    }

    #[test]
    fn empty_seed_list_is_empty() {
        let cfg =
            grid_cfg(PolicyKind::FullPower, Mechanism::FullPower, "", false, AuditLevel::Cheap);
        assert!(Engine::run_many(&cfg, &[]).is_empty());
    }
}
