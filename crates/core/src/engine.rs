//! The discrete-event simulation engine.
//!
//! Wires the processor front-end, the link fabric, the per-module vault
//! arrays and the power controller together and runs the event loop for
//! the configured evaluation period.
//!
//! ## Packet life cycle
//!
//! 1. The front-end injects a read/write request into the request link of
//!    the root module.
//! 2. Each link serializes the packet (flit time × flits at the current
//!    bandwidth mode), hands it to the receiving module after one SERDES
//!    latency, and the router forwards it toward the destination after a
//!    4-cycle router latency.
//! 3. At the destination the request enters the addressed vault (buffered
//!    in the module's ingress hold if the 16-entry vault queue is full).
//! 4. Read completions generate 5-flit response packets that retrace the
//!    path upstream; the front-end retires the transaction when the
//!    response reaches the processor.
//!
//! ## Power management hooks
//!
//! Every link enqueue/transmission feeds the [`PowerController`]; epoch
//! boundaries apply its mode decisions (bandwidth changes take the
//! mechanism's reconfiguration latency); rapid-on/off links turn off after
//! their idleness threshold and wake on demand — or proactively for
//! response links when a DRAM read is in flight, with network-aware
//! wakeup chaining propagating wakes up the response path.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use memnet_dram::{line_to_vault_bank, IssuedOp, Vault, VaultOp};
use memnet_faults::FaultModel;
use memnet_net::link::{
    state_on_active, state_on_idle, state_retrans, LinkSim, STATE_OFF, STATE_WAKING,
};
use memnet_net::mech::{BwMode, DvfsLevel, LinkPowerMode, VwlWidth, N_BW_MODES};
use memnet_net::{Direction, LinkId, ModuleId, NodeRef, Packet, PacketKind, Topology};
use memnet_obs::{
    saturate_latency, EpochSample, LinkSample, NullRecorder, ObsEvent, ObsEventKind, Recorder,
    TimeSeriesRecorder, TraceMeta,
};
use memnet_policy::{PolicyKind, PowerController, ViolationAction};
use memnet_power::{EnergyBackend, EnergyBreakdown, ModuleActivity};
use memnet_simcore::audit::approx_eq_rel;
use memnet_simcore::{AuditLevel, Auditor, EventQueue, FastHashState, SimDuration, SimTime};

use crate::config::{AddressMapping, SimConfig};
use crate::frontend::{Frontend, InjectStep};
use crate::limits::{LimitedRun, RunLimits, RunProgress, StopReason};
use crate::metrics::{FaultSummary, LinkTelemetry, PowerSummary, RunReport};
use crate::trace::{Trace, TraceEvent, TracePoint};

/// Router traversal latency: four pipeline cycles at the 0.64 ns flit
/// clock.
pub const ROUTER_LATENCY: SimDuration = SimDuration::from_ps(4 * 640);

/// Index into the engine's packet pool. Events reference in-flight packets
/// by slot instead of embedding the 40-byte [`Packet`], keeping heap
/// entries small (every push/pop copies the whole entry several times).
type PktSlot = u32;

#[derive(Debug, Clone)]
pub(crate) enum Event {
    TryInject,
    LinkTryStart(LinkId),
    LinkDone(LinkId),
    Deliver(LinkId, PktSlot),
    EnqueueLink(LinkId, PktSlot),
    VaultIngress(ModuleId, PktSlot),
    VaultTick(ModuleId, usize),
    VaultDone(ModuleId, usize, u64, bool),
    WakeDone(LinkId),
    LinkRetry(LinkId),
    TurnOffCheck(LinkId, SimTime),
    ModeApply(LinkId),
    ChainWake(LinkId),
    EpochEnd,
}

/// Seed-independent construction products: the (route-around-rewritten)
/// topology and the flattened routing tables derived from it. Every
/// replica of a lockstep multi-seed run shares one instance — cloning is
/// a handful of `Arc` bumps, so K replicas pay the topology build and
/// route flattening exactly once.
#[derive(Debug, Clone)]
pub(crate) struct EngineParts {
    topo: Arc<Topology>,
    /// Modules whose failed upstream edge was bridged over a spare port.
    rerouted_modules: usize,
    /// Modules no spare port could bridge; their links stay off all run.
    unreachable: Arc<[ModuleId]>,
    /// Per-module reachability after route-around.
    reachable: Arc<[bool]>,
    /// First hop from the processor toward each destination module.
    root_of: Arc<[ModuleId]>,
    /// Flat next-hop table, `current * n + dest` → next module on the
    /// unique tree path (sentinel when `current` is not on `dest`'s
    /// route).
    next_hop: Arc<[ModuleId]>,
}

impl EngineParts {
    /// Builds the shared parts for `cfg`. Depends only on the topology
    /// kind, scale and fault scenario — never on the seed, so replicas
    /// differing only in `cfg.seed` can share the result.
    pub(crate) fn build(cfg: &SimConfig) -> EngineParts {
        let n = cfg.n_hmcs();
        let built = Topology::build(cfg.topology, n);
        // Hard-failed upstream edges are routed around before anything
        // else sees the topology, so the controller, the routing tables
        // and the wake-chaining helpers all operate on the surviving tree.
        let (topo, rerouted_modules, unreachable) = if cfg.faults.hard_failed.is_empty() {
            (built, 0, Vec::new())
        } else {
            let failed: Vec<ModuleId> =
                cfg.faults.hard_failed.iter().map(|&m| ModuleId(m)).collect();
            let ra = built.route_around(&failed);
            (ra.topology, ra.rerouted.len(), ra.unreachable)
        };
        let topo = Arc::new(topo);
        let mut reachable = vec![true; n];
        for &m in &unreachable {
            reachable[m.0] = false;
        }
        // Flatten the per-destination routes into a next-hop table so the
        // forwarding path is one indexed load instead of a route scan.
        let sentinel = ModuleId(usize::MAX);
        let mut root_of = vec![sentinel; n];
        let mut next_hop = vec![sentinel; n * n];
        for dest in topo.modules() {
            let route = topo.route(dest);
            root_of[dest.0] = route[0];
            for hop in route.windows(2) {
                next_hop[hop[0].0 * n + dest.0] = hop[1];
            }
        }
        EngineParts {
            topo,
            rerouted_modules,
            unreachable: unreachable.into(),
            reachable: reachable.into(),
            root_of: root_of.into(),
            next_hop: next_hop.into(),
        }
    }
}

/// The assembled simulator. Construct with [`Engine::new`], execute with
/// [`Engine::run`].
pub struct Engine {
    cfg: SimConfig,
    /// Shared with the [`PowerController`]; never mutated after
    /// construction (route-around rewrites happen before the share).
    topo: Arc<Topology>,
    queue: EventQueue<Event>,
    now: SimTime,
    end: SimTime,

    links: Vec<LinkSim>,
    /// In-flight transmission per link: (packet, queue arrival, start).
    in_flight: Vec<Option<(Packet, SimTime, SimTime)>>,
    /// Packets delivered out of each link (audit conservation counter).
    delivered: Vec<u64>,
    /// Packets past the transmitter but still in the SERDES window
    /// (Deliver scheduled, not yet processed).
    in_serdes: Vec<u64>,

    /// Vaults per module (`cfg.dram.vaults`), the row stride of the flat
    /// per-vault arrays below (index `module * n_vaults + vault`).
    n_vaults: usize,
    vaults: Vec<Vault>,
    /// Module-side ingress hold per vault (packet, original arrival).
    vault_hold: Vec<VecDeque<(Packet, SimTime)>>,
    /// Earliest scheduled tick per vault (event dedup).
    vault_tick_at: Vec<SimTime>,
    /// Reads currently inside each module's vaults (for wakeup chaining).
    vault_reads_in_flight: Vec<u32>,
    /// Scratch buffer for [`Vault::advance_into`], reused across ticks.
    issued_scratch: Vec<IssuedOp>,

    controller: PowerController,
    /// Arena for the controller's per-epoch decisions, allocated once and
    /// reused every epoch (hot-path round 2: `epoch_end` used to return a
    /// fresh `Vec` per epoch).
    epoch_decisions: Vec<memnet_policy::LinkDecision>,
    frontend: Frontend,
    /// Prices metered activity into joules. Pricing is read-only with
    /// respect to simulation state, so swapping backends can never change
    /// anything but the energy sections of the report.
    backend: Box<dyn EnergyBackend>,

    /// Active fault model; `None` in fault-free runs so no fault RNG
    /// stream is ever advanced and results stay bit-identical to the
    /// pre-fault baseline.
    faults: Option<FaultModel>,
    /// Consecutive NAKs for the packet currently held by each link
    /// (reset when a transmission finally passes CRC).
    retry_attempts: Vec<u32>,
    /// Per-module reachability after route-around (all true without
    /// hard link failures). Shared across lockstep replicas.
    reachable: Arc<[bool]>,
    rerouted_modules: usize,
    unreachable_modules: usize,
    wake_timeouts: u64,

    /// Read packets awaiting their DRAM completion, keyed by packet id.
    /// Uses the deterministic Fx hasher: packet ids are trusted integers
    /// and SipHash showed up in the event-loop profile.
    outstanding_reads: HashMap<u64, Packet, FastHashState>,
    /// Slab of packets currently referenced by [`PktSlot`] event payloads.
    packet_pool: Vec<Packet>,
    /// Recycled slots of `packet_pool`.
    packet_free: Vec<PktSlot>,
    /// Cached `cfg.chunk_lines()` (one multiply + divide per lookup
    /// otherwise, and the mapping runs once per injected access).
    chunk_lines: u64,
    /// Cached module count as `u64` for the address mapping.
    n_modules: u64,
    /// First hop from the processor toward each destination module.
    /// Shared across lockstep replicas.
    root_of: Arc<[ModuleId]>,
    /// Flat next-hop table, `current * n + dest` → the next module on the
    /// unique tree path (sentinel when `current` is not on `dest`'s
    /// route). Replaces the per-packet linear scan of a route vector.
    /// Shared across lockstep replicas.
    next_hop: Arc<[ModuleId]>,
    next_packet_id: u64,
    /// Earliest pending TryInject event (dedup guard: completions and
    /// schedule waits would otherwise pile up duplicate events).
    inject_armed: SimTime,

    // --- metrics accumulation ---
    flits_routed: Vec<u64>,
    hops_sum: u64,
    hops_count: u64,
    events_processed: u64,
    trace: Trace,
    audit: Auditor,

    // --- observability (crates/obs) ---
    /// The installed recorder ([`NullRecorder`] when observability is off).
    obs: Box<dyn Recorder>,
    /// Cached `obs.is_active()`: every hook site checks this one flag, so
    /// the disabled path costs a single predictable branch and never
    /// constructs event payloads.
    obs_on: bool,
    /// Per-epoch deltas for the sampler; `None` when observability is off.
    obs_epoch: Option<Box<ObsEpochState>>,
}

/// Cumulative counters at the last epoch boundary, used to turn the
/// engine's monotonic totals into per-epoch deltas. All reads the sampler
/// performs are pure, so sampling cannot perturb simulation results.
struct ObsEpochState {
    /// Index of the epoch currently accumulating.
    index: u64,
    /// Start instant of the epoch currently accumulating.
    start: SimTime,
    /// Residency snapshot per link at `start`.
    residency: Vec<Vec<SimDuration>>,
    /// Wake count per link at `start`.
    wakes: Vec<u64>,
    /// Retransmission count per link at `start`.
    retries: Vec<u64>,
    /// Vault read accesses issued per module at `start`.
    reads: Vec<u64>,
    /// Vault write accesses issued per module at `start`.
    writes: Vec<u64>,
    /// Flits routed per module at `start`.
    flits: Vec<u64>,
}

impl Engine {
    /// Builds the simulator for `cfg`.
    pub fn new(cfg: SimConfig) -> Engine {
        let parts = EngineParts::build(&cfg);
        Engine::from_parts(cfg, parts)
    }

    /// Builds the simulator for `cfg` from pre-built shared parts.
    /// [`Engine::new`] builds the parts itself; lockstep multi-seed runs
    /// build them once and hand every replica a clone.
    pub(crate) fn from_parts(cfg: SimConfig, parts: EngineParts) -> Engine {
        let n = cfg.n_hmcs();
        let EngineParts { topo, rerouted_modules, unreachable, reachable, root_of, next_hop } =
            parts;
        let faults =
            (!cfg.faults.is_none()).then(|| FaultModel::new(&cfg.faults, topo.n_links(), cfg.seed));
        let start = SimTime::ZERO;
        let mut controller = PowerController::new(
            Arc::clone(&topo),
            cfg.policy_config(),
            cfg.dram.nominal_read_latency(),
        );
        // Initial modes apply at construction with no transition latency;
        // lane-degraded links are clamped to what they can physically run.
        let initial = controller.initial_decisions();
        let mut links: Vec<LinkSim> = initial
            .iter()
            .map(|d| {
                let lanes = faults.as_ref().and_then(|fm| fm.degraded_lanes(d.link.0));
                LinkSim::new(d.link, clamp_bw_to_lanes(d.mode.bw, lanes), start)
            })
            .collect();
        for (l, d) in links.iter_mut().zip(&initial) {
            l.set_roo_params(cfg.roo_params);
            l.set_roo_threshold(d.mode.roo);
        }
        for &m in unreachable.iter() {
            // A severed module's links can never carry traffic: drop
            // them to the 1 % off state for the whole run and keep the
            // ROO machinery from ever trying to wake them.
            for dir in [Direction::Request, Direction::Response] {
                let l = LinkId::of(m, dir);
                links[l.0].set_roo_threshold(None);
                links[l.0].turn_off(start);
            }
        }
        let n_vaults = cfg.dram.vaults;
        let vaults = (0..n * n_vaults).map(|_| Vault::new(&cfg.dram, start)).collect();
        let vault_hold = (0..n * n_vaults).map(|_| VecDeque::new()).collect();
        let vault_tick_at = vec![SimTime::MAX; n * n_vaults];
        let frontend =
            Frontend::new(cfg.traffic_source(), cfg.max_outstanding_reads, cfg.write_buffer);
        let end = start + cfg.eval_period;
        let obs_on = cfg.obs.is_active();
        let obs: Box<dyn Recorder> = if obs_on {
            Box::new(TimeSeriesRecorder::new(cfg.obs.clone()))
        } else {
            Box::new(NullRecorder)
        };
        Engine {
            queue: EventQueue::with_capacity(4096),
            now: start,
            end,
            in_flight: vec![None; topo.n_links()],
            delivered: vec![0; topo.n_links()],
            in_serdes: vec![0; topo.n_links()],
            n_vaults,
            vaults,
            vault_hold,
            vault_tick_at,
            vault_reads_in_flight: vec![0; n],
            issued_scratch: Vec::with_capacity(32),
            controller,
            epoch_decisions: Vec::new(),
            frontend,
            backend: cfg.energy_backend.build(),
            faults,
            retry_attempts: vec![0; topo.n_links()],
            reachable,
            rerouted_modules,
            unreachable_modules: unreachable.len(),
            wake_timeouts: 0,
            outstanding_reads: HashMap::default(),
            packet_pool: Vec::with_capacity(256),
            packet_free: Vec::with_capacity(256),
            chunk_lines: cfg.chunk_lines(),
            n_modules: n as u64,
            root_of,
            next_hop,
            next_packet_id: 0,
            inject_armed: SimTime::MAX,
            flits_routed: vec![0; n],
            hops_sum: 0,
            hops_count: 0,
            events_processed: 0,
            trace: Trace::with_limit(cfg.trace_limit),
            audit: Auditor::new(cfg.audit),
            obs,
            obs_on,
            obs_epoch: None,
            links,
            topo,
            cfg,
        }
    }

    /// Replaces the recorder (tests inject custom [`Recorder`]s this way;
    /// `Engine::new` already installs the right one for `cfg.obs`).
    pub fn with_recorder(mut self, recorder: Box<dyn Recorder>) -> Engine {
        self.obs_on = recorder.is_active();
        self.obs = recorder;
        self
    }

    /// Replaces the energy backend with a custom instance — a calibrated
    /// or deliberately perturbed [`memnet_power::IddModel`], say.
    /// `Engine::new` already installs the canonical backend for
    /// `cfg.energy_backend`.
    pub fn with_backend(mut self, backend: Box<dyn EnergyBackend>) -> Engine {
        self.backend = backend;
        self
    }

    /// Runs the simulation to the end of the evaluation period and
    /// produces the report.
    pub fn run(self) -> RunReport {
        self.run_limited(RunLimits::none()).report
    }

    /// Runs the simulation under [`RunLimits`], stopping early when a
    /// wall-clock deadline, event budget, simulated-time cap or external
    /// cancellation fires. The report is finalized at the stop time, so
    /// early stops still produce audit-clean, conservation-balanced
    /// reports; an unlimited run is byte-identical to [`Engine::run`].
    pub fn run_limited(mut self, mut limits: RunLimits) -> LimitedRun {
        // A sim-time cap shorter than the evaluation period truncates the
        // run window up front: the loop below then stops at exactly the
        // same events a run configured with that period would process.
        let mut truncated = false;
        if let Some(cap) = limits.max_sim_time {
            let cap_at = SimTime::ZERO + cap;
            if cap_at < self.end {
                self.end = cap_at;
                truncated = true;
            }
        }
        let event_budget = limits.max_events.unwrap_or(u64::MAX);
        let deadline = limits.wall_time.map(|d| std::time::Instant::now() + d);
        // Wall clock, cancel flag and progress are polled every 4096
        // events: cheap enough to disappear from profiles, frequent
        // enough that cancellation latency stays in the milliseconds.
        let polled = deadline.is_some() || limits.cancel.is_some() || limits.progress_every > 0;
        let mut next_progress =
            if limits.progress_every > 0 { limits.progress_every } else { u64::MAX };
        let mut stop = None;

        self.begin();

        let debug = std::env::var_os("MEMNET_DEBUG").is_some();
        let mut histo = [0u64; 14];
        while let Some((t, ev)) = self.queue.pop_at_or_before(self.end) {
            if debug {
                let idx = match ev {
                    Event::TryInject => 0,
                    Event::LinkTryStart(_) => 1,
                    Event::LinkDone(_) => 2,
                    Event::Deliver(..) => 3,
                    Event::EnqueueLink(..) => 4,
                    Event::VaultIngress(..) => 5,
                    Event::VaultTick(..) => 6,
                    Event::VaultDone(..) => 7,
                    Event::WakeDone(_) => 8,
                    Event::TurnOffCheck(..) => 9,
                    Event::ModeApply(_) => 10,
                    Event::ChainWake(_) => 11,
                    Event::EpochEnd => 12,
                    Event::LinkRetry(_) => 13,
                };
                histo[idx] += 1;
                if (self.events_processed + 1).is_multiple_of(1_000_000) {
                    memnet_simcore::memnet_log!(
                        "[engine] {} events, now={}, pending={}, histo={histo:?}, out_rd={}, out_wr={}, inj={}, done_rd={}",
                        self.events_processed + 1,
                        self.now,
                        self.queue.len(),
                        self.frontend.outstanding_reads(),
                        self.frontend.outstanding_writes(),
                        self.frontend.injected_reads() + self.frontend.injected_writes(),
                        self.frontend.completed_reads(),
                    );
                }
            }
            self.dispatch(t, ev);
            if self.events_processed >= event_budget {
                stop = Some(StopReason::MaxEvents);
                break;
            }
            if polled && self.events_processed & 0xFFF == 0 {
                if let Some(flag) = &limits.cancel {
                    if flag.load(std::sync::atomic::Ordering::Relaxed) {
                        stop = Some(StopReason::Cancelled);
                        break;
                    }
                }
                if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                    stop = Some(StopReason::WallTime);
                    break;
                }
                if self.events_processed >= next_progress {
                    if let Some(cb) = &mut limits.progress {
                        cb(RunProgress { events: self.events_processed, now: self.now });
                    }
                    next_progress = next_progress.saturating_add(limits.progress_every);
                }
            }
        }
        let stop = match stop {
            // Early stop: the window ends at the last processed event so
            // residency accounting stays exact.
            Some(s) => {
                self.end = self.now;
                s
            }
            None => {
                self.now = self.end;
                if truncated {
                    StopReason::MaxSimTime
                } else {
                    StopReason::Completed
                }
            }
        };
        LimitedRun { report: self.finalize(), stop }
    }

    /// Arms the initial event population: idleness timers, the first
    /// injection, the first epoch boundary and the observability stream.
    /// Called exactly once, before the first `dispatch`.
    pub(crate) fn begin(&mut self) {
        // Arm idleness timers for links that start with an ROO threshold.
        for i in 0..self.topo.n_links() {
            self.arm_turnoff(LinkId(i));
        }
        let start = self.now;
        self.arm_inject(start);
        self.schedule(self.now + self.cfg.epoch, Event::EpochEnd);

        if self.obs_on {
            let meta = TraceMeta {
                workload: self.cfg.workload.name,
                topology: self.cfg.topology.label(),
                policy: self.cfg.policy.label(),
                mechanism: self.cfg.mechanism.label(),
                seed: self.cfg.seed,
                epoch_ps: self.cfg.epoch.as_ps(),
                eval_ps: self.cfg.eval_period.as_ps(),
                n_links: self.topo.n_links() as u32,
                n_modules: self.topo.len() as u32,
            };
            self.obs.start(&meta);
            let n = self.topo.len();
            self.obs_epoch = Some(Box::new(ObsEpochState {
                index: 0,
                start: self.now,
                residency: self.links.iter().map(|l| l.residency_snapshot(start)).collect(),
                wakes: self.links.iter().map(|l| l.wake_count()).collect(),
                retries: self.links.iter().map(|l| l.retransmissions()).collect(),
                reads: vec![0; n],
                writes: vec![0; n],
                flits: vec![0; n],
            }));
        }
    }

    /// Processes one popped event: advances the clock, bumps the event
    /// counter, runs the Full-level monotonicity audit and handles the
    /// event. Factored out of `run_limited` so the lockstep driver
    /// processes events through exactly the same path as a solo run.
    #[inline]
    pub(crate) fn dispatch(&mut self, t: SimTime, ev: Event) {
        debug_assert!(t >= self.now, "time went backwards");
        if self.audit.enabled(AuditLevel::Full) {
            let now = self.now;
            self.audit.check(AuditLevel::Full, "event-time-monotonic", t >= now, || {
                format!("event scheduled at {t} precedes current time {now}")
            });
        }
        self.now = t;
        self.events_processed += 1;
        self.handle(ev);
    }

    /// Pops and dispatches up to `max` events bounded by the run window,
    /// returning how many were processed. Zero means the replica has
    /// drained its queue (or every remaining event lies past `end`) and
    /// is ready to finalize. Used by the lockstep multi-seed driver;
    /// per-replica event order — and therefore every report byte — is
    /// identical to a solo `run` because each replica owns its queue.
    pub(crate) fn step_batch(&mut self, max: u64) -> u64 {
        let mut done = 0;
        while done < max {
            match self.queue.pop_at_or_before(self.end) {
                Some((t, ev)) => {
                    self.dispatch(t, ev);
                    done += 1;
                }
                None => break,
            }
        }
        done
    }

    /// Truncates the run window for a per-replica sim-time cap (see
    /// `run_limited`). Returns whether the cap actually shortened it.
    pub(crate) fn truncate_end(&mut self, cap: SimTime) -> bool {
        if cap < self.end {
            self.end = cap;
            true
        } else {
            false
        }
    }

    /// Ends the accounting window at the last processed event (early
    /// stop); residency accounting stays exact.
    pub(crate) fn mark_stopped(&mut self) {
        self.end = self.now;
    }

    /// Advances the clock to the end of the (possibly truncated) window
    /// after the queue drains, mirroring the tail of `run_limited`.
    pub(crate) fn complete(&mut self) {
        self.now = self.end;
    }

    /// Events processed so far (lockstep driver bookkeeping).
    pub(crate) fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Current simulated time (lockstep driver bookkeeping).
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.queue.push(at, ev);
    }

    /// Parks a packet in the pool, returning the slot to embed in an
    /// event. Slots are reused LIFO so the hot set stays cache-resident.
    #[inline]
    fn pool_put(&mut self, pkt: Packet) -> PktSlot {
        match self.packet_free.pop() {
            Some(slot) => {
                self.packet_pool[slot as usize] = pkt;
                slot
            }
            None => {
                let slot = self.packet_pool.len() as PktSlot;
                self.packet_pool.push(pkt);
                slot
            }
        }
    }

    /// Retrieves a pooled packet and releases its slot.
    #[inline]
    fn pool_take(&mut self, slot: PktSlot) -> Packet {
        self.packet_free.push(slot);
        self.packet_pool[slot as usize]
    }

    /// Delivers a discrete observability event. Callers guard on
    /// `self.obs_on` themselves when constructing the payload costs
    /// anything; the double check here is branch-predicted away.
    #[inline]
    fn obs_event(&mut self, kind: ObsEventKind) {
        if self.obs_on {
            self.obs.record_event(&ObsEvent { t_ps: self.now.as_ps(), kind });
        }
    }

    #[inline]
    fn trace(&mut self, packet: &Packet, point: TracePoint) {
        if self.trace.active() {
            self.trace.record(TraceEvent {
                time: self.now,
                packet: packet.id,
                kind: packet.kind,
                point,
            });
        }
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::TryInject => self.on_try_inject(),
            Event::LinkTryStart(l) => self.on_link_try_start(l),
            Event::LinkDone(l) => self.on_link_done(l),
            Event::Deliver(l, pkt) => self.on_deliver(l, pkt),
            Event::EnqueueLink(l, pkt) => self.on_enqueue_link(l, pkt),
            Event::VaultIngress(m, pkt) => self.on_vault_ingress(m, pkt),
            Event::VaultTick(m, v) => self.on_vault_tick(m, v),
            Event::VaultDone(m, v, id, is_read) => self.on_vault_done(m, v, id, is_read),
            Event::WakeDone(l) => self.on_wake_done(l),
            Event::LinkRetry(l) => self.on_link_retry(l),
            Event::TurnOffCheck(l, token) => self.on_turnoff_check(l, token),
            Event::ModeApply(l) => self.on_mode_apply(l),
            Event::ChainWake(l) => self.on_chain_wake(l),
            Event::EpochEnd => self.on_epoch_end(),
        }
    }

    // ------------------------------------------------------------------
    // Address mapping
    // ------------------------------------------------------------------

    fn module_of_line(&self, line: u64) -> ModuleId {
        let n = self.n_modules;
        let m = match self.cfg.mapping {
            AddressMapping::Contiguous => (line / self.chunk_lines).min(n - 1),
            AddressMapping::PageInterleaved => {
                // 4 KB pages (64 lines) rotate over modules.
                (line / 64) % n
            }
        };
        ModuleId(m as usize)
    }

    fn line_in_module(&self, line: u64) -> u64 {
        match self.cfg.mapping {
            AddressMapping::Contiguous => line % self.chunk_lines,
            AddressMapping::PageInterleaved => {
                let page = line / 64;
                (page / self.n_modules) * 64 + line % 64
            }
        }
    }

    // ------------------------------------------------------------------
    // Injection
    // ------------------------------------------------------------------

    /// Schedules a TryInject at `at` unless one is already pending at or
    /// before that time.
    fn arm_inject(&mut self, at: SimTime) {
        if at < self.inject_armed {
            self.inject_armed = at;
            self.schedule(at, Event::TryInject);
        }
    }

    fn on_try_inject(&mut self) {
        // Stale duplicate (a newer arm superseded this event): ignore.
        if self.inject_armed != self.now {
            return;
        }
        self.inject_armed = SimTime::MAX;
        loop {
            match self.frontend.step(self.now) {
                InjectStep::Inject(req) => {
                    let dest = self.module_of_line(req.line_addr);
                    if !self.reachable[dest.0] {
                        // The destination sits below a severed edge no
                        // spare port could bridge: the access cannot
                        // enter the network. Abort it at the front-end
                        // so its window slot is released and the loss
                        // is counted instead of hanging forever.
                        if req.is_read {
                            self.frontend.abort_read();
                        } else {
                            self.frontend.abort_write();
                        }
                        continue;
                    }
                    let kind = if req.is_read {
                        PacketKind::ReadRequest
                    } else {
                        PacketKind::WriteRequest
                    };
                    let pkt = Packet {
                        id: self.next_packet_id,
                        kind,
                        dest,
                        line_addr: req.line_addr,
                        created: self.now,
                    };
                    self.next_packet_id += 1;
                    self.trace(&pkt, TracePoint::Inject);
                    self.hops_sum += u64::from(self.topo.depth(dest));
                    self.hops_count += 1;
                    let root = self.root_of[dest.0];
                    let link = LinkId::of(root, Direction::Request);
                    let now = self.now;
                    let slot = self.pool_put(pkt);
                    self.schedule(now, Event::EnqueueLink(link, slot));
                }
                InjectStep::WaitUntil(t) => {
                    self.arm_inject(t);
                    return;
                }
                InjectStep::ReadWindowFull | InjectStep::WriteBufferFull => return,
                // A finite (replay) source ran out: no further injections
                // this run. In-flight traffic still drains normally.
                InjectStep::Exhausted => return,
            }
        }
    }

    // ------------------------------------------------------------------
    // Links
    // ------------------------------------------------------------------

    fn on_enqueue_link(&mut self, l: LinkId, slot: PktSlot) {
        let pkt = self.pool_take(slot);
        self.controller.on_packet_arrival(l, self.now, pkt.kind.is_read());
        self.links[l.0].enqueue_unchecked(pkt, self.now);
        if self.links[l.0].is_off() {
            self.wake_link(l);
        } else if self.links[l.0].is_idle_on() {
            let now = self.now;
            self.schedule(now, Event::LinkTryStart(l));
        }
    }

    fn on_link_try_start(&mut self, l: LinkId) {
        if self.in_flight[l.0].is_some() {
            return;
        }
        let last_end = self.links[l.0].last_activity_end();
        if let Some((pkt, arrival, done)) = self.links[l.0].start_transmission(self.now) {
            // An idle gap ended: feed the ROO histogram.
            if self.now > last_end {
                self.controller.on_idle_interval(l, self.now - last_end);
            }
            self.trace(&pkt, TracePoint::LinkStart(l));
            self.in_flight[l.0] = Some((pkt, arrival, self.now));
            self.schedule(done, Event::LinkDone(l));
        }
    }

    fn on_link_done(&mut self, l: LinkId) {
        // Link-level retry: the receiver CRC-checks the packet as its
        // last flit lands. A corrupted packet is NAK'd over the reverse
        // control channel and replayed from the transmitter's retry
        // buffer after the turnaround; `in_flight` stays occupied so the
        // link admits nothing new while the replay is pending. At the
        // retry limit the packet is delivered anyway (matching HMC-style
        // links, where an exhausted retry raises a machine check rather
        // than dropping traffic — the simulator keeps the traffic).
        if let Some(fm) = self.faults.as_mut() {
            let flits = self.in_flight[l.0].as_ref().expect("transmission in flight").0.flits();
            if self.retry_attempts[l.0] < fm.retry_limit() && fm.transmission_corrupted(l.0, flits)
            {
                self.retry_attempts[l.0] += 1;
                if self.obs_on {
                    let attempt = self.retry_attempts[l.0];
                    self.obs_event(ObsEventKind::Nak { link: l.0 as u32, attempt });
                }
                self.links[l.0].finish_transmission(self.now);
                let at = self.now + self.links[l.0].retry_turnaround();
                self.schedule(at, Event::LinkRetry(l));
                return;
            }
        }
        self.retry_attempts[l.0] = 0;
        self.links[l.0].finish_transmission(self.now);
        let (pkt, arrival, start) = self.in_flight[l.0].take().expect("transmission in flight");
        self.trace(&pkt, TracePoint::LinkDone(l));
        // Route/SERDES energy is charged to the downstream module.
        self.flits_routed[l.edge_module().0] += pkt.flits();
        // The measured departure includes any SERDES stretch beyond the
        // nominal pipeline (the constant base latency cancels against FEL).
        let departure = self.now + self.links[l.0].serdes_overhead();
        let action = self.controller.on_packet_departure(
            l,
            arrival,
            start,
            departure,
            pkt.flits(),
            pkt.kind.is_read(),
        );
        if action == ViolationAction::ForceFullPower {
            self.force_full_power(l);
        }
        let serdes = self.links[l.0].serdes_latency();
        let deliver_at = self.now + serdes;
        self.in_serdes[l.0] += 1;
        let slot = self.pool_put(pkt);
        self.schedule(deliver_at, Event::Deliver(l, slot));
        if self.links[l.0].queue_len() > 0 {
            let now = self.now;
            self.schedule(now, Event::LinkTryStart(l));
        } else {
            self.arm_turnoff(l);
        }
    }

    /// Replays the NAK'd packet still held in `in_flight` after the retry
    /// turnaround has elapsed.
    fn on_link_retry(&mut self, l: LinkId) {
        let flits = self.in_flight[l.0].as_ref().expect("retry without a held packet").0.flits();
        let done = self.links[l.0].start_retransmission(self.now, flits);
        self.schedule(done, Event::LinkDone(l));
    }

    fn on_deliver(&mut self, l: LinkId, slot: PktSlot) {
        self.in_serdes[l.0] -= 1;
        self.delivered[l.0] += 1;
        let m = l.edge_module();
        // Copy the packet out but keep the slot: every forwarding path
        // hands the same slot to the next event without touching the pool.
        let pkt = self.packet_pool[slot as usize];
        match l.direction() {
            Direction::Request => {
                if pkt.dest == m {
                    let at = self.now + ROUTER_LATENCY;
                    self.schedule(at, Event::VaultIngress(m, slot));
                } else {
                    // Forward toward the destination: one next-hop load.
                    let next = self.next_hop[m.0 * self.topo.len() + pkt.dest.0];
                    debug_assert!(next.0 != usize::MAX, "module on route");
                    let at = self.now + ROUTER_LATENCY;
                    self.schedule(
                        at,
                        Event::EnqueueLink(LinkId::of(next, Direction::Request), slot),
                    );
                }
            }
            Direction::Response => match self.topo.parent(m) {
                NodeRef::Processor => {
                    self.packet_free.push(slot);
                    self.trace(&pkt, TracePoint::Retire);
                    self.frontend.complete_read(self.now - pkt.created);
                    let now = self.now;
                    self.arm_inject(now);
                }
                NodeRef::Module(p) => {
                    let at = self.now + ROUTER_LATENCY;
                    self.schedule(at, Event::EnqueueLink(LinkId::of(p, Direction::Response), slot));
                }
            },
        }
    }

    // ------------------------------------------------------------------
    // Vaults
    // ------------------------------------------------------------------

    /// Flat index of module `m`'s vault `v` in the per-vault arrays.
    #[inline]
    fn vidx(&self, m: ModuleId, v: usize) -> usize {
        m.0 * self.n_vaults + v
    }

    fn on_vault_ingress(&mut self, m: ModuleId, slot: PktSlot) {
        let pkt = self.pool_take(slot);
        self.trace(&pkt, TracePoint::VaultEnqueue(m));
        let line = self.line_in_module(pkt.line_addr);
        let (v, bank) = line_to_vault_bank(line, &self.cfg.dram);
        if pkt.kind == PacketKind::ReadRequest {
            self.vault_reads_in_flight[m.0] += 1;
            self.outstanding_reads.insert(pkt.id, pkt);
        } else {
            // Posted write: absorbed into the module.
            self.frontend.retire_write();
            let now = self.now;
            self.arm_inject(now);
        }
        let op = VaultOp {
            id: pkt.id,
            bank,
            is_read: pkt.kind == PacketKind::ReadRequest,
            arrival: self.now,
        };
        let idx = self.vidx(m, v);
        if self.vaults[idx].enqueue(op).is_ok() {
            self.arm_vault_tick(m, v);
        } else {
            self.vault_hold[idx].push_back((pkt, self.now));
        }
    }

    fn arm_vault_tick(&mut self, m: ModuleId, v: usize) {
        let idx = self.vidx(m, v);
        if let Some(t) = self.vaults[idx].next_issue_time(self.now) {
            if t < self.vault_tick_at[idx] {
                self.vault_tick_at[idx] = t;
                self.schedule(t, Event::VaultTick(m, v));
            }
        }
    }

    fn on_vault_tick(&mut self, m: ModuleId, v: usize) {
        let idx = self.vidx(m, v);
        self.vault_tick_at[idx] = SimTime::MAX;
        let mut issued = std::mem::take(&mut self.issued_scratch);
        issued.clear();
        self.vaults[idx].advance_into(self.now, &mut issued);
        let mut reads_issued = false;
        for op in &issued {
            reads_issued |= op.op.is_read;
            self.schedule(op.completion, Event::VaultDone(m, v, op.op.id, op.op.is_read));
        }
        self.issued_scratch = issued;
        // Proactively wake the module's response link while the DRAM
        // array is being read (both §V and §VI do this for ROO links);
        // the ≥30 ns access hides the 14 ns wake.
        if reads_issued && self.cfg.mechanism.uses_roo() {
            self.wake_response_for_read(m);
        }
        self.drain_vault_hold(m, v);
        self.arm_vault_tick(m, v);
    }

    fn drain_vault_hold(&mut self, m: ModuleId, v: usize) {
        let idx = self.vidx(m, v);
        while self.vaults[idx].has_space() {
            let Some((pkt, arrival)) = self.vault_hold[idx].pop_front() else { break };
            let line = self.line_in_module(pkt.line_addr);
            let (_, bank) = line_to_vault_bank(line, &self.cfg.dram);
            let op =
                VaultOp { id: pkt.id, bank, is_read: pkt.kind == PacketKind::ReadRequest, arrival };
            self.vaults[idx].enqueue(op).expect("space was checked");
        }
    }

    fn on_vault_done(&mut self, m: ModuleId, v: usize, id: u64, is_read: bool) {
        if is_read {
            self.controller.on_dram_read(m);
            self.vault_reads_in_flight[m.0] -= 1;
            let pkt =
                self.outstanding_reads.remove(&id).expect("read completion for unknown packet");
            self.trace(&pkt, TracePoint::VaultDone(m));
            let resp = pkt.to_response();
            let at = self.now + ROUTER_LATENCY;
            let slot = self.pool_put(resp);
            self.schedule(at, Event::EnqueueLink(LinkId::of(m, Direction::Response), slot));
        }
        self.drain_vault_hold(m, v);
        self.arm_vault_tick(m, v);
    }

    // ------------------------------------------------------------------
    // ROO mechanics
    // ------------------------------------------------------------------

    fn wake_link(&mut self, l: LinkId) {
        if !self.links[l.0].is_off() {
            return;
        }
        let mut done = self.links[l.0].start_wake(self.now);
        if self.obs_on {
            self.obs_event(ObsEventKind::Wake { link: l.0 as u32 });
        }
        if let Some(fm) = self.faults.as_mut() {
            if fm.wake_times_out(l.0) {
                // The wake handshake missed its training window; one
                // more full wakeup interval retrains the link.
                self.wake_timeouts += 1;
                done = done + (done - self.now);
                if self.obs_on {
                    self.obs_event(ObsEventKind::WakeTimeout { link: l.0 as u32 });
                }
            }
        }
        self.schedule(done, Event::WakeDone(l));
        // Network-aware chaining: a waking response link warns its
        // upstream response link so the wake latency pipelines.
        if self.controller.wake_chaining() && l.direction() == Direction::Response {
            self.propagate_chain(l);
        }
    }

    fn propagate_chain(&mut self, l: LinkId) {
        if let Some(up) = self.topo.upstream_same_type(l) {
            let mode = self.links[l.0].bw_mode();
            let wait = ROUTER_LATENCY + mode.serdes_latency() + mode.flit_time() * 5;
            let at = self.now + wait;
            self.schedule(at, Event::ChainWake(up));
        }
    }

    fn on_chain_wake(&mut self, l: LinkId) {
        if self.links[l.0].is_off() {
            if self.obs_on {
                self.obs_event(ObsEventKind::ChainWake { link: l.0 as u32 });
            }
            self.wake_link(l);
        }
    }

    /// Wakes the response link of module `m` because its DRAM is being
    /// read (hides the wake latency behind the ≥ 30 ns DRAM access).
    fn wake_response_for_read(&mut self, m: ModuleId) {
        let resp = LinkId::of(m, Direction::Response);
        if self.links[resp.0].is_off() {
            self.wake_link(resp);
        }
    }

    fn on_wake_done(&mut self, l: LinkId) {
        self.links[l.0].finish_wake(self.now);
        if self.obs_on {
            self.obs_event(ObsEventKind::WakeDone { link: l.0 as u32 });
        }
        let now = self.now;
        self.schedule(now, Event::LinkTryStart(l));
        self.arm_turnoff(l);
    }

    /// Schedules a turn-off check if the link is on-idle with a threshold.
    fn arm_turnoff(&mut self, l: LinkId) {
        let Some(thr) = self.links[l.0].roo_threshold() else { return };
        let Some(since) = self.links[l.0].idle_since() else { return };
        let fire = (since + thr.threshold()).max(self.now);
        self.schedule(fire, Event::TurnOffCheck(l, since));
    }

    fn on_turnoff_check(&mut self, l: LinkId, token: SimTime) {
        if self.in_flight[l.0].is_some() {
            // A NAK'd packet is waiting out its retry turnaround: the
            // link is on-idle but must stay up for the replay. The
            // success path re-arms the idleness timer afterwards.
            return;
        }
        let link = &self.links[l.0];
        let Some(thr) = link.roo_threshold() else { return };
        if link.idle_since() != Some(token) || link.queue_len() > 0 {
            return; // stale: the link was active since this was armed
        }
        if self.now.saturating_since(token) < thr.threshold() {
            // Threshold shrank/grew mid-wait: re-arm at the right instant.
            self.arm_turnoff(l);
            return;
        }
        // Network-aware chaining: a response link only turns off when its
        // module's DRAM is quiet and every downstream response link is off
        // (their transmitters live on this module, so the state is local).
        if self.controller.wake_chaining() && l.direction() == Direction::Response {
            let m = l.edge_module();
            // Equivalent to `downstream_same_type(l)` without allocating:
            // the downstream response links are the children's.
            let links = &self.links;
            let children_off = self
                .topo
                .children(m)
                .iter()
                .all(|&c| links[LinkId::of(c, Direction::Response).0].is_off());
            if self.vault_reads_in_flight[m.0] > 0 || !children_off {
                let recheck = self.now + thr.threshold();
                self.schedule(recheck, Event::TurnOffCheck(l, token));
                return;
            }
        }
        self.links[l.0].turn_off(self.now);
        if self.obs_on {
            self.obs_event(ObsEventKind::TurnOff { link: l.0 as u32 });
        }
        // Turning off may unblock an upstream response link's turn-off;
        // its own re-check event will observe the new state.
    }

    // ------------------------------------------------------------------
    // Mode management
    // ------------------------------------------------------------------

    fn apply_decision(&mut self, link: LinkId, mode: LinkPowerMode) {
        // Links below an unbridged hard failure were shut down at
        // construction and take no further decisions.
        if !self.reachable[link.edge_module().0] {
            return;
        }
        if self.audit.enabled(AuditLevel::Full) {
            let mech = self.cfg.mechanism;
            self.audit.check(AuditLevel::Full, "mode-transition-legal", mech.allows(mode), || {
                format!("link {link:?}: decision {mode:?} is not a candidate of {mech:?}")
            });
        }
        // Physical-layer clamp, applied *after* the legality audit (the
        // audit judges the controller's decision; the clamp models a
        // lane-degraded link refusing lanes it no longer has).
        let mode = match &self.faults {
            Some(fm) => LinkPowerMode {
                bw: clamp_bw_to_lanes(mode.bw, fm.degraded_lanes(link.0)),
                roo: mode.roo,
            },
            None => mode,
        };
        // Trace only real transitions: re-selecting the current mode is
        // the common case and would drown the trace in no-ops.
        if self.obs_on
            && (mode.bw != self.links[link.0].bw_mode()
                || mode.roo != self.links[link.0].roo_threshold())
        {
            self.obs_event(ObsEventKind::Mode {
                link: link.0 as u32,
                bw: mode.bw.label(),
                roo: mode.roo.map(|t| t.label()),
            });
        }
        let pending_at = self.links[link.0].request_bw_mode(mode.bw, self.now);
        if let Some(at) = pending_at {
            self.schedule(at, Event::ModeApply(link));
        }
        self.links[link.0].set_roo_threshold(mode.roo);
        if mode.roo.is_some() {
            self.arm_turnoff(link);
        }
    }

    fn force_full_power(&mut self, link: LinkId) {
        let full = self.cfg.mechanism.full_mode();
        if self.obs_on {
            self.obs_event(ObsEventKind::ForcedFull { link: link.0 as u32 });
        }
        self.links[link.0].cancel_pending_bw();
        self.apply_decision(link, full);
    }

    fn on_mode_apply(&mut self, l: LinkId) {
        self.links[l.0].apply_pending_bw(self.now);
        if self.links[l.0].is_idle_on() && self.links[l.0].queue_len() > 0 {
            let now = self.now;
            self.schedule(now, Event::LinkTryStart(l));
        }
    }

    fn on_epoch_end(&mut self) {
        // Sample *before* `epoch_end` dispatches and resets the per-epoch
        // monitor state: the budgets, FLO estimates and histograms read
        // here are the ones that governed the closing epoch.
        if self.obs_on {
            self.obs_sample_epoch();
            if self.cfg.policy == PolicyKind::NetworkAware {
                let rounds = self.cfg.isp_iterations as u32;
                self.obs_event(ObsEventKind::Isp { rounds });
            }
        }
        let mut decisions = std::mem::take(&mut self.epoch_decisions);
        self.controller.epoch_end_into(self.now, &mut decisions);
        for d in &decisions {
            self.apply_decision(d.link, d.mode);
        }
        self.epoch_decisions = decisions;
        self.controller.audit_epoch(&mut self.audit);
        let next = self.now + self.cfg.epoch;
        self.schedule(next, Event::EpochEnd);
    }

    // ------------------------------------------------------------------
    // Observability sampling
    // ------------------------------------------------------------------

    /// Closes the accumulating observation epoch at `self.now`: prices the
    /// residency gained since the last boundary through the same linear
    /// power model `finalize` uses (so per-epoch energies telescope to the
    /// run totals), snapshots the controller's per-link budgets and FLO
    /// estimates, and hands the sample to the recorder. Every read here is
    /// pure — sampling cannot change simulation results.
    fn obs_sample_epoch(&mut self) {
        let Some(mut st) = self.obs_epoch.take() else { return };
        let now = self.now;
        let mut energy = EnergyBreakdown::default();
        let mut links = Vec::with_capacity(self.links.len());
        for (i, link) in self.links.iter().enumerate() {
            let snap = link.residency_snapshot(now);
            let delta: Vec<SimDuration> =
                snap.iter().zip(&st.residency[i]).map(|(a, b)| *a - *b).collect();
            energy += self.backend.link_energy(&delta);
            let (mut idle, mut active, mut retrans) =
                (SimDuration::ZERO, SimDuration::ZERO, SimDuration::ZERO);
            for m in 0..N_BW_MODES {
                let bw = BwMode::from_index(m);
                idle += delta[state_on_idle(bw)];
                active += delta[state_on_active(bw)];
                retrans += delta[state_retrans(bw)];
            }
            let l = LinkId(i);
            links.push(LinkSample {
                link: i as u32,
                bw: link.bw_mode().label(),
                roo: link.roo_threshold().map(|t| t.label()),
                off_ps: delta[STATE_OFF].as_ps(),
                waking_ps: delta[STATE_WAKING].as_ps(),
                idle_ps: idle.as_ps(),
                active_ps: active.as_ps(),
                retrans_ps: retrans.as_ps(),
                queue_depth: link.queue_len() as u32,
                wakes: link.wake_count() - st.wakes[i],
                retries: link.retransmissions() - st.retries[i],
                budget_ps: saturate_latency(self.controller.budget(l)),
                flo_ps: saturate_latency(self.controller.flo_estimate(l)),
            });
            st.residency[i] = snap;
            st.wakes[i] = link.wake_count();
            st.retries[i] = link.retransmissions();
        }
        for m in self.topo.modules() {
            let row = m.0 * self.n_vaults..(m.0 + 1) * self.n_vaults;
            let reads: u64 = self.vaults[row.clone()].iter().map(|v| v.reads_issued()).sum();
            let writes: u64 = self.vaults[row].iter().map(|v| v.writes_issued()).sum();
            energy += self.backend.module_energy(
                self.topo.radix(m),
                st.start,
                now,
                &ModuleActivity {
                    dram_reads: reads - st.reads[m.0],
                    dram_writes: writes - st.writes[m.0],
                    flits_routed: self.flits_routed[m.0] - st.flits[m.0],
                },
            );
            st.reads[m.0] = reads;
            st.writes[m.0] = writes;
            st.flits[m.0] = self.flits_routed[m.0];
        }
        let sample = EpochSample {
            epoch: st.index,
            start_ps: st.start.as_ps(),
            end_ps: now.as_ps(),
            energy_j: energy.categories(),
            pool_ps: saturate_latency(self.controller.rescue_pool()),
            violations: self.controller.violations(),
            isp_rounds: if self.cfg.policy == PolicyKind::NetworkAware {
                self.cfg.isp_iterations as u32
            } else {
                0
            },
            links,
        };
        st.index += 1;
        st.start = now;
        self.obs_epoch = Some(st);
        self.obs.record_epoch(sample);
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    pub(crate) fn finalize(mut self) -> RunReport {
        // Close the trailing partial epoch (skipped when the evaluation
        // period is an exact multiple of the epoch: the final EpochEnd
        // event already sampled at `end`).
        if self.obs_on && self.obs_epoch.as_ref().is_some_and(|st| self.now > st.start) {
            self.obs_sample_epoch();
        }
        let obs_section = if self.obs_on { self.obs.finish() } else { None };
        let mut audit = self.audit;
        let window = self.end - SimTime::ZERO;
        let mut energy = EnergyBreakdown::default();
        let mut telemetry = Vec::with_capacity(self.links.len());
        for link in &self.links {
            let snap = link.residency_snapshot(self.end);
            if audit.enabled(AuditLevel::Cheap) {
                let covered: SimDuration = snap.iter().copied().sum();
                let id = link.id();
                audit.check(
                    AuditLevel::Cheap,
                    "residency-covers-window",
                    covered == window,
                    || format!("link {id:?}: residency sums to {covered}, window is {window}"),
                );
                // Per-link packet conservation: everything accepted into
                // the queue was transmitted or is still queued, and
                // everything transmitted was delivered or is still on the
                // wire (transmitting or in the SERDES window).
                let sent = link.packets_sent();
                let queued = link.queue_len() as u64;
                let enqueued = link.packets_enqueued();
                audit.check(
                    AuditLevel::Cheap,
                    "link-queue-conservation",
                    enqueued == sent + queued,
                    || format!("link {id:?}: {enqueued} enqueued != {sent} sent + {queued} queued"),
                );
                let transmitting = u64::from(self.in_flight[id.0].is_some());
                let delivered = self.delivered[id.0];
                let in_serdes = self.in_serdes[id.0];
                audit.check(
                    AuditLevel::Cheap,
                    "link-delivery-conservation",
                    sent == delivered + in_serdes + transmitting,
                    || {
                        format!(
                            "link {id:?}: {sent} sent != {delivered} delivered + \
                             {in_serdes} in SERDES + {transmitting} transmitting"
                        )
                    },
                );
            }
            energy += self.backend.link_energy(&snap);
            let mut mode_time = [SimDuration::ZERO; memnet_net::mech::N_BW_MODES];
            for (i, mt) in mode_time.iter_mut().enumerate() {
                *mt = snap[2 + 2 * i] + snap[3 + 2 * i];
            }
            let mut retrans_time = [SimDuration::ZERO; memnet_net::mech::N_BW_MODES];
            for (i, rt) in retrans_time.iter_mut().enumerate() {
                *rt = snap[state_retrans(BwMode::from_index(i))];
            }
            telemetry.push(LinkTelemetry {
                link: link.id(),
                utilization: link.busy_time(self.end).ratio(window),
                mode_time,
                off_time: snap[memnet_net::link::STATE_OFF],
                waking_time: snap[memnet_net::link::STATE_WAKING],
                wake_count: link.wake_count(),
                retrans_time,
                retrans_flits: link.retrans_flits(),
                retransmissions: link.retransmissions(),
            });
        }
        for m in self.topo.modules() {
            let row = m.0 * self.n_vaults..(m.0 + 1) * self.n_vaults;
            let reads: u64 = self.vaults[row.clone()].iter().map(|v| v.reads_issued()).sum();
            let writes: u64 = self.vaults[row].iter().map(|v| v.writes_issued()).sum();
            energy += self.backend.module_energy(
                self.topo.radix(m),
                SimTime::ZERO,
                self.end,
                &ModuleActivity {
                    dram_reads: reads,
                    dram_writes: writes,
                    flits_routed: self.flits_routed[m.0],
                },
            );
        }

        let root_req = &telemetry[LinkId::of(ModuleId(0), Direction::Request).0];
        let root_resp = &telemetry[LinkId::of(ModuleId(0), Direction::Response).0];
        let channel_utilization = root_req.utilization.max(root_resp.utilization);
        let link_utilization =
            telemetry.iter().map(|t| t.utilization).sum::<f64>() / telemetry.len() as f64;

        let completed = self.frontend.completed_reads() + self.frontend.retired_writes();
        let fault_summary = FaultSummary {
            retries: self.links.iter().map(|l| l.retransmissions()).sum(),
            retransmitted_flits: self.links.iter().map(|l| l.retrans_flits()).sum(),
            retransmission_energy: energy.retrans_io,
            wake_timeouts: self.wake_timeouts,
            aborted_accesses: self.frontend.aborted_reads() + self.frontend.aborted_writes(),
            rerouted_modules: self.rerouted_modules,
            unreachable_modules: self.unreachable_modules,
        };
        let mut report = RunReport {
            workload: self.cfg.workload.name,
            topology: self.cfg.topology,
            scale: self.cfg.scale.label(),
            policy: self.cfg.policy.label(),
            mechanism: self.cfg.mechanism.label(),
            alpha: self.cfg.alpha,
            power: PowerSummary { energy, window, n_hmcs: self.topo.len() },
            channel_utilization,
            link_utilization,
            avg_modules_traversed: if self.hops_count == 0 {
                0.0
            } else {
                self.hops_sum as f64 / self.hops_count as f64
            },
            completed_reads: self.frontend.completed_reads(),
            retired_writes: self.frontend.retired_writes(),
            injected_accesses: self.frontend.injected_reads() + self.frontend.injected_writes(),
            mean_read_latency_ns: self.frontend.read_latency().mean(),
            max_read_latency_ns: self.frontend.read_latency().max().unwrap_or(0.0),
            accesses_per_us: completed as f64 / window.as_us(),
            epochs: self.controller.epochs_completed(),
            violations: self.controller.violations(),
            events_processed: self.events_processed,
            audit: Default::default(),
            faults: fault_summary,
            links: telemetry,
            trace: self.trace.events().to_vec(),
            obs: obs_section,
        };
        if audit.enabled(AuditLevel::Cheap) {
            // Double-entry energy conservation: reprice the per-link
            // telemetry independently and diff against the accumulated
            // breakdown. The epsilon only absorbs float-summation-order
            // noise — a real bookkeeping bug is orders of magnitude wider.
            let expected = report.expected_io_energy(self.backend.as_ref());
            let actual = report.power.energy.io_total();
            audit.check(
                AuditLevel::Cheap,
                "io-energy-conservation",
                approx_eq_rel(expected, actual, 1e-9),
                || {
                    format!(
                        "accumulated I/O energy {actual} J != {expected} J \
                         repriced from residency telemetry"
                    )
                },
            );
            // Double-entry check for the fault subsystem's ledger: the
            // accumulated retransmission energy must equal the per-link
            // replay residency repriced independently at each mode's
            // active power (exactly zero against zero when fault-free).
            audit.check_conservation(
                AuditLevel::Cheap,
                "retrans-energy-conservation",
                report.expected_retrans_io_energy(self.backend.as_ref()),
                report.power.energy.retrans_io,
                1e-9,
            );
            audit.check(
                AuditLevel::Cheap,
                "energy-physical",
                report.power.energy.is_physical(),
                || {
                    format!(
                        "energy breakdown has a negative or non-finite category: {:?}",
                        report.power.energy
                    )
                },
            );
            // Front-end transaction conservation: nothing completes that
            // was never injected, nothing injected vanishes.
            let fe = &self.frontend;
            audit.check(
                AuditLevel::Cheap,
                "read-conservation",
                fe.injected_reads()
                    == fe.completed_reads() + fe.outstanding_reads() as u64 + fe.aborted_reads(),
                || {
                    format!(
                        "{} reads injected != {} completed + {} outstanding + {} aborted",
                        fe.injected_reads(),
                        fe.completed_reads(),
                        fe.outstanding_reads(),
                        fe.aborted_reads()
                    )
                },
            );
            audit.check(
                AuditLevel::Cheap,
                "write-conservation",
                fe.injected_writes()
                    == fe.retired_writes() + fe.outstanding_writes() as u64 + fe.aborted_writes(),
                || {
                    format!(
                        "{} writes injected != {} retired + {} outstanding + {} aborted",
                        fe.injected_writes(),
                        fe.retired_writes(),
                        fe.outstanding_writes(),
                        fe.aborted_writes()
                    )
                },
            );
        }
        self.controller.audit_epoch(&mut audit);
        report.audit = audit.finish();
        report
    }
}

/// Clamps a bandwidth mode to what a lane-degraded link can physically
/// sustain: the widest VWL width whose lane count fits the surviving
/// lanes, or the fastest DVFS level whose bandwidth fraction fits
/// (falling back to the narrowest point when nothing does). `None`
/// means the link is healthy and the mode passes through untouched.
fn clamp_bw_to_lanes(bw: BwMode, lanes: Option<u8>) -> BwMode {
    let Some(lanes) = lanes else { return bw };
    match bw {
        BwMode::Vwl(w) if w.lanes() <= u32::from(lanes) => bw,
        BwMode::Vwl(_) => BwMode::Vwl(
            VwlWidth::ALL
                .into_iter()
                .find(|w| w.lanes() <= u32::from(lanes))
                .unwrap_or(VwlWidth::W1),
        ),
        BwMode::Dvfs(level) => {
            let cap = f64::from(lanes) / 16.0;
            if level.bandwidth_fraction() <= cap {
                bw
            } else {
                BwMode::Dvfs(
                    DvfsLevel::ALL
                        .into_iter()
                        .find(|l| l.bandwidth_fraction() <= cap)
                        .unwrap_or(DvfsLevel::P14),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn audited_cfg(eval_us: u64) -> SimConfig {
        SimConfig::builder()
            .workload("mixD")
            .eval_period(SimDuration::from_us(eval_us))
            .seed(7)
            .audit(AuditLevel::Full)
            .build()
            .expect("valid configuration")
    }

    #[test]
    fn sim_time_cap_is_byte_identical_to_a_shorter_eval_period() {
        let direct = audited_cfg(50).run();
        let limits =
            RunLimits { max_sim_time: Some(SimDuration::from_us(50)), ..RunLimits::none() };
        let capped = Engine::new(audited_cfg(1_000)).run_limited(limits);
        assert_eq!(capped.stop, StopReason::MaxSimTime);
        assert_eq!(
            serde::json::to_string(&capped.report),
            serde::json::to_string(&direct),
            "a sim-time-capped run must equal the directly configured shorter run"
        );
        // A cap at or past the evaluation period is not a truncation.
        let limits =
            RunLimits { max_sim_time: Some(SimDuration::from_us(50)), ..RunLimits::none() };
        let uncapped = Engine::new(audited_cfg(50)).run_limited(limits);
        assert_eq!(uncapped.stop, StopReason::Completed);
    }

    #[test]
    fn event_budget_stops_exactly_and_stays_audit_clean() {
        let out = Engine::new(audited_cfg(1_000))
            .run_limited(RunLimits { max_events: Some(500), ..RunLimits::none() });
        assert_eq!(out.stop, StopReason::MaxEvents);
        assert_eq!(out.report.events_processed, 500, "the budget is exact");
        assert!(out.report.audit.checks_run > 0);
        assert!(
            out.report.audit.violations.is_empty(),
            "stopping at an event boundary keeps conservation audits clean: {:?}",
            out.report.audit.violations
        );
    }

    #[test]
    fn pre_set_cancel_flag_stops_at_the_first_poll() {
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(true));
        let out = Engine::new(audited_cfg(1_000))
            .run_limited(RunLimits { cancel: Some(flag), ..RunLimits::none() });
        assert_eq!(out.stop, StopReason::Cancelled);
        assert_eq!(out.report.events_processed, 4096, "polls run every 4096 events");
        assert!(out.report.audit.violations.is_empty());
    }

    #[test]
    fn zero_wall_budget_stops_early() {
        let limits = RunLimits { wall_time: Some(std::time::Duration::ZERO), ..RunLimits::none() };
        let out = Engine::new(audited_cfg(1_000)).run_limited(limits);
        assert_eq!(out.stop, StopReason::WallTime);
        assert_eq!(out.report.events_processed, 4096);
    }

    #[test]
    fn progress_callback_sees_monotonic_samples() {
        let samples = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = samples.clone();
        let limits = RunLimits {
            progress_every: 8192,
            progress: Some(Box::new(move |p: RunProgress| sink.lock().unwrap().push(p))),
            ..RunLimits::none()
        };
        let out = Engine::new(audited_cfg(200)).run_limited(limits);
        assert_eq!(out.stop, StopReason::Completed);
        let samples = samples.lock().unwrap();
        assert!(!samples.is_empty(), "a 200 us run crosses the progress stride");
        for pair in samples.windows(2) {
            assert!(pair[1].events > pair[0].events);
            assert!(pair[1].now >= pair[0].now);
        }
        assert!(samples.iter().all(|p| p.events <= out.report.events_processed));
    }

    #[test]
    fn degraded_lanes_clamp_modes_but_never_raise_them() {
        let w16 = BwMode::Vwl(VwlWidth::W16);
        let w4 = BwMode::Vwl(VwlWidth::W4);
        assert_eq!(clamp_bw_to_lanes(w16, None), w16);
        assert_eq!(clamp_bw_to_lanes(w16, Some(8)), BwMode::Vwl(VwlWidth::W8));
        assert_eq!(clamp_bw_to_lanes(w16, Some(7)), BwMode::Vwl(VwlWidth::W4));
        // A narrower request than the cap passes through unchanged.
        assert_eq!(clamp_bw_to_lanes(w4, Some(8)), w4);
        assert_eq!(clamp_bw_to_lanes(w16, Some(1)), BwMode::Vwl(VwlWidth::W1));
        let p100 = BwMode::Dvfs(DvfsLevel::P100);
        let p50 = BwMode::Dvfs(DvfsLevel::P50);
        assert_eq!(clamp_bw_to_lanes(p100, Some(8)), p50);
        assert_eq!(clamp_bw_to_lanes(p50, Some(16)), p50);
        assert_eq!(clamp_bw_to_lanes(p100, Some(12)), BwMode::Dvfs(DvfsLevel::P50));
        // Below every DVFS point, the narrowest level is the floor.
        assert_eq!(clamp_bw_to_lanes(p100, Some(1)), BwMode::Dvfs(DvfsLevel::P14));
    }
}
