#![warn(missing_docs)]

//! The memnet simulator: configuration, the discrete-event engine, and
//! run reports.
//!
//! This crate assembles the substrates — [`memnet_dram`] vaults,
//! [`memnet_net`] topologies/links, [`memnet_power`] energy accounting,
//! [`memnet_policy`] management and [`memnet_workload`] generators — into
//! a full-system memory-network simulation:
//!
//! 1. Build a [`SimConfig`] (workload, topology, network scale, mechanism,
//!    policy, α, evaluation period, seed).
//! 2. Call [`SimConfig::run`] to execute the discrete-event simulation.
//! 3. Read the [`RunReport`]: power breakdown per Figure 5, utilizations,
//!    latency and throughput metrics, and per-link telemetry.
//!
//! # Examples
//!
//! ```
//! use memnet_core::{NetworkScale, PolicyKind, SimConfig};
//! use memnet_net::TopologyKind;
//! use memnet_policy::Mechanism;
//! use memnet_simcore::SimDuration;
//!
//! let report = SimConfig::builder()
//!     .workload("mixD")
//!     .topology(TopologyKind::DaisyChain)
//!     .scale(NetworkScale::Small)
//!     .policy(PolicyKind::FullPower)
//!     .mechanism(Mechanism::FullPower)
//!     .eval_period(memnet_simcore::SimDuration::from_us(50))
//!     .build()
//!     .expect("valid configuration")
//!     .run();
//! assert!(report.power.watts_per_hmc() > 0.0);
//! # let _ = SimDuration::from_us(1);
//! ```

pub mod config;
pub mod engine;
pub mod frontend;
pub mod limits;
pub mod lockstep;
pub mod metrics;
pub mod multichannel;
pub mod report_text;
pub mod runner;
pub mod trace;

pub use config::{
    AddressMapping, ConfigError, NetworkScale, SimConfig, SimConfigBuilder, TrafficSpec,
};
pub use engine::Engine;
pub use frontend::{InjectStep, TrafficSource};
pub use limits::{LimitedRun, RunLimits, RunProgress, StopReason};
pub use memnet_policy::PolicyKind;
pub use metrics::{LinkTelemetry, PowerSummary, RunReport};
pub use runner::{run_pair, sweep, sweep_seeds};
pub use trace::{Trace, TraceEvent, TracePoint};
