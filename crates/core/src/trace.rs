//! Packet-level trace capture.
//!
//! When enabled (see [`crate::SimConfigBuilder::trace_limit`]), the engine
//! records one [`TraceEvent`] per packet milestone — injection, link
//! transmission start/end, vault issue/completion, retirement — up to a
//! configurable cap. Traces make single-transaction latency audits and
//! policy debugging possible without a debugger, and export to CSV for
//! external tooling.

use memnet_net::{LinkId, ModuleId, PacketKind};
use memnet_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Where a trace event happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePoint {
    /// Injected by the processor front-end.
    Inject,
    /// Began serializing on a link.
    LinkStart(LinkId),
    /// Last flit left a link's transmitter.
    LinkDone(LinkId),
    /// Entered a module's vault queue.
    VaultEnqueue(ModuleId),
    /// DRAM access completed.
    VaultDone(ModuleId),
    /// Transaction retired at the processor.
    Retire,
}

impl TracePoint {
    fn csv(&self) -> String {
        match self {
            TracePoint::Inject => "inject,".to_owned(),
            TracePoint::LinkStart(l) => format!("link_start,{}", l.0),
            TracePoint::LinkDone(l) => format!("link_done,{}", l.0),
            TracePoint::VaultEnqueue(m) => format!("vault_enqueue,{}", m.0),
            TracePoint::VaultDone(m) => format!("vault_done,{}", m.0),
            TracePoint::Retire => "retire,".to_owned(),
        }
    }
}

/// One recorded packet milestone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Transaction id.
    pub packet: u64,
    /// Packet kind at this point.
    pub kind: PacketKind,
    /// Where it happened.
    pub point: TracePoint,
}

/// A bounded in-memory packet trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    limit: usize,
}

impl Trace {
    /// Creates a trace that records up to `limit` events (0 disables).
    pub fn with_limit(limit: usize) -> Self {
        Trace { events: Vec::new(), limit }
    }

    /// True if recording is enabled and the cap is not reached.
    #[inline]
    pub fn active(&self) -> bool {
        self.events.len() < self.limit
    }

    /// Records one event (no-op once the cap is reached).
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.active() {
            self.events.push(event);
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events belonging to one transaction.
    pub fn transaction(&self, packet: u64) -> Vec<TraceEvent> {
        self.events.iter().filter(|e| e.packet == packet).copied().collect()
    }

    /// Exports the trace as CSV (`time_ps,packet,kind,point,location`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ps,packet,kind,point,location\n");
        for e in &self.events {
            out.push_str(&format!(
                "{},{},{:?},{}\n",
                e.time.as_ps(),
                e.packet,
                e.kind,
                e.point.csv()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, pkt: u64, point: TracePoint) -> TraceEvent {
        TraceEvent { time: SimTime::from_ps(t), packet: pkt, kind: PacketKind::ReadRequest, point }
    }

    #[test]
    fn cap_is_enforced() {
        let mut t = Trace::with_limit(2);
        assert!(t.active());
        t.record(ev(1, 1, TracePoint::Inject));
        t.record(ev(2, 1, TracePoint::Retire));
        t.record(ev(3, 2, TracePoint::Inject)); // dropped
        assert_eq!(t.events().len(), 2);
        assert!(!t.active());
    }

    #[test]
    fn zero_limit_disables_recording() {
        let mut t = Trace::with_limit(0);
        assert!(!t.active());
        t.record(ev(1, 1, TracePoint::Inject));
        assert!(t.events().is_empty());
    }

    #[test]
    fn transaction_filter_and_csv() {
        let mut t = Trace::with_limit(10);
        t.record(ev(1, 7, TracePoint::Inject));
        t.record(ev(2, 8, TracePoint::Inject));
        t.record(ev(3, 7, TracePoint::LinkStart(LinkId(0))));
        t.record(ev(9, 7, TracePoint::Retire));
        let tx = t.transaction(7);
        assert_eq!(tx.len(), 3);
        let csv = t.to_csv();
        assert!(csv.starts_with("time_ps,packet"));
        assert_eq!(csv.lines().count(), 5);
        assert!(csv.contains("link_start,0"));
    }
}
