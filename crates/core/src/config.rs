//! Simulation configuration and builder.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use memnet_dram::DramParams;
use memnet_faults::FaultConfig;
use memnet_net::mech::RooParams;
use memnet_net::TopologyKind;
use memnet_obs::ObsConfig;
use memnet_policy::{Mechanism, PolicyConfig, PolicyKind};
use memnet_power::EnergyBackendKind;
use memnet_simcore::{AuditLevel, SimDuration, SplitMix64};
use memnet_workload::{
    catalog, stress, RequestGenerator, RequestTrace, StressEnv, StressGenerator, StressSpec,
    TraceCursor, WorkloadSpec,
};
use serde::{Deserialize, Serialize};

use crate::engine::Engine;
use crate::frontend::TrafficSource;
use crate::metrics::RunReport;

/// Which network-size study a run belongs to.
///
/// Small maps the *i*-th contiguous 4 GB of physical space to HMC *i*
/// (HMCs fully used); big maps the *i*-th contiguous 1 GB, producing a
/// network four times larger for the same footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkScale {
    /// 4 GB per HMC (the paper's small network study).
    Small,
    /// 1 GB per HMC (the paper's big network study).
    Big,
}

impl NetworkScale {
    /// Both scales, small first.
    pub const ALL: [NetworkScale; 2] = [NetworkScale::Small, NetworkScale::Big];

    /// GB of the physical address space mapped to each HMC.
    pub const fn chunk_gb(self) -> u64 {
        match self {
            NetworkScale::Small => 4,
            NetworkScale::Big => 1,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            NetworkScale::Small => "small",
            NetworkScale::Big => "big",
        }
    }

    /// Parses the CLI/manifest spellings (`small|big`).
    pub fn parse(s: &str) -> Option<NetworkScale> {
        match s {
            "small" => Some(NetworkScale::Small),
            "big" => Some(NetworkScale::Big),
            _ => None,
        }
    }
}

/// How physical lines map onto modules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressMapping {
    /// The *i*-th contiguous chunk goes to HMC *i* (the paper's default;
    /// consolidates accesses onto few modules so others can power down).
    Contiguous,
    /// 4 KB pages interleave round-robin over all modules (used with the
    /// §VII-A static selection comparison).
    PageInterleaved,
}

/// Which source feeds the engine front-end its request stream.
///
/// Resolved by the builder: catalog names yield [`TrafficSpec::Synthetic`],
/// `adv.*` stress names yield [`TrafficSpec::Stress`], and
/// [`SimConfigBuilder::replay`] yields [`TrafficSpec::Replay`]. All three
/// share the `MemoryRequest` injection path, so reports, audits and
/// caching behave identically.
#[derive(Debug, Clone)]
pub enum TrafficSpec {
    /// The calibrated two-state generator for [`SimConfig::workload`].
    Synthetic,
    /// An adversarial stress generator.
    Stress(StressSpec),
    /// Replay of a recorded request trace.
    Replay(Arc<RequestTrace>),
}

/// Error from [`SimConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The requested workload name is not in the catalog.
    UnknownWorkload(String),
    /// α must be positive (and sensibly below 1).
    BadAlpha(String),
    /// The evaluation period must be positive.
    BadEvalPeriod,
    /// The fault scenario is malformed or names links/modules outside the
    /// network.
    BadFaults(String),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::UnknownWorkload(w) => {
                write!(
                    f,
                    "unknown workload {w:?}; valid names: {}, and stress workloads: {}",
                    catalog::names().join(", "),
                    stress::names().join(", ")
                )
            }
            ConfigError::BadAlpha(m) => write!(f, "invalid alpha: {m}"),
            ConfigError::BadEvalPeriod => f.write_str("evaluation period must be positive"),
            ConfigError::BadFaults(m) => write!(f, "invalid fault scenario: {m}"),
        }
    }
}

impl Error for ConfigError {}

/// A complete, validated simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Network shape.
    pub topology: TopologyKind,
    /// Small (4 GB/HMC) or big (1 GB/HMC) study.
    pub scale: NetworkScale,
    /// Management policy.
    pub policy: PolicyKind,
    /// Circuit-level link mechanism.
    pub mechanism: Mechanism,
    /// Allowable slowdown factor α.
    pub alpha: f64,
    /// Management epoch length.
    pub epoch: SimDuration,
    /// Cycle-accurate evaluation period.
    pub eval_period: SimDuration,
    /// ROO wakeup physics.
    pub roo_params: RooParams,
    /// Physical line → module mapping.
    pub mapping: AddressMapping,
    /// RNG seed (deterministic runs for equal seeds).
    pub seed: u64,
    /// Maximum outstanding reads at the processor (Table II ROB depth).
    pub max_outstanding_reads: usize,
    /// Processor-side write buffer entries.
    pub write_buffer: usize,
    /// DRAM timing parameters (Table I).
    pub dram: DramParams,
    /// Maximum ISP iterations for network-aware management (paper: 3).
    pub isp_iterations: usize,
    /// §VI-B response-link wakeup chaining (ablation knob).
    pub wake_chaining: bool,
    /// §VI-A3 leftover-AMS rescue pool (ablation knob).
    pub rescue_pool: bool,
    /// Maximum packet-trace events to record (0 disables tracing).
    pub trace_limit: usize,
    /// Runtime invariant-audit level (see [`memnet_simcore::audit`]).
    /// Audit checks never mutate simulation state, so the level cannot
    /// change results — only the `audit` section of the report.
    pub audit: AuditLevel,
    /// Link-fault scenario ([`FaultConfig::none`] by default: a fault-free
    /// run is bit-identical to a build without the fault subsystem).
    ///
    /// Shared behind an `Arc` so that cloning a `SimConfig` — which
    /// `run_pair` and every sweep job do — never deep-copies the
    /// degraded/failed link lists.
    pub faults: Arc<FaultConfig>,
    /// Time-series observability: per-epoch sampling and/or JSONL event
    /// tracing (see [`memnet_obs`]). Off by default; a disabled config
    /// produces bit-identical reports to a build without the subsystem.
    pub obs: ObsConfig,
    /// Where the request stream comes from (synthetic generator, stress
    /// generator, or trace replay).
    pub source: TrafficSpec,
    /// Which energy backend prices metered activity into joules
    /// (analytical paper model by default). Pricing never feeds back into
    /// simulation behavior, so the backend changes only the energy
    /// sections of the report.
    pub energy_backend: EnergyBackendKind,
}

impl SimConfig {
    /// Starts building a configuration.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// Number of HMCs the workload footprint needs at this scale.
    pub fn n_hmcs(&self) -> usize {
        self.workload.footprint_gb.div_ceil(self.scale.chunk_gb()) as usize
    }

    /// Lines of physical space mapped to each HMC chunk.
    pub fn chunk_lines(&self) -> u64 {
        self.scale.chunk_gb() * (1 << 30) / self.dram.line_bytes
    }

    /// The policy configuration this run hands to the power controller.
    pub fn policy_config(&self) -> PolicyConfig {
        let mut cfg = PolicyConfig::new(self.policy, self.mechanism, self.alpha);
        cfg.epoch = self.epoch;
        cfg.roo_params = self.roo_params;
        cfg.isp_iterations = self.isp_iterations;
        cfg.wake_chaining = self.wake_chaining;
        if !self.rescue_pool {
            cfg.rescue_max_requests = 0;
        }
        cfg
    }

    /// Runs the simulation to completion and reports.
    pub fn run(self) -> RunReport {
        Engine::new(self).run()
    }

    /// Instantiates the front-end traffic source this configuration
    /// describes. Seeding matches the pre-trace-layer engine exactly, so
    /// synthetic runs are bit-identical across this refactor.
    pub fn traffic_source(&self) -> TrafficSource {
        match &self.source {
            TrafficSpec::Synthetic => TrafficSource::Synthetic(RequestGenerator::new(
                self.workload.clone(),
                SplitMix64::new(self.seed),
            )),
            TrafficSpec::Stress(spec) => {
                let env = StressEnv {
                    epoch: self.epoch,
                    n_modules: self.n_hmcs(),
                    chunk_lines: self.chunk_lines(),
                };
                TrafficSource::Stress(StressGenerator::new(
                    spec.clone(),
                    env,
                    SplitMix64::new(self.seed),
                ))
            }
            TrafficSpec::Replay(trace) => TrafficSource::Replay(TraceCursor::new(trace.clone())),
        }
    }

    /// Records this configuration's request stream to a trace covering the
    /// evaluation period.
    ///
    /// The closed-loop front-end consumes requests *by schedule order*, at
    /// most one past the horizon: stalls only push injections later, never
    /// earlier, so every request it can ever pull has
    /// `ready_at <= eval_period` — plus the first one beyond it (which
    /// resolves to a `WaitUntil` past the end of the run). Recording
    /// exactly that prefix makes replay bit-identical to the live run.
    ///
    /// # Errors
    ///
    /// Returns an error if the source is itself a replay, or if the trace
    /// would exceed `max` requests before covering the horizon.
    pub fn record_trace(&self, max: usize) -> Result<RequestTrace, String> {
        if matches!(self.source, TrafficSpec::Replay(_)) {
            return Err("cannot record a trace from a replay run".to_owned());
        }
        let mut source = self.traffic_source();
        let horizon = memnet_simcore::SimTime::ZERO + self.eval_period;
        let mut records = Vec::new();
        loop {
            if records.len() >= max {
                return Err(format!(
                    "trace would exceed {max} requests before covering the evaluation period; \
                     shorten --eval or raise the cap"
                ));
            }
            let req = source.next_request().expect("generator sources are infinite");
            let done = req.ready_at > horizon;
            records.push(req);
            if done {
                return Ok(RequestTrace::new(self.workload.name.to_owned(), self.seed, records));
            }
        }
    }
}

/// Builder for [`SimConfig`] with paper defaults.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    workload: String,
    topology: TopologyKind,
    scale: NetworkScale,
    policy: PolicyKind,
    mechanism: Mechanism,
    alpha: f64,
    epoch: SimDuration,
    eval_period: SimDuration,
    roo_params: RooParams,
    mapping: AddressMapping,
    seed: u64,
    max_outstanding_reads: usize,
    write_buffer: usize,
    dram: DramParams,
    isp_iterations: usize,
    wake_chaining: bool,
    rescue_pool: bool,
    trace_limit: usize,
    audit: AuditLevel,
    faults: FaultConfig,
    obs: ObsConfig,
    replay: Option<Arc<RequestTrace>>,
    energy_backend: EnergyBackendKind,
}

impl SimConfigBuilder {
    /// Creates a builder with paper defaults: mixB on a small ternary
    /// tree, full power, α = 5 %, 100 µs epochs, 1 ms evaluation.
    pub fn new() -> Self {
        SimConfigBuilder {
            workload: "mixB".to_owned(),
            topology: TopologyKind::TernaryTree,
            scale: NetworkScale::Small,
            policy: PolicyKind::FullPower,
            mechanism: Mechanism::FullPower,
            alpha: 0.05,
            epoch: SimDuration::from_us(100),
            eval_period: SimDuration::from_ms(1),
            roo_params: RooParams::fast(),
            mapping: AddressMapping::Contiguous,
            seed: 0xC0FFEE,
            max_outstanding_reads: 64,
            write_buffer: 128,
            dram: DramParams::hmc_gen2(),
            isp_iterations: 3,
            wake_chaining: true,
            rescue_pool: true,
            trace_limit: 0,
            audit: AuditLevel::from_env(),
            faults: FaultConfig::none(),
            obs: ObsConfig::off(),
            replay: None,
            energy_backend: EnergyBackendKind::Analytical,
        }
    }

    /// Selects the workload by its paper name ("ua.D", "mixB", ...).
    pub fn workload(mut self, name: &str) -> Self {
        self.workload = name.to_owned();
        self
    }

    /// Selects the network topology.
    pub fn topology(mut self, kind: TopologyKind) -> Self {
        self.topology = kind;
        self
    }

    /// Selects the network scale (small / big study).
    pub fn scale(mut self, scale: NetworkScale) -> Self {
        self.scale = scale;
        self
    }

    /// Selects the management policy.
    pub fn policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Selects the circuit-level link mechanism.
    pub fn mechanism(mut self, mechanism: Mechanism) -> Self {
        self.mechanism = mechanism;
        self
    }

    /// Sets the allowable slowdown factor α (e.g. 0.025 or 0.05).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the management epoch length.
    pub fn epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    /// Sets the simulated evaluation period.
    pub fn eval_period(mut self, period: SimDuration) -> Self {
        self.eval_period = period;
        self
    }

    /// Sets ROO wakeup physics (14 ns default, 20 ns sensitivity).
    pub fn roo_params(mut self, params: RooParams) -> Self {
        self.roo_params = params;
        self
    }

    /// Sets the address mapping.
    pub fn mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the maximum outstanding reads at the processor.
    pub fn max_outstanding_reads(mut self, n: usize) -> Self {
        self.max_outstanding_reads = n;
        self
    }

    /// Sets the maximum ISP iterations (network-aware management).
    pub fn isp_iterations(mut self, n: usize) -> Self {
        self.isp_iterations = n;
        self
    }

    /// Enables or disables §VI-B wakeup chaining (ablation knob).
    pub fn wake_chaining(mut self, on: bool) -> Self {
        self.wake_chaining = on;
        self
    }

    /// Enables or disables the §VI-A3 rescue pool (ablation knob).
    pub fn rescue_pool(mut self, on: bool) -> Self {
        self.rescue_pool = on;
        self
    }

    /// Records up to `limit` packet-trace events (see [`crate::trace`]).
    pub fn trace_limit(mut self, limit: usize) -> Self {
        self.trace_limit = limit;
        self
    }

    /// Sets the runtime invariant-audit level (defaults to the
    /// `MEMNET_AUDIT` environment variable, or off).
    pub fn audit(mut self, level: AuditLevel) -> Self {
        self.audit = level;
        self
    }

    /// Sets the link-fault scenario. Note the builder deliberately does
    /// *not* read `MEMNET_FAULTS` itself (that would silently poison cached
    /// sweep results); the CLI applies [`FaultConfig::from_env`] at its own
    /// layer and bench sweeps carry the spec in their cache key.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the observability configuration. Like [`Self::faults`], the
    /// builder deliberately does *not* read `MEMNET_TRACE` itself (cached
    /// results must be a function of explicit configuration only); the CLI
    /// applies [`ObsConfig::from_env`] at its own layer.
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Selects the energy backend pricing this run. Like [`Self::faults`],
    /// the builder deliberately does *not* read `MEMNET_ENERGY_BACKEND`
    /// itself (cached results must be a function of explicit configuration
    /// only); the CLI applies [`EnergyBackendKind::from_env`] at its own
    /// layer and bench keys carry the backend in their fingerprint.
    pub fn energy_backend(mut self, kind: EnergyBackendKind) -> Self {
        self.energy_backend = kind;
        self
    }

    /// Replays a recorded request trace instead of running a generator.
    /// The workload is forced to the one named in the trace header (its
    /// footprint sizes the network), overriding [`Self::workload`]; the
    /// seed still defaults independently, so pass the trace's seed for a
    /// bit-identical rerun.
    pub fn replay(mut self, trace: Arc<RequestTrace>) -> Self {
        self.replay = Some(trace);
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the invalid field.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        // A replay forces the workload named in its header (the footprint
        // sizes the network identically to the recorded run); otherwise
        // the name resolves through the paper catalog first, then the
        // adversarial stress catalog.
        let requested = match &self.replay {
            Some(trace) => trace.workload.clone(),
            None => self.workload.clone(),
        };
        let (workload, source) = if let Some(spec) = catalog::by_name(&requested) {
            (spec, TrafficSpec::Synthetic)
        } else if let Some(stress_spec) = stress::by_name(&requested) {
            (stress_spec.base.clone(), TrafficSpec::Stress(stress_spec))
        } else {
            return Err(ConfigError::UnknownWorkload(requested));
        };
        let source = match self.replay {
            Some(trace) => TrafficSpec::Replay(trace),
            None => source,
        };
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(ConfigError::BadAlpha(format!(
                "alpha must be in (0, 1), got {}",
                self.alpha
            )));
        }
        if self.eval_period.is_zero() {
            return Err(ConfigError::BadEvalPeriod);
        }
        self.faults.validate().map_err(ConfigError::BadFaults)?;
        let n_hmcs = workload.footprint_gb.div_ceil(self.scale.chunk_gb()) as usize;
        for d in &self.faults.degraded {
            if d.link >= 2 * n_hmcs {
                return Err(ConfigError::BadFaults(format!(
                    "degraded link {} out of range (network has {} links)",
                    d.link,
                    2 * n_hmcs
                )));
            }
        }
        for &m in &self.faults.hard_failed {
            if m >= n_hmcs {
                return Err(ConfigError::BadFaults(format!(
                    "hard-failed module {m} out of range (network has {n_hmcs} modules)"
                )));
            }
        }
        Ok(SimConfig {
            workload,
            topology: self.topology,
            scale: self.scale,
            policy: self.policy,
            mechanism: self.mechanism,
            alpha: self.alpha,
            epoch: self.epoch,
            eval_period: self.eval_period,
            roo_params: self.roo_params,
            mapping: self.mapping,
            seed: self.seed,
            max_outstanding_reads: self.max_outstanding_reads,
            write_buffer: self.write_buffer,
            dram: self.dram,
            isp_iterations: self.isp_iterations,
            wake_chaining: self.wake_chaining,
            rescue_pool: self.rescue_pool,
            trace_limit: self.trace_limit,
            audit: self.audit,
            faults: Arc::new(self.faults),
            obs: self.obs,
            source,
            energy_backend: self.energy_backend,
        })
    }
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_build() {
        let cfg = SimConfig::builder().build().unwrap();
        assert_eq!(cfg.workload.name, "mixB");
        assert_eq!(cfg.n_hmcs(), 3); // 12 GB over 4 GB chunks
    }

    #[test]
    fn big_scale_quadruples_module_count() {
        let small = SimConfig::builder().workload("is.D").build().unwrap();
        let big = SimConfig::builder().workload("is.D").scale(NetworkScale::Big).build().unwrap();
        assert_eq!(small.n_hmcs(), 9); // 36 GB / 4
        assert_eq!(big.n_hmcs(), 36); // 36 GB / 1
        assert_eq!(big.chunk_lines(), (1 << 30) / 64);
    }

    #[test]
    fn unknown_workload_is_rejected() {
        let err = SimConfig::builder().workload("nope").build().unwrap_err();
        assert!(matches!(err, ConfigError::UnknownWorkload(_)));
        // The message lists the valid names from both catalogs.
        let msg = err.to_string();
        assert!(msg.contains("mixB"), "catalog names listed: {msg}");
        assert!(msg.contains("adv.wakestorm"), "stress names listed: {msg}");
    }

    #[test]
    fn stress_workloads_resolve_through_the_stress_catalog() {
        let cfg = SimConfig::builder().workload("adv.wakestorm").build().unwrap();
        assert_eq!(cfg.workload.name, "adv.wakestorm");
        assert_eq!(cfg.n_hmcs(), 4); // 16 GB over 4 GB chunks
        assert!(matches!(cfg.source, TrafficSpec::Stress(_)));
        assert!(matches!(cfg.traffic_source(), crate::frontend::TrafficSource::Stress(_)));
    }

    #[test]
    fn replay_forces_the_trace_workload_and_source() {
        let recorded = SimConfig::builder()
            .workload("mixD")
            .eval_period(SimDuration::from_us(5))
            .build()
            .unwrap()
            .record_trace(1_000_000)
            .unwrap();
        assert_eq!(recorded.workload, "mixD");
        assert!(!recorded.is_empty());
        // All but the final (horizon-crossing) record lie inside the
        // evaluation period.
        let horizon = SimDuration::from_us(5);
        let inside = recorded
            .records()
            .iter()
            .filter(|r| r.ready_at.saturating_since(memnet_simcore::SimTime::ZERO) <= horizon)
            .count();
        assert_eq!(inside, recorded.len() - 1);

        // Building with .replay() overrides the requested workload.
        let cfg = SimConfig::builder()
            .workload("mixB")
            .replay(Arc::new(recorded))
            .eval_period(SimDuration::from_us(5))
            .build()
            .unwrap();
        assert_eq!(cfg.workload.name, "mixD");
        assert!(matches!(cfg.source, TrafficSpec::Replay(_)));
        // Replay runs cannot themselves be recorded.
        assert!(cfg.record_trace(10).is_err());
    }

    #[test]
    fn record_trace_respects_the_cap() {
        let cfg = SimConfig::builder().build().unwrap(); // 1 ms horizon
        assert!(cfg.record_trace(10).is_err(), "10 requests cannot cover 1 ms");
    }

    #[test]
    fn invalid_alpha_is_rejected() {
        let err = SimConfig::builder().alpha(0.0).build().unwrap_err();
        assert!(matches!(err, ConfigError::BadAlpha(_)));
        let err = SimConfig::builder().alpha(1.5).build().unwrap_err();
        assert!(matches!(err, ConfigError::BadAlpha(_)));
    }

    #[test]
    fn zero_eval_period_is_rejected() {
        let err = SimConfig::builder().eval_period(SimDuration::ZERO).build().unwrap_err();
        assert_eq!(err, ConfigError::BadEvalPeriod);
    }

    #[test]
    fn audit_level_is_settable() {
        // The default tracks MEMNET_AUDIT (process-wide), so only the
        // explicit override is asserted here.
        let cfg = SimConfig::builder().audit(AuditLevel::Full).build().unwrap();
        assert_eq!(cfg.audit, AuditLevel::Full);
        let cfg = SimConfig::builder().audit(AuditLevel::Off).build().unwrap();
        assert_eq!(cfg.audit, AuditLevel::Off);
    }

    #[test]
    fn fault_scenarios_are_validated_against_the_network() {
        // mixB on small scale = 3 HMCs = 6 links.
        let ok = SimConfig::builder()
            .faults(FaultConfig::parse("ber=1e-6,degrade=5:4,fail=2").unwrap())
            .build()
            .unwrap();
        assert!(!ok.faults.is_none());
        let err = SimConfig::builder()
            .faults(FaultConfig::parse("degrade=6:4").unwrap())
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::BadFaults(_)), "{err}");
        let err =
            SimConfig::builder().faults(FaultConfig::parse("fail=3").unwrap()).build().unwrap_err();
        assert!(matches!(err, ConfigError::BadFaults(_)), "{err}");
        // Defaults stay fault-free.
        assert!(SimConfig::builder().build().unwrap().faults.is_none());
    }

    #[test]
    fn policy_config_carries_tunables_through() {
        let cfg = SimConfig::builder()
            .policy(PolicyKind::NetworkAware)
            .mechanism(Mechanism::VwlRoo)
            .alpha(0.025)
            .epoch(SimDuration::from_us(50))
            .roo_params(RooParams::slow())
            .build()
            .unwrap();
        let pc = cfg.policy_config();
        assert_eq!(pc.kind, PolicyKind::NetworkAware);
        assert_eq!(pc.alpha, 0.025);
        assert_eq!(pc.epoch, SimDuration::from_us(50));
        assert_eq!(pc.roo_params, RooParams::slow());
    }
}
