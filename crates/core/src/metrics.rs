//! Run reports: everything a paper figure needs from one simulation.

use memnet_net::mech::N_BW_MODES;
use memnet_net::{LinkId, TopologyKind};
use memnet_power::EnergyBreakdown;
use memnet_simcore::SimDuration;
use serde::{Deserialize, Serialize};

use crate::trace::TraceEvent;

/// Power summary over the evaluation window.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerSummary {
    /// Total joules by Figure 5 category.
    pub energy: EnergyBreakdown,
    /// Evaluation window length.
    pub window: SimDuration,
    /// Number of modules.
    pub n_hmcs: usize,
}

impl PowerSummary {
    /// Average network power, watts.
    pub fn watts(&self) -> f64 {
        self.energy.watts(self.window)
    }

    /// Average power per module, watts (Figure 5/11's y-axis).
    pub fn watts_per_hmc(&self) -> f64 {
        self.energy.watts_per_hmc(self.window, self.n_hmcs)
    }

    /// Per-category average watts per module, Figure 5 order.
    pub fn watts_per_hmc_by_category(&self) -> [f64; 6] {
        let mut cats = self.energy.watts_by_category(self.window);
        for c in &mut cats {
            *c /= self.n_hmcs.max(1) as f64;
        }
        cats
    }

    /// Idle I/O energy over total energy (Figure 8's y-axis).
    pub fn idle_io_fraction(&self) -> f64 {
        self.energy.idle_io_fraction()
    }

    /// I/O energy (idle + active) over total energy.
    pub fn io_fraction(&self) -> f64 {
        self.energy.io_fraction()
    }
}

/// Per-link telemetry (Figure 13's link-hours raw data).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkTelemetry {
    /// Which link.
    pub link: LinkId,
    /// Fraction of the window spent transmitting.
    pub utilization: f64,
    /// Time on (idle + active) per bandwidth mode, indexed by
    /// [`memnet_net::mech::BwMode::index`].
    pub mode_time: [SimDuration; N_BW_MODES],
    /// Time powered off.
    pub off_time: SimDuration,
    /// Time spent waking.
    pub waking_time: SimDuration,
    /// Wakeups performed.
    pub wake_count: u64,
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name.
    pub workload: &'static str,
    /// Topology simulated.
    pub topology: TopologyKind,
    /// "small" or "big".
    pub scale: &'static str,
    /// Policy label.
    pub policy: &'static str,
    /// Mechanism label.
    pub mechanism: &'static str,
    /// α used.
    pub alpha: f64,
    /// Power summary.
    pub power: PowerSummary,
    /// Processor-channel utilization (busier direction of the root edge).
    pub channel_utilization: f64,
    /// Mean utilization over all links (Figure 9's dotted series).
    pub link_utilization: f64,
    /// Mean modules traversed per memory access (Figure 6).
    pub avg_modules_traversed: f64,
    /// Reads completed in the window.
    pub completed_reads: u64,
    /// Writes retired in the window.
    pub retired_writes: u64,
    /// Accesses injected (reads + writes).
    pub injected_accesses: u64,
    /// Mean read latency, nanoseconds.
    pub mean_read_latency_ns: f64,
    /// Maximum read latency, nanoseconds.
    pub max_read_latency_ns: f64,
    /// Aggregate throughput: completed accesses per microsecond — the
    /// performance metric for degradation comparisons.
    pub accesses_per_us: f64,
    /// Management epochs completed.
    pub epochs: u64,
    /// AMS violations (forced full-power transitions).
    pub violations: u64,
    /// Per-link detail.
    pub links: Vec<LinkTelemetry>,
    /// Captured packet trace (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
}

impl RunReport {
    /// Performance degradation of `self` versus a baseline run, as a
    /// fraction (0.03 = 3 % slower). Negative values mean `self` was
    /// faster.
    pub fn degradation_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.accesses_per_us == 0.0 {
            0.0
        } else {
            1.0 - self.accesses_per_us / baseline.accesses_per_us
        }
    }

    /// Network-wide power reduction of `self` versus a baseline run, as a
    /// fraction (0.25 = 25 % less power).
    pub fn power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        let base = baseline.power.watts();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.power.watts() / base
        }
    }

    /// Idle-I/O (plus active-I/O) power reduction versus a baseline.
    pub fn io_power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        let base = baseline.power.energy.io_total();
        if base == 0.0 {
            0.0
        } else {
            1.0 - self.power.energy.io_total() / base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(watts_scale: f64, throughput: f64) -> RunReport {
        let energy = EnergyBreakdown {
            idle_io: 6.0 * watts_scale,
            active_io: 1.0 * watts_scale,
            logic_leak: 1.0 * watts_scale,
            logic_dyn: 0.5 * watts_scale,
            dram_leak: 1.0 * watts_scale,
            dram_dyn: 0.5 * watts_scale,
        };
        RunReport {
            workload: "test",
            topology: TopologyKind::DaisyChain,
            scale: "small",
            policy: "full power",
            mechanism: "FP",
            alpha: 0.05,
            power: PowerSummary { energy, window: SimDuration::from_ms(1), n_hmcs: 5 },
            channel_utilization: 0.5,
            link_utilization: 0.2,
            avg_modules_traversed: 2.5,
            completed_reads: 1000,
            retired_writes: 500,
            injected_accesses: 1500,
            mean_read_latency_ns: 80.0,
            max_read_latency_ns: 200.0,
            accesses_per_us: throughput,
            epochs: 10,
            violations: 0,
            links: Vec::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn degradation_is_relative_throughput_loss() {
        let base = report(1.0, 100.0);
        let slower = report(1.0, 97.0);
        assert!((slower.degradation_vs(&base) - 0.03).abs() < 1e-12);
        assert_eq!(base.degradation_vs(&base), 0.0);
    }

    #[test]
    fn power_reduction_is_relative_watts() {
        let base = report(1.0, 100.0);
        let saver = report(0.8, 100.0);
        assert!((saver.power_reduction_vs(&base) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn io_reduction_considers_only_io() {
        let base = report(1.0, 100.0);
        let mut saver = report(1.0, 100.0);
        saver.power.energy.idle_io = 3.5; // halve idle I/O only
        let expected = 1.0 - (3.5 + 1.0) / 7.0;
        assert!((saver.io_power_reduction_vs(&base) - expected).abs() < 1e-12);
    }

    #[test]
    fn per_category_watts_divide_by_hmcs() {
        let r = report(1.0, 100.0);
        // 10 J over 1 ms over 5 HMCs = 2000 W per HMC total.
        assert!((r.power.watts_per_hmc() - 2000.0).abs() < 1e-9);
        let cats = r.power.watts_per_hmc_by_category();
        assert!((cats.iter().sum::<f64>() - 2000.0).abs() < 1e-9);
        assert!((r.power.idle_io_fraction() - 0.6).abs() < 1e-12);
    }
}
